//! # acdgc — Asynchronous Complete Distributed Garbage Collection
//!
//! A from-scratch Rust reproduction of Veiga & Ferreira, *Asynchronous
//! Complete Distributed Garbage Collection* (IPPS 2005): a hybrid
//! distributed garbage collector pairing a reference-listing acyclic DGC
//! with an asynchronous **Distributed Cycle Detection Algorithm** (DCDA)
//! that reclaims distributed cycles without global synchronization,
//! consensus, per-process detection state, or mutator disruption — and
//! tolerates message loss.
//!
//! This crate is the facade: it re-exports the subsystem crates under one
//! name and hosts the runnable examples and the cross-crate test suite.
//!
//! ## Quickstart
//!
//! ```
//! use acdgc::model::{GcConfig, NetConfig, ProcId};
//! use acdgc::sim::{scenarios, System};
//!
//! // Four processes, manually driven GC, reliable instant network.
//! let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 42);
//!
//! // Build the paper's Figure 3: a garbage cycle spanning all four
//! // processes, initially held alive by a root in P1.
//! let fig = scenarios::fig3(&mut sys);
//! sys.remove_root(fig.a).unwrap();      // now it is garbage
//!
//! // Acyclic DGC alone cannot reclaim it; the DCDA can.
//! sys.collect_to_fixpoint(20);
//! assert_eq!(sys.total_live_objects(), 0);
//! assert!(sys.metrics.cycles_detected >= 1);
//! assert_eq!(sys.metrics.safety_violations(), 0);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `acdgc-model` | ids, simulated time, configuration |
//! | [`heap`] | `acdgc-heap` | object heaps, mark-sweep LGC |
//! | [`net`] | `acdgc-net` | deterministic lossy network |
//! | [`remoting`] | `acdgc-remoting` | stubs/scions, invocation counters, reference listing |
//! | [`snapshot`] | `acdgc-snapshot` | snapshot codecs, graph summarization |
//! | [`dcda`] | `acdgc-dcda` | **the paper's contribution**: CDM algebra + detector |
//! | [`baselines`] | `acdgc-baselines` | Hughes timestamps, distributed back-tracing |
//! | [`obs`] | `acdgc-obs` | event tracing, phase histograms, detection forensics |
//! | [`sim`] | `acdgc-sim` | whole-system simulator, scenarios, oracle, threaded runtime |

pub use acdgc_baselines as baselines;
pub use acdgc_dcda as dcda;
pub use acdgc_heap as heap;
pub use acdgc_model as model;
pub use acdgc_net as net;
pub use acdgc_obs as obs;
pub use acdgc_remoting as remoting;
pub use acdgc_sim as sim;
pub use acdgc_snapshot as snapshot;
