//! Termination and bounded-work guarantees.
//!
//! The paper argues termination from monotone algebra growth; this suite
//! pins the implementation's concrete bounds: per-detection traffic is
//! capped by the budget, walks by hops and slack, and the system-wide
//! fixpoint loop never livelocks even on worst-case dense garbage.

use acdgc::model::{GcConfig, NetConfig, ObjId, ProcId, SimDuration};
use acdgc::sim::System;

/// Complete digraph of remote references over `procs` processes with
/// `objs` objects each: every object references every object in every
/// other process (pairs shared per process-target). Maximal density.
fn complete_clump(procs: usize, objs: usize, seed: u64) -> System {
    let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), seed);
    sys.check_safety = false; // oracle is O(n) per reclamation; keep the test fast
    let all: Vec<ObjId> = (0..procs)
        .flat_map(|p| {
            (0..objs)
                .map(|_| sys.alloc(ProcId(p as u16), 1))
                .collect::<Vec<_>>()
        })
        .collect();
    for &a in &all {
        for &b in &all {
            if a.proc != b.proc {
                sys.create_remote_ref(a, b).unwrap();
            }
        }
    }
    sys
}

#[test]
fn one_detection_respects_its_budget() {
    let mut sys = complete_clump(4, 3, 80);
    sys.config_mut().detection_budget = 200;
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    // One detection from one scion of the clump.
    let scion = sys
        .proc(ProcId(0))
        .tables
        .scions()
        .map(|s| s.ref_id)
        .min()
        .unwrap();
    sys.initiate_detection(ProcId(0), scion);
    sys.drain_network();
    assert!(
        sys.metrics.cdms_sent <= 200,
        "budget bounds traffic: {} CDMs",
        sys.metrics.cdms_sent
    );
}

#[test]
fn dense_clump_is_collected_within_bounded_rounds() {
    let mut sys = complete_clump(3, 3, 81);
    assert!(sys.oracle_live().is_empty());
    let rounds = sys.collect_to_fixpoint(30);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "complete 3x3 clump reclaimed (rounds={rounds}); {:?}",
        sys.metrics
    );
}

#[test]
fn anchored_dense_clump_survives_and_probes_are_bounded() {
    let mut sys = complete_clump(3, 2, 82);
    // Root one object: the whole clump is live (complete digraph).
    let rooted = sys
        .proc(ProcId(0))
        .heap
        .id_of_slot(0)
        .expect("first object");
    sys.add_root(rooted).unwrap();
    let live = sys.oracle_live().len();
    assert_eq!(live, 6);
    sys.collect_to_fixpoint(15);
    assert_eq!(sys.total_live_objects(), 6, "{:?}", sys.metrics);
    // Every probe died by local-reach pruning or dependency residue;
    // bounded traffic either way.
    assert!(sys.metrics.cdms_sent < 50_000);
    assert_eq!(sys.metrics.cycles_detected, 0);
}

#[test]
fn fixpoint_loop_exits_on_uncollectable_residue() {
    // A clump kept alive by a root: collect_to_fixpoint must return after
    // its two quiet rounds rather than spinning to max_rounds.
    let mut sys = complete_clump(3, 2, 83);
    let rooted = sys.proc(ProcId(0)).heap.id_of_slot(0).unwrap();
    sys.add_root(rooted).unwrap();
    let rounds = sys.collect_to_fixpoint(50);
    assert!(rounds < 50, "fixpoint detected in {rounds} rounds");
}

#[test]
fn hop_cap_is_a_hard_backstop() {
    // Pathological config: no termination rule, tiny hop cap. The walk
    // must die by the cap, never loop.
    let mut cfg = GcConfig::manual();
    cfg.branch_termination = false;
    cfg.max_hops = 16;
    cfg.detection_budget = 1_000_000;
    let mut sys = System::new(2, cfg, NetConfig::instant(), 84);
    sys.check_safety = false;
    let a = sys.alloc(ProcId(0), 1);
    let b = sys.alloc(ProcId(1), 1);
    sys.create_remote_ref(a, b).unwrap();
    sys.create_remote_ref(b, a).unwrap();
    sys.advance(SimDuration::from_millis(1));
    sys.take_snapshot(ProcId(0));
    sys.take_snapshot(ProcId(1));
    let scion = sys
        .proc(ProcId(0))
        .tables
        .scions()
        .map(|s| s.ref_id)
        .next()
        .unwrap();
    sys.initiate_detection(ProcId(0), scion);
    sys.drain_network();
    // The 2-ring cancels on the second delivery, well inside the cap; but
    // had it looped (no growth rule), the cap would have cut it.
    assert!(sys.metrics.cdms_sent <= 17 + 1);
    assert!(sys.metrics.cycles_detected >= 1 || sys.metrics.detections_dropped_hops >= 1);
}
