//! F5 — Figure 5 / §3.2.1, "A mutator-cycle detection race": while a
//! detection crawls the cycle, the mutator — initiating from P1 — runs a
//! chain of invocations that ends with a reference to `J_P2` exported to
//! P3, then erases P1's root. The cycle is still live (through P3), but a
//! post-mutation snapshot at P1 shows `Local.Reach(B→F) = false`, so the
//! crawl would complete — except the invocation counters on `F_P2`
//! disagree (`x` in the CDM vs `x+1` in P1's new summary) and the
//! detection aborts (§3.2.1 step 8).
//!
//! Ablation A1 runs the same interleaving with the barrier disabled and
//! demonstrates the unsafe reclamation the counters prevent.

use acdgc::model::{GcConfig, NetConfig, ProcId, RefId, SimDuration, SimTime};
use acdgc::sim::{scenarios, InvokeSpec, System};

/// Process indices of the scenario: P0≙P1, P1≙P2, P2≙P5, P3≙P4, P4≙P3.
const P1: ProcId = ProcId(0);
const P2: ProcId = ProcId(1);

fn slow_net() -> NetConfig {
    NetConfig {
        min_latency: SimDuration::from_millis(10),
        max_latency: SimDuration::from_millis(10),
        ..NetConfig::default()
    }
}

/// Run the §3.2.1 interleaving. Returns the system afterwards.
fn run_race(cfg: GcConfig) -> System {
    let mut sys = System::new(5, cfg, slow_net(), 13);
    let fig = scenarios::fig5(&mut sys);
    sys.advance(SimDuration::from_millis(1));

    // "Updated graph summarized information, in every process, available
    // before event 1 and event i": B rooted ⇒ Local.Reach(B→F) = true.
    for p in 0..5 {
        sys.take_snapshot(ProcId(p as u16));
    }

    // Event i: detection starts at P2 from F's scion; the CDM crawls
    // P2 → P5 → P4 → P1 at 10 ms per hop (arrives at P1 ≈ t31).
    sys.initiate_detection(P2, fig.r_bf);

    // Events 1..11: the chain. First P1 invokes F through the raced
    // reference — IC(F_P2): x → x+1 — handing F a reference to M3.
    sys.invoke(
        P1,
        fig.r_bf,
        InvokeSpec {
            exports: vec![fig.m3],
            ..InvokeSpec::default()
        },
    )
    .unwrap();
    sys.run_until(SimTime::from_millis(12));
    // F now holds a fresh stub to M3; find it.
    let r_fm3: RefId = sys
        .proc(P2)
        .heap
        .get(fig.f)
        .unwrap()
        .remote_refs()
        .find(|&r| r != fig.r_bf)
        .expect("F imported a reference to M3");
    // Second leg: P2 invokes M3 through it, exporting J. M3 now reaches
    // the whole cycle: M3 → J → V → T → D → B → F.
    sys.invoke(
        P2,
        r_fm3,
        InvokeSpec {
            exports: vec![fig.j],
            ..InvokeSpec::default()
        },
    )
    .unwrap();
    sys.run_until(SimTime::from_millis(24));

    // Event 11: root erasure at P1.
    sys.remove_root(fig.b).unwrap();

    // "11 ≺ t ≺ iii": P1 snapshots AFTER the mutation, BEFORE the CDM
    // arrives: Local.Reach(B→F) = false, IC(B→F) = x+1.
    sys.take_snapshot(P1);
    assert!(
        sys.clock() < SimTime::from_millis(31),
        "CDM still in flight"
    );

    // Events iii, iv: the CDM reaches P1, combines with the new summary,
    // and is forwarded to P2 where matching sees {F,x} vs {F,x+1}.
    sys.drain_network();
    sys
}

#[test]
fn scenario_sanity_cycle_live_through_p3_after_race() {
    let sys = run_race(GcConfig::manual());
    // The oracle agrees with Fig. 5: everything is still reachable via M3.
    assert_eq!(
        sys.oracle_live().len(),
        7,
        "M3 holds the entire cycle globally reachable"
    );
}

#[test]
fn ic_barrier_aborts_the_raced_detection() {
    let sys = run_race(GcConfig::manual());
    assert_eq!(
        sys.metrics.cycles_detected, 0,
        "no false cycle: {:?}",
        sys.metrics
    );
    assert!(
        sys.metrics.detections_aborted_ic >= 1,
        "§3.2.1 step 8: different IC values (x and x+1) for F_P2 cause \
         detection abort: {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn ablation_a1_barrier_off_is_unsafe() {
    // The same interleaving with the barrier disabled: the detector
    // completes the stale CDM-Graph and wrongly deletes F's scion even
    // though F is reachable from M3 through the ring. The oracle counts
    // the violation — the unsafety the paper's counters exist to prevent.
    let cfg = GcConfig {
        ic_barrier: false,
        ic_check_on_delivery: false,
        ..GcConfig::manual()
    };
    let sys = run_race(cfg);
    assert!(
        sys.metrics.cycles_detected >= 1,
        "barrier off: the false cycle IS concluded: {:?}",
        sys.metrics
    );
    assert!(
        sys.metrics.unsafe_scion_deletes >= 1,
        "oracle flags the unsafe deletion: {:?}",
        sys.metrics
    );
}

#[test]
fn after_abort_collection_converges_to_oracle_truth() {
    let mut sys = run_race(GcConfig::manual());
    let oracle_live = sys.oracle_live().len();
    sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        oracle_live,
        "fresh snapshots converge to the truth: {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn dropping_p3s_reference_later_lets_the_cycle_die() {
    let mut sys = run_race(GcConfig::manual());
    let fig_m3_proc = ProcId(4);
    // Remove M3's root: now the cycle really is garbage.
    let m3 = sys
        .procs()
        .iter()
        .find(|p| p.proc() == fig_m3_proc)
        .and_then(|p| {
            let roots: Vec<_> = p.heap.roots().collect();
            roots.first().and_then(|&slot| p.heap.id_of_slot(slot))
        })
        .expect("M3 is rooted");
    sys.remove_root(m3).unwrap();
    sys.collect_to_fixpoint(25);
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}
