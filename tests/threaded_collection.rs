//! Concurrent collection: the GC stack runs with one real OS thread per
//! process and crossbeam channels as the transport — no global clock, no
//! barriers — and still reclaims distributed cycles safely.

use acdgc::model::{GcConfig, NetConfig, ProcId};
use acdgc::sim::{scenarios, threaded, System};
use std::time::Duration;

fn build_ring(procs: usize, objs: usize, anchored: bool) -> System {
    let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), 99);
    let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &ids, objs, anchored);
    if let Some(anchor) = ring.anchor {
        if !anchored {
            sys.remove_root(anchor).unwrap();
        }
    }
    sys
}

#[test]
fn threaded_run_collects_garbage_ring() {
    let sys = build_ring(4, 3, false);
    assert_eq!(sys.total_live_objects(), 12);
    let (procs, stats) = threaded::run_concurrent_collection(
        sys.into_procs(),
        GcConfig::manual(),
        Duration::from_secs(10),
    );
    let live: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();
    assert_eq!(
        live,
        0,
        "threads collected the ring: lgc={} cycles={} cdms={}",
        stats.lgc_runs.load(std::sync::atomic::Ordering::Relaxed),
        stats
            .cycles_detected
            .load(std::sync::atomic::Ordering::Relaxed),
        stats.cdms_sent.load(std::sync::atomic::Ordering::Relaxed),
    );
    assert!(
        stats
            .cycles_detected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    assert!(
        stats.quiescent(),
        "an all-garbage run must end via quiescence votes, not the deadline"
    );
}

#[test]
fn threaded_run_preserves_live_ring() {
    // A live distributed ring used to keep the run busy forever: its
    // scions stayed eligible candidates, every detection terminated
    // "live" at some remote process, and the initiator — learning
    // nothing — re-initiated after every backoff. The weight-throwing
    // credit scheme closes the loop: a complete clean walk records a
    // liveness verdict, the candidate is suppressed (no mutator runs
    // here, so the verdict never expires), and the run votes itself
    // quiescent with the ring intact.
    let sys = build_ring(4, 3, true);
    let before = sys.total_live_objects();
    let (procs, stats) = threaded::run_concurrent_collection(
        sys.into_procs(),
        GcConfig::manual(),
        Duration::from_secs(30),
    );
    let live: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();
    assert_eq!(live, before, "anchored ring survives concurrent GC");
    assert_eq!(
        stats
            .cycles_detected
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "nothing to detect in an all-live graph"
    );
    assert!(
        stats.quiescent(),
        "proven-live candidates must stop re-initiating and let the run quiesce"
    );
}

#[test]
fn threaded_run_handles_fig4_mutual_cycles() {
    let mut sys = System::new(6, GcConfig::manual(), NetConfig::instant(), 5);
    let _fig = scenarios::fig4(&mut sys);
    let (procs, stats) = threaded::run_concurrent_collection(
        sys.into_procs(),
        GcConfig::manual(),
        Duration::from_secs(10),
    );
    let live: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();
    assert_eq!(
        live,
        0,
        "cycles={}",
        stats
            .cycles_detected
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    assert!(stats.quiescent());
}

#[test]
fn threaded_run_mixed_live_and_dead_structures() {
    let mut sys = System::new(5, GcConfig::manual(), NetConfig::instant(), 31);
    let ids: Vec<ProcId> = (0..5).map(ProcId).collect();
    let dead = scenarios::ring(&mut sys, &ids, 2, false);
    let live = scenarios::ring(&mut sys, &ids, 2, true);
    assert!(dead.anchor.is_none() && live.anchor.is_some());
    let expected_live = 11; // 5 procs × 2 objects + anchor
                            // The surviving live ring keeps its candidates hot, so this run ends
                            // at the observation window, not by quiescence.
    let (procs, _stats) = threaded::run_concurrent_collection(
        sys.into_procs(),
        GcConfig::manual(),
        Duration::from_millis(1_500),
    );
    let total: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();
    assert_eq!(total, expected_live, "dead ring gone, live ring intact");
}
