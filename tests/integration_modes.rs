//! A6 companion: the two implementations of the paper (Rotor, in-VM vs
//! OBIWAN, user-level weak-reference monitor) differ only in *when* stub
//! death becomes visible to reference listing. Behavioural equivalence and
//! the latency difference are both asserted here.

use acdgc::model::{GcConfig, IntegrationMode, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn system(mode: IntegrationMode, seed: u64) -> System {
    System::new(
        4,
        GcConfig {
            integration: mode,
            monitor_period: SimDuration::from_millis(100),
            ..GcConfig::default()
        },
        NetConfig::default(),
        seed,
    )
}

#[test]
fn both_modes_reach_the_same_final_state() {
    for mode in [
        IntegrationMode::VmIntegrated,
        IntegrationMode::WeakRefMonitor,
    ] {
        let mut sys = system(mode, 70);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        sys.run_for(SimDuration::from_millis(10_000));
        assert_eq!(sys.total_live_objects(), 0, "{mode:?}: {:?}", sys.metrics);
        assert_eq!(sys.total_scions(), 0, "{mode:?}");
        assert_eq!(sys.metrics.safety_violations(), 0, "{mode:?}");
    }
}

#[test]
fn weakref_mode_lags_by_up_to_one_monitor_period() {
    let measure = |mode: IntegrationMode| -> u64 {
        let mut sys = system(mode, 71);
        sys.check_safety = false;
        let a = sys.alloc(ProcId(0), 1);
        sys.add_root(a).unwrap();
        let b = sys.alloc(ProcId(1), 1);
        let r = sys.create_remote_ref(a, b).unwrap();
        sys.run_for(SimDuration::from_millis(500));
        sys.drop_remote_ref(a, r).unwrap();
        let cut = sys.clock();
        while sys.total_scions() > 0 {
            sys.run_for(SimDuration::from_millis(5));
            assert!(sys.clock() < cut + SimDuration::from_millis(30_000));
        }
        (sys.clock() - cut).as_millis()
    };
    let vm = measure(IntegrationMode::VmIntegrated);
    let weak = measure(IntegrationMode::WeakRefMonitor);
    assert!(
        weak >= vm,
        "user-level monitoring cannot be faster: vm={vm}ms weak={weak}ms"
    );
    assert!(
        weak <= vm + 250,
        "lag bounded by ~one monitor period + jitter: vm={vm}ms weak={weak}ms"
    );
}

#[test]
fn condemned_stub_resurrected_by_reimport_survives() {
    // OBIWAN subtlety: the monitor must pardon a proxy that became
    // reachable again between the LGC that condemned it and the monitor
    // pass (modelled by re-adding the reference to a live holder).
    let mut sys = System::new(
        2,
        GcConfig {
            integration: IntegrationMode::WeakRefMonitor,
            ..GcConfig::manual()
        },
        NetConfig::instant(),
        72,
    );
    let a = sys.alloc(ProcId(0), 1);
    sys.add_root(a).unwrap();
    let holder = sys.alloc(ProcId(0), 1);
    sys.add_local_ref(a, holder).unwrap();
    let b = sys.alloc(ProcId(1), 1);
    let r = sys.create_remote_ref(holder, b).unwrap();
    // The only holder drops the ref; LGC condemns the stub...
    sys.drop_remote_ref(holder, r).unwrap();
    sys.advance(SimDuration::from_millis(1));
    sys.run_lgc(ProcId(0));
    assert!(
        sys.proc(ProcId(0)).tables.stub(r).unwrap().condemned,
        "stub condemned after LGC"
    );
    // ...but before the monitor pass the mutator re-creates the reference
    // (sharing the pair): the stub must be pardoned, not reclaimed.
    let r2 = sys.create_remote_ref(a, b).unwrap();
    assert_eq!(r, r2, "pair shared");
    sys.run_monitor(ProcId(0));
    assert!(
        sys.proc(ProcId(0)).tables.stub(r).is_some(),
        "pardoned stub survives the monitor pass"
    );
    sys.collect_to_fixpoint(10);
    assert_eq!(sys.total_live_objects(), 3, "b stays alive through r");
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn parallel_phases_are_observationally_identical() {
    // The fan-out in gc_round (LGC, snapshot, candidate scan) splits each
    // phase into parallel per-process compute and a sequential apply in
    // process-index order, so network sends, detection ids and metric
    // bumps happen in exactly the sequence the sequential code produced.
    // Same seed + same workload with the flags on and off must therefore
    // agree on *every* counter, merged and per process — not just on the
    // final object counts.
    let run = |parallel: bool| {
        let mut sys = System::new(
            4,
            GcConfig {
                parallel_snapshots: parallel,
                parallel_gc_phases: parallel,
                ..GcConfig::manual()
            },
            NetConfig::default(),
            74,
        );
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let _live = scenarios::ring(&mut sys, &procs, 3, true);
        let _dead = scenarios::ring(&mut sys, &procs, 3, false);
        let rounds = sys.collect_to_fixpoint(30);
        let per_proc: Vec<_> = procs.iter().map(|&p| *sys.metrics_for(p)).collect();
        (
            rounds,
            sys.metrics,
            per_proc,
            sys.total_live_objects(),
            sys.total_scions(),
            sys.clock(),
        )
    };
    let sequential = run(false);
    let parallel = run(true);
    assert_eq!(
        sequential, parallel,
        "parallel phases changed observable behaviour"
    );
    assert_eq!(sequential.1.safety_violations(), 0);
    assert_eq!(sequential.3, 13, "live rings + anchor survive (4*3+1)");
}

#[test]
fn sampling_leaves_the_metrics_ledgers_bit_identical() {
    // Telemetry sampling is read-only observation: with the same seed and
    // workload, runs with sampling on and off must agree on every counter,
    // merged and per process, and on the final heap state — the sampler
    // may copy gauges out of a round, never perturb one.
    use acdgc::model::SamplingConfig;
    let run = |sampling: SamplingConfig| {
        let mut sys = System::new(
            4,
            GcConfig {
                sampling,
                ..GcConfig::manual()
            },
            NetConfig::default(),
            74,
        );
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let _live = scenarios::ring(&mut sys, &procs, 3, true);
        let _dead = scenarios::ring(&mut sys, &procs, 3, false);
        let rounds = sys.collect_to_fixpoint(30);
        let per_proc: Vec<_> = procs.iter().map(|&p| *sys.metrics_for(p)).collect();
        (
            rounds,
            sys.metrics,
            per_proc,
            sys.total_live_objects(),
            sys.total_scions(),
            sys.clock(),
        )
    };
    let off = run(SamplingConfig::default());
    let on = run(SamplingConfig {
        enabled: true,
        sample_every: 1,
        capacity: 16,
    });
    assert_eq!(off, on, "sampling changed observable behaviour");
    assert_eq!(off.1.safety_violations(), 0);
    assert_eq!(off.3, 13, "live rings + anchor survive (4*3+1)");
}

#[test]
fn lamport_clocks_leave_the_metrics_ledgers_bit_identical() {
    // Causal tracing is pure observation: Lamport stamps ride on events
    // and piggyback on envelopes, but no protocol decision may read them.
    // Same seed, same workload, clocks on vs off: every counter (merged
    // and per process), the final heap state, and the simulated clock
    // must agree bit for bit.
    use acdgc::model::TraceConfig;
    let run = |trace: TraceConfig| {
        let mut sys = System::new(
            4,
            GcConfig {
                trace,
                ..GcConfig::manual()
            },
            NetConfig::default(),
            74,
        );
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let _live = scenarios::ring(&mut sys, &procs, 3, true);
        let _dead = scenarios::ring(&mut sys, &procs, 3, false);
        let rounds = sys.collect_to_fixpoint(30);
        let per_proc: Vec<_> = procs.iter().map(|&p| *sys.metrics_for(p)).collect();
        (
            rounds,
            sys.metrics,
            per_proc,
            sys.total_live_objects(),
            sys.total_scions(),
            sys.clock(),
        )
    };
    let plain = run(TraceConfig::on());
    let clocked = run(TraceConfig::causal());
    assert_eq!(
        plain, clocked,
        "lamport clocks changed observable behaviour"
    );
    assert_eq!(plain.1.safety_violations(), 0);
    assert_eq!(plain.3, 13, "live rings + anchor survive (4*3+1)");
}

#[test]
fn sampling_lamport_and_mutator_config_are_jointly_inert() {
    // Three-way parity: telemetry sampling, Lamport causal tracing, and a
    // fully-armed `MutatorConfig` flipped on *together* must leave a
    // sequential run bit-identical to the all-off run. Sampling and
    // clocks are read-only observation; the mutator config only arms
    // threads in the threaded runtime, so the sequential scheduler must
    // not so much as branch on it. Any drift in any counter means one of
    // the three leaked into protocol logic.
    use acdgc::model::{MutatorConfig, SamplingConfig, TraceConfig};
    let run = |sampling: SamplingConfig, trace: TraceConfig, mutator: MutatorConfig| {
        let mut sys = System::new(
            4,
            GcConfig {
                sampling,
                trace,
                mutator,
                ..GcConfig::manual()
            },
            NetConfig::default(),
            74,
        );
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let _live = scenarios::ring(&mut sys, &procs, 3, true);
        let _dead = scenarios::ring(&mut sys, &procs, 3, false);
        let rounds = sys.collect_to_fixpoint(30);
        let per_proc: Vec<_> = procs.iter().map(|&p| *sys.metrics_for(p)).collect();
        (
            rounds,
            sys.metrics,
            per_proc,
            sys.total_live_objects(),
            sys.total_scions(),
            sys.clock(),
        )
    };
    let off = run(
        SamplingConfig::default(),
        TraceConfig::default(),
        MutatorConfig::default(),
    );
    let all_on = run(
        SamplingConfig {
            enabled: true,
            sample_every: 1,
            capacity: 16,
        },
        TraceConfig::causal(),
        MutatorConfig {
            enabled: true,
            threads: 2,
            ops_per_thread: 500,
            ..MutatorConfig::default()
        },
    );
    assert_eq!(
        off, all_on,
        "sampling + lamport + mutator config changed sequential behaviour"
    );
    assert_eq!(off.1.safety_violations(), 0);
    assert_eq!(off.3, 13, "live rings + anchor survive (4*3+1)");
}

#[test]
fn modes_agree_under_churn() {
    // Same seed, same workload, different integration mode: final state
    // must agree (the mode changes timing, never outcomes).
    let run = |mode: IntegrationMode| -> (usize, usize) {
        let mut sys = system(mode, 73);
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let live = scenarios::ring(&mut sys, &procs, 2, true);
        let _dead = scenarios::ring(&mut sys, &procs, 2, false);
        sys.run_for(SimDuration::from_millis(15_000));
        let _ = live;
        (sys.total_live_objects(), sys.total_scions())
    };
    let vm = run(IntegrationMode::VmIntegrated);
    let weak = run(IntegrationMode::WeakRefMonitor);
    assert_eq!(vm, weak, "modes converge to identical state");
    assert_eq!(vm.0, 9, "live ring + anchor survive (4*2+1)");
}
