//! "Several detections can be performed in parallel, at any rate of
//! progress, and comprising any number of processes, without conflict"
//! (§3.1). These tests race multiple detections over shared structures in
//! the deterministic simulator (latency keeps several CDMs in flight at
//! once) and assert the claim.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn latency_net(ms: u64) -> NetConfig {
    NetConfig {
        min_latency: SimDuration::from_millis(ms),
        max_latency: SimDuration::from_millis(ms),
        ..NetConfig::default()
    }
}

/// Build a prepared ring and start a detection from *every* scion at once.
fn race_all_scions(span: usize, objs: usize) -> System {
    let mut sys = System::new(span, GcConfig::manual(), latency_net(5), 61);
    let procs: Vec<ProcId> = (0..span as u16).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, objs, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..span {
        sys.take_snapshot(ProcId(p as u16));
    }
    // One detection per ring edge, all concurrently in flight.
    for (i, &r) in ring.refs.iter().enumerate() {
        sys.initiate_detection(ProcId(i as u16), r);
    }
    assert!(sys.messages_in_flight() >= span, "all walks in flight");
    sys.drain_network();
    sys
}

#[test]
fn n_concurrent_detections_on_one_ring() {
    let sys = race_all_scions(5, 2);
    // At least one walk concluded; late arrivals found the scion gone
    // (rule 1) or concluded the same cycle again — both are safe.
    assert!(sys.metrics.cycles_detected >= 1, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
    assert_eq!(
        sys.metrics.cycles_detected + sys.metrics.detections_failed(),
        sys.metrics.detections_started,
        "every detection accounted for: {:?}",
        sys.metrics
    );
}

#[test]
fn concurrent_detections_still_unravel_everything() {
    let mut sys = race_all_scions(5, 2);
    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn detections_over_disjoint_cycles_do_not_interfere() {
    let mut sys = System::new(6, GcConfig::manual(), latency_net(3), 62);
    let left: Vec<ProcId> = (0..3).map(ProcId).collect();
    let right: Vec<ProcId> = (3..6).map(ProcId).collect();
    let ring_l = scenarios::ring(&mut sys, &left, 1, false);
    let ring_r = scenarios::ring(&mut sys, &right, 1, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.take_snapshot(ProcId(p));
    }
    sys.initiate_detection(ProcId(0), ring_l.refs[0]);
    sys.initiate_detection(ProcId(3), ring_r.refs[0]);
    sys.drain_network();
    assert_eq!(sys.metrics.cycles_detected, 2, "{:?}", sys.metrics);
    let rounds = sys.collect_to_fixpoint(15);
    assert_eq!(sys.total_live_objects(), 0, "rounds={rounds}");
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn detection_racing_the_acyclic_layer() {
    // The acyclic layer may delete the scion a CDM is travelling toward
    // (the cycle hangs off acyclic garbage being reclaimed concurrently).
    // Rule 1 absorbs the race.
    let mut sys = System::new(4, GcConfig::manual(), latency_net(10), 63);
    let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 1, false);
    // Upstream garbage chain into the ring.
    let u = sys.alloc(ProcId(3), 1);
    sys.create_remote_ref(u, ring.heads[0]).unwrap();
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    // Start the walk, then let the acyclic layer reclaim u's reference
    // while the CDM is in flight.
    sys.initiate_detection(ProcId(0), ring.refs[0]);
    for p in 0..4 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    // Whatever interleaving resulted, nothing unsafe happened...
    assert_eq!(sys.metrics.safety_violations(), 0);
    // ...and the fixpoint clears it all.
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
}

#[test]
fn repeated_detections_on_live_cycle_stay_harmless() {
    // A rooted ring probed again and again: every detection must die
    // without conclusion, forever, and the application never notices
    // (no message reaches the mutator API).
    let mut sys = System::new(4, GcConfig::manual(), latency_net(2), 64);
    let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 1, true);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    for round in 0..10 {
        for (i, &r) in ring.refs.iter().enumerate() {
            sys.initiate_detection(ProcId(i as u16), r);
        }
        sys.drain_network();
        assert_eq!(sys.metrics.cycles_detected, 0, "round {round}");
    }
    assert_eq!(sys.total_live_objects(), 5);
    assert_eq!(sys.metrics.safety_violations(), 0);
}
