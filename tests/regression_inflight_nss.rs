//! Regression: in-flight reference re-establishment vs `NewSetStubs`.
//!
//! Found by the dynamic property test (seed 687270): a reference's stub
//! dies, the reference is then re-exported, and a `NewSetStubs` built
//! *while the re-export was in flight* (so it could not know the new
//! stub) arrives after the import completes — without the
//! import-completion horizon refresh it deletes the now-live scion, and a
//! later LGC frees a reachable object. The fix refreshes the scion's
//! creation horizon when the import lands (plus incarnation guards on
//! verdict deletions). This test replays the exact failing schedule.
use acdgc::model::rng::component_rng;
use acdgc::model::{GcConfig, NetConfig, SimDuration};
use acdgc::sim::workload::{MutatorConfig, RandomMutator};
use acdgc::sim::System;

#[test]
fn inflight_reexport_survives_stale_newsetstubs() {
    let seed = 687270u64;
    let net = NetConfig {
        min_latency: SimDuration::from_micros(100),
        max_latency: SimDuration::from_micros(2_000),
        gc_drop_probability: 0.39864056530854025,
        gc_duplicate_probability: 0.1,
    };
    let mut sys = System::new(4, GcConfig::default(), net, seed);
    let mut rng = component_rng(seed, "prop-dynamic");
    let mut mutator = RandomMutator::new(MutatorConfig::default());
    for i in 0..50 {
        mutator.step(&mut sys, &mut rng);
        if i % 10 == 9 {
            sys.run_for(SimDuration::from_millis(30));
        }
        if sys.metrics.safety_violations() > 0 {
            panic!(
                "violation after op {i}: unsafe_frees={} unsafe_deletes={} cycles={} {:?}",
                sys.metrics.unsafe_frees,
                sys.metrics.unsafe_scion_deletes,
                sys.metrics.cycles_detected,
                sys.metrics
            );
        }
    }
    sys.drain_network();
    println!("after ops: violations={}", sys.metrics.safety_violations());
    sys.config_mut().candidate_age = SimDuration::ZERO;
    sys.config_mut().candidate_backoff = SimDuration::ZERO;
    sys.config_mut().eager_combine = true;
    for round in 0..40 {
        sys.gc_round();
        if sys.metrics.safety_violations() > 0 {
            panic!(
                "violation in quiesce round {round}: unsafe_frees={} unsafe_deletes={} cycles={}",
                sys.metrics.unsafe_frees,
                sys.metrics.unsafe_scion_deletes,
                sys.metrics.cycles_detected,
            );
        }
    }
    assert_eq!(sys.total_live_objects(), sys.oracle_live().len());
}
