//! Property-based tests over random graphs, random mutator schedules and
//! random network faults: the two collector properties must hold for every
//! input.
//!
//! * **Safety** — nothing live is ever reclaimed. Verified continuously by
//!   the oracle inside the simulator (`unsafe_frees` /
//!   `unsafe_scion_deletes` must stay zero) plus an invocation probe: an
//!   invocation through a live reference never lands on a missing scion.
//! * **Completeness** — after mutator quiescence and bounded GC rounds,
//!   live-object counts equal the oracle's, i.e. *all* garbage including
//!   every distributed cycle has been reclaimed.

use acdgc::model::rng::component_rng;
use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::scenarios::{random_graph, RandomGraphParams};
use acdgc::sim::workload::{MutatorConfig, RandomMutator};
use acdgc::sim::System;
use proptest::prelude::*;

fn quiesce_and_verify(mut sys: System, context: &str) {
    // Let all application traffic settle, then collect to fixpoint. The
    // candidate heuristics only affect *when* detections start; zero them
    // so the fixpoint is reached in a bounded number of manual rounds.
    sys.drain_network();
    sys.config_mut().candidate_age = SimDuration::ZERO;
    sys.config_mut().candidate_backoff = SimDuration::ZERO;
    // Try every eligible candidate each round: with a bounded per-scan cap
    // and zero backoff, scans would retry the same stalest few forever and
    // never reach the upstream-most garbage component whose verdict
    // unlocks the rest.
    sys.config_mut().max_candidates_per_scan = usize::MAX;
    // Moderate per-detection budget: eager chains are linear anyway, and
    // the per-reference rounds otherwise burn the full budget on dense
    // random garbage before their complementary eager round gets a turn.
    sys.config_mut().detection_budget = 1_024;
    // `collect_to_fixpoint` alternates the paper's per-reference walks
    // with the eager-combine extension; the two have complementary
    // completeness strengths (see DESIGN.md) and both are oracle-audited.
    sys.collect_to_fixpoint(40);
    let oracle = sys.oracle_live().len();
    let live = sys.total_live_objects();
    assert_eq!(
        live, oracle,
        "{context}: completeness — live objects must equal oracle count; {:?}",
        sys.metrics
    );
    assert_eq!(
        sys.metrics.safety_violations(),
        0,
        "{context}: safety — no live object was ever reclaimed"
    );
    assert_eq!(
        sys.metrics.invoke_on_missing_scion, 0,
        "{context}: no invocation ever hit a reclaimed scion"
    );
    sys.check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Static random graphs: build, then collect. Every unreachable
    /// structure — including arbitrary overlapping distributed cycles —
    /// must be reclaimed, and nothing else.
    #[test]
    fn random_static_graphs_collect_exactly_the_garbage(
        seed in 0u64..1_000_000,
        procs in 2usize..6,
        objs in 4usize..40,
        local_degree in 0.0f64..3.0,
        remote_degree in 0.0f64..2.0,
        root_probability in 0.0f64..0.3,
    ) {
        let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), seed);
        let mut rng = component_rng(seed, "prop-static");
        let params = RandomGraphParams {
            objects_per_proc: objs,
            local_degree,
            remote_degree,
            root_probability,
        };
        random_graph(&mut sys, &mut rng, &params);
        quiesce_and_verify(sys, "static");
    }

    /// Dynamic workloads: a random mutator interleaved with periodic GC on
    /// a lossy, reordering network, then quiescence.
    #[test]
    fn random_mutation_under_faults_is_safe_and_complete(
        seed in 0u64..1_000_000,
        procs in 2usize..5,
        ops in 50usize..250,
        drop_prob in 0.0f64..0.4,
    ) {
        let net = NetConfig {
            min_latency: SimDuration::from_micros(100),
            max_latency: SimDuration::from_micros(2_000),
            gc_drop_probability: drop_prob,
            gc_duplicate_probability: 0.1,
        };
        let mut sys = System::new(procs, GcConfig::default(), net, seed);
        let mut rng = component_rng(seed, "prop-dynamic");
        let mut mutator = RandomMutator::new(MutatorConfig::default());
        for i in 0..ops {
            mutator.step(&mut sys, &mut rng);
            if i % 10 == 9 {
                // Let time pass: GC phases and deliveries interleave with
                // the mutation.
                sys.run_for(SimDuration::from_millis(30));
            }
        }
        // Quiesce: switch to manual collection to reach the fixpoint
        // deterministically (periodic scans would also get there).
        quiesce_and_verify(sys, "dynamic");
    }

    /// Pure churn of remote references between two processes never breaks
    /// the reference-listing layer, whatever the fault pattern.
    #[test]
    fn reference_churn_is_exact(
        seed in 0u64..1_000_000,
        churn in 1usize..60,
    ) {
        let mut sys = System::new(2, GcConfig::manual(), NetConfig::instant(), seed);
        let a = sys.alloc(ProcId(0), 1);
        sys.add_root(a).unwrap();
        let mut rng = component_rng(seed, "prop-churn");
        use rand::Rng;
        let mut live_targets = Vec::new();
        for _ in 0..churn {
            if rng.gen_bool(0.6) || live_targets.is_empty() {
                let b = sys.alloc(ProcId(1), 1);
                let r = sys.create_remote_ref(a, b).unwrap();
                live_targets.push((b, r));
            } else {
                let i = rng.gen_range(0..live_targets.len());
                let (_, r) = live_targets.swap_remove(i);
                sys.drop_remote_ref(a, r).unwrap();
            }
        }
        sys.collect_to_fixpoint(10);
        prop_assert_eq!(sys.total_live_objects(), 1 + live_targets.len());
        prop_assert_eq!(sys.total_scions(), live_targets.len());
        prop_assert_eq!(sys.metrics.safety_violations(), 0);
    }
}
