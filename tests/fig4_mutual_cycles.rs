//! F4 — Figure 4, "Mutually-linked distributed cycles": reproduction of
//! the §3.1 worked example, including the extra dependency `Y_P5`, the
//! branch-equality termination of step 15, and cycle discovery at P5.
//!
//! Term mapping: `F ≙ r_df`, `V ≙ r_fv`, `K ≙ r_fk`, `T ≙ r_wt`,
//! `D ≙ r_td`, `ZB ≙ r_kzb`, `Y ≙ r_zby`.

use acdgc::dcda::{self, Cdm, MatchResult, Outcome};
use acdgc::model::{DetectionId, GcConfig, NetConfig, ProcId, RefId, SimDuration};
use acdgc::sim::{scenarios, System};

fn keys(map: &std::collections::BTreeMap<RefId, u64>) -> Vec<RefId> {
    map.keys().copied().collect()
}

fn sorted(mut v: Vec<RefId>) -> Vec<RefId> {
    v.sort();
    v
}

fn prepared() -> (System, scenarios::Fig4) {
    // The worked example of §3.1 uses the strict step 15 rule: a stale
    // derivation is terminated immediately (slack 0).
    let mut cfg = GcConfig::manual();
    cfg.nongrowth_slack = 0;
    let mut sys = System::new(6, cfg, NetConfig::instant(), 2);
    let fig = scenarios::fig4(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.take_snapshot(ProcId(p));
    }
    (sys, fig)
}

#[test]
fn algebra_trace_matches_section_3_1() {
    let (sys, fig) = prepared();
    let cfg = sys.config().clone();

    // Steps 1-3 at P2: StubsFrom(F) = {V, K} — two derivations.
    let s2 = &sys.proc(fig.p2).summary;
    assert_eq!(
        sorted(s2.scion(fig.r_df).unwrap().stubs_from.clone()),
        sorted(vec![fig.r_fv, fig.r_fk]),
        "step 1: StubsFrom(F_P2) = {{V_P5, K_P3}}"
    );
    let ic = s2.scion(fig.r_df).unwrap().ic;
    let out = dcda::initiate(
        s2,
        Cdm::initiate(DetectionId(0), fig.p2, fig.r_df, ic),
        fig.r_df,
        &cfg,
    );
    let fws = out.forwards();
    assert_eq!(fws.len(), 2, "steps 2-3: two CDM derivations");
    let alg1a = fws.iter().find(|f| f.via == fig.r_fv).unwrap();
    let alg1b = fws.iter().find(|f| f.via == fig.r_fk).unwrap();
    assert_eq!(alg1a.dest, fig.p5);
    assert_eq!(alg1b.dest, fig.p3);
    assert_eq!(keys(&alg1a.cdm.source), vec![fig.r_df]);
    assert_eq!(keys(&alg1a.cdm.target), vec![fig.r_fv]);

    // Steps 4-6 at P5: StubsFrom(V) = {T}; ScionsTo({T}) adds Y as an
    // extra dependency. Alg_2a = {{F,V,Y} -> {V,T}}, send to P4.
    let s5 = &sys.proc(fig.p5).summary;
    assert_eq!(
        s5.scion(fig.r_fv).unwrap().stubs_from,
        vec![fig.r_wt],
        "step 4: StubsFrom(V_P5) = {{T_P4}}"
    );
    assert_eq!(
        sorted(s5.stub(fig.r_wt).unwrap().scions_to.clone()),
        sorted(vec![fig.r_fv, fig.r_zby]),
        "step 5: ScionsTo({{T_P4}}) includes Y_P5"
    );
    let out = dcda::deliver(s5, alg1a.cdm.clone(), fig.r_fv, &cfg);
    let fws = out.forwards();
    assert_eq!(fws.len(), 1);
    assert_eq!(fws[0].dest, fig.p4, "step 6: send to P4");
    let alg2a = fws[0].cdm.clone();
    assert_eq!(
        keys(&alg2a.source),
        sorted(vec![fig.r_df, fig.r_fv, fig.r_zby]),
        "step 6: source = {{F, V, Y}}"
    );
    assert_eq!(
        keys(&alg2a.target),
        sorted(vec![fig.r_fv, fig.r_wt]),
        "step 6: target = {{V, T}}"
    );

    // Step 7 at P4: Alg_3a = {{F,V,Y,T} -> {V,T,D}}, send to P1.
    let out = dcda::deliver(&sys.proc(fig.p4).summary, alg2a, fig.r_wt, &cfg);
    let alg3a = out.forwards()[0].cdm.clone();
    assert_eq!(out.forwards()[0].dest, fig.p1);
    assert_eq!(
        keys(&alg3a.source),
        sorted(vec![fig.r_df, fig.r_fv, fig.r_zby, fig.r_wt])
    );
    assert_eq!(
        keys(&alg3a.target),
        sorted(vec![fig.r_fv, fig.r_wt, fig.r_td])
    );

    // Step 8 at P1: Alg_4a = {{F,V,Y,T,D} -> {V,T,D,F}}, send to P2.
    let out = dcda::deliver(&sys.proc(fig.p1).summary, alg3a, fig.r_td, &cfg);
    let alg4a = out.forwards()[0].cdm.clone();
    assert_eq!(out.forwards()[0].dest, fig.p2);
    assert_eq!(
        keys(&alg4a.target),
        sorted(vec![fig.r_fv, fig.r_wt, fig.r_td, fig.r_df])
    );

    // Steps 9-11 at P2: Matching(Alg_4a) => {{Y} -> {}}: the left cycle
    // has been traversed but an unresolved dependency on Y_P5 remains.
    match alg4a.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_zby], "step 10: {{Y_P5}} remains");
            assert!(wavefront.is_empty(), "step 10: target side fully matched");
        }
        other => panic!("step 11 expects pending, got {other:?}"),
    }

    // Steps 12-15 at P2: two derivations; the one along V equals Alg_4a
    // (no new information) and must be terminated; the one along K is
    // forwarded to P3.
    let out = dcda::deliver(&sys.proc(fig.p2).summary, alg4a, fig.r_df, &cfg);
    let fws = out.forwards();
    assert_eq!(
        fws.len(),
        1,
        "step 15: branch along V terminated, only K forwarded"
    );
    assert_eq!(fws[0].via, fig.r_fk);
    assert_eq!(fws[0].dest, fig.p3, "step 13: send Alg_5a,a to P3");
    let alg5aa = fws[0].cdm.clone();

    // Steps 16-18 at P3: Matching => {{Y} -> {K}}.
    match alg5aa.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_zby], "step 17");
            assert_eq!(wavefront, vec![fig.r_fk], "step 17");
        }
        other => panic!("step 18 expects pending, got {other:?}"),
    }

    // Steps 19-20 at P3: StubsFrom(K) = {ZB}; send Alg_6a,a to P6.
    let out = dcda::deliver(&sys.proc(fig.p3).summary, alg5aa, fig.r_fk, &cfg);
    assert_eq!(out.forwards()[0].dest, fig.p6, "step 20: send to P6");
    assert_eq!(
        out.forwards()[0].via,
        fig.r_kzb,
        "step 19: StubsFrom(K)={{ZB}}"
    );
    let alg6aa = out.forwards()[0].cdm.clone();

    // Steps 21-24 at P6: Matching => {{Y} -> {ZB}}; forward to P5 along Y.
    match alg6aa.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_zby], "step 21");
            assert_eq!(wavefront, vec![fig.r_kzb], "step 21");
        }
        other => panic!("step 22 expects pending, got {other:?}"),
    }
    let out = dcda::deliver(&sys.proc(fig.p6).summary, alg6aa, fig.r_kzb, &cfg);
    assert_eq!(
        out.forwards()[0].dest,
        fig.p5,
        "step 24: send Alg_7a,a to P5"
    );
    assert_eq!(
        out.forwards()[0].via,
        fig.r_zby,
        "step 23: StubsFrom(ZB)={{Y}}"
    );
    let alg7aa = out.forwards()[0].cdm.clone();

    // Steps 25-26 at P5: Matching(Alg_7a,a) => {{} -> {}} — cycle found.
    assert_eq!(alg7aa.matching(true), MatchResult::CycleFound, "step 25");
    let out = dcda::deliver(&sys.proc(fig.p5).summary, alg7aa, fig.r_zby, &cfg);
    let Outcome::CycleFound { delete } = out else {
        panic!("step 26 expects a cycle verdict, got {out:?}");
    };
    assert!(
        delete
            .iter()
            .any(|&(p, r, _, _)| p == fig.p5 && r == fig.r_zby),
        "step 26: cycle found at P5, Y's scion deleted"
    );
    assert_eq!(delete.len(), 7, "all seven matched references are garbage");
}

#[test]
fn detection_also_succeeds_from_the_other_derivation() {
    // §3.1 closing remark: the cycles "could have also been detected if
    // derivation Alg_1b (step 3) had been continued". Walk that branch.
    let (sys, fig) = prepared();
    let cfg = sys.config().clone();
    let s2 = &sys.proc(fig.p2).summary;
    let ic = s2.scion(fig.r_df).unwrap().ic;
    let out = dcda::initiate(
        s2,
        Cdm::initiate(DetectionId(1), fig.p2, fig.r_df, ic),
        fig.r_df,
        &cfg,
    );
    let alg1b = out
        .forwards()
        .iter()
        .find(|f| f.via == fig.r_fk)
        .unwrap()
        .cdm
        .clone();
    // P3 -> P6 -> P5 -> P4 -> P1 -> P2; at P2 the remaining V-branch goes
    // around the left cycle and eventually closes.
    let out = dcda::deliver(&sys.proc(fig.p3).summary, alg1b, fig.r_fk, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p6).summary, cdm, fig.r_kzb, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p5).summary, cdm, fig.r_zby, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    assert_eq!(out.forwards()[0].via, fig.r_wt);
    let out = dcda::deliver(&sys.proc(fig.p4).summary, cdm, fig.r_wt, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p1).summary, cdm, fig.r_td, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p2).summary, cdm, fig.r_df, &cfg);
    // Unresolved dependency on V's path: continue along r_fv only.
    let fws = out.forwards();
    assert_eq!(fws.len(), 1);
    assert_eq!(fws[0].via, fig.r_fv);
    let cdm = fws[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p5).summary, cdm, fig.r_fv, &cfg);
    let Outcome::CycleFound { delete } = out else {
        panic!("expected the mirror walk to close at P5, got {out:?}");
    };
    assert!(delete
        .iter()
        .any(|&(p, r, _, _)| p == fig.p5 && r == fig.r_fv));
}

#[test]
fn end_to_end_both_cycles_reclaimed() {
    let (mut sys, fig) = prepared();
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    assert!(sys.metrics.cycles_detected >= 1, "{:?}", sys.metrics);
    let rounds = sys.collect_to_fixpoint(25);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "everything reclaimed within {rounds} rounds; {:?}",
        sys.metrics
    );
    assert_eq!(sys.total_scions(), 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn no_new_information_rule_prevents_livelock() {
    // With branch termination ON, a full fixpoint run forwards a bounded
    // number of CDMs. (Ablation A2 shows the unbounded behaviour.)
    let (mut sys, _fig) = prepared();
    sys.collect_to_fixpoint(25);
    assert_eq!(sys.total_live_objects(), 0);
    assert!(
        sys.metrics.cdms_sent < 200,
        "bounded forwarding: {} CDMs",
        sys.metrics.cdms_sent
    );
}
