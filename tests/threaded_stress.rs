//! Stress tests for the threaded runtime: inboxes squeezed to a single
//! slot under heavy CDM fan-out, plus a seeded drop/duplicate injector on
//! every send. Together they exercise the two failure layers the runtime
//! must absorb — backpressure overflow and injected network faults — and
//! check the quiescence protocol never votes the run finished while
//! garbage is still uncollected.
//!
//! The runs execute with structured tracing enabled. On any assertion
//! failure the merged trace is dumped as JSON Lines and the artifact path
//! is printed, so a failing seed ships its own forensics. Setting
//! `ACDGC_TRACE_ARTIFACT=<dir>` exports the trace even on success (and
//! round-trips every line through the vendored JSON parser) — scripts/ci.sh
//! uses this to gate the JSONL schema.

use acdgc::model::{
    GcConfig, NetConfig, ProcId, SamplingConfig, SimDuration, TraceConfig, WatchdogConfig,
};
use acdgc::obs::{HealthReport, Sample, Trace};
use acdgc::sim::{scenarios, threaded, Process, System, ThreadedOptions};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Tight retry pacing: threaded `SimTime` ticks are wall-clock
/// microseconds, so failed detections are re-initiated within hundreds of
/// microseconds and the exponential backoff caps at 5ms. Causal tracing is
/// on (events Lamport-stamped, clocks piggybacked on every channel send)
/// so every failure comes with a forensic artifact carrying a sound
/// happens-before order — and so the CI artifact exercises `--check`'s
/// causal gate and the `--perfetto` export.
fn stress_cfg(channel_capacity: usize) -> GcConfig {
    GcConfig {
        candidate_backoff: SimDuration::from_micros(300),
        candidate_backoff_max: SimDuration::from_millis(5),
        channel_capacity,
        trace: TraceConfig::causal(),
        // Time-series telemetry rides in the same artifact: the monitor
        // thread samples every poll into small rings, so long stress runs
        // exercise decimation and `--check`'s sample validation for free.
        sampling: SamplingConfig {
            enabled: true,
            sample_every: 1,
            capacity: 64,
        },
        // Tight monitor poll so even a fast run yields a dense series.
        watchdog: WatchdogConfig {
            poll_every: SimDuration::from_millis(2),
            ..WatchdogConfig::default()
        },
        ..GcConfig::manual()
    }
}

/// Dump the merged trace of `procs` under `name` and return the path.
/// Artifacts go to `$ACDGC_TRACE_ARTIFACT` when set, else to
/// `target/trace-artifacts/`.
fn dump_trace(
    procs: &[Process],
    health: &[HealthReport],
    samples: &[(Sample, usize)],
    name: &str,
) -> PathBuf {
    let dir = std::env::var_os("ACDGC_TRACE_ARTIFACT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("trace-artifacts"));
    let path = dir.join(format!("{name}.jsonl"));
    let trace = Trace::collect(procs.iter().map(|p| &p.obs))
        .with_runtime("threaded")
        .with_samples(samples.to_vec());
    trace.dump_jsonl(&path).expect("write trace artifact");
    // Watchdog health reports ride in the same artifact so `acdgc-report`
    // can render run health next to the event timeline.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen trace artifact");
    for report in health {
        let line = serde_json::to_string(&report.to_json()).expect("serialize health report");
        writeln!(f, "{line}").expect("append health report");
    }
    path
}

/// Assert `cond`; on failure dump the trace first so the panic message
/// carries the artifact path.
macro_rules! check {
    ($run:expr, $name:expr, $cond:expr, $($msg:tt)+) => {
        if !$cond {
            let path = dump_trace(&$run.procs, &$run.health, &$run.samples, $name);
            panic!("{} — trace kept at {}", format!($($msg)+), path.display());
        }
    };
}

/// When `ACDGC_TRACE_ARTIFACT` is set, export the trace on success too and
/// verify the JSONL schema round-trips through the JSON parser.
fn export_and_verify_jsonl(
    procs: &[Process],
    health: &[HealthReport],
    samples: &[(Sample, usize)],
    name: &str,
) {
    if std::env::var_os("ACDGC_TRACE_ARTIFACT").is_none() {
        return;
    }
    let path = dump_trace(procs, health, samples, name);
    let text = std::fs::read_to_string(&path).expect("read back trace artifact");
    let mut lines = 0usize;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap_or_else(|e| {
            panic!("unparseable JSONL line in {}: {e}: {line}", path.display())
        });
        let has_type = matches!(&v, serde_json::Value::Object(m) if m.get("type").is_some());
        assert!(
            has_type,
            "every trace line carries a type discriminant: {line}"
        );
        lines += 1;
    }
    assert!(
        lines >= 2,
        "artifact has a meta line and at least one event"
    );
    println!(
        "[trace artifact verified: {} ({lines} lines)]",
        path.display()
    );
}

/// `rings` interlocking all-garbage cycles across `procs` processes. Each
/// ring visits the processes in a different rotation and direction, so
/// every process owns scions from several independent cycles and every
/// detection walk crosses every process — maximal CDM fan-out.
fn build_mesh(procs: usize, rings: usize, objs: usize, seed: u64) -> System {
    let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), seed);
    let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
    for r in 0..rings {
        let mut order = ids.clone();
        order.rotate_left(r % procs);
        if r % 2 == 1 {
            order.reverse();
        }
        scenarios::ring(&mut sys, &order, objs, false);
    }
    assert!(sys.oracle_live().is_empty(), "mesh must be all garbage");
    sys
}

#[test]
fn capacity_one_mesh_collects_despite_overflow_and_faults() {
    let sys = build_mesh(8, 4, 2, 7);
    assert_eq!(sys.total_live_objects(), 64);
    let net = NetConfig {
        gc_drop_probability: 0.15,
        gc_duplicate_probability: 0.05,
        ..NetConfig::instant()
    };
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        stress_cfg(1),
        ThreadedOptions {
            net,
            seed: 7,
            deadline: Duration::from_secs(60),
            ..ThreadedOptions::default()
        },
    );
    let stats = &run.stats;
    let name = "capacity_one_mesh";
    let live: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
    check!(
        run,
        name,
        live == 0,
        "all garbage reclaimed despite capacity-1 inboxes: live={live} cdms_dropped={} nss_dropped={}",
        stats.cdms_dropped.load(Ordering::Relaxed),
        stats.nss_dropped.load(Ordering::Relaxed)
    );
    check!(
        run,
        name,
        stats.quiescent(),
        "run must end via quiescence votes, not the deadline backstop"
    );
    // The point of the stress: losses really happened and were absorbed.
    check!(
        run,
        name,
        stats.nss_dropped.load(Ordering::Relaxed) > 0,
        "capacity-1 inboxes under an 8-proc NSS barrage must overflow"
    );
    check!(
        run,
        name,
        stats.cdms_dropped.load(Ordering::Relaxed) > 0,
        "15% injected drop over ring-spanning CDM walks must lose some"
    );
    // The watchdog always closes a run with one terminal report.
    let terminal = run.health.last().expect("terminal health report");
    assert_eq!(terminal.reason, acdgc::obs::HealthReason::Quiescent);
    assert!(terminal.stalled().is_empty(), "no worker stalled");
    export_and_verify_jsonl(&run.procs, &run.health, &run.samples, name);
}

#[test]
fn quiescence_is_never_premature_across_seed_matrix() {
    let mut total_retries = 0u64;
    let mut total_faults = 0u64;
    for seed in [11u64, 23, 47, 89, 131] {
        let sys = build_mesh(8, 3, 2, seed);
        let expected = sys.total_live_objects();
        let net = NetConfig {
            gc_drop_probability: 0.3,
            gc_duplicate_probability: 0.1,
            ..NetConfig::instant()
        };
        let run = threaded::run_concurrent_collection_observed(
            sys.into_procs(),
            stress_cfg(1),
            ThreadedOptions {
                net,
                seed,
                deadline: Duration::from_secs(60),
                ..ThreadedOptions::default()
            },
        );
        let stats = &run.stats;
        let name = format!("seed_matrix_{seed}");
        let live: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
        check!(
            run,
            &name,
            stats.quiescent(),
            "seed {seed}: heavy loss may delay quiescence but must not prevent it"
        );
        check!(
            run,
            &name,
            live == 0,
            "seed {seed}: quiescence declared with {live}/{expected} objects \
             still uncollected — the vote fired before drop-delayed work finished"
        );
        check!(
            run,
            &name,
            stats.votes_cast.load(Ordering::Relaxed) >= 8,
            "seed {seed}: a quiescent stop needs every worker's vote"
        );
        total_retries += stats.nss_retries.load(Ordering::Relaxed);
        total_faults += stats.faults_injected.load(Ordering::Relaxed);
        if seed == 11 {
            export_and_verify_jsonl(&run.procs, &run.health, &run.samples, &name);
        }
    }
    // Across the whole matrix the fault model must actually have fired and
    // the retry machinery must actually have recovered lost NSS traffic.
    assert!(total_faults > 0, "seeded injector never dropped a message");
    assert!(
        total_retries > 0,
        "30% loss across 5 runs without a single NSS retransmission"
    );
}

/// Retries never violate causal order: under 30% drop every lost CDM is
/// re-initiated and every unacked NSS retransmitted, yet the merged trace
/// must still satisfy both Lamport invariants — per-process stamps
/// strictly increase in merge order, and every delivery stamps above its
/// matching send. A retry that reused a stale clock, or a tail flush that
/// reordered buffered events past direct records, would fail here.
#[test]
fn heavy_drop_retries_never_violate_causal_order() {
    let sys = build_mesh(6, 3, 2, 47);
    let net = NetConfig {
        gc_drop_probability: 0.3,
        gc_duplicate_probability: 0.1,
        ..NetConfig::instant()
    };
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        stress_cfg(1),
        ThreadedOptions {
            net,
            seed: 47,
            deadline: Duration::from_secs(60),
            ..ThreadedOptions::default()
        },
    );
    let name = "heavy_drop_causal";
    let live: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
    check!(run, name, live == 0, "garbage must still be collected");
    check!(
        run,
        name,
        run.stats.faults_injected.load(Ordering::Relaxed) > 0,
        "a 30% injector over a 6-proc mesh must drop something"
    );

    let trace = Trace::collect(run.procs.iter().map(|p| &p.obs)).with_runtime("threaded");
    check!(
        run,
        name,
        trace.events.iter().any(|r| r.lamport > 0),
        "causal tracing must stamp events"
    );
    // Both invariants are truncation-stable, so this holds even if the
    // rings overwrote early events.
    let causal = acdgc::obs::check_causal(&trace);
    check!(
        run,
        name,
        causal.is_empty(),
        "retries/duplicates broke happens-before: {causal:?}"
    );
    // On a complete trace, every reconstructed detection path must also
    // show strictly increasing stamps hop by hop (the cross-process
    // generalization of check_hops_increase).
    if trace.overwritten == 0 {
        for id in trace.detection_ids() {
            let path = trace.detection(id);
            if let Err(e) = path.check_lamport_increases() {
                let p = dump_trace(&run.procs, &run.health, &run.samples, name);
                panic!("{e}\n{}\n— trace kept at {}", path.render(), p.display());
            }
        }
    }
}
