//! Detection-lifecycle forensics over the `acdgc-obs` tracing subsystem:
//! the Figure 4 acceptance walk (a detected cycle's full cross-process CDM
//! path must be reconstructable from the trace alone), the lifecycle
//! balance invariants as properties over random garbage graphs, and
//! sequential/threaded parity of the per-process metrics ledgers.

use acdgc::model::{
    DetectionId, GcConfig, NetConfig, ProcId, SimDuration, TraceConfig, TraceFilter,
};
use acdgc::obs::{Event, Trace};
use acdgc::sim::scenarios::{self, random_graph, RandomGraphParams};
use acdgc::sim::{merged_metrics, threaded, Metrics, System};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn traced_manual() -> GcConfig {
    GcConfig {
        trace: TraceConfig::on(),
        ..GcConfig::manual()
    }
}

fn fig4_prepared(cfg: GcConfig) -> (System, scenarios::Fig4) {
    let mut sys = System::new(6, cfg, NetConfig::instant(), 2);
    let fig = scenarios::fig4(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.take_snapshot(ProcId(p));
    }
    (sys, fig)
}

/// The lifecycle ledger of one fully-drained detection under a reliable
/// network: every CDM announced by a forward step was sent, every sent CDM
/// was delivered, and every processing step (the initiation plus one per
/// delivery) ended in exactly one of {forward, terminal}.
fn assert_balanced(trace: &Trace, id: DetectionId, context: &str) {
    let path = trace.detection(id);
    let b = path.balance();
    assert!(b.started, "{context}: {id} has no DetectionStarted");
    assert_eq!(b.delivered, b.sent, "{context}: {id} lost CDMs in flight");
    assert_eq!(
        b.branches, b.sent,
        "{context}: {id} forward steps announced {} branches but {} CdmSent events exist",
        b.branches, b.sent
    );
    assert_eq!(
        b.terminals + b.forward_steps,
        1 + b.delivered,
        "{context}: {id} processing steps must each forward or terminate exactly once \
         (terminals={} forwards={} delivered={})",
        b.terminals,
        b.forward_steps,
        b.delivered
    );
    path.check_hops_increase()
        .unwrap_or_else(|e| panic!("{context}: {e}\n{}", path.render()));
}

// -------------------------------------------------------------------------
// Acceptance: Figure 4 forensics.
// -------------------------------------------------------------------------

#[test]
fn fig4_trace_reconstructs_full_cdm_paths() {
    let (mut sys, fig) = fig4_prepared(GcConfig {
        nongrowth_slack: 0,
        ..traced_manual()
    });
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();

    let trace = sys.trace();
    assert_eq!(trace.overwritten, 0, "default capacity must not overwrite");
    let cycles = trace.detected_cycles();
    assert!(
        !cycles.is_empty(),
        "the fig4 walk finds at least one cycle: {:?}",
        sys.metrics
    );
    for id in trace.detection_ids() {
        assert_balanced(&trace, id, "fig4");
    }
    // The §3.1 worked walk: initiated at P2, the winning derivation hops
    // P2 → P5 → P4 → P1 → P2 → P3 → P6 → P5 and concludes there — the
    // reconstructed path must cross all six processes in that order.
    let winning = cycles
        .iter()
        .map(|&id| trace.detection(id))
        .find(|p| p.procs().len() == 6)
        .expect("a cycle-finding walk that crossed every process");
    assert_eq!(winning.initiator(), Some(fig.p2));
    assert!(winning.found_cycle());
    let rendered = winning.render();
    assert!(
        rendered.contains("=> cycle(") && rendered.contains("-->"),
        "rendered path shows hops and the verdict: {rendered}"
    );
    // Phase clocks ran: each of the six snapshots timed its summarizer
    // pass, and every CDM processing step fed the handling histogram.
    let phases = trace.merged_phases();
    let summarize = phases.get(acdgc::obs::Phase::SummarizeEngine).count()
        + phases.get(acdgc::obs::Phase::SummarizeReference).count();
    assert!(summarize >= 6, "six snapshots time their summarizer");
    assert!(phases.get(acdgc::obs::Phase::CdmHandling).count() >= 1);
}

#[test]
fn fig4_scion_deletions_follow_the_verdict() {
    let (mut sys, fig) = fig4_prepared(traced_manual());
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    sys.collect_to_fixpoint(25);
    assert_eq!(sys.total_live_objects(), 0);

    let trace = sys.trace();
    let deletions = trace
        .events
        .iter()
        .filter(|r| matches!(r.event, Event::ScionDeleted { .. }))
        .count() as u64;
    assert_eq!(
        deletions, sys.metrics.scions_deleted_by_dcda,
        "every DCDA deletion leaves a ScionDeleted event"
    );
    assert!(deletions >= 7, "fig4 deletes the seven cycle references");
}

// -------------------------------------------------------------------------
// Satellite: disabled tracing records nothing, metrics still flow.
// -------------------------------------------------------------------------

#[test]
fn disabled_trace_records_nothing_but_metrics_flow() {
    let (mut sys, fig) = fig4_prepared(GcConfig::manual());
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    assert!(sys.metrics.cycles_detected >= 1);
    let trace = sys.trace();
    assert!(
        trace.events.is_empty(),
        "disabled tracing buffers no events"
    );
    assert_eq!(trace.merged_phases().total_count(), 0);
}

#[test]
fn tiny_ring_capacity_truncates_and_reports() {
    let cfg = GcConfig {
        trace: TraceConfig {
            enabled: true,
            capacity: 4,
            ..TraceConfig::default()
        },
        ..GcConfig::manual()
    };
    let (mut sys, fig) = fig4_prepared(cfg);
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    let trace = sys.trace();
    assert!(trace.events.len() <= 6 * 4);
    assert!(
        trace.overwritten > 0,
        "a 4-event ring under the fig4 walk must overwrite"
    );
}

#[test]
fn filtered_trace_suppresses_families_but_histograms_still_feed() {
    let cfg = GcConfig {
        trace: TraceConfig {
            enabled: true,
            filter: TraceFilter {
                detections: true,
                nss: false,
                phases: false,
                quiescence: false,
                mutator: false,
            },
            ..TraceConfig::on()
        },
        ..GcConfig::manual()
    };
    let (mut sys, fig) = fig4_prepared(cfg);
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    sys.collect_to_fixpoint(25);

    let trace = sys.trace();
    // Suppressed families never reach the ring...
    assert!(
        trace.events.iter().all(|r| !matches!(
            r.event,
            Event::NssSent { .. }
                | Event::NssApplied { .. }
                | Event::NssAcked { .. }
                | Event::PhaseStarted { .. }
                | Event::PhaseEnded { .. }
                | Event::VoteCast { .. }
                | Event::VoteRescinded { .. }
        )),
        "filtered families must be suppressed before entering the ring"
    );
    // ...while the detections family passes whole: balanced paths and the
    // cycle verdict are still fully reconstructable.
    let cycles = trace.detected_cycles();
    assert!(!cycles.is_empty(), "detections family still records");
    for id in trace.detection_ids() {
        assert_balanced(&trace, id, "filtered fig4");
    }
    // Phase histograms sit beside the ring and keep feeding even though
    // PhaseStarted/PhaseEnded events were filtered out.
    let phases = trace.merged_phases();
    assert!(
        phases.total_count() > 0,
        "phase histograms must keep feeding under an event filter"
    );
    assert!(phases.get(acdgc::obs::Phase::CdmHandling).count() >= 1);
}

// -------------------------------------------------------------------------
// Satellite: per-process metrics attribution.
// -------------------------------------------------------------------------

#[test]
fn per_process_metrics_sum_to_the_merged_ledger() {
    let (mut sys, fig) = fig4_prepared(GcConfig::manual());
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    sys.collect_to_fixpoint(25);

    let mut summed = Metrics::default();
    for p in 0..6 {
        summed.absorb(sys.metrics_for(ProcId(p)));
    }
    assert_eq!(
        summed, sys.metrics,
        "every counter bump must be attributed to exactly one process"
    );
    // Attribution is meaningful: the initiator alone started detections
    // from r_df, and the walk delivered CDMs to several other processes.
    assert!(sys.metrics_for(fig.p2).detections_started >= 1);
    let receiving = (0..6)
        .filter(|&p| sys.metrics_for(ProcId(p)).cdms_delivered > 0)
        .count();
    assert!(receiving >= 2, "CDM deliveries span processes: {receiving}");
}

// -------------------------------------------------------------------------
// Properties: lifecycle invariants over random garbage graphs.
// -------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// For every detection the trace ever saw: the balance ledger closes
    /// (each processing step forwards xor terminates; every DetectionStarted
    /// is closed by its branches' terminal events) and hops strictly
    /// increase along every reconstructed path.
    #[test]
    fn detection_lifecycle_invariants_hold_on_random_graphs(
        seed in 0u64..1_000_000,
        procs in 2usize..6,
        objs in 4usize..24,
        remote_degree in 0.2f64..2.0,
    ) {
        let mut sys = System::new(procs, traced_manual(), NetConfig::instant(), seed);
        let mut rng = acdgc::model::rng::component_rng(seed, "trace-prop");
        random_graph(&mut sys, &mut rng, &RandomGraphParams {
            objects_per_proc: objs,
            local_degree: 1.5,
            remote_degree,
            root_probability: 0.2,
        });
        sys.config_mut().candidate_age = SimDuration::ZERO;
        sys.config_mut().candidate_backoff = SimDuration::ZERO;
        sys.collect_to_fixpoint(15);

        let trace = sys.trace();
        prop_assume!(trace.overwritten == 0);
        let ids = trace.detection_ids();
        prop_assert_eq!(ids.len() as u64, sys.metrics.detections_started,
            "one DetectionStarted per initiation");
        for id in ids {
            assert_balanced(&trace, id, "random graph");
        }
    }

    /// Cross-process generalization of `check_hops_increase`: with causal
    /// tracing on, Lamport stamps strictly increase along every
    /// reconstructed `DetectionPath` — each process's steps tick its own
    /// clock, and every cross-process delivery witnesses the piggybacked
    /// send stamp, so no hop can appear to precede its cause. The merged
    /// trace must also pass the global causal check.
    #[test]
    fn lamport_stamps_increase_along_every_detection_path(
        seed in 0u64..1_000_000,
        procs in 2usize..6,
        objs in 4usize..24,
        remote_degree in 0.2f64..2.0,
    ) {
        let cfg = GcConfig {
            trace: TraceConfig::causal(),
            ..GcConfig::manual()
        };
        let mut sys = System::new(procs, cfg, NetConfig::instant(), seed);
        let mut rng = acdgc::model::rng::component_rng(seed, "lamport-prop");
        random_graph(&mut sys, &mut rng, &RandomGraphParams {
            objects_per_proc: objs,
            local_degree: 1.5,
            remote_degree,
            root_probability: 0.2,
        });
        sys.config_mut().candidate_age = SimDuration::ZERO;
        sys.config_mut().candidate_backoff = SimDuration::ZERO;
        sys.collect_to_fixpoint(15);

        let trace = sys.trace();
        prop_assume!(trace.overwritten == 0);
        prop_assert!(trace.events.iter().all(|r| r.lamport > 0),
            "causal tracing stamps every surviving event");
        let causal = acdgc::obs::check_causal(&trace);
        prop_assert!(causal.is_empty(), "global causal check: {:?}", causal);
        for id in trace.detection_ids() {
            let path = trace.detection(id);
            path.check_lamport_increases()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", path.render()));
        }
    }
}

// -------------------------------------------------------------------------
// Satellite: threaded runtime parity (events + merged per-process ledger).
// -------------------------------------------------------------------------

#[test]
fn threaded_trace_and_metrics_parity() {
    let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 9);
    let ids: Vec<ProcId> = (0..4).map(ProcId).collect();
    scenarios::ring(&mut sys, &ids, 2, false);
    assert!(sys.oracle_live().is_empty());

    let procs = sys.into_procs();
    let before = merged_metrics(&procs);
    let cfg = GcConfig {
        trace: TraceConfig::on(),
        candidate_backoff: SimDuration::from_micros(300),
        candidate_backoff_max: SimDuration::from_millis(5),
        ..GcConfig::manual()
    };
    let (procs, stats) = threaded::run_concurrent_collection(procs, cfg, Duration::from_secs(30));
    let live: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();
    assert_eq!(live, 0);
    assert!(stats.quiescent());

    // The per-process ledgers, merged, must agree with the legacy shared
    // atomics on every counter both report.
    let m = merged_metrics(&procs).since(&before);
    let s = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    assert_eq!(m.lgc_runs, s(&stats.lgc_runs));
    assert_eq!(m.objects_reclaimed, s(&stats.objects_reclaimed));
    assert_eq!(m.snapshots, s(&stats.snapshots));
    assert_eq!(m.cdms_sent, s(&stats.cdms_sent));
    assert_eq!(m.cycles_detected, s(&stats.cycles_detected));
    assert_eq!(m.scions_deleted_by_dcda, s(&stats.scions_deleted));
    assert_eq!(m.nss_retries, s(&stats.nss_retries));
    assert_eq!(m.votes_cast, s(&stats.votes_cast));
    assert_eq!(m.votes_rescinded, s(&stats.votes_rescinded));
    assert_eq!(m.faults_injected, 0);
    assert!(m.cycles_detected >= 1);

    // The trace saw the same story: every worker's vote is an event, the
    // cycle verdicts are events, and the detection paths are balanced
    // (reliable transport + final drains mean no CDM vanished).
    let trace = Trace::collect(procs.iter().map(|p| &p.obs));
    let votes = trace
        .events
        .iter()
        .filter(|r| matches!(r.event, Event::VoteCast { .. }))
        .count() as u64;
    assert_eq!(votes, s(&stats.votes_cast));
    assert_eq!(trace.detected_cycles().len() as u64, m.cycles_detected);
    if trace.overwritten == 0 {
        for id in trace.detection_ids() {
            let path = trace.detection(id);
            path.check_hops_increase()
                .unwrap_or_else(|e| panic!("{e}\n{}", path.render()));
        }
    }
}
