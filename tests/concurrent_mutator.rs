//! Concurrent-mutator stress matrix for the threaded runtime: seeded
//! mutator threads allocate, export, invoke and drop references *while*
//! the collector workers sweep, through the same per-process locks.
//!
//! Ground truth comes from the shadow-replay oracle: the pre-run object
//! graph is captured into a [`ShadowGraph`], the run's serialized
//! mutation log is replayed onto it, and the resulting reachable set is
//! compared object-for-object against the final heaps. That checks both
//! directions at once —
//!
//! * **safety**: no live object (by the mutated graph) was ever deleted,
//!   and no scion of a mutator-held reference vanished (the
//!   `mutator_missing_scions` counter is a tripwire wired into the pin
//!   handshake itself);
//! * **completeness**: every object the mutated graph proves dead —
//!   including distributed cycles the mutator built and then severed —
//!   is reclaimed before the quiescence barrier closes.
//!
//! The matrix crosses drop-heavy op mixes (≥30% of operations destroy
//! structure) with mutation pacing (flat-out and rate-paced), under both
//! a clean network and an injected-fault one. Causal tracing is on, so a
//! failing seed ships a forensic artifact, and every passing run gates
//! the Lamport discipline: mutator events share the workers' per-process
//! clocks and must not break happens-before.

use acdgc::model::{
    GcConfig, MutatorConfig, NetConfig, ProcId, SamplingConfig, SimDuration, TraceConfig,
    WatchdogConfig,
};
use acdgc::obs::{HealthReport, Sample, Trace};
use acdgc::sim::{global_live_procs, scenarios, threaded, Process, ShadowGraph, System};
use acdgc::sim::{ThreadedOptions, ThreadedRun};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Threaded config tuned like the stress suite (tight backoff, causal
/// tracing, telemetry sampling) with the concurrent mutator switched on.
fn mutator_cfg(mutator: MutatorConfig) -> GcConfig {
    GcConfig {
        candidate_backoff: SimDuration::from_micros(300),
        candidate_backoff_max: SimDuration::from_millis(5),
        trace: TraceConfig::causal(),
        sampling: SamplingConfig {
            enabled: true,
            sample_every: 1,
            capacity: 64,
        },
        watchdog: WatchdogConfig {
            poll_every: SimDuration::from_millis(2),
            ..WatchdogConfig::default()
        },
        mutator,
        ..GcConfig::manual()
    }
}

/// Mixed topology: live structure the collector must preserve plus
/// all-garbage cycles it must reclaim, before the mutator adds its own.
fn build_mixed(procs: usize, seed: u64) -> System {
    let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), seed);
    let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
    // Two interlocking garbage rings (opposite orientations)...
    scenarios::ring(&mut sys, &ids, 2, false);
    let mut rev = ids.clone();
    rev.reverse();
    scenarios::ring(&mut sys, &rev, 2, false);
    // ...and one anchored ring that must survive the whole run.
    scenarios::ring(&mut sys, &ids, 2, true);
    sys
}

fn dump_trace(
    procs: &[Process],
    health: &[HealthReport],
    samples: &[(Sample, usize)],
    name: &str,
) -> PathBuf {
    let dir = std::env::var_os("ACDGC_TRACE_ARTIFACT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("trace-artifacts"));
    let path = dir.join(format!("{name}.jsonl"));
    let trace = Trace::collect(procs.iter().map(|p| &p.obs))
        .with_runtime("threaded")
        .with_samples(samples.to_vec());
    trace.dump_jsonl(&path).expect("write trace artifact");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen trace artifact");
    for report in health {
        let line = serde_json::to_string(&report.to_json()).expect("serialize health report");
        writeln!(f, "{line}").expect("append health report");
    }
    path
}

macro_rules! check {
    ($run:expr, $name:expr, $cond:expr, $($msg:tt)+) => {
        if !$cond {
            let path = dump_trace(&$run.procs, &$run.health, &$run.samples, $name);
            panic!("{} — trace kept at {}", format!($($msg)+), path.display());
        }
    };
}

/// Run one matrix cell and assert safety, completeness, quiescent
/// termination, and causal cleanliness against the shadow oracle.
fn run_cell(name: &str, seed: u64, mutator: MutatorConfig, net: NetConfig) -> ThreadedRun {
    let sys = build_mixed(6, seed);
    let procs = sys.into_procs();
    let mut shadow = ShadowGraph::shadow_of(&procs);

    let run = threaded::run_concurrent_collection_observed(
        procs,
        mutator_cfg(mutator),
        ThreadedOptions {
            net,
            seed,
            deadline: Duration::from_secs(60),
            ..ThreadedOptions::default()
        },
    );

    // Terminated by the vote barrier, not the wall-clock backstop: the
    // barrier may not close while the mutator is still running (drained
    // mutators are a precondition) nor while its garbage is uncollected.
    check!(
        run,
        name,
        run.stats.quiescent(),
        "{name}: run must end quiescent, not by deadline"
    );

    // Safety tripwire wired into the mutator itself: a pin or invoke that
    // found its scion missing means the collector deleted a live
    // reference out from under a running mutator.
    let missing = run.stats.mutator_missing_scions.load(Ordering::Relaxed);
    check!(
        run,
        name,
        missing == 0,
        "{name}: {missing} live scion(s) vanished under the mutator"
    );

    // Shadow replay: pre-run graph + serialized mutation log = ground
    // truth for the final heaps.
    shadow.apply_log(&run.mutation_log);
    let expected = shadow.live();
    for &obj in &expected {
        check!(
            run,
            name,
            run.procs[obj.proc.index()].heap.contains(obj),
            "{name}: live object {obj:?} was deleted (safety violation)"
        );
    }
    let live_total: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
    check!(
        run,
        name,
        live_total == expected.len(),
        "{name}: {live_total} objects survive but the mutated graph proves \
         {} live — garbage outlived quiescence",
        expected.len()
    );
    let actual = global_live_procs(&run.procs);
    check!(
        run,
        name,
        actual == expected,
        "{name}: final reachable set diverged from shadow replay"
    );

    // The mutator must actually have run and destroyed structure.
    let m = threaded::merged_metrics(&run.procs);
    check!(
        run,
        name,
        m.mutator_ops() > 0 && run.stats.mutator_ops.load(Ordering::Relaxed) > 0,
        "{name}: mutator never performed an operation"
    );
    check!(
        run,
        name,
        m.mutator_ref_drops + m.mutator_root_drops > 0,
        "{name}: drop-heavy mix produced no drops"
    );

    // Causal cleanliness: mutator events tick the same per-process
    // Lamport clocks as the collector; happens-before must survive.
    let trace = Trace::collect(run.procs.iter().map(|p| &p.obs)).with_runtime("threaded");
    check!(
        run,
        name,
        trace.events.iter().any(|r| r.lamport > 0),
        "{name}: causal tracing must stamp events"
    );
    let causal = acdgc::obs::check_causal(&trace);
    check!(
        run,
        name,
        causal.is_empty(),
        "{name}: mutator broke happens-before: {causal:?}"
    );
    run
}

/// 30%-drop mix, flat out (no pacing): maximal mutator/collector
/// interleaving pressure.
fn drop30_flat() -> MutatorConfig {
    MutatorConfig {
        enabled: true,
        threads: 2,
        ops_per_thread: 250,
        pace: SimDuration::ZERO,
        allocate_weight: 2,
        export_weight: 3,
        invoke_weight: 2,
        drop_weight: 3,
    }
}

/// 40%-drop mix, rate-paced: slower churn, longer windows for NSS and
/// detections to race half-built structure.
fn drop40_paced() -> MutatorConfig {
    MutatorConfig {
        enabled: true,
        threads: 2,
        ops_per_thread: 150,
        pace: SimDuration::from_micros(25),
        allocate_weight: 2,
        export_weight: 2,
        invoke_weight: 2,
        drop_weight: 4,
    }
}

#[test]
fn mutator_matrix_clean_network() {
    for seed in [3u64, 17, 71] {
        for (mix, mix_name) in [(drop30_flat(), "drop30"), (drop40_paced(), "drop40")] {
            let name = format!("mutator_{mix_name}_seed{seed}");
            run_cell(&name, seed, mix, NetConfig::instant());
        }
    }
}

#[test]
fn mutator_matrix_with_injected_faults() {
    // Collector traffic dropped and duplicated while the mutator churns:
    // NSS retry and CDM re-initiation must still converge to the mutated
    // graph's truth, and the quiescence barrier must still hold off until
    // they have.
    let net = NetConfig {
        gc_drop_probability: 0.15,
        gc_duplicate_probability: 0.05,
        ..NetConfig::instant()
    };
    for seed in [29u64, 53] {
        let name = format!("mutator_faults_seed{seed}");
        let run = run_cell(&name, seed, drop30_flat(), net.clone());
        check!(
            run,
            &name,
            run.stats.faults_injected.load(Ordering::Relaxed) > 0,
            "{name}: fault injector never fired"
        );
    }
}

#[test]
fn mutator_trace_carries_ops_and_gauges() {
    let run = run_cell(
        "mutator_trace_probe",
        101,
        drop30_flat(),
        NetConfig::instant(),
    );
    // MutatorOp events landed in the merged trace, Lamport-stamped.
    let trace = Trace::collect(run.procs.iter().map(|p| &p.obs)).with_runtime("threaded");
    let mutator_events = trace
        .events
        .iter()
        .filter(|r| r.event.kind() == "mutator_op")
        .count();
    check!(
        run,
        "mutator_trace_probe",
        mutator_events > 0,
        "mutator ops must be traced ({mutator_events} found)"
    );
    // The time-series sampler picked up the mutator counter.
    let saw_mutator_ops = run
        .samples
        .iter()
        .any(|(s, _)| s.proc.is_none() && s.mutator_ops > 0);
    check!(
        run,
        "mutator_trace_probe",
        saw_mutator_ops,
        "global samples must carry the mutator_ops counter"
    );
}
