//! Fault tolerance: the paper claims the DGC stack tolerates message loss
//! (and, with reference-listing sequence numbers, reordering and
//! duplication). These tests inject heavy faults and assert both collector
//! properties still hold.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn faulty_net(drop: f64, dup: f64) -> NetConfig {
    NetConfig {
        min_latency: SimDuration::from_micros(100),
        max_latency: SimDuration::from_micros(5_000), // wide band: reordering
        gc_drop_probability: drop,
        gc_duplicate_probability: dup,
    }
}

#[test]
fn heavy_loss_duplication_and_reordering() {
    let mut sys = System::new(5, GcConfig::default(), faulty_net(0.3, 0.2), 77);
    let ids: Vec<ProcId> = (0..5).map(ProcId).collect();
    let dead = scenarios::ring(&mut sys, &ids, 2, false);
    let live = scenarios::ring(&mut sys, &ids, 2, true);
    sys.run_for(SimDuration::from_millis(20_000));
    assert_eq!(
        sys.total_live_objects(),
        11,
        "dead ring collected, live ring + anchor intact: {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
    assert!(sys.net_stats().dropped > 0 && sys.net_stats().duplicated > 0);
    sys.check_invariants().unwrap();
    let _ = (dead, live);
}

#[test]
fn extreme_loss_only_delays_reclamation() {
    // 70% of GC messages dropped: progress is slow but monotone.
    let mut sys = System::new(3, GcConfig::default(), faulty_net(0.7, 0.0), 5);
    let ids: Vec<ProcId> = (0..3).map(ProcId).collect();
    let _ring = scenarios::ring(&mut sys, &ids, 1, false);
    sys.run_for(SimDuration::from_millis(60_000));
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn total_partition_then_heal() {
    let mut sys = System::new(4, GcConfig::default(), NetConfig::default(), 9);
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    // Sever every link: nothing distributed can progress, but each
    // process keeps collecting locally (A goes; the cycle cannot).
    for a in 0..4u16 {
        for b in (a + 1)..4u16 {
            sys.partition_pair(ProcId(a), ProcId(b));
        }
    }
    sys.run_for(SimDuration::from_millis(2_000));
    assert_eq!(
        sys.total_live_objects(),
        13,
        "only A reclaimed while fully partitioned: {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);

    // Heal: every protocol message is regenerated each round, so the
    // distributed collection simply resumes and completes.
    sys.heal_all_partitions();
    sys.run_for(SimDuration::from_millis(4_000));
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn partial_partition_isolates_only_the_cut_cycle() {
    // Two disjoint 2-process rings; one of them is cut in half. Only the
    // healthy ring is reclaimed until the partition heals.
    let mut sys = System::new(4, GcConfig::default(), NetConfig::default(), 10);
    let left: Vec<ProcId> = vec![ProcId(0), ProcId(1)];
    let right: Vec<ProcId> = vec![ProcId(2), ProcId(3)];
    let _l = scenarios::ring(&mut sys, &left, 1, false);
    let _r = scenarios::ring(&mut sys, &right, 1, false);
    sys.partition_pair(ProcId(0), ProcId(1));
    sys.run_for(SimDuration::from_millis(5_000));
    assert_eq!(
        sys.total_live_objects(),
        2,
        "right ring reclaimed, cut ring stuck: {:?}",
        sys.metrics
    );
    sys.heal_all_partitions();
    sys.run_for(SimDuration::from_millis(5_000));
    assert_eq!(sys.total_live_objects(), 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn duplicated_gc_traffic_is_idempotent() {
    let cfg = NetConfig {
        gc_duplicate_probability: 1.0,
        ..NetConfig::default()
    };
    let mut sys = System::new(4, GcConfig::default(), cfg, 19);
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    sys.run_for(SimDuration::from_millis(3_000));
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
    assert!(
        sys.metrics.nss_stale > 0,
        "duplicates were seen and ignored"
    );
}

#[test]
fn many_seeds_same_verdict() {
    // The collection outcome (not the schedule) is seed-independent.
    for seed in 0..8 {
        let mut sys = System::new(4, GcConfig::default(), faulty_net(0.2, 0.1), seed);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        sys.run_for(SimDuration::from_millis(15_000));
        assert_eq!(
            sys.total_live_objects(),
            0,
            "seed {seed}: {:?}",
            sys.metrics
        );
        assert_eq!(sys.metrics.safety_violations(), 0, "seed {seed}");
    }
}
