//! Exhaustive small-model check.
//!
//! Enumerates *every* reference configuration of a small fixed object
//! population — four objects across three processes, all 2^12 subsets of
//! the possible local and remote edges, crossed with root placements —
//! and verifies, for each of the ~16k resulting systems, both collector
//! properties:
//!
//! * safety: the oracle-audited counters stay zero,
//! * completeness: after the GC fixpoint, the live set equals the oracle's
//!   (every garbage structure, cyclic or not, spanning any subset of the
//!   processes, is reclaimed).
//!
//! This is a brute-force proof substitute for the correctness argument the
//! paper defers to its technical report: within this model size, there is
//! no counterexample to either property.

use acdgc::model::{GcConfig, NetConfig, ObjId, ProcId};
use acdgc::sim::System;

// Objects: a0, a1 in P0; b in P1; c in P2 — four in total.

/// Candidate edges (from, to) as indices into the object array. The first
/// two are local (within P0); the rest are remote.
const EDGES: [(usize, usize); 12] = [
    (0, 1), // a0 -> a1 (local)
    (1, 0), // a1 -> a0 (local)
    (0, 2), // a0 -> b
    (0, 3), // a0 -> c
    (1, 2), // a1 -> b
    (1, 3), // a1 -> c
    (2, 0), // b -> a0
    (2, 1), // b -> a1
    (2, 3), // b -> c
    (3, 0), // c -> a0
    (3, 1), // c -> a1
    (3, 2), // c -> b
];

fn build(edge_mask: u16, root_mask: u8) -> (System, Vec<ObjId>) {
    let mut sys = System::new(3, GcConfig::manual(), NetConfig::instant(), 1);
    let objs = vec![
        sys.alloc(ProcId(0), 1),
        sys.alloc(ProcId(0), 1),
        sys.alloc(ProcId(1), 1),
        sys.alloc(ProcId(2), 1),
    ];
    for (bit, &(from, to)) in EDGES.iter().enumerate() {
        if edge_mask & (1 << bit) == 0 {
            continue;
        }
        let (f, t) = (objs[from], objs[to]);
        if f.proc == t.proc {
            sys.add_local_ref(f, t).unwrap();
        } else {
            sys.create_remote_ref(f, t).unwrap();
        }
    }
    for (i, &obj) in objs.iter().enumerate() {
        if root_mask & (1 << i) != 0 {
            sys.add_root(obj).unwrap();
        }
    }
    (sys, objs)
}

#[test]
fn every_small_configuration_collects_exactly_the_garbage() {
    let mut checked = 0u64;
    let mut cyclic_configs = 0u64;
    for edge_mask in 0..(1u16 << EDGES.len()) {
        // Root placements: none, a0, c, a0+c — enough to exercise "fully
        // garbage", "anchored at the dense end" and "anchored remotely".
        for root_mask in [0b0000u8, 0b0001, 0b1000, 0b1001] {
            let (mut sys, _objs) = build(edge_mask, root_mask);
            let expected_live = sys.oracle_live().len();
            sys.collect_to_fixpoint(16);
            let live = sys.total_live_objects();
            assert_eq!(
                live, expected_live,
                "completeness violated: edges={edge_mask:#014b} roots={root_mask:#06b}; {:?}",
                sys.metrics
            );
            assert_eq!(
                sys.metrics.safety_violations(),
                0,
                "safety violated: edges={edge_mask:#014b} roots={root_mask:#06b}"
            );
            assert_eq!(
                sys.metrics.invoke_on_missing_scion, 0,
                "edges={edge_mask:#014b} roots={root_mask:#06b}"
            );
            sys.check_invariants().unwrap_or_else(|e| {
                panic!("invariant: {e}; edges={edge_mask:#014b} roots={root_mask:#06b}")
            });
            if sys.metrics.cycles_detected > 0 {
                cyclic_configs += 1;
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 4 * (1 << EDGES.len()));
    // Sanity: a substantial fraction of configurations contained
    // distributed cycles that only the DCDA could reclaim.
    assert!(
        cyclic_configs > 1_000,
        "expected many cyclic configurations, got {cyclic_configs}"
    );
}

#[test]
fn spot_check_the_hardest_configuration() {
    // All twelve edges present, nothing rooted: a maximally entangled
    // garbage clump spanning three processes — overlapping cycles
    // everywhere. One fixpoint run must clear it completely.
    let (mut sys, _objs) = build((1 << EDGES.len()) - 1, 0);
    assert!(sys.oracle_live().is_empty());
    let rounds = sys.collect_to_fixpoint(16);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn spot_check_root_migration_between_configurations() {
    // The densest graph, anchored at c, then the anchor moves to a0, then
    // disappears: the live set must track the oracle at each step.
    let (mut sys, objs) = build((1 << EDGES.len()) - 1, 0b1000);
    sys.collect_to_fixpoint(16);
    assert_eq!(sys.total_live_objects(), sys.oracle_live().len());
    assert_eq!(sys.total_live_objects(), 4, "all reachable from c");

    sys.add_root(objs[0]).unwrap();
    sys.remove_root(objs[3]).unwrap();
    sys.collect_to_fixpoint(16);
    assert_eq!(sys.total_live_objects(), 4, "still all reachable from a0");

    sys.remove_root(objs[0]).unwrap();
    sys.collect_to_fixpoint(16);
    assert_eq!(sys.total_live_objects(), 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
}
