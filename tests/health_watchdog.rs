//! The threaded runtime's watchdog: heartbeat slots, stall detection, and
//! `HealthReport` forensics.
//!
//! The central test wedges one worker deliberately (via the sweep hook)
//! and asserts the watchdog names that worker, exposes the `VoteCast`
//! event still sitting in its pending (not-yet-flushed) tail, and that
//! the run still finishes — the monitor must never deadlock against the
//! very stall it is reporting.

use acdgc::model::{GcConfig, NetConfig, SimDuration, TraceConfig, WatchdogConfig};
use acdgc::obs::{HealthReason, WorkerStage};
use acdgc::sim::{threaded, System, ThreadedOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fast-quiescing config with an aggressive watchdog: empty heaps vote
/// after 2 quiet sweeps, a ~40ms silence is a stall, polled every 5ms.
fn watchdog_cfg() -> GcConfig {
    GcConfig {
        quiet_sweeps: 2,
        trace: TraceConfig::on(),
        watchdog: WatchdogConfig {
            enabled: true,
            stall_after: SimDuration::from_millis(40),
            poll_every: SimDuration::from_millis(5),
            max_stall_reports: 8,
        },
        ..GcConfig::manual()
    }
}

#[test]
fn stalled_worker_is_named_with_its_pending_tail() {
    // Empty heaps: nothing to collect, so every worker votes quickly. The
    // hook wedges worker 3 the first time it enters an iteration with its
    // vote held — the `VoteCast` event from the previous iteration is then
    // guaranteed to still sit in its pending tail (voted workers do not
    // sweep, and only sweeps flush the tail).
    let sys = System::new(4, watchdog_cfg(), NetConfig::instant(), 5);
    let released = Arc::new(AtomicBool::new(false));
    let reported = Arc::new(parking_lot_free_reports());

    let hook_released = Arc::clone(&released);
    let stalled_once = AtomicBool::new(false);
    let sweep_hook: threaded::SweepHook = Arc::new(move |proc, _sweep, voted| {
        if proc.0 == 3 && voted && !stalled_once.swap(true, Ordering::SeqCst) {
            let t0 = Instant::now();
            while !hook_released.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(10) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    });
    let cb_released = Arc::clone(&released);
    let cb_reported = Arc::clone(&reported);
    let on_report: threaded::ReportHook = Arc::new(move |report| {
        cb_reported.lock().unwrap().push(report.clone());
        if report.reason == HealthReason::Stall {
            // Let the wedged worker go as soon as the stall is on record.
            cb_released.store(true, Ordering::SeqCst);
        }
    });

    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        watchdog_cfg(),
        ThreadedOptions {
            sweep_hook: Some(sweep_hook),
            on_report: Some(on_report),
            deadline: Duration::from_secs(30),
            ..ThreadedOptions::default()
        },
    );

    assert!(run.stats.quiescent(), "run must still end via quiescence");
    let stall = run
        .health
        .iter()
        .find(|r| r.reason == HealthReason::Stall)
        .expect("watchdog emitted a stall report");
    assert_eq!(
        stall.stalled(),
        vec![acdgc::model::ProcId(3)],
        "exactly the wedged worker is flagged"
    );
    let w3 = stall
        .workers
        .iter()
        .find(|w| w.proc.0 == 3)
        .expect("report covers every worker");
    assert_eq!(w3.stage, WorkerStage::Voted);
    assert!(w3.voted);
    assert!(
        w3.pending_tail.iter().any(|(_, e)| e.kind() == "vote_cast"),
        "the unflushed VoteCast must be visible in the pending tail: {:?}",
        w3.pending_tail
    );
    // The live callback saw the same reports the run returned.
    assert_eq!(reported.lock().unwrap().len(), run.health.len());
    // The rendering names the stall and the pending event kind.
    let text = stall.render();
    assert!(text.contains("STALLED"), "{text}");
    assert!(text.contains("vote_cast"), "{text}");

    // Terminal report: quiescent, nobody stalled, tails flushed.
    let terminal = run.health.last().unwrap();
    assert_eq!(terminal.reason, HealthReason::Quiescent);
    assert!(terminal.stalled().is_empty());
    assert_eq!(terminal.pending_events(), 0);
    assert!(terminal
        .workers
        .iter()
        .all(|w| w.stage == WorkerStage::Done));
    // After the join every process lock is free: ledgers are all present.
    assert!(terminal.workers.iter().all(|w| w.ledger.is_some()));
}

/// std Mutex wrapper so the test does not depend on parking_lot's
/// re-exports (the report callback runs on the monitor thread).
fn parking_lot_free_reports() -> std::sync::Mutex<Vec<acdgc::obs::HealthReport>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn deadline_backstop_produces_a_deadline_report() {
    // quiet_sweeps too high to ever vote: the run must end via the
    // deadline, and the terminal report must say so.
    let cfg = GcConfig {
        quiet_sweeps: u32::MAX,
        ..watchdog_cfg()
    };
    let sys = System::new(2, cfg.clone(), NetConfig::instant(), 1);
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions {
            deadline: Duration::from_millis(100),
            ..ThreadedOptions::default()
        },
    );
    assert!(!run.stats.quiescent());
    let terminal = run.health.last().expect("terminal report");
    assert_eq!(terminal.reason, HealthReason::Deadline);
    assert!(terminal
        .workers
        .iter()
        .all(|w| w.stage == WorkerStage::Done));
}

#[test]
fn healthy_run_emits_exactly_one_quiescent_report() {
    let sys = System::new(3, watchdog_cfg(), NetConfig::instant(), 2);
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        watchdog_cfg(),
        ThreadedOptions::default(),
    );
    assert!(run.stats.quiescent());
    assert_eq!(run.health.len(), 1, "no stalls: terminal report only");
    assert_eq!(run.health[0].reason, HealthReason::Quiescent);
    // Round trip through the JSONL form.
    let v = run.health[0].to_json();
    let back = acdgc::obs::HealthReport::from_json(&v).expect("health report round-trips");
    assert_eq!(back.reason, HealthReason::Quiescent);
    assert_eq!(back.workers.len(), 3);
}

#[test]
fn watchdog_can_be_disabled() {
    let cfg = GcConfig {
        watchdog: WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        },
        ..watchdog_cfg()
    };
    let sys = System::new(2, cfg.clone(), NetConfig::instant(), 3);
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions::default(),
    );
    assert!(run.stats.quiescent());
    assert!(run.health.is_empty(), "disabled watchdog reports nothing");
}

#[test]
fn sampler_records_bounded_validated_series_with_watchdog_off() {
    use acdgc::model::{ProcId, SamplingConfig};
    use acdgc::obs::{check_series, group_by_series};
    // Watchdog disabled but sampling on: the monitor thread must still run,
    // feed the sampler, and report no health — proving the hoisted polling
    // loop serves sampling alone.
    let cfg = GcConfig {
        sampling: SamplingConfig {
            enabled: true,
            sample_every: 1,
            capacity: 8,
        },
        watchdog: WatchdogConfig {
            enabled: false,
            poll_every: SimDuration::from_millis(1),
            ..WatchdogConfig::default()
        },
        ..watchdog_cfg()
    };
    // Real garbage so the counters move while samples are taken.
    let mut sys = System::new(4, cfg.clone(), NetConfig::instant(), 21);
    let ids: Vec<ProcId> = (0..4).map(ProcId).collect();
    acdgc::sim::scenarios::ring(&mut sys, &ids, 3, false);
    // Stretch the run across several monitor polls: each worker pauses
    // briefly during its early sweeps so the wall clock spans well past
    // the 1ms poll cadence.
    let sweep_hook: threaded::SweepHook = Arc::new(|_, sweep, _| {
        if sweep < 10 {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions {
            sweep_hook: Some(sweep_hook),
            deadline: Duration::from_secs(30),
            ..ThreadedOptions::default()
        },
    );
    assert!(run.stats.quiescent());
    assert!(run.health.is_empty(), "watchdog off: no health reports");
    assert!(!run.samples.is_empty(), "sampler recorded during the run");

    let series = group_by_series(&run.samples);
    assert!(
        series.iter().any(|(p, _)| p.is_none()),
        "global series present"
    );
    for (proc, rows) in &series {
        let label = match proc {
            None => "global".to_string(),
            Some(p) => format!("P{}", p.0),
        };
        assert!(!rows.is_empty(), "{label}: series non-empty");
        assert!(rows.len() <= 8, "{label}: capacity bound holds");
        let violations = check_series(&label, rows);
        assert!(violations.is_empty(), "{label}: {violations:?}");
    }
    // The global series saw reclamation happen: the ring was all garbage
    // and the run quiesced, so the newest sample's counters are live data,
    // not zeros.
    let (_, global) = series.iter().find(|(p, _)| p.is_none()).unwrap();
    let last = global.last().unwrap().0;
    assert!(last.lgc_runs > 0, "counters flowed from ThreadedStats");
}

#[test]
fn prometheus_exposition_covers_metrics_and_phases() {
    use acdgc::model::ProcId;
    use acdgc::sim::scenarios;
    let mut sys = System::new(
        4,
        GcConfig {
            trace: TraceConfig::on(),
            ..GcConfig::manual()
        },
        NetConfig::instant(),
        9,
    );
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0);

    let text = sys.to_prometheus();
    assert!(
        text.contains("# TYPE acdgc_lgc_runs_total counter"),
        "{text}"
    );
    assert!(text.contains("# TYPE acdgc_cycles_detected_total counter"));
    assert!(text.contains("# TYPE acdgc_max_cdm_bytes gauge"));
    assert!(
        text.contains("# TYPE acdgc_phase_duration_nanoseconds histogram"),
        "phase histograms present when tracing is on"
    );
    assert!(text.contains("acdgc_phase_duration_nanoseconds_bucket{phase="));
    assert!(text.contains("le=\"+Inf\""));
    // Spot-check one counter value against the ledger.
    assert!(text.contains(&format!(
        "acdgc_cycles_detected_total {}",
        sys.metrics.cycles_detected
    )));
    let _ = sys.metrics_for(ProcId(0));
}
