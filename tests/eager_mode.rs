//! End-to-end coverage for the eager-combine extension
//! (`GcConfig::eager_combine`): same verdicts as per-branch mode on the
//! paper scenarios, plus the dense-clump case that motivates it.

use acdgc::model::{GcConfig, NetConfig, ObjId, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn eager_manual() -> GcConfig {
    GcConfig {
        eager_combine: true,
        ..GcConfig::manual()
    }
}

#[test]
fn fig3_collects_under_eager_mode() {
    let mut sys = System::new(4, eager_manual(), NetConfig::instant(), 90);
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn fig4_collects_under_eager_mode() {
    let mut sys = System::new(6, eager_manual(), NetConfig::instant(), 91);
    let _fig = scenarios::fig4(&mut sys);
    let rounds = sys.collect_to_fixpoint(25);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn fig1_dependency_still_blocks_under_eager_mode() {
    let mut sys = System::new(4, eager_manual(), NetConfig::instant(), 92);
    let fig = scenarios::fig1(&mut sys);
    sys.collect_to_fixpoint(10);
    assert_eq!(sys.total_live_objects(), 4, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.cycles_detected, 0);
    sys.remove_root(fig.w).unwrap();
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn periodic_eager_mode_collects_ring() {
    let cfg = GcConfig {
        eager_combine: true,
        ..GcConfig::default()
    };
    let mut sys = System::new(4, cfg, NetConfig::default(), 93);
    let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 2, true);
    sys.run_for(SimDuration::from_millis(500));
    assert_eq!(sys.total_live_objects(), 9);
    sys.remove_root(ring.anchor.unwrap()).unwrap();
    sys.run_for(SimDuration::from_millis(4_000));
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn dense_complete_clump_collected_only_with_reasonable_budget() {
    // Complete remote digraph over 4 processes x 2 objects: per-branch
    // mode churns factorially here; eager mode settles it.
    let mut sys = System::new(4, eager_manual(), NetConfig::instant(), 94);
    let all: Vec<ObjId> = (0..4)
        .flat_map(|p| (0..2).map(|_| sys.alloc(ProcId(p), 1)).collect::<Vec<_>>())
        .collect();
    for &a in &all {
        for &b in &all {
            if a.proc != b.proc {
                sys.create_remote_ref(a, b).unwrap();
            }
        }
    }
    assert!(sys.oracle_live().is_empty());
    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} cdms={} {:?}",
        sys.metrics.cdms_sent,
        sys.metrics
    );
    assert!(
        sys.metrics.cdms_sent < 20_000,
        "bounded traffic: {}",
        sys.metrics.cdms_sent
    );
}
