//! F2 — Figure 2, "DCDA of independent snapshots": independently-taken
//! snapshots do not form a consistent cut. The scripted interleaving of
//! Fig. 2-b — detection starts on old snapshots of P2/P3, then the mutator
//! invokes along `x → y`, re-roots `y` in P2 and un-roots `x` in P1, and
//! only *then* P1 snapshots — must NOT produce the false cycle of
//! Fig. 2-c. The invocation counters are the barrier.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, InvokeSpec, System};

fn prepared() -> (System, scenarios::Fig2) {
    let mut sys = System::new(3, GcConfig::manual(), NetConfig::instant(), 8);
    let fig = scenarios::fig2(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    (sys, fig)
}

#[test]
fn interleaved_snapshots_do_not_fool_the_detector() {
    // A fixed 10 ms hop latency lets the mutator act while the CDM is in
    // flight, exactly the Fig. 2-b timeline.
    let net = NetConfig {
        min_latency: SimDuration::from_millis(10),
        max_latency: SimDuration::from_millis(10),
        ..NetConfig::default()
    };
    let mut sys = System::new(3, GcConfig::manual(), net, 8);
    let fig = scenarios::fig2(&mut sys);
    let (p1, p2, p3) = (ProcId(0), ProcId(1), ProcId(2));
    sys.advance(SimDuration::from_millis(1));

    // S2 and S3 are taken first (Fig. 2-b: S2, S3 before the invocation).
    sys.take_snapshot(p2);
    sys.take_snapshot(p3);

    // The DCDA starts in P2 by sending a CDM to P3; it will arrive at
    // t≈11ms and its derivation at P1 at t≈21ms.
    sys.initiate_detection(p2, fig.r_xy);
    assert_eq!(sys.messages_in_flight(), 1, "CDM to P3 in flight");

    // Mutator: P1 invokes y in P2 (bumping r_xy's counters on both ends);
    // the invocation roots y in P2 and P1 drops its root on x.
    sys.invoke(p1, fig.r_xy, InvokeSpec::oneway()).unwrap();
    sys.run_until(acdgc::model::SimTime::from_millis(15));
    assert_eq!(sys.metrics.invocations, 1);
    sys.add_root(fig.y).unwrap();
    sys.remove_root(fig.x).unwrap();

    // Instant S1 (Fig. 2-b): P1 snapshots *after* the mutation, while the
    // CDM derivation is still on its way; its stub for r_xy now carries
    // IC = 1 whereas the detection was built against P2's IC = 0 snapshot.
    sys.take_snapshot(p1);

    // Let the detection complete: P3 -> P1 -> back to P2.
    sys.drain_network();

    // The false cycle of Fig. 2-c must not be detected.
    assert_eq!(sys.metrics.cycles_detected, 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.scions_deleted_by_dcda, 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
    // The abort happened through the counter barrier.
    assert!(
        sys.metrics.detections_aborted_ic >= 1,
        "IC mismatch must abort the detection: {:?}",
        sys.metrics
    );

    // Reality check (Fig. 2-d): the cycle is still live through y's root.
    let live = sys.oracle_live();
    assert!(live.contains(&fig.x) && live.contains(&fig.y) && live.contains(&fig.z));
    sys.collect_to_fixpoint(10);
    assert_eq!(sys.total_live_objects(), 3, "nothing was reclaimed");
}

#[test]
fn without_interleaving_the_same_cycle_is_eventually_collected() {
    // Control run: the same graph, but the root is dropped entirely and
    // snapshots are taken afterwards — now it IS garbage and must go.
    let (mut sys, fig) = prepared();
    sys.remove_root(fig.x).unwrap();
    let rounds = sys.collect_to_fixpoint(15);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "garbage 3-cycle collected in {rounds} rounds; {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn stale_summary_candidate_is_filtered_after_reroot() {
    // After the mutation, P2's own fresh summary shows y locally
    // reachable: r_xy is no longer even a candidate.
    let (mut sys, fig) = prepared();
    let p2 = ProcId(1);
    sys.invoke(ProcId(0), fig.r_xy, InvokeSpec::oneway())
        .unwrap();
    sys.drain_network();
    sys.add_root(fig.y).unwrap();
    sys.remove_root(fig.x).unwrap();
    sys.advance(SimDuration::from_millis(1));
    sys.take_snapshot(p2);
    let before = sys.metrics.detections_started;
    sys.run_scan(p2);
    assert_eq!(
        sys.metrics.detections_started, before,
        "locally-reachable target is not a candidate"
    );
}

#[test]
fn rule_one_discards_cdm_for_unknown_scion() {
    // A CDM addressed at a scion created after the receiving process's
    // snapshot must be dropped (§2.2 rule 1 / §3.2 "CDM delivered to a
    // scion that is not yet inscribed in the summarized graph").
    let (mut sys, fig) = prepared();
    let (p2, p3) = (ProcId(1), ProcId(2));
    // P3 has never snapshot: its summary is empty.
    sys.take_snapshot(p2);
    sys.remove_root(fig.x).unwrap();
    sys.initiate_detection(p2, fig.r_xy);
    sys.drain_network();
    assert_eq!(
        sys.metrics.detections_dropped_no_scion, 1,
        "CDM delivered at P3 against an empty summary is discarded: {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.cycles_detected, 0);
    let _ = p3;
}
