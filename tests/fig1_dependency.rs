//! F1 — Figure 1, "Identifying dependencies in cycles": the remote
//! reference `w_P4 → x_P1` converges on the cycle and must be accounted as
//! an extra dependency; while `w` is live the cycle is never collected,
//! and once `w` dies the acyclic DGC removes the dependency and the
//! detector completes.

use acdgc::dcda::{self, Cdm, MatchResult, Outcome, TerminateReason};
use acdgc::model::{DetectionId, GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn prepared() -> (System, scenarios::Fig1) {
    // Strict §3.1 step 15 semantics so the walk dies exactly where the
    // paper's argument says it does (the default slack would let it probe
    // a few more non-growing hops before giving up — same verdict).
    let mut cfg = GcConfig::manual();
    cfg.nongrowth_slack = 0;
    let mut sys = System::new(4, cfg, NetConfig::instant(), 4);
    let fig = scenarios::fig1(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    (sys, fig)
}

#[test]
fn dependency_is_recorded_and_blocks_detection() {
    let (sys, fig) = prepared();
    let cfg = sys.config().clone();
    let p1 = ProcId(0); // x's process
    let p2 = ProcId(1); // y's process
    let p3 = ProcId(2); // z's process

    // x's incoming references: r_zx (cycle) and r_wx (dependency). The
    // summary at P1 must list both as ScionsTo of x's outgoing stub.
    let s1 = &sys.proc(p1).summary;
    let stub = s1.stub(fig.r_xy).unwrap();
    let mut to = stub.scions_to.clone();
    to.sort();
    let mut expect = vec![fig.r_zx, fig.r_wx];
    expect.sort();
    assert_eq!(to, expect, "both converging references are dependencies");

    // Walk a detection from P2 (scion of x -> y) around the ring.
    let s2 = &sys.proc(p2).summary;
    let ic = s2.scion(fig.r_xy).unwrap().ic;
    let out = dcda::initiate(
        s2,
        Cdm::initiate(DetectionId(0), p2, fig.r_xy, ic),
        fig.r_xy,
        &cfg,
    );
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(p3).summary, cdm, fig.r_yz, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    // At P1 the dependency on w's reference enters the source set.
    let out = dcda::deliver(&sys.proc(p1).summary, cdm, fig.r_zx, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    assert!(
        cdm.source.contains_key(&fig.r_wx),
        "Fig. 1: w -> x accounted as extra dependency"
    );
    // Closing the ring at P2: the dependency is unresolved, no cycle; and
    // no derivation adds information, so the walk dies.
    match cdm.matching(true) {
        MatchResult::Pending { unresolved, .. } => {
            assert!(unresolved.contains(&fig.r_wx));
        }
        other => panic!("expected pending, got {other:?}"),
    }
    let out = dcda::deliver(&sys.proc(p2).summary, cdm, fig.r_xy, &cfg);
    assert_eq!(
        out,
        Outcome::Terminated(TerminateReason::NoNewInformation),
        "unresolved dependency blocks the conclusion"
    );
}

#[test]
fn live_dependency_prevents_collection_indefinitely() {
    let (mut sys, _fig) = prepared();
    sys.collect_to_fixpoint(10);
    assert_eq!(sys.total_live_objects(), 4, "w and the cycle all survive");
    assert_eq!(sys.metrics.cycles_detected, 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn dropping_the_dependency_unblocks_collection() {
    let (mut sys, fig) = prepared();
    sys.collect_to_fixpoint(6);
    assert_eq!(sys.total_live_objects(), 4);

    // w dies: the acyclic DGC reclaims it and its reference; the next
    // summaries no longer carry the dependency and the detector completes.
    sys.remove_root(fig.w).unwrap();
    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "cycle reclaimed after the dependency died ({rounds} rounds); {:?}",
        sys.metrics
    );
    assert!(sys.metrics.cycles_detected >= 1);
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn dependency_from_live_branch_only_blocks_its_cycle() {
    // A second, independent garbage ring in the same processes must be
    // collected even while Fig. 1's dependency keeps its own cycle alive.
    let (mut sys, _fig) = prepared();
    let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
    let _ring = scenarios::ring(&mut sys, &procs, 1, false);
    let live_before = sys.total_live_objects();
    sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        4,
        "ring collected, fig1 objects survive (was {live_before})"
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn dependency_resolved_when_w_joins_the_garbage() {
    // Variant: w is unrooted but still holds its reference — it becomes
    // upstream acyclic garbage. The acyclic DGC must clear it first, then
    // the cycle goes. This is the paper's "cyclic garbage whose
    // reachability is dependent of upstream acyclic garbage".
    let (mut sys, fig) = prepared();
    sys.remove_root(fig.w).unwrap();
    // One detection attempt *before* the acyclic layer catches up: the
    // dependency is still in the summaries, so no conclusion yet.
    sys.initiate_detection(ProcId(1), fig.r_xy);
    sys.drain_network();
    assert_eq!(sys.metrics.cycles_detected, 0);
    // Now let the rounds run: w is collected, r_wx dies, then the cycle.
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}
