//! F3 — Figure 3, "A simple distributed garbage cycle": step-by-step
//! reproduction of the worked algebra of §3 (steps 1–26).
//!
//! Term mapping (one incoming reference per object, see DESIGN.md):
//! `F_P2 ≙ r_bf`, `Q_P4 ≙ r_jq`, `O_P3 ≙ r_so`, `D_P1 ≙ r_kd`.

use acdgc::dcda::{self, Cdm, MatchResult, Outcome, TerminateReason};
use acdgc::model::{DetectionId, GcConfig, NetConfig, ProcId, RefId, SimDuration};
use acdgc::sim::{scenarios, System};

fn keys(map: &std::collections::BTreeMap<RefId, u64>) -> Vec<RefId> {
    map.keys().copied().collect()
}

/// Build Fig. 3, cut the root, run one LGC + snapshot everywhere so every
/// process has a published summary of the garbage cycle.
fn prepared() -> (System, scenarios::Fig3) {
    let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 1);
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    (sys, fig)
}

#[test]
fn algebra_trace_matches_paper_steps_1_through_26() {
    let (sys, fig) = prepared();
    let cfg = sys.config().clone();

    // Steps 1-4 at P2: Alg_0 = {{F_P2} -> {}}; StubsFrom(F_P2) = {Q_P4};
    // Alg_1 = {{F_P2} -> {Q_P4}}; send to P4.
    let s2 = &sys.proc(fig.p2).summary;
    let ic = s2.scion(fig.r_bf).unwrap().ic;
    let alg0 = Cdm::initiate(DetectionId(0), fig.p2, fig.r_bf, ic);
    assert_eq!(keys(&alg0.source), vec![fig.r_bf], "Alg_0 source = {{F}}");
    assert!(alg0.target.is_empty(), "Alg_0 target = {{}}");
    let out = dcda::initiate(s2, alg0, fig.r_bf, &cfg);
    let fws = out.forwards();
    assert_eq!(fws.len(), 1);
    assert_eq!(fws[0].dest, fig.p4, "step 4: send Alg_1 to P4");
    assert_eq!(fws[0].via, fig.r_jq);
    let alg1 = fws[0].cdm.clone();
    assert_eq!(keys(&alg1.source), vec![fig.r_bf]);
    assert_eq!(keys(&alg1.target), vec![fig.r_jq]);

    // Steps 5-7 at P4: matching(Alg_1) has no intersection; no cycle.
    match alg1.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_bf], "step 6: {{F}} unresolved");
            assert_eq!(wavefront, vec![fig.r_jq]);
        }
        other => panic!("step 7 expects pending, got {other:?}"),
    }

    // Steps 8-11 at P4: Alg_2 = {{F,Q} -> {Q,O}}; send to P3.
    let s4 = &sys.proc(fig.p4).summary;
    let out = dcda::deliver(s4, alg1, fig.r_jq, &cfg);
    let fws = out.forwards();
    assert_eq!(fws.len(), 1);
    assert_eq!(fws[0].dest, fig.p3, "step 11: send Alg_2 to P3");
    let alg2 = fws[0].cdm.clone();
    let mut expect = vec![fig.r_bf, fig.r_jq];
    expect.sort();
    assert_eq!(keys(&alg2.source), expect);
    let mut expect = vec![fig.r_jq, fig.r_so];
    expect.sort();
    assert_eq!(keys(&alg2.target), expect);

    // Steps 12-14 at P3: Matching(Alg_2) => {{F} -> {O}}.
    match alg2.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_bf], "step 13: dependency on F");
            assert_eq!(wavefront, vec![fig.r_so], "step 13: wavefront at O");
        }
        other => panic!("step 14 expects pending, got {other:?}"),
    }

    // Steps 15-17 at P3: Alg_3 = {{F,Q,O} -> {Q,O,D}}; send to P1.
    let s3 = &sys.proc(fig.p3).summary;
    let out = dcda::deliver(s3, alg2, fig.r_so, &cfg);
    let fws = out.forwards();
    assert_eq!(fws[0].dest, fig.p1, "step 17: send Alg_3 to P1");
    let alg3 = fws[0].cdm.clone();
    let mut expect = vec![fig.r_bf, fig.r_jq, fig.r_so];
    expect.sort();
    assert_eq!(keys(&alg3.source), expect);

    // Steps 18-20 at P1: Matching(Alg_3) => {{F} -> {D}}.
    match alg3.matching(true) {
        MatchResult::Pending {
            unresolved,
            wavefront,
        } => {
            assert_eq!(unresolved, vec![fig.r_bf]);
            assert_eq!(wavefront, vec![fig.r_kd]);
        }
        other => panic!("step 20 expects pending, got {other:?}"),
    }

    // Steps 21-23 at P1: Alg_4 closes the ring; send to P2.
    let s1 = &sys.proc(fig.p1).summary;
    let out = dcda::deliver(s1, alg3, fig.r_kd, &cfg);
    let fws = out.forwards();
    assert_eq!(fws[0].dest, fig.p2, "step 23: send Alg_4 to P2");
    assert_eq!(fws[0].via, fig.r_bf, "step 21: StubsFrom(D) = {{F}}");
    let alg4 = fws[0].cdm.clone();
    let mut expect = vec![fig.r_bf, fig.r_jq, fig.r_so, fig.r_kd];
    expect.sort();
    assert_eq!(keys(&alg4.source), expect.clone());
    assert_eq!(keys(&alg4.target), expect);

    // Steps 24-26 at P2: Matching(Alg_4) => {{} -> {}} => cycle found.
    assert_eq!(alg4.matching(true), MatchResult::CycleFound);
    let s2 = &sys.proc(fig.p2).summary;
    let out = dcda::deliver(s2, alg4, fig.r_bf, &cfg);
    let Outcome::CycleFound { delete } = out else {
        panic!("step 26 expects a cycle verdict, got {out:?}");
    };
    let deleted: Vec<RefId> = delete.iter().map(|&(_, r, _, _)| r).collect();
    assert!(
        deleted.contains(&fig.r_bf),
        "step 26: the scion accounting for the reference to F_P2 is deleted"
    );
    // The verdict covers the whole matched set (the implementation deletes
    // every proven-garbage scion; the paper's single deletion plus acyclic
    // unravelling reaches the same end state).
    assert_eq!(deleted.len(), 4);
}

#[test]
fn rooted_cycle_terminates_at_p1_local_reach() {
    // Same walk but with A_P1 still rooted: the stub B->F at P1 is
    // locally reachable and the detection must die there (§2.1).
    let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 1);
    let fig = scenarios::fig3(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    let cfg = sys.config().clone();

    let s2 = &sys.proc(fig.p2).summary;
    let ic = s2.scion(fig.r_bf).unwrap().ic;
    let cdm = Cdm::initiate(DetectionId(0), fig.p2, fig.r_bf, ic);
    let out = dcda::initiate(s2, cdm, fig.r_bf, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p4).summary, cdm, fig.r_jq, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p3).summary, cdm, fig.r_so, &cfg);
    let cdm = out.forwards()[0].cdm.clone();
    let out = dcda::deliver(&sys.proc(fig.p1).summary, cdm, fig.r_kd, &cfg);
    assert_eq!(
        out,
        Outcome::Terminated(TerminateReason::AllStubsLocallyReachable),
        "the live root in P1 stops the walk"
    );
}

#[test]
fn end_to_end_unravelling_after_detection() {
    // After the detector deletes F's scion, reference listing alone must
    // unravel the whole ring: LGC at P2 kills J's stub, NewSetStubs kills
    // Q's scion at P4, and so on around the ring.
    let (mut sys, fig) = prepared();
    sys.initiate_detection(fig.p2, fig.r_bf);
    sys.drain_network();
    assert_eq!(sys.metrics.cycles_detected, 1);
    assert!(sys.proc(fig.p2).tables.scion(fig.r_bf).is_none());

    // Objects are still there until LGC rounds run.
    assert_eq!(sys.total_live_objects(), 13, "A was already collected");
    let rounds = sys.collect_to_fixpoint(12);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "acyclic DGC unravelled the ring in {rounds} rounds"
    );
    assert_eq!(sys.total_scions(), 0);
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn detection_is_stateless_between_hops() {
    // Processing the same CDM twice against the same summary produces the
    // same outcome: nothing at the process remembers the first pass.
    let (sys, fig) = prepared();
    let cfg = sys.config().clone();
    let s2 = &sys.proc(fig.p2).summary;
    let ic = s2.scion(fig.r_bf).unwrap().ic;
    let make = || Cdm::initiate(DetectionId(0), fig.p2, fig.r_bf, ic);
    let a = dcda::initiate(s2, make(), fig.r_bf, &cfg);
    let b = dcda::initiate(s2, make(), fig.r_bf, &cfg);
    assert_eq!(a, b);
}
