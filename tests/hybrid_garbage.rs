//! Hybrid distributed garbage (§2: "detects and reclaims cyclic, acyclic
//! and hybrid distributed garbage through cooperation of the acyclic
//! collector and the cyclic detector").
//!
//! Three shapes the cooperation must handle:
//! * *downstream* — acyclic garbage hanging off a garbage cycle: the
//!   detector breaks the cycle, the acyclic layer sweeps the tail;
//! * *upstream* — a garbage cycle reachable only from acyclic garbage:
//!   the cycle's scions carry dependencies on the upstream chain, so
//!   detection must wait for the acyclic layer (the paper's §3.1 closing
//!   remark about "upstream acyclic garbage"), then conclude;
//! * *chained cycles* — a garbage cycle whose members reference a second
//!   cycle: reclaiming the first exposes the second.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn manual(n: usize) -> System {
    System::new(n, GcConfig::manual(), NetConfig::instant(), 33)
}

#[test]
fn downstream_acyclic_tail_swept_after_cycle_breaks() {
    let mut sys = manual(4);
    let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 1, false);
    // A tail hanging off the ring: ring head -> t1@P3 -> t2@P0.
    let t1 = sys.alloc(ProcId(3), 1);
    let t2 = sys.alloc(ProcId(0), 1);
    sys.create_remote_ref(ring.heads[0], t1).unwrap();
    sys.create_remote_ref(t1, t2).unwrap();
    assert!(sys.oracle_live().is_empty());

    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "ring + tail fully reclaimed in {rounds} rounds; {:?}",
        sys.metrics
    );
    assert!(sys.metrics.cycles_detected >= 1, "the ring needed the DCDA");
    assert!(
        sys.metrics.scions_reclaimed_acyclic >= 2,
        "the tail needed only reference listing"
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn upstream_acyclic_chain_resolves_then_cycle_falls() {
    let mut sys = manual(4);
    let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 1, false);
    // Upstream chain: u1@P3 -> u2@P0 -> ring head; nothing roots u1.
    let u1 = sys.alloc(ProcId(3), 1);
    let u2 = sys.alloc(ProcId(0), 1);
    sys.create_remote_ref(u1, u2).unwrap();
    sys.add_local_ref(u2, ring.heads[0]).unwrap();
    assert!(sys.oracle_live().is_empty());

    // First detection attempt: the upstream reference u1 -> u2 appears as
    // an unresolved dependency on the path, so no cycle can be concluded
    // yet — but nothing unsafe happens and the acyclic layer reclaims the
    // chain; subsequent rounds finish the job.
    let rounds = sys.collect_to_fixpoint(20);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn upstream_chain_with_root_blocks_until_dropped() {
    let mut sys = manual(4);
    let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 1, false);
    let u1 = sys.alloc(ProcId(3), 1);
    let u2 = sys.alloc(ProcId(0), 1);
    sys.add_root(u1).unwrap();
    sys.create_remote_ref(u1, u2).unwrap();
    sys.add_local_ref(u2, ring.heads[0]).unwrap();

    sys.collect_to_fixpoint(10);
    assert_eq!(sys.total_live_objects(), 5, "rooted chain holds the ring");
    assert_eq!(sys.metrics.cycles_detected, 0);

    sys.remove_root(u1).unwrap();
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn chained_cycles_fall_in_sequence() {
    let mut sys = manual(4);
    let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
    let first = scenarios::ring(&mut sys, &procs, 1, false);
    let second = scenarios::ring(&mut sys, &procs, 1, false);
    // First ring's head references the second ring's head: the second is
    // garbage only once the first is reclaimed... in fact both are garbage
    // immediately (nothing roots the first), but the second's scions carry
    // a dependency on the first until it dies.
    sys.add_local_ref(first.heads[0], second.heads[0]).unwrap();
    assert!(sys.oracle_live().is_empty());

    let rounds = sys.collect_to_fixpoint(30);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "both chained rings reclaimed in {rounds} rounds; {:?}",
        sys.metrics
    );
    assert!(sys.metrics.cycles_detected >= 2, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn dense_overlapping_cycles_fixpoint() {
    // Several rings sharing processes, plus cross links: a dense garbage
    // clump. The fixpoint must clear everything without safety issues.
    let mut sys = manual(5);
    let procs: Vec<ProcId> = (0..5).map(ProcId).collect();
    let rings: Vec<_> = (0..4)
        .map(|_| scenarios::ring(&mut sys, &procs, 1, false))
        .collect();
    for w in rings.windows(2) {
        sys.add_local_ref(w[0].heads[0], w[1].heads[0]).unwrap();
        sys.add_local_ref(w[1].heads[2], w[0].heads[2]).unwrap();
    }
    assert!(sys.oracle_live().is_empty());
    let rounds = sys.collect_to_fixpoint(40);
    assert_eq!(
        sys.total_live_objects(),
        0,
        "rounds={rounds} {:?}",
        sys.metrics
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
}

#[test]
fn half_live_clump_collects_only_the_dead_half() {
    let mut sys = manual(5);
    let procs: Vec<ProcId> = (0..5).map(ProcId).collect();
    let dead = scenarios::ring(&mut sys, &procs, 2, false);
    let live = scenarios::ring(&mut sys, &procs, 2, true);
    // Dead ring references the live ring (outbound references to live data
    // do not make garbage live).
    sys.add_local_ref(dead.heads[0], live.heads[0]).unwrap();
    let expected = sys.oracle_live().len();
    assert_eq!(expected, 11);
    sys.collect_to_fixpoint(30);
    assert_eq!(sys.total_live_objects(), expected, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
    // And when the live ring dies too, everything goes.
    sys.remove_root(live.anchor.unwrap()).unwrap();
    sys.collect_to_fixpoint(30);
    assert_eq!(sys.total_live_objects(), 0);
}

#[test]
fn periodic_mode_handles_hybrid_clump() {
    let mut sys = System::new(5, GcConfig::default(), NetConfig::default(), 44);
    let procs: Vec<ProcId> = (0..5).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 2, false);
    let tail = sys.alloc(ProcId(0), 1);
    sys.create_remote_ref(ring.heads[1], tail).ok();
    sys.run_for(SimDuration::from_millis(10_000));
    assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
    assert_eq!(sys.metrics.safety_violations(), 0);
}
