//! Face-off: the paper's DCDA against the two classic complete collectors
//! it is compared with in §5 — Hughes-style global timestamps and
//! Maheshwari–Liskov-style back-tracing — on the same garbage ring.
//!
//! Run with: `cargo run --example collector_faceoff`

use acdgc::baselines::{Backtracer, HughesCollector};
use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, System};

fn fresh_ring(span: usize) -> (System, acdgc::model::RefId) {
    let mut sys = System::new(span, GcConfig::manual(), NetConfig::instant(), 11);
    let procs: Vec<ProcId> = (0..span as u16).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &procs, 2, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..span {
        sys.run_lgc(ProcId(p as u16));
    }
    sys.drain_network();
    for p in 0..span {
        sys.take_snapshot(ProcId(p as u16));
    }
    (sys, ring.refs[0])
}

fn main() {
    println!(
        "{:>5} | {:>22} | {:>26} | {:>26}",
        "span", "DCDA (this paper)", "Hughes timestamps", "back-tracing"
    );
    println!(
        "{:>5} | {:>22} | {:>26} | {:>26}",
        "", "msgs  sync  state", "msgs  sync  state", "msgs  sync  state"
    );
    for span in [2usize, 4, 8, 16] {
        // --- DCDA: one asynchronous CDM walk, no process state.
        let (mut sys, scion) = fresh_ring(span);
        let before = sys.metrics.cdms_sent;
        sys.initiate_detection(ProcId(0), scion);
        sys.drain_network();
        let dcda_msgs = sys.metrics.cdms_sent - before;
        assert_eq!(sys.metrics.cycles_detected, 1);

        // --- Hughes: stamp every reference every round + a barrier.
        let (mut sys, _) = fresh_ring(span);
        let mut hughes = HughesCollector::new((span + 2) as u64);
        let hr = hughes.collect(&mut sys, (4 * span + 8) as u64);
        assert_eq!(sys.total_live_objects(), 0);

        // --- Back-tracing: nested synchronous RPC chain, per-trace marks.
        let (mut sys, scion) = fresh_ring(span);
        let tracer = Backtracer::new(&sys);
        let bt = tracer.trace(&mut sys, ProcId(0), scion);
        assert!(bt.garbage);

        println!(
            "{span:>5} | {dcda_msgs:>6}  none   none | {:>6}  {:>4}  stamps/ref | {:>6} chain  {:>3} marks",
            hr.total_messages(),
            hr.rounds,
            bt.messages,
            bt.peak_state_entries,
        );
    }
    println!();
    println!("DCDA: messages linear in cycle span, zero synchronization, zero");
    println!("per-process detection state — the paper's asynchrony claim.");
    println!("Hughes pays a global barrier per round and stamps every remote");
    println!("reference forever; back-tracing nests synchronous RPCs span-deep");
    println!("and parks visited-marks at every process it crosses.");
}
