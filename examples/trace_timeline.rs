//! Detection forensics on the paper's Figure 4: run the §3.1 worked
//! example with structured tracing enabled, then reconstruct — from the
//! trace alone — the per-process event timeline, every detected cycle's
//! cross-process CDM message path, and the per-phase latency histograms.
//! The full trace is also exported as JSON Lines.
//!
//! Tracing runs with `TraceConfig::causal()`, so every event carries a
//! Lamport stamp and the trace has a sound happens-before order: the
//! example also prints the causal *critical-path waterfalls* — each
//! detection's end-to-end latency attributed to transit/handling
//! segments (see "Causal order & critical path" in DESIGN.md). The same
//! analysis runs offline via `acdgc-report --critical-path`, and
//! `--perfetto OUT.json` exports the trace for the Perfetto UI with flow
//! arrows along every CDM hop.
//!
//! This example covers *event* forensics; for the continuous time-series
//! side (periodic gauge/counter sampling, sparkline timelines, rate
//! derivation) see `examples/health_dashboard.rs` and the `--timeline`
//! mode of `acdgc-report`, which renders the `sample` lines exported
//! alongside these events.
//!
//! Run with `cargo run --example trace_timeline`.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration, TraceConfig, WatchdogConfig};
use acdgc::obs::Phase;
use acdgc::sim::{scenarios, threaded, System, ThreadedOptions};
use std::path::Path;
use std::time::Duration;

fn main() {
    // The worked example uses the strict step 15 rule (slack 0) so the
    // trace matches the paper's 26-step narration.
    let cfg = GcConfig {
        trace: TraceConfig::causal(),
        nongrowth_slack: 0,
        ..GcConfig::manual()
    };
    let mut sys = System::new(6, cfg, NetConfig::instant(), 2);
    let fig = scenarios::fig4(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.take_snapshot(ProcId(p));
    }
    sys.initiate_detection(fig.p2, fig.r_df);
    sys.drain_network();
    sys.collect_to_fixpoint(25);
    assert_eq!(sys.total_live_objects(), 0, "both cycles reclaimed");

    let trace = sys.trace();
    println!(
        "== trace: {} events, {} overwritten ==",
        trace.events.len(),
        trace.overwritten
    );

    // Per-process timeline: every event in global (seq) order, indented
    // into one column per process.
    println!("\n== per-process timeline (seq · proc · event) ==");
    for rec in &trace.events {
        let indent = "    ".repeat(rec.proc.index());
        println!(
            "{:>5} {}{} {}",
            rec.seq,
            indent,
            rec.proc,
            serde_json::to_string(&rec.to_json()).unwrap()
        );
    }

    // Forensics: the full cross-process message path of each detection
    // that concluded a cycle.
    println!("\n== detected cycles: reconstructed CDM paths ==");
    for id in trace.detected_cycles() {
        let path = trace.detection(id);
        println!("{}", path.render());
        let b = path.balance();
        println!(
            "  procs={:?} sent={} delivered={} forward_steps={} terminals={} hops_ok={}",
            path.procs(),
            b.sent,
            b.delivered,
            b.forward_steps,
            b.terminals,
            path.check_hops_increase().is_ok(),
        );
    }

    // Where the time went, process by process and merged.
    println!("\n== phase histograms (merged) ==");
    let merged = trace.merged_phases();
    for phase in Phase::ALL {
        let h = merged.get(phase);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<22} n={:<5} mean={:>8}ns p90={:>8}ns max={:>8}ns",
            phase.name(),
            h.count(),
            h.mean_nanos(),
            h.quantile_upper_nanos(0.9),
            h.max_nanos()
        );
    }

    // Causal critical path: Lamport stamps give the merged trace a sound
    // happens-before order, so each detection's end-to-end latency can be
    // attributed segment by segment along its cross-process CDM chain.
    println!("\n== critical-path waterfalls (slowest first) ==");
    for fall in acdgc::obs::top_waterfalls(&trace, 2) {
        println!("{}", fall.render(48));
    }

    let out = Path::new("target/trace_fig4.jsonl");
    trace.dump_jsonl(out).expect("write trace export");
    println!("\n[full trace exported to {}]", out.display());

    // The same topology once more, but collected by the threaded runtime
    // under the watchdog: workers publish heartbeats every sweep and the
    // run ends with a terminal health report — the forensics above plus
    // liveness evidence for every worker.
    println!("\n== watchdog: threaded re-run with health reports ==");
    let cfg = GcConfig {
        quiet_sweeps: 3,
        trace: TraceConfig::on(),
        watchdog: WatchdogConfig::default(),
        ..GcConfig::manual()
    };
    let mut sys = System::new(6, cfg.clone(), NetConfig::instant(), 2);
    scenarios::fig4(&mut sys);
    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions {
            deadline: Duration::from_secs(30),
            ..ThreadedOptions::default()
        },
    );
    for report in &run.health {
        println!("{}", report.render());
    }
    println!(
        "[quiescent={}, {} health report(s)]",
        run.stats.quiescent(),
        run.health.len()
    );
}
