//! Live runtime-health dashboard for the threaded runtime: a mesh of
//! garbage rings collected concurrently while one worker is deliberately
//! wedged mid-run. The watchdog names the stalled worker — including the
//! events still sitting in its unflushed trace tail — and the run ends
//! with sparkline timelines from the periodic sampler, the terminal
//! health report, and a Prometheus-format metrics snapshot.
//!
//! Run with `cargo run --example health_dashboard`.

use acdgc::model::{
    GcConfig, NetConfig, ProcId, SamplingConfig, SimDuration, TraceConfig, WatchdogConfig,
};
use acdgc::obs::{counter_rates, group_by_series, sparkline, HealthReason, Trace, GAUGE_FIELDS};
use acdgc::sim::{merged_metrics, scenarios, threaded, System, ThreadedOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cfg = GcConfig {
        quiet_sweeps: 3,
        trace: TraceConfig::on(),
        watchdog: WatchdogConfig {
            enabled: true,
            stall_after: SimDuration::from_millis(40),
            poll_every: SimDuration::from_millis(2),
            max_stall_reports: 4,
        },
        // Time-series telemetry: the watchdog's poll doubles as the sample
        // clock, so every healthy 5ms poll records one row per worker.
        sampling: SamplingConfig {
            enabled: true,
            sample_every: 1,
            capacity: 32,
        },
        ..GcConfig::manual()
    };

    // A 6-process mesh holding three distributed garbage rings: real
    // collection work for the workers before they can vote.
    let mut sys = System::new(6, cfg.clone(), NetConfig::instant(), 11);
    let ids: Vec<ProcId> = (0..6).map(ProcId).collect();
    for span in [3, 4, 5] {
        scenarios::ring(&mut sys, &ids, span, false);
    }

    // The fault: worker 4 goes quiet for ~120ms the first time it enters
    // an iteration with its vote held — long past `stall_after`, so the
    // watchdog must flag it while the rest of the mesh keeps sweeping.
    let wedged_once = AtomicBool::new(false);
    let sweep_hook: threaded::SweepHook = Arc::new(move |proc, sweep, voted| {
        // Pace the mesh like a real mutator: a little work per early sweep
        // stretches the collection window far past the 2ms sample cadence,
        // so the timelines below actually show the rings draining.
        if sweep < 15 {
            std::thread::sleep(Duration::from_millis(1));
        }
        if proc.0 == 4 && voted && !wedged_once.swap(true, Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(120));
        }
    });
    // Live dashboard: every report the monitor emits is rendered as it
    // happens, from the monitor thread.
    let on_report: threaded::ReportHook = Arc::new(|report| {
        println!("---- health report ({}) ----", report.reason.name());
        println!("{}", report.render());
    });

    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions {
            sweep_hook: Some(sweep_hook),
            on_report: Some(on_report),
            deadline: Duration::from_secs(30),
            ..ThreadedOptions::default()
        },
    );

    let live: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
    println!(
        "== run finished: quiescent={}, live={live} ==",
        run.stats.quiescent()
    );
    let stalls = run
        .health
        .iter()
        .filter(|r| r.reason == HealthReason::Stall)
        .count();
    let terminal = run.health.last().expect("watchdog terminal report");
    println!(
        "watchdog: {} report(s), {stalls} stall(s), terminal={}",
        run.health.len(),
        terminal.reason.name()
    );

    // Sparkline timelines from the sampler: one block per series (global
    // aggregate first, then each worker), gauges as sparklines and the
    // counters as a rate table — the same rendering `acdgc-report
    // --timeline` applies to exported artifacts.
    println!("\n== telemetry timelines ==");
    for (proc, rows) in group_by_series(&run.samples) {
        let label = match proc {
            None => "global".to_string(),
            Some(p) => format!("P{}", p.0),
        };
        let samples: Vec<_> = rows.iter().map(|(s, _)| *s).collect();
        println!("[{label}] {} samples:", samples.len());
        for (name, get) in GAUGE_FIELDS {
            let values: Vec<u64> = samples.iter().map(get).collect();
            let max = values.iter().copied().max().unwrap_or(0);
            println!("  {:<20} {:<32} max={max}", name, sparkline(&values, 32));
        }
        for r in counter_rates(&samples) {
            println!(
                "  {:<20} total={:<8} avg/s={:<12.1} peak/s={:.1}",
                r.name, r.total, r.per_sec_avg, r.per_sec_peak
            );
        }
    }

    // The same data a scrape endpoint would serve: merged per-process
    // counters plus the cross-worker phase-latency histograms.
    println!("\n== prometheus snapshot ==");
    let mut out = String::new();
    merged_metrics(&run.procs).to_prometheus_into(&mut out);
    Trace::collect(run.procs.iter().map(|p| &p.obs))
        .with_runtime("threaded")
        .merged_phases()
        .to_prometheus_into(&mut out);
    println!("{out}");
}
