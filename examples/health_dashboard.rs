//! Live runtime-health dashboard for the threaded runtime: a mesh of
//! garbage rings collected concurrently while one worker is deliberately
//! wedged mid-run. The watchdog names the stalled worker — including the
//! events still sitting in its unflushed trace tail — and the run ends
//! with the terminal health report plus a Prometheus-format metrics
//! snapshot.
//!
//! Run with `cargo run --example health_dashboard`.

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration, TraceConfig, WatchdogConfig};
use acdgc::obs::{HealthReason, Trace};
use acdgc::sim::{merged_metrics, scenarios, threaded, System, ThreadedOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cfg = GcConfig {
        quiet_sweeps: 3,
        trace: TraceConfig::on(),
        watchdog: WatchdogConfig {
            enabled: true,
            stall_after: SimDuration::from_millis(40),
            poll_every: SimDuration::from_millis(5),
            max_stall_reports: 4,
        },
        ..GcConfig::manual()
    };

    // A 6-process mesh holding three distributed garbage rings: real
    // collection work for the workers before they can vote.
    let mut sys = System::new(6, cfg.clone(), NetConfig::instant(), 11);
    let ids: Vec<ProcId> = (0..6).map(ProcId).collect();
    for span in [3, 4, 5] {
        scenarios::ring(&mut sys, &ids, span, false);
    }

    // The fault: worker 4 goes quiet for ~120ms the first time it enters
    // an iteration with its vote held — long past `stall_after`, so the
    // watchdog must flag it while the rest of the mesh keeps sweeping.
    let wedged_once = AtomicBool::new(false);
    let sweep_hook: threaded::SweepHook = Arc::new(move |proc, _sweep, voted| {
        if proc.0 == 4 && voted && !wedged_once.swap(true, Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(120));
        }
    });
    // Live dashboard: every report the monitor emits is rendered as it
    // happens, from the monitor thread.
    let on_report: threaded::ReportHook = Arc::new(|report| {
        println!("---- health report ({}) ----", report.reason.name());
        println!("{}", report.render());
    });

    let run = threaded::run_concurrent_collection_observed(
        sys.into_procs(),
        cfg,
        ThreadedOptions {
            sweep_hook: Some(sweep_hook),
            on_report: Some(on_report),
            deadline: Duration::from_secs(30),
            ..ThreadedOptions::default()
        },
    );

    let live: usize = run.procs.iter().map(|p| p.heap.stats().live_objects).sum();
    println!(
        "== run finished: quiescent={}, live={live} ==",
        run.stats.quiescent()
    );
    let stalls = run
        .health
        .iter()
        .filter(|r| r.reason == HealthReason::Stall)
        .count();
    let terminal = run.health.last().expect("watchdog terminal report");
    println!(
        "watchdog: {} report(s), {stalls} stall(s), terminal={}",
        run.health.len(),
        terminal.reason.name()
    );

    // The same data a scrape endpoint would serve: merged per-process
    // counters plus the cross-worker phase-latency histograms.
    println!("\n== prometheus snapshot ==");
    let mut out = String::new();
    merged_metrics(&run.procs).to_prometheus_into(&mut out);
    Trace::collect(run.procs.iter().map(|p| &p.obs))
        .merged_phases()
        .to_prometheus_into(&mut out);
    println!("{out}");
}
