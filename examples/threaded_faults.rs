//! Threaded-runtime demo: one real OS thread per process, bounded
//! single-slot inboxes, seeded message loss on every send — and the run
//! still reclaims a mesh of interlocking distributed cycles, terminating
//! through distributed quiescence votes rather than a deadline.
//!
//! Run with: `cargo run --example threaded_faults [drop_probability] [seed]`
//! (defaults: 0.3, 7)

use acdgc::model::{GcConfig, NetConfig, ProcId, SimDuration};
use acdgc::sim::{scenarios, threaded, System};
use std::sync::atomic::Ordering::Relaxed;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let drop: f64 = args
        .next()
        .map_or(0.3, |s| s.parse().expect("drop ∈ [0,1]"));
    let seed: u64 = args.next().map_or(7, |s| s.parse().expect("seed: u64"));

    // Eight processes, three all-garbage cycles that each cross every
    // process in a different order: heavy CDM fan-out, no local shortcut.
    let mut sys = System::new(8, GcConfig::manual(), NetConfig::instant(), seed);
    let ids: Vec<ProcId> = (0..8).map(ProcId).collect();
    for r in 0..3 {
        let mut order = ids.clone();
        order.rotate_left(r % 8);
        if r % 2 == 1 {
            order.reverse();
        }
        scenarios::ring(&mut sys, &order, 2, false);
    }
    let garbage = sys.total_live_objects();
    println!("built {garbage} objects of distributed cyclic garbage (8 procs, 3 rings)");
    println!("drop probability {drop}, duplicate probability 0.1, channel capacity 1, seed {seed}");

    let cfg = GcConfig {
        candidate_backoff: SimDuration::from_micros(300),
        candidate_backoff_max: SimDuration::from_millis(5),
        channel_capacity: 1,
        ..GcConfig::manual()
    };
    let net = NetConfig {
        gc_drop_probability: drop,
        gc_duplicate_probability: 0.1,
        ..NetConfig::instant()
    };
    let t0 = Instant::now();
    let (procs, stats) = threaded::run_concurrent_collection_with_faults(
        sys.into_procs(),
        cfg,
        net,
        seed,
        Duration::from_secs(60),
    );
    let live: usize = procs.iter().map(|p| p.heap.stats().live_objects).sum();

    println!(
        "\nrun ended after {:?} — {}",
        t0.elapsed(),
        if stats.quiescent() {
            "distributed quiescence (every worker voted, channels provably empty)"
        } else {
            "deadline backstop (extreme loss: reclamation delayed past the window)"
        }
    );
    println!(
        "reclaimed {}/{garbage} objects, {} cycles detected",
        garbage - live,
        stats.cycles_detected.load(Relaxed)
    );
    println!(
        "faults injected: {} dropped, {} duplicated  |  inbox-overflow losses on top",
        stats.faults_injected.load(Relaxed),
        stats.duplicates_injected.load(Relaxed)
    );
    println!(
        "losses by kind: nss={} cdm={} delete={} ack={}",
        stats.nss_dropped.load(Relaxed),
        stats.cdms_dropped.load(Relaxed),
        stats.deletes_dropped.load(Relaxed),
        stats.acks_dropped.load(Relaxed)
    );
    println!(
        "recovery: {} NSS retransmissions, exponential candidate backoff on CDM walks",
        stats.nss_retries.load(Relaxed)
    );
    println!(
        "termination protocol: {} votes cast, {} rescinded",
        stats.votes_cast.load(Relaxed),
        stats.votes_rescinded.load(Relaxed)
    );
    // The protocol's invariant: a quiescent stop means nothing was left.
    // (Under extreme loss the run may instead end at the deadline with
    // garbage remaining — loss only *delays* reclamation; retries would
    // finish it given a longer window.)
    if stats.quiescent() {
        assert_eq!(
            live, 0,
            "quiescence declared with garbage remaining — premature vote"
        );
    } else {
        println!("window elapsed with {live}/{garbage} objects still unreclaimed");
    }
}
