//! Quickstart: build the paper's Figure 3 — a garbage cycle spanning four
//! processes — and watch the hybrid collector reclaim it.
//!
//! Run with: `cargo run --example quickstart`

use acdgc::model::{GcConfig, NetConfig, SimDuration};
use acdgc::sim::{scenarios, System};

fn main() {
    // Four simulated processes with the default periodic GC schedules and
    // a realistic (latency, reliable) network. Seed 42 makes the run
    // reproducible down to every message.
    let mut sys = System::new(4, GcConfig::default(), NetConfig::default(), 42);

    // The paper's Figure 3: {F,H,J}_P2 -> {Q,R,S}_P4 -> {O,M,K}_P3 ->
    // {D,C,B}_P1 -> F_P2, held alive by a root on A_P1.
    let fig = scenarios::fig3(&mut sys);
    println!("built Figure 3: {} live objects", sys.total_live_objects());

    // Run half a second of simulated time: local GCs, NewSetStubs and
    // snapshots all happen, but the rooted cycle must survive.
    sys.run_for(SimDuration::from_millis(500));
    println!(
        "t={:>6}: rooted cycle survives  (live={}, detections started={})",
        sys.clock(),
        sys.total_live_objects(),
        sys.metrics.detections_started
    );

    // Drop the root: the cycle is now distributed garbage that reference
    // listing alone can never reclaim.
    sys.remove_root(fig.a).unwrap();
    println!("root dropped; cycle is now garbage");

    // Keep running: a candidate scan picks F_P2's scion, a CDM walks
    // P2 -> P4 -> P3 -> P1 -> P2, the algebra cancels, the scion dies, and
    // the acyclic DGC unravels the ring.
    let mut t = 0;
    while sys.total_live_objects() > 0 {
        sys.run_for(SimDuration::from_millis(100));
        t += 100;
        assert!(t < 60_000, "should collect within a minute of sim time");
    }
    println!(
        "t={:>6}: cycle fully reclaimed (cycles detected={}, CDMs sent={})",
        sys.clock(),
        sys.metrics.cycles_detected,
        sys.metrics.cdms_sent
    );

    // The oracle agrees, and the collector never touched anything live.
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
    println!("safety violations: 0 — done.");
}
