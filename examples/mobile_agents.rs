//! Mobile agents over unreliable links — the OBIWAN setting of the
//! paper's second implementation (OBIWAN supports mobile agents, object
//! replication and remote invocation).
//!
//! Agents hop between hosts by remote invocation, exporting their state
//! objects as they go and keeping back-references to where they came from
//! — itineraries that loop produce distributed cycles of dead agent
//! state. GC traffic runs over a lossy network (the paper's tolerance
//! claim), and the mutator keeps invoking while detections run (the
//! invocation-counter barrier earns its keep).
//!
//! Run with: `cargo run --example mobile_agents`

use acdgc::model::rng::component_rng;
use acdgc::model::{GcConfig, NetConfig, ObjId, ProcId, RefId, SimDuration};
use acdgc::sim::{InvokeSpec, System};
use rand::Rng;

const HOSTS: usize = 6;
const AGENTS: usize = 8;
const HOPS_PER_AGENT: usize = 5;

fn main() {
    // 15% of GC messages are dropped and 5% duplicated; application
    // invocations are reliable RPC.
    let net = NetConfig {
        gc_drop_probability: 0.15,
        gc_duplicate_probability: 0.05,
        ..NetConfig::default()
    };
    let mut sys = System::new(HOSTS, GcConfig::default(), net, 777);
    let mut rng = component_rng(777, "agents");

    // Each host runs a rooted "agent manager" that owns landing pads.
    let managers: Vec<ObjId> = (0..HOSTS)
        .map(|h| {
            let m = sys.alloc(ProcId(h as u16), 4);
            sys.add_root(m).unwrap();
            m
        })
        .collect();
    // Managers know each other (the agent transport fabric).
    let mut fabric: Vec<Vec<Option<RefId>>> = vec![vec![None; HOSTS]; HOSTS];
    for a in 0..HOSTS {
        for b in 0..HOSTS {
            if a != b {
                fabric[a][b] = Some(sys.create_remote_ref(managers[a], managers[b]).unwrap());
            }
        }
    }

    // Launch agents: an agent is a chain of state objects, one per visited
    // host, each linking back to the previous hop — a loop when the
    // itinerary revisits its origin.
    let mut itineraries = Vec::new();
    for agent in 0..AGENTS {
        let origin = agent % HOSTS;
        let mut host = origin;
        let mut prev_state = sys.alloc(ProcId(host as u16), 2);
        let first_state = prev_state;
        sys.add_local_ref(managers[host], prev_state).unwrap();
        // The agent's active state is pinned by the executing host's stack
        // (a thread-stack root) while the agent runs there.
        sys.add_root(prev_state).unwrap();
        let mut path = vec![host];
        for hop in 0..HOPS_PER_AGENT {
            // Pick the next host; the last hop returns home (a cycle).
            let next = if hop == HOPS_PER_AGENT - 1 {
                origin
            } else {
                let mut n = rng.gen_range(0..HOSTS);
                while n == host {
                    n = rng.gen_range(0..HOSTS);
                }
                n
            };
            // The agent "moves": announce the arrival to the next manager
            // through the fabric (real invocation traffic — it bumps the
            // fabric reference's invocation counters while detections may
            // be in flight), then materialize the state on the next host
            // with a back-reference to the previous hop.
            let via = fabric[host][next].expect("fabric link");
            sys.invoke(ProcId(host as u16), via, InvokeSpec::oneway())
                .unwrap();
            let new_state = sys.alloc(ProcId(next as u16), 2);
            if prev_state.proc == new_state.proc {
                sys.add_local_ref(new_state, prev_state).unwrap();
            } else {
                sys.create_remote_ref(new_state, prev_state).unwrap();
            }
            // The agent now executes at `next`: its new state is stack-
            // pinned there; the old host's stack pin is released.
            sys.add_root(new_state).unwrap();
            sys.remove_root(prev_state).unwrap();
            host = next;
            prev_state = new_state;
            path.push(host);
            sys.run_for(SimDuration::from_millis(rng.gen_range(20..80)));
        }
        // Close the loop: the origin state links the returning one, so the
        // back-references s_k -> s_{k-1} plus this edge form a true cycle
        // s_1 -> s_n -> s_{n-1} -> ... -> s_1 spanning the visited hosts.
        if prev_state.proc == first_state.proc {
            sys.add_local_ref(first_state, prev_state).unwrap();
        } else {
            sys.create_remote_ref(first_state, prev_state).unwrap();
        }
        // The landing manager tracks the returned agent; the stack pin on
        // the final state is released (the agent is idle, held by the
        // manager only).
        sys.add_local_ref(managers[host], prev_state).unwrap();
        sys.remove_root(prev_state).unwrap();
        itineraries.push((first_state, prev_state, path));
    }
    println!(
        "{} agents completed looping itineraries; live objects: {}",
        AGENTS,
        sys.total_live_objects()
    );

    // Agents terminate: managers forget them. Their looped state chains —
    // distributed cycles spanning up to {HOPS_PER_AGENT} hosts — become
    // garbage.
    for (first, last, path) in &itineraries {
        let _ = sys.remove_local_ref(managers[path[0]], *first);
        let _ = sys.remove_local_ref(managers[*path.last().unwrap()], *last);
    }
    println!("all agents terminated; their looped state is now garbage");

    let before = sys.metrics.objects_reclaimed;
    let mut waited = 0;
    while sys.total_live_objects() > HOSTS && waited < 300_000 {
        sys.run_for(SimDuration::from_millis(1000));
        waited += 1000;
    }
    println!(
        "after {waited} ms sim time: live={} (managers only), reclaimed={}, \
         cycles detected={}, CDMs sent={}, GC msgs dropped={}",
        sys.total_live_objects(),
        sys.metrics.objects_reclaimed - before,
        sys.metrics.cycles_detected,
        sys.metrics.cdms_sent,
        sys.net_stats().dropped,
    );
    assert_eq!(
        sys.total_live_objects(),
        HOSTS,
        "exactly the rooted managers remain"
    );
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
    println!("loss-tolerant, asynchronous, and nothing live was touched — done.");
}
