//! A distributed web-object cache — the workload class the paper's
//! introduction motivates (cycles are frequent in distributed object
//! systems; [14] measured the WWW itself as a persistent store).
//!
//! Eight cache nodes hold page objects; pages hyperlink to pages on other
//! nodes (remote references), links are frequently mutual or circular, and
//! pages expire (their pins drop). Expired page rings spanning several
//! nodes are exactly the garbage acyclic DGC cannot reclaim. The example
//! runs sessions of churn and reports what the collector reclaims, with
//! the oracle auditing every step.
//!
//! Run with: `cargo run --example web_cache`

use acdgc::model::rng::component_rng;
use acdgc::model::{GcConfig, NetConfig, ObjId, ProcId, SimDuration};
use acdgc::sim::System;
use rand::Rng;

const NODES: usize = 8;
const PAGES_PER_WAVE: usize = 16;
const WAVES: usize = 6;

fn main() {
    // An expired cache is one big densely-linked garbage clump spanning
    // many nodes — per-reference CDM walks branch factorially there, so
    // this example uses the eager-combine extension (one visit settles a
    // whole node; see DESIGN.md and docs/ALGORITHM.md).
    let cfg = GcConfig {
        eager_combine: true,
        ..GcConfig::default()
    };
    let mut sys = System::new(NODES, cfg, NetConfig::default(), 2026);
    let mut rng = component_rng(2026, "web-cache");

    let mut pinned: Vec<ObjId> = Vec::new(); // pages pinned by clients (roots)
    let mut resident: Vec<ObjId> = Vec::new(); // all pages ever created

    for wave in 1..=WAVES {
        // A wave of new pages lands round-robin across the nodes (with a
        // per-wave offset so topics rotate through the cluster).
        let mut fresh: Vec<ObjId> = (0..PAGES_PER_WAVE)
            .map(|i| {
                let node = ProcId(((i + wave) % NODES) as u16);
                let page = sys.alloc(node, rng.gen_range(1..8));
                sys.add_root(page).unwrap(); // pinned while "hot"
                pinned.push(page);
                page
            })
            .collect();

        // Hyperlinks. Two realistic shapes:
        // (1) "topic rings": each wave's pages cross-link into rings that
        //     span several nodes — the distributed cycles this collector
        //     exists for;
        // (2) citation links from older pages into newer ones (acyclic by
        //     construction: old cites new here, so no back-path forms).
        for ring in fresh.chunks(4) {
            if ring.len() < 2 {
                continue;
            }
            for i in 0..ring.len() {
                let (a, b) = (ring[i], ring[(i + 1) % ring.len()]);
                if a.proc == b.proc {
                    let _ = sys.add_local_ref(a, b);
                } else {
                    let _ = sys.create_remote_ref(a, b);
                }
            }
        }
        let first_fresh = resident.len();
        resident.append(&mut fresh);
        for _ in 0..PAGES_PER_WAVE {
            if first_fresh == 0 {
                break;
            }
            let a = resident[rng.gen_range(0..first_fresh)];
            let b = resident[rng.gen_range(first_fresh..resident.len())];
            if !sys.proc(a.proc).heap.contains(a) || !sys.proc(b.proc).heap.contains(b) {
                continue;
            }
            if a.proc == b.proc {
                let _ = sys.add_local_ref(a, b);
            } else {
                let _ = sys.create_remote_ref(a, b);
            }
        }

        // Old pages cool down: half of the pins drop.
        let unpin = pinned.len() / 2;
        for _ in 0..unpin {
            let i = rng.gen_range(0..pinned.len());
            let page = pinned.swap_remove(i);
            if sys.proc(page.proc).heap.contains(page) {
                let _ = sys.remove_root(page);
            }
        }

        // Let the system run: invocations would go here in a real cache;
        // the GC stack (LGC, NewSetStubs, snapshots, scans) runs on its
        // periodic schedule.
        sys.run_for(SimDuration::from_millis(1_500));

        let oracle = sys.oracle_live().len();
        println!(
            "wave {wave}: live={:>4} (oracle={oracle:>4}) reclaimed={:>4} \
             cycles detected={:>2} scions={:>3}",
            sys.total_live_objects(),
            sys.metrics.objects_reclaimed,
            sys.metrics.cycles_detected,
            sys.total_scions(),
        );
        assert_eq!(sys.metrics.safety_violations(), 0, "audit failed");
    }

    // End of day: every pin drops; the cache must drain completely —
    // including every cross-node cycle of expired pages. The per-wave
    // oracle audits above ran with full safety checking; the long drain
    // is audited by its endpoint instead (every object must be gone).
    sys.check_safety = false;
    for page in pinned.drain(..) {
        if sys.proc(page.proc).heap.contains(page) {
            let _ = sys.remove_root(page);
        }
    }
    let mut waited = 0;
    while sys.total_live_objects() > 0 && waited < 120_000 {
        sys.run_for(SimDuration::from_millis(500));
        waited += 500;
    }
    println!(
        "drained: live={} cycles detected={} CDMs={} detections aborted (IC)={}",
        sys.total_live_objects(),
        sys.metrics.cycles_detected,
        sys.metrics.cdms_sent,
        sys.metrics.detections_aborted_ic,
    );
    assert_eq!(sys.total_live_objects(), 0, "cache fully drained");
    assert_eq!(sys.metrics.safety_violations(), 0);
    sys.check_invariants().unwrap();
    println!("no page was ever reclaimed while a client pinned it — done.");
}
