//! Property tests for the time-series telemetry rings.
//!
//! Decimation-by-2 is the load-bearing trick that keeps arbitrarily long
//! runs inside a fixed sample budget; these properties pin its contract
//! for any (capacity, run length) combination: the bound always holds,
//! the endpoints always survive, and retained samples stay in order.

use acdgc_model::SimTime;
use acdgc_obs::{check_series, Sample, TimeSeries};
use proptest::prelude::*;

fn sample(round: u64) -> Sample {
    Sample {
        at: SimTime(round * 250),
        round,
        live_objects: 1_000 + round % 97,
        cdms_sent: round * 2,
        objects_reclaimed: round / 3,
        ..Sample::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Pushing any number of samples through any capacity never exceeds
    /// the bound and never loses the first or the newest sample.
    #[test]
    fn decimation_bounds_capacity_and_preserves_endpoints(
        capacity in 0usize..64,
        pushes in 1u64..600,
    ) {
        let mut ts = TimeSeries::new(capacity);
        for round in 1..=pushes {
            ts.push(sample(round));
            // The bound is an *invariant*, not a final state: check after
            // every push.
            prop_assert!(ts.len() <= ts.capacity(),
                "len {} over capacity {}", ts.len(), ts.capacity());
            prop_assert_eq!(ts.samples().first().unwrap().round, 1);
            prop_assert_eq!(ts.samples().last().unwrap().round, round);
        }
        prop_assert_eq!(ts.offered(), pushes);
    }

    /// Whatever decimation keeps is still a valid series: rounds strictly
    /// increasing, timestamps and counters monotone — i.e. downsampling
    /// can never manufacture a `--check` violation.
    #[test]
    fn decimated_series_stays_checkable(
        capacity in 0usize..48,
        pushes in 1u64..400,
    ) {
        let mut ts = TimeSeries::new(capacity);
        for round in 1..=pushes {
            ts.push(sample(round));
        }
        let exported: Vec<(Sample, usize)> =
            ts.samples().iter().map(|&s| (s, ts.capacity())).collect();
        let violations = check_series("prop", &exported);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}
