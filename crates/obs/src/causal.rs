//! Causal layer: per-process Lamport clocks, trace-wide happens-before
//! soundness checks, per-detection critical-path waterfalls, and Chrome
//! trace-event (Perfetto) export.
//!
//! Per-process `SimTime`/wall-clock stamps are incomparable across
//! processes, so a `DetectionPath` can show *that* a detection crossed
//! five processes but not *where its latency went*. With
//! `TraceConfig::lamport` on, every recorded event carries a stamp from
//! its process's [`LamportClock`] and every GC message piggybacks the
//! sender's clock value; receivers fold it in ([`LamportClock::witness`])
//! before recording delivery. The resulting stamps are a sound
//! happens-before order: they strictly increase per process, and every
//! receive is stamped above its send ([`check_causal`]).
//!
//! On top of the order, [`waterfall`] reconstructs one detection's
//! **critical path** — the chain of events the terminal verdict actually
//! waited on — and attributes its end-to-end latency to four categories:
//!
//! * `transit` — simulated network latency between a `CdmSent` and its
//!   `CdmDelivered` (sequential runtime);
//! * `queue` — real inbox wait for the same gap in the threaded runtime,
//!   where channel hand-off is instant and the gap is drain latency;
//! * `handling` — same-process time inside a processing step (combine,
//!   summarize/scan work, local forwarding);
//! * `backoff` — gaps between retry attempts of the same scion (the
//!   candidate backoff windows between detections of one saga).
//!
//! Category durations telescope over consecutive chain events, so they
//! sum *exactly* to the reported end-to-end time. [`perfetto_trace`]
//! exports the whole trace as Chrome trace-event JSON — one track per
//! process, one slice per event, flow arrows along every delivered CDM
//! hop — loadable in Perfetto / `chrome://tracing`.

use crate::event::{Event, Recorded};
use crate::trace::{DetectionPath, Trace};
use acdgc_model::{DetectionId, ProcId, SimTime};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A process's logical clock (Lamport 1978). Shared by handle: the
/// embedding runtime clones it out of the process's `ProcTrace` so send
/// and receive paths can read/advance it without holding the sink.
#[derive(Clone, Debug, Default)]
pub struct LamportClock(Arc<AtomicU64>);

impl LamportClock {
    pub fn new() -> LamportClock {
        LamportClock(Arc::new(AtomicU64::new(0)))
    }

    /// Advance past one local event and return its stamp. Stamps start
    /// at 1 — 0 is reserved for "unclocked".
    #[inline]
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fold in a clock value observed on a received message: the local
    /// clock becomes at least `observed`, so every event recorded after
    /// the receive is stamped above the send.
    #[inline]
    pub fn witness(&self, observed: u64) {
        self.0.fetch_max(observed, Ordering::Relaxed);
    }

    /// Current value — the stamp of the latest local event or witnessed
    /// bound. This is what senders piggyback on outgoing messages.
    #[inline]
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Validate the happens-before order of a clocked trace. Two families of
/// violation, both stable under truncation (so suffix traces are checked
/// too):
///
/// * per-process stamps must strictly increase in seq order;
/// * every recorded receive (`CdmDelivered`, `NssApplied`) whose matching
///   send survives must be stamped strictly above the send (above the
///   *minimum* matching send stamp: duplicates and retries share a route
///   key, and every copy's delivery happens after the first send).
///
/// Unclocked events (stamp 0) carry no causal information and are
/// skipped, so unclocked and pre-clock artifacts trivially pass.
pub fn check_causal(trace: &Trace) -> Vec<String> {
    let mut violations = Vec::new();
    let mut last: HashMap<ProcId, (u64, u64)> = HashMap::new();
    for r in &trace.events {
        if r.lamport == 0 {
            continue;
        }
        if let Some(&(lc, seq)) = last.get(&r.proc) {
            if r.lamport <= lc {
                violations.push(format!(
                    "causal[{}]: stamp not increasing: lc {} at seq {} after lc {lc} at seq {seq}",
                    r.proc, r.lamport, r.seq
                ));
            }
        }
        last.insert(r.proc, (r.lamport, r.seq));
    }

    let mut cdm_sends: HashMap<(DetectionId, ProcId, u64, u32), u64> = HashMap::new();
    let mut nss_sends: HashMap<(ProcId, ProcId, u64), u64> = HashMap::new();
    for r in &trace.events {
        if r.lamport == 0 {
            continue;
        }
        match r.event {
            Event::CdmSent {
                id, to, via, hop, ..
            } => {
                let e = cdm_sends.entry((id, to, via.0, hop)).or_insert(u64::MAX);
                *e = (*e).min(r.lamport);
            }
            Event::NssSent { to, seq, .. } => {
                let e = nss_sends.entry((r.proc, to, seq)).or_insert(u64::MAX);
                *e = (*e).min(r.lamport);
            }
            _ => {}
        }
    }
    for r in &trace.events {
        if r.lamport == 0 {
            continue;
        }
        match r.event {
            Event::CdmDelivered { id, via, hop, .. } => {
                if let Some(&s) = cdm_sends.get(&(id, r.proc, via.0, hop)) {
                    if r.lamport <= s {
                        violations.push(format!(
                            "causal[{id}]: CDM receive lc {} ≤ send lc {s} at {} \
                             (via {via}, hop {hop})",
                            r.lamport, r.proc
                        ));
                    }
                }
            }
            Event::NssApplied { from, seq, .. } => {
                if let Some(&s) = nss_sends.get(&(from, r.proc, seq)) {
                    if r.lamport <= s {
                        violations.push(format!(
                            "causal[nss {from}->{} seq {seq}]: receive lc {} ≤ send lc {s}",
                            r.proc, r.lamport
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

/// Latency category of one critical-path segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Simulated network latency of a CDM hop (sequential runtime).
    Transit,
    /// Inbox queue wait of a CDM hop (threaded runtime: channel hand-off
    /// is effectively instant, the gap is drain latency).
    Queue,
    /// Same-process time inside a processing step (combine, local scan /
    /// summarize work, forwarding).
    Handling,
    /// Gap between retry attempts of the same scion (candidate backoff).
    Backoff,
}

impl SegmentKind {
    pub const ALL: [SegmentKind; 4] = [
        SegmentKind::Transit,
        SegmentKind::Queue,
        SegmentKind::Handling,
        SegmentKind::Backoff,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Transit => "transit",
            SegmentKind::Queue => "queue",
            SegmentKind::Handling => "handling",
            SegmentKind::Backoff => "backoff",
        }
    }

    fn glyph(self) -> char {
        match self {
            SegmentKind::Transit => '=',
            SegmentKind::Queue => '~',
            SegmentKind::Handling => '#',
            SegmentKind::Backoff => '.',
        }
    }
}

/// One attributed span of a [`Waterfall`].
#[derive(Clone, Debug)]
pub struct Segment {
    pub kind: SegmentKind,
    pub from: ProcId,
    pub to: ProcId,
    /// Offset from the waterfall origin, µs.
    pub start_us: u64,
    pub dur_us: u64,
    /// What bounded the segment, e.g. `r14 h2` for a CDM hop.
    pub label: String,
}

/// The critical path of one detection (and any earlier attempts of its
/// saga), as a sequence of attributed latency segments.
#[derive(Clone, Debug)]
pub struct Waterfall {
    pub id: DetectionId,
    /// Detections in the saga up to and including `id` (retries of the
    /// same initiator/scion pair); 1 when the first attempt concluded.
    pub attempts: usize,
    /// Recording-clock time of the waterfall origin (first event of the
    /// first attempt).
    pub start_at: SimTime,
    /// End-to-end latency: the exact sum of all segment durations.
    pub total_us: u64,
    pub segments: Vec<Segment>,
}

impl Waterfall {
    /// Total duration per category. Sums exactly to [`Waterfall::total_us`].
    pub fn category_totals(&self) -> [(SegmentKind, u64); 4] {
        let mut totals = SegmentKind::ALL.map(|k| (k, 0u64));
        for seg in &self.segments {
            for (kind, total) in &mut totals {
                if *kind == seg.kind {
                    *total += seg.dur_us;
                }
            }
        }
        totals
    }

    /// Render as ASCII Gantt rows: a category summary header, then one
    /// positioned bar per segment on a shared `width`-column time scale.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.max(8);
        let mut out = String::new();
        let cats = self
            .category_totals()
            .iter()
            .filter(|(_, d)| *d > 0)
            .map(|(k, d)| {
                let pct = (d * 100).checked_div(self.total_us).unwrap_or(0);
                format!("{} {d}µs ({pct}%)", k.name())
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{}: {}µs end-to-end, {} attempt(s): {}",
            self.id,
            self.total_us,
            self.attempts,
            if cats.is_empty() {
                "instantaneous"
            } else {
                &cats
            }
        );
        let scale = self.total_us.max(1);
        for seg in &self.segments {
            let begin = (seg.start_us as u128 * width as u128 / scale as u128) as usize;
            let mut end =
                ((seg.start_us + seg.dur_us) as u128 * width as u128 / scale as u128) as usize;
            let begin = begin.min(width.saturating_sub(1));
            end = end.clamp(begin + 1, width);
            let mut bar: Vec<char> = vec![' '; width];
            for c in &mut bar[begin..end] {
                *c = seg.kind.glyph();
            }
            let route = if seg.from == seg.to {
                format!("{}", seg.from)
            } else {
                format!("{}->{}", seg.from, seg.to)
            };
            let _ = writeln!(
                out,
                "  |{}| {:<8} {:<8} +{}µs {}µs {}",
                bar.into_iter().collect::<String>(),
                seg.kind.name(),
                route,
                seg.start_us,
                seg.dur_us,
                seg.label,
            );
        }
        out
    }
}

/// Hop depth of the processing step an event belongs to, if it is a
/// chain event.
fn step_hop(r: &Recorded) -> Option<u32> {
    match r.event {
        Event::DetectionStarted { .. } => Some(0),
        Event::CdmSent { hop, .. } | Event::CdmDelivered { hop, .. } => Some(hop),
        Event::CycleDetected { hop, .. }
        | Event::DetectionAborted { hop, .. }
        | Event::DetectionDropped { hop, .. }
        | Event::DetectionTerminated { hop, .. } => Some(hop),
        _ => None,
    }
}

/// Walk one detection's critical path backwards from its latest terminal
/// verdict: terminal ← the delivery that opened the terminal's step ← the
/// matching send ← the step that produced the send ← … ← the initiation.
/// Returns the chain oldest-first, or `None` when a link is missing (the
/// ring overwrote it, the filter suppressed it, or the detection never
/// concluded).
fn chain(path: &DetectionPath) -> Option<Vec<Recorded>> {
    let terminal = path
        .events
        .iter()
        .filter(|r| r.event.is_terminal())
        .max_by_key(|r| (r.at, r.seq))?
        .clone();
    let mut links = vec![terminal];
    loop {
        let cur = links.last().unwrap().clone();
        let prev = match cur.event {
            Event::DetectionStarted { .. } => break,
            // A delivery's predecessor is the matching send elsewhere.
            Event::CdmDelivered { via, hop, .. } => path.events.iter().rev().find(|r| {
                r.seq < cur.seq
                    && matches!(
                        r.event,
                        Event::CdmSent { to, via: v, hop: h, .. }
                            if to == cur.proc && v == via && h == hop
                    )
            }),
            // A send's predecessor is the step that produced it: the
            // prior-hop delivery at the same process, or the initiation.
            Event::CdmSent { hop, .. } => path.events.iter().rev().find(|r| {
                r.seq < cur.seq
                    && r.proc == cur.proc
                    && match r.event {
                        Event::DetectionStarted { .. } => hop == 1,
                        Event::CdmDelivered { hop: h, .. } => h + 1 == hop,
                        _ => false,
                    }
            }),
            // A terminal's predecessor is its step opener at the same
            // process: the same-hop delivery, or the initiation at hop 0.
            _ => {
                let hop = step_hop(&cur)?;
                path.events.iter().rev().find(|r| {
                    r.seq < cur.seq
                        && r.proc == cur.proc
                        && match r.event {
                            Event::DetectionStarted { .. } => hop == 0,
                            Event::CdmDelivered { hop: h, .. } => h == hop,
                            _ => false,
                        }
                })
            }
        };
        links.push(prev?.clone());
    }
    links.reverse();
    Some(links)
}

fn chain_label(r: &Recorded) -> String {
    match r.event {
        Event::DetectionStarted { scion, .. } => format!("start[{scion}]"),
        Event::CdmSent { via, hop, .. } => format!("{via} h{hop}"),
        Event::CdmDelivered { via, hop, .. } => format!("deliver {via} h{hop}"),
        _ => r.event.kind().to_string(),
    }
}

/// The initiating process and scion of a detection, used to group retry
/// attempts of the same candidate into one saga.
fn saga_key(path: &DetectionPath) -> Option<(ProcId, u64)> {
    path.events.iter().find_map(|r| match r.event {
        Event::DetectionStarted { scion, .. } => Some((r.proc, scion.0)),
        _ => None,
    })
}

/// Compute the critical-path waterfall of one detection. When earlier
/// detections of the same saga (same initiator and scion) concluded
/// before this one started, their critical paths are prepended and the
/// inter-attempt gaps become `backoff` segments, so the waterfall covers
/// the full time from the first attempt to the final verdict.
///
/// Cross-process hop gaps are labelled `transit` for sequential traces
/// and `queue` for threaded ones ([`Trace::runtime`]); unknown runtimes
/// default to `transit`.
pub fn waterfall(trace: &Trace, id: DetectionId) -> Option<Waterfall> {
    let path = trace.detection(id);
    let this_chain = chain(&path)?;
    let mut chains = Vec::new();
    if let Some(key) = saga_key(&path) {
        let first_at = this_chain[0].at;
        let mut earlier: Vec<DetectionId> = trace
            .events
            .iter()
            .filter(|r| {
                r.proc == key.0
                    && r.at < first_at
                    && matches!(
                        r.event,
                        Event::DetectionStarted { id: d, scion }
                            if d != id && scion.0 == key.1
                    )
            })
            .filter_map(|r| r.event.detection_id())
            .collect();
        earlier.sort();
        earlier.dedup();
        let mut attempts: Vec<Vec<Recorded>> = earlier
            .into_iter()
            .filter_map(|d| chain(&trace.detection(d)))
            .filter(|c| c.last().unwrap().at <= first_at)
            .collect();
        attempts.sort_by_key(|c| (c[0].at, c[0].seq));
        chains.extend(attempts);
    }
    chains.push(this_chain);

    let gap_kind = match trace.runtime.as_deref() {
        Some("threaded") => SegmentKind::Queue,
        _ => SegmentKind::Transit,
    };
    let origin = chains[0][0].at;
    let mut segments = Vec::new();
    let mut total = 0u64;
    let mut prev_end: Option<(SimTime, ProcId)> = None;
    for ch in &chains {
        if let Some((end_at, end_proc)) = prev_end {
            let dur = ch[0].at.0.saturating_sub(end_at.0);
            segments.push(Segment {
                kind: SegmentKind::Backoff,
                from: end_proc,
                to: ch[0].proc,
                start_us: end_at.0.saturating_sub(origin.0),
                dur_us: dur,
                label: "retry wait".to_string(),
            });
            total += dur;
        }
        for win in ch.windows(2) {
            let (a, b) = (&win[0], &win[1]);
            let kind = if a.proc == b.proc {
                SegmentKind::Handling
            } else {
                gap_kind
            };
            let dur = b.at.0.saturating_sub(a.at.0);
            segments.push(Segment {
                kind,
                from: a.proc,
                to: b.proc,
                start_us: a.at.0.saturating_sub(origin.0),
                dur_us: dur,
                label: chain_label(b),
            });
            total += dur;
        }
        prev_end = Some((ch.last().unwrap().at, ch.last().unwrap().proc));
    }
    Some(Waterfall {
        id,
        attempts: chains.len(),
        start_at: origin,
        total_us: total,
        segments,
    })
}

/// The `k` slowest reconstructable waterfalls, by end-to-end latency
/// descending (ties broken by detection id for determinism).
pub fn top_waterfalls(trace: &Trace, k: usize) -> Vec<Waterfall> {
    let mut falls: Vec<Waterfall> = trace
        .detection_ids()
        .into_iter()
        .filter_map(|id| waterfall(trace, id))
        .collect();
    falls.sort_by_key(|w| (std::cmp::Reverse(w.total_us), w.id));
    falls.truncate(k);
    falls
}

/// What [`perfetto_trace`] emitted, for self-validation and CI gating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfettoSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Flow arrow pairs emitted (one per matched CDM delivery).
    pub flows: usize,
    /// `CdmDelivered` events in the trace — every one of these is a
    /// traced CDM hop and should carry a flow when its send survived.
    pub delivered_hops: usize,
    /// Deliveries whose matching send was lost (ring overwrite/filter);
    /// they get no flow arrow.
    pub unmatched_deliveries: usize,
}

/// Export the trace as Chrome trace-event JSON (the legacy JSON format
/// Perfetto and `chrome://tracing` both load):
///
/// * one `process_name` metadata record per process (`pid` = proc id);
/// * one complete (`ph:"X"`) slice per recorded event — phase ends
///   become slices spanning their measured duration, everything else a
///   1µs marker slice;
/// * one flow arrow (`ph:"s"` at the send, `ph:"f"`/`bp:"e"` at the
///   delivery) per delivered CDM hop whose send survived, binding the
///   hop's two marker slices across tracks.
///
/// Timestamps are the recording clocks in µs — wall µs for the threaded
/// runtime, virtual µs for the sequential one.
pub fn perfetto_trace(trace: &Trace) -> (Value, PerfettoSummary) {
    let mut events: Vec<Value> = Vec::new();
    let mut procs: Vec<ProcId> = trace.events.iter().map(|r| r.proc).collect();
    procs.sort();
    procs.dedup();
    for p in &procs {
        events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": p.0,
            "tid": 0,
            "args": {"name": format!("{p}")},
        }));
    }

    for r in &trace.events {
        let (ts, dur, cat) = match r.event {
            Event::PhaseEnded { nanos, .. } => {
                let dur = (nanos / 1_000).max(1);
                (r.at.0.saturating_sub(dur), dur, "phase")
            }
            Event::PhaseStarted { .. } => continue, // its end emits the slice
            _ => (r.at.0, 1, family(&r.event)),
        };
        let mut slice = json!({
            "name": r.event.kind(),
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": r.proc.0,
            "tid": 0,
        });
        if let Value::Object(m) = &mut slice {
            let mut args = serde_json::Map::new();
            args.insert("seq".into(), json!(r.seq));
            if r.lamport > 0 {
                args.insert("lc".into(), json!(r.lamport));
            }
            r.event.payload_into(&mut args);
            m.insert("args".into(), Value::Object(args));
        }
        events.push(slice);
    }

    // Flow arrows: one per delivery whose matching send survived. The
    // route key (id, dest, via, hop) pairs duplicates with their single
    // send, each copy getting its own arrow.
    let mut sends: HashMap<(DetectionId, ProcId, u64, u32), &Recorded> = HashMap::new();
    for r in &trace.events {
        if let Event::CdmSent {
            id, to, via, hop, ..
        } = r.event
        {
            sends.entry((id, to, via.0, hop)).or_insert(r);
        }
    }
    let mut summary = PerfettoSummary::default();
    let mut flow_id = 0u64;
    for r in &trace.events {
        if let Event::CdmDelivered { id, via, hop, .. } = r.event {
            summary.delivered_hops += 1;
            let Some(send) = sends.get(&(id, r.proc, via.0, hop)) else {
                summary.unmatched_deliveries += 1;
                continue;
            };
            flow_id += 1;
            events.push(json!({
                "name": "cdm",
                "cat": "cdm",
                "ph": "s",
                "id": flow_id,
                "ts": send.at.0,
                "pid": send.proc.0,
                "tid": 0,
            }));
            events.push(json!({
                "name": "cdm",
                "cat": "cdm",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": r.at.0,
                "pid": r.proc.0,
                "tid": 0,
            }));
            summary.flows += 1;
        }
    }
    summary.events = events.len();
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    (doc, summary)
}

/// Slice category for non-phase events, so Perfetto's query/filter UI
/// can isolate event families.
fn family(e: &Event) -> &'static str {
    match e {
        Event::NssSent { .. } | Event::NssApplied { .. } | Event::NssAcked { .. } => "nss",
        Event::VoteCast { .. } | Event::VoteRescinded { .. } => "quiescence",
        Event::MutatorOp { .. } => "mutator",
        _ => "detection",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ProcTrace;
    use acdgc_model::{RefId, TraceConfig};

    fn clocked(capacity: usize) -> TraceConfig {
        TraceConfig {
            capacity,
            ..TraceConfig::causal()
        }
    }

    /// Start at P0 (t=10), CDM to P1 (sent t=20, delivered t=50), cycle
    /// verdict at P1 (t=60) — one hop, fully clocked.
    fn one_hop_trace() -> Trace {
        let mut p0 = ProcTrace::new(ProcId(0), &clocked(64));
        let mut p1 = ProcTrace::new(ProcId(1), &clocked(64));
        p1.share_seq(p0.seq_handle());
        let id = DetectionId(7);
        p0.record(
            SimTime(10),
            Event::DetectionStarted {
                id,
                scion: RefId(3),
            },
        );
        p0.record(
            SimTime(20),
            Event::CdmForwarded {
                id,
                hop: 0,
                branches: 1,
                pruned_local: 0,
                pruned_no_new_info: 0,
            },
        );
        p0.record(
            SimTime(20),
            Event::CdmSent {
                id,
                to: ProcId(1),
                via: RefId(5),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        p1.witness(p0.clock_value());
        p1.record(
            SimTime(50),
            Event::CdmDelivered {
                id,
                via: RefId(5),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        p1.record(
            SimTime(60),
            Event::CycleDetected {
                id,
                hop: 1,
                scions: 2,
            },
        );
        Trace::collect([&p0, &p1])
    }

    #[test]
    fn clock_ticks_witnesses_and_shares() {
        let c = LamportClock::new();
        assert_eq!(c.current(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        c.witness(10);
        assert_eq!(c.current(), 10);
        c.witness(5); // witnessing a lower value never rewinds
        assert_eq!(c.current(), 10);
        let shared = c.clone();
        assert_eq!(shared.tick(), 11);
        assert_eq!(c.current(), 11, "handles share one counter");
    }

    #[test]
    fn sound_trace_has_no_causal_violations() {
        let trace = one_hop_trace();
        assert!(trace.events.iter().all(|r| r.lamport > 0));
        assert_eq!(check_causal(&trace), Vec::<String>::new());
        assert!(trace
            .detection(DetectionId(7))
            .check_lamport_increases()
            .is_ok());
        assert!(trace.check().ok());
    }

    #[test]
    fn tampered_receive_clock_is_caught() {
        let mut trace = one_hop_trace();
        // Rewind the delivery's stamp to the send's: receive ≤ send.
        let send_lc = trace
            .events
            .iter()
            .find(|r| matches!(r.event, Event::CdmSent { .. }))
            .unwrap()
            .lamport;
        let deliver = trace
            .events
            .iter_mut()
            .find(|r| matches!(r.event, Event::CdmDelivered { .. }))
            .unwrap();
        deliver.lamport = send_lc;
        let v = check_causal(&trace);
        assert!(
            v.iter().any(|s| s.contains("receive lc")),
            "expected a receive-clock violation, got {v:?}"
        );
        assert!(!trace.check().ok());
    }

    #[test]
    fn per_process_regression_is_caught_even_on_suffix_traces() {
        let mut trace = one_hop_trace();
        trace.overwritten = 3; // pretend the ring wrapped
        let last = trace.events.last_mut().unwrap();
        last.lamport = 1; // P1's stamps now regress
        let check = trace.check();
        assert!(check.skipped_overwritten);
        assert!(
            check
                .causal_violations
                .iter()
                .any(|s| s.contains("not increasing")),
            "suffix traces must still be causally checked: {check:?}"
        );
        assert!(!check.ok());
    }

    #[test]
    fn unclocked_traces_trivially_pass() {
        let mut pt = ProcTrace::new(ProcId(0), &TraceConfig::on());
        pt.record(
            SimTime(1),
            Event::DetectionStarted {
                id: DetectionId(1),
                scion: RefId(1),
            },
        );
        let trace = Trace::collect([&pt]);
        assert!(trace.events.iter().all(|r| r.lamport == 0));
        assert_eq!(check_causal(&trace), Vec::<String>::new());
    }

    #[test]
    fn waterfall_categories_sum_exactly_to_end_to_end() {
        let trace = one_hop_trace();
        let w = waterfall(&trace, DetectionId(7)).expect("complete chain");
        assert_eq!(w.attempts, 1);
        assert_eq!(w.start_at, SimTime(10));
        assert_eq!(w.total_us, 50, "t=10 start to t=60 verdict");
        let sum: u64 = w.category_totals().iter().map(|(_, d)| d).sum();
        assert_eq!(sum, w.total_us);
        // Unknown runtime defaults the hop gap to transit.
        let transit = w
            .category_totals()
            .iter()
            .find(|(k, _)| *k == SegmentKind::Transit)
            .unwrap()
            .1;
        assert_eq!(transit, 30, "sent t=20 → delivered t=50");
        let render = w.render(32);
        assert!(render.contains("50µs end-to-end"), "{render}");
        assert!(render.contains("transit"), "{render}");

        let threaded = trace.clone().with_runtime("threaded");
        let w = waterfall(&threaded, DetectionId(7)).unwrap();
        assert!(
            w.segments.iter().any(|s| s.kind == SegmentKind::Queue),
            "threaded hop gaps are queue wait"
        );
    }

    #[test]
    fn retries_group_into_a_saga_with_backoff() {
        let mut p0 = ProcTrace::new(ProcId(0), &clocked(64));
        let scion = RefId(3);
        // Attempt 1: starts t=10, terminates locally t=15.
        p0.record(
            SimTime(10),
            Event::DetectionStarted {
                id: DetectionId(1),
                scion,
            },
        );
        p0.record(
            SimTime(15),
            Event::DetectionTerminated {
                id: DetectionId(1),
                hop: 0,
                reason: crate::event::TermReason::NoNewInformation,
            },
        );
        // Backoff window, then attempt 2: t=40 → cycle at t=45.
        p0.record(
            SimTime(40),
            Event::DetectionStarted {
                id: DetectionId(2),
                scion,
            },
        );
        p0.record(
            SimTime(45),
            Event::CycleDetected {
                id: DetectionId(2),
                hop: 0,
                scions: 1,
            },
        );
        let trace = Trace::collect([&p0]);
        let w = waterfall(&trace, DetectionId(2)).unwrap();
        assert_eq!(w.attempts, 2);
        assert_eq!(w.total_us, 35, "t=10 through t=45");
        let backoff = w
            .category_totals()
            .iter()
            .find(|(k, _)| *k == SegmentKind::Backoff)
            .unwrap()
            .1;
        assert_eq!(backoff, 25, "t=15 → t=40 retry wait");
        let sum: u64 = w.category_totals().iter().map(|(_, d)| d).sum();
        assert_eq!(sum, w.total_us);
    }

    #[test]
    fn top_waterfalls_orders_by_latency() {
        let trace = one_hop_trace();
        let falls = top_waterfalls(&trace, 5);
        assert_eq!(falls.len(), 1);
        assert_eq!(falls[0].id, DetectionId(7));
        assert!(top_waterfalls(&trace, 0).is_empty());
    }

    #[test]
    fn perfetto_export_has_a_flow_per_delivered_hop() {
        let trace = one_hop_trace();
        let (doc, summary) = perfetto_trace(&trace);
        assert_eq!(summary.delivered_hops, 1);
        assert_eq!(summary.flows, 1);
        assert_eq!(summary.unmatched_deliveries, 0);
        let text = serde_json::to_string(&doc).unwrap();
        // Round-trips as JSON and carries both halves of the flow arrow.
        let back: Value = serde_json::from_str(&text).unwrap();
        let events = match &back {
            Value::Object(m) => match m.get("traceEvents") {
                Some(Value::Array(a)) => a,
                _ => panic!("no traceEvents array"),
            },
            _ => panic!("not an object"),
        };
        assert_eq!(events.len(), summary.events);
        assert_eq!(text.matches("\"ph\":\"s\"").count(), 1, "{text}");
        assert_eq!(text.matches("\"ph\":\"f\"").count(), 1, "{text}");
        assert_eq!(
            text.matches("\"process_name\"").count(),
            2,
            "one track per process"
        );
    }

    #[test]
    fn perfetto_counts_unmatched_deliveries_when_the_send_is_lost() {
        let mut trace = one_hop_trace();
        trace
            .events
            .retain(|r| !matches!(r.event, Event::CdmSent { .. }));
        let (_, summary) = perfetto_trace(&trace);
        assert_eq!(summary.delivered_hops, 1);
        assert_eq!(summary.flows, 0);
        assert_eq!(summary.unmatched_deliveries, 1);
    }
}
