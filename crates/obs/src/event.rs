//! The typed event taxonomy: everything the collector stack can report,
//! one variant per observable transition of the CDM lifecycle, the
//! reference-listing layer, the phase clocks, and the quiescence protocol.

use acdgc_model::{DetectionId, ProcId, RefId, SimTime, TraceFilter};
use serde_json::{json, Map, Number, Value};

/// Pull a `u64` field out of a JSON object (the vendored `serde_json`
/// exposes no `as_u64`, so the extraction pattern lives here once).
pub(crate) fn field_u64(m: &Map, key: &str) -> Option<u64> {
    match m.get(key)? {
        Value::Number(Number::U64(v)) => Some(*v),
        Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

pub(crate) fn field_u32(m: &Map, key: &str) -> Option<u32> {
    field_u64(m, key).and_then(|v| u32::try_from(v).ok())
}

pub(crate) fn field_u16(m: &Map, key: &str) -> Option<u16> {
    field_u64(m, key).and_then(|v| u16::try_from(v).ok())
}

pub(crate) fn field_bool(m: &Map, key: &str) -> Option<bool> {
    match m.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

pub(crate) fn field_str<'a>(m: &'a Map, key: &str) -> Option<&'a str> {
    match m.get(key)? {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

/// A timed collector phase. Phases are bracketed by
/// [`Event::PhaseStarted`] / [`Event::PhaseEnded`] pairs and feed the
/// per-phase log2 duration histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Local mark+sweep collection.
    Lgc,
    /// Raw heap/table snapshot capture (`acdgc_snapshot::capture`).
    SnapshotCapture,
    /// Single-pass SCC-condensation summarizer.
    SummarizeEngine,
    /// Reference per-scion-BFS summarizer.
    SummarizeReference,
    /// Candidate scan over the published summary.
    CandidateScan,
    /// One CDM combine step (initiate or deliver) including outcome
    /// handling. Histogram-only: per-CDM start/end events would double the
    /// trace volume for no forensic value.
    CdmHandling,
}

impl Phase {
    pub const COUNT: usize = 6;
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Lgc,
        Phase::SnapshotCapture,
        Phase::SummarizeEngine,
        Phase::SummarizeReference,
        Phase::CandidateScan,
        Phase::CdmHandling,
    ];

    pub fn index(self) -> usize {
        match self {
            Phase::Lgc => 0,
            Phase::SnapshotCapture => 1,
            Phase::SummarizeEngine => 2,
            Phase::SummarizeReference => 3,
            Phase::CandidateScan => 4,
            Phase::CdmHandling => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Lgc => "lgc",
            Phase::SnapshotCapture => "snapshot_capture",
            Phase::SummarizeEngine => "summarize_engine",
            Phase::SummarizeReference => "summarize_reference",
            Phase::CandidateScan => "candidate_scan",
            Phase::CdmHandling => "cdm_handling",
        }
    }

    /// Inverse of [`Phase::name`], for parsing exported traces.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Why a detection was dropped without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Safety rule 1: addressed scion absent from the current summary.
    NoScion,
    /// Backstop hop cap exceeded.
    HopCap,
}

impl DropReason {
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NoScion => "no_scion",
            DropReason::HopCap => "hop_cap",
        }
    }

    pub fn from_name(name: &str) -> Option<DropReason> {
        [DropReason::NoScion, DropReason::HopCap]
            .into_iter()
            .find(|r| r.name() == name)
    }
}

/// Why a detection terminated normally (no cycle, no safety violation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermReason {
    NoStubs,
    AllStubsLocallyReachable,
    NoNewInformation,
    BudgetExhausted,
}

impl TermReason {
    pub fn name(self) -> &'static str {
        match self {
            TermReason::NoStubs => "no_stubs",
            TermReason::AllStubsLocallyReachable => "all_stubs_locally_reachable",
            TermReason::NoNewInformation => "no_new_information",
            TermReason::BudgetExhausted => "budget_exhausted",
        }
    }

    pub fn from_name(name: &str) -> Option<TermReason> {
        [
            TermReason::NoStubs,
            TermReason::AllStubsLocallyReachable,
            TermReason::NoNewInformation,
            TermReason::BudgetExhausted,
        ]
        .into_iter()
        .find(|r| r.name() == name)
    }
}

/// What a concurrent-mutator thread did in one [`Event::MutatorOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutatorOpKind {
    /// A new rooted object was allocated on the recording process.
    Allocate,
    /// A remote reference (stub/scion pair) was created or re-shared from
    /// a holder on the recording process.
    Export,
    /// An invocation travelled along a remote reference; the target scion
    /// was pinned for the duration (recorded at the sending process).
    Invoke,
    /// A remote reference was dropped by its holder on the recording
    /// process.
    DropRef,
    /// A mutator-allocated object was unrooted on the recording process,
    /// turning its subgraph into (possibly cyclic, possibly distributed)
    /// garbage.
    DropRoot,
}

impl MutatorOpKind {
    /// Stable snake_case name, used in the JSONL `op` field.
    pub fn name(self) -> &'static str {
        match self {
            MutatorOpKind::Allocate => "allocate",
            MutatorOpKind::Export => "export",
            MutatorOpKind::Invoke => "invoke",
            MutatorOpKind::DropRef => "drop_ref",
            MutatorOpKind::DropRoot => "drop_root",
        }
    }

    /// Inverse of [`MutatorOpKind::name`], for parsing exported traces.
    pub fn from_name(name: &str) -> Option<MutatorOpKind> {
        [
            MutatorOpKind::Allocate,
            MutatorOpKind::Export,
            MutatorOpKind::Invoke,
            MutatorOpKind::DropRef,
            MutatorOpKind::DropRoot,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// One observable transition. Detection events carry the detection id,
/// the hop depth of the processing step that produced them, and — for
/// wire events — source/target algebra sizes and encoded bytes, so a
/// trace alone reconstructs the paper's §3.1 walk tables.
///
/// Hop convention: the detector increments a CDM's hop counter on
/// delivery, so `CdmSent`/`CdmDelivered` record the depth at which the
/// *receiving* step processes the CDM. A sent/delivered pair for one CDM
/// therefore shares a hop value, and hops strictly increase along every
/// reconstructed path (checked by `DetectionPath::check_hops_increase`).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A detection was initiated from `scion` at the recording process.
    DetectionStarted {
        id: DetectionId,
        scion: RefId,
    },
    /// One CDM derivation left the recording process towards `to`.
    CdmSent {
        id: DetectionId,
        to: ProcId,
        via: RefId,
        hop: u32,
        sources: u32,
        targets: u32,
        bytes: u32,
    },
    /// A CDM arrived at the recording process (pre-combine).
    CdmDelivered {
        id: DetectionId,
        via: RefId,
        hop: u32,
        sources: u32,
        targets: u32,
        bytes: u32,
    },
    /// A processing step (initiate or deliver) combined the CDM with the
    /// local summary and forwarded `branches` derivations; the pruned
    /// counters record sibling branches that did not forward.
    CdmForwarded {
        id: DetectionId,
        hop: u32,
        branches: u32,
        pruned_local: u32,
        pruned_no_new_info: u32,
    },
    /// Matching cancelled completely: `scions` proven-garbage scions will
    /// be deleted.
    CycleDetected {
        id: DetectionId,
        hop: u32,
        scions: u32,
    },
    /// §3.2 invocation-counter barrier fired.
    DetectionAborted {
        id: DetectionId,
        hop: u32,
        ref_id: RefId,
        source_ic: u64,
        target_ic: u64,
    },
    DetectionDropped {
        id: DetectionId,
        hop: u32,
        reason: DropReason,
    },
    DetectionTerminated {
        id: DetectionId,
        hop: u32,
        reason: TermReason,
    },
    /// A cycle verdict deleted this scion at the recording (owning)
    /// process.
    ScionDeleted {
        scion: RefId,
        incarnation: u32,
    },
    /// Reference listing: a `NewSetStubs` left for `to`.
    NssSent {
        to: ProcId,
        seq: u64,
        live_refs: u32,
        retry: bool,
    },
    /// A `NewSetStubs` from `from` was applied (or rejected as stale).
    NssApplied {
        from: ProcId,
        seq: u64,
        removed: u32,
        stale: bool,
    },
    /// Threaded runtime: an NSS acknowledgement left for `to`.
    NssAcked {
        to: ProcId,
        seq: u64,
    },
    /// A candidate scan picked `picked` scions and deferred `deferred`
    /// (backoff window / scan cap).
    CandidatesScanned {
        picked: u32,
        deferred: u32,
    },
    PhaseStarted {
        phase: Phase,
    },
    PhaseEnded {
        phase: Phase,
        nanos: u64,
    },
    /// Threaded runtime: this worker cast its quiescence vote after
    /// `sweep` sweeps.
    VoteCast {
        sweep: u64,
    },
    /// Threaded runtime: a voted worker received a message and rescinded.
    VoteRescinded {
        sweep: u64,
    },
    /// Threaded runtime: a concurrent-mutator thread performed one
    /// operation touching the recording process. Lamport-stamped like any
    /// other event, so `--critical-path` waterfalls show collector-vs-
    /// mutator interference on the same causal axis. `ref_id` names the
    /// remote reference involved, when one is (allocate/drop-root carry
    /// none).
    MutatorOp {
        op: MutatorOpKind,
        ref_id: Option<RefId>,
    },
}

impl Event {
    /// The detection this event belongs to, if any.
    pub fn detection_id(&self) -> Option<DetectionId> {
        match *self {
            Event::DetectionStarted { id, .. }
            | Event::CdmSent { id, .. }
            | Event::CdmDelivered { id, .. }
            | Event::CdmForwarded { id, .. }
            | Event::CycleDetected { id, .. }
            | Event::DetectionAborted { id, .. }
            | Event::DetectionDropped { id, .. }
            | Event::DetectionTerminated { id, .. } => Some(id),
            _ => None,
        }
    }

    /// Whether this event ends its detection (exactly one terminal closes
    /// every processing step that does not forward).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::CycleDetected { .. }
                | Event::DetectionAborted { .. }
                | Event::DetectionDropped { .. }
                | Event::DetectionTerminated { .. }
        )
    }

    /// Stable snake_case discriminant, used as the JSONL `type` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DetectionStarted { .. } => "detection_started",
            Event::CdmSent { .. } => "cdm_sent",
            Event::CdmDelivered { .. } => "cdm_delivered",
            Event::CdmForwarded { .. } => "cdm_forwarded",
            Event::CycleDetected { .. } => "cycle_detected",
            Event::DetectionAborted { .. } => "detection_aborted",
            Event::DetectionDropped { .. } => "detection_dropped",
            Event::DetectionTerminated { .. } => "detection_terminated",
            Event::ScionDeleted { .. } => "scion_deleted",
            Event::NssSent { .. } => "nss_sent",
            Event::NssApplied { .. } => "nss_applied",
            Event::NssAcked { .. } => "nss_acked",
            Event::CandidatesScanned { .. } => "candidates_scanned",
            Event::PhaseStarted { .. } => "phase_started",
            Event::PhaseEnded { .. } => "phase_ended",
            Event::VoteCast { .. } => "vote_cast",
            Event::VoteRescinded { .. } => "vote_rescinded",
            Event::MutatorOp { .. } => "mutator_op",
        }
    }

    /// Insert this event's payload fields into a JSON object that already
    /// carries the `type` discriminant — the shared half of
    /// [`Recorded::to_json`] and the health-report pending-tail export.
    pub fn payload_into(&self, obj: &mut Map) {
        match self {
            Event::DetectionStarted { id, scion } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("scion".into(), json!(scion.0));
            }
            Event::CdmSent {
                id,
                to,
                via,
                hop,
                sources,
                targets,
                bytes,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("to".into(), json!(to.0));
                obj.insert("via".into(), json!(via.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("sources".into(), json!(*sources));
                obj.insert("targets".into(), json!(*targets));
                obj.insert("bytes".into(), json!(*bytes));
            }
            Event::CdmDelivered {
                id,
                via,
                hop,
                sources,
                targets,
                bytes,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("via".into(), json!(via.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("sources".into(), json!(*sources));
                obj.insert("targets".into(), json!(*targets));
                obj.insert("bytes".into(), json!(*bytes));
            }
            Event::CdmForwarded {
                id,
                hop,
                branches,
                pruned_local,
                pruned_no_new_info,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("branches".into(), json!(*branches));
                obj.insert("pruned_local".into(), json!(*pruned_local));
                obj.insert("pruned_no_new_info".into(), json!(*pruned_no_new_info));
            }
            Event::CycleDetected { id, hop, scions } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("scions".into(), json!(*scions));
            }
            Event::DetectionAborted {
                id,
                hop,
                ref_id,
                source_ic,
                target_ic,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("ref".into(), json!(ref_id.0));
                obj.insert("source_ic".into(), json!(*source_ic));
                obj.insert("target_ic".into(), json!(*target_ic));
            }
            Event::DetectionDropped { id, hop, reason } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("reason".into(), json!(reason.name()));
            }
            Event::DetectionTerminated { id, hop, reason } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("reason".into(), json!(reason.name()));
            }
            Event::ScionDeleted { scion, incarnation } => {
                obj.insert("scion".into(), json!(scion.0));
                obj.insert("incarnation".into(), json!(*incarnation));
            }
            Event::NssSent {
                to,
                seq,
                live_refs,
                retry,
            } => {
                obj.insert("to".into(), json!(to.0));
                obj.insert("nss_seq".into(), json!(*seq));
                obj.insert("live_refs".into(), json!(*live_refs));
                obj.insert("retry".into(), json!(*retry));
            }
            Event::NssApplied {
                from,
                seq,
                removed,
                stale,
            } => {
                obj.insert("from".into(), json!(from.0));
                obj.insert("nss_seq".into(), json!(*seq));
                obj.insert("removed".into(), json!(*removed));
                obj.insert("stale".into(), json!(*stale));
            }
            Event::NssAcked { to, seq } => {
                obj.insert("to".into(), json!(to.0));
                obj.insert("nss_seq".into(), json!(*seq));
            }
            Event::CandidatesScanned { picked, deferred } => {
                obj.insert("picked".into(), json!(*picked));
                obj.insert("deferred".into(), json!(*deferred));
            }
            Event::PhaseStarted { phase } => {
                obj.insert("phase".into(), json!(phase.name()));
            }
            Event::PhaseEnded { phase, nanos } => {
                obj.insert("phase".into(), json!(phase.name()));
                obj.insert("nanos".into(), json!(*nanos));
            }
            Event::VoteCast { sweep } => {
                obj.insert("sweep".into(), json!(*sweep));
            }
            Event::VoteRescinded { sweep } => {
                obj.insert("sweep".into(), json!(*sweep));
            }
            Event::MutatorOp { op, ref_id } => {
                obj.insert("op".into(), json!(op.name()));
                if let Some(r) = ref_id {
                    obj.insert("ref".into(), json!(r.0));
                }
            }
        }
    }

    /// Inverse of the payload half of [`Recorded::to_json`]: rebuild an
    /// event from its `type` discriminant and the flat JSON object it was
    /// exported as. `None` on unknown kinds or missing/mistyped fields.
    pub fn from_json(kind: &str, m: &Map) -> Option<Event> {
        let id = || field_u64(m, "id").map(DetectionId);
        Some(match kind {
            "detection_started" => Event::DetectionStarted {
                id: id()?,
                scion: RefId(field_u64(m, "scion")?),
            },
            "cdm_sent" => Event::CdmSent {
                id: id()?,
                to: ProcId(field_u16(m, "to")?),
                via: RefId(field_u64(m, "via")?),
                hop: field_u32(m, "hop")?,
                sources: field_u32(m, "sources")?,
                targets: field_u32(m, "targets")?,
                bytes: field_u32(m, "bytes")?,
            },
            "cdm_delivered" => Event::CdmDelivered {
                id: id()?,
                via: RefId(field_u64(m, "via")?),
                hop: field_u32(m, "hop")?,
                sources: field_u32(m, "sources")?,
                targets: field_u32(m, "targets")?,
                bytes: field_u32(m, "bytes")?,
            },
            "cdm_forwarded" => Event::CdmForwarded {
                id: id()?,
                hop: field_u32(m, "hop")?,
                branches: field_u32(m, "branches")?,
                pruned_local: field_u32(m, "pruned_local")?,
                pruned_no_new_info: field_u32(m, "pruned_no_new_info")?,
            },
            "cycle_detected" => Event::CycleDetected {
                id: id()?,
                hop: field_u32(m, "hop")?,
                scions: field_u32(m, "scions")?,
            },
            "detection_aborted" => Event::DetectionAborted {
                id: id()?,
                hop: field_u32(m, "hop")?,
                ref_id: RefId(field_u64(m, "ref")?),
                source_ic: field_u64(m, "source_ic")?,
                target_ic: field_u64(m, "target_ic")?,
            },
            "detection_dropped" => Event::DetectionDropped {
                id: id()?,
                hop: field_u32(m, "hop")?,
                reason: DropReason::from_name(field_str(m, "reason")?)?,
            },
            "detection_terminated" => Event::DetectionTerminated {
                id: id()?,
                hop: field_u32(m, "hop")?,
                reason: TermReason::from_name(field_str(m, "reason")?)?,
            },
            "scion_deleted" => Event::ScionDeleted {
                scion: RefId(field_u64(m, "scion")?),
                incarnation: field_u32(m, "incarnation")?,
            },
            "nss_sent" => Event::NssSent {
                to: ProcId(field_u16(m, "to")?),
                seq: field_u64(m, "nss_seq")?,
                live_refs: field_u32(m, "live_refs")?,
                retry: field_bool(m, "retry")?,
            },
            "nss_applied" => Event::NssApplied {
                from: ProcId(field_u16(m, "from")?),
                seq: field_u64(m, "nss_seq")?,
                removed: field_u32(m, "removed")?,
                stale: field_bool(m, "stale")?,
            },
            "nss_acked" => Event::NssAcked {
                to: ProcId(field_u16(m, "to")?),
                seq: field_u64(m, "nss_seq")?,
            },
            "candidates_scanned" => Event::CandidatesScanned {
                picked: field_u32(m, "picked")?,
                deferred: field_u32(m, "deferred")?,
            },
            "phase_started" => Event::PhaseStarted {
                phase: Phase::from_name(field_str(m, "phase")?)?,
            },
            "phase_ended" => Event::PhaseEnded {
                phase: Phase::from_name(field_str(m, "phase")?)?,
                nanos: field_u64(m, "nanos")?,
            },
            "vote_cast" => Event::VoteCast {
                sweep: field_u64(m, "sweep")?,
            },
            "vote_rescinded" => Event::VoteRescinded {
                sweep: field_u64(m, "sweep")?,
            },
            "mutator_op" => Event::MutatorOp {
                op: MutatorOpKind::from_name(field_str(m, "op")?)?,
                ref_id: match m.get("ref") {
                    None => None,
                    Some(_) => Some(RefId(field_u64(m, "ref")?)),
                },
            },
            _ => return None,
        })
    }

    /// Whether `filter` admits this event.
    pub fn passes(&self, filter: &TraceFilter) -> bool {
        match self {
            Event::DetectionStarted { .. }
            | Event::CdmSent { .. }
            | Event::CdmDelivered { .. }
            | Event::CdmForwarded { .. }
            | Event::CycleDetected { .. }
            | Event::DetectionAborted { .. }
            | Event::DetectionDropped { .. }
            | Event::DetectionTerminated { .. }
            | Event::ScionDeleted { .. }
            | Event::CandidatesScanned { .. } => filter.detections,
            Event::NssSent { .. } | Event::NssApplied { .. } | Event::NssAcked { .. } => filter.nss,
            Event::PhaseStarted { .. } | Event::PhaseEnded { .. } => filter.phases,
            Event::VoteCast { .. } | Event::VoteRescinded { .. } => filter.quiescence,
            Event::MutatorOp { .. } => filter.mutator,
        }
    }
}

/// An [`Event`] as it sits in a ring buffer: stamped with a globally
/// unique, totally ordered sequence number (one shared atomic across all
/// processes of a run), the recording process, and the recording
/// process's clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Recorded {
    pub seq: u64,
    pub at: SimTime,
    pub proc: ProcId,
    /// Lamport stamp assigned by the recording process's logical clock.
    /// `0` means the trace ran without clocks (`TraceConfig::lamport`
    /// off); real stamps start at 1 and strictly increase per process.
    pub lamport: u64,
    pub event: Event,
}

impl Recorded {
    /// One flat JSON object per event — the JSONL schema (documented in
    /// DESIGN.md §Observability). The `lc` key is emitted only for
    /// clocked events, so unclocked artifacts keep their old shape.
    pub fn to_json(&self) -> Value {
        let mut v = json!({
            "seq": self.seq,
            "at_us": self.at.0,
            "proc": self.proc.0,
            "type": self.event.kind(),
        });
        let obj = match &mut v {
            Value::Object(m) => m,
            _ => unreachable!(),
        };
        if self.lamport > 0 {
            obj.insert("lc".into(), json!(self.lamport));
        }
        self.event.payload_into(obj);
        v
    }

    /// Inverse of [`Recorded::to_json`], for re-ingesting JSONL exports
    /// (`acdgc-report`). `None` when the object is not an event line.
    /// A missing `lc` parses as 0, so pre-clock artifacts still load.
    pub fn from_json(v: &Value) -> Option<Recorded> {
        let m = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        let kind = field_str(m, "type")?;
        Some(Recorded {
            seq: field_u64(m, "seq")?,
            at: SimTime(field_u64(m, "at_us")?),
            proc: ProcId(field_u16(m, "proc")?),
            lamport: field_u64(m, "lc").unwrap_or(0),
            event: Event::from_json(kind, m)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        let id = DetectionId(1);
        assert!(Event::CycleDetected {
            id,
            hop: 3,
            scions: 4
        }
        .is_terminal());
        assert!(Event::DetectionTerminated {
            id,
            hop: 0,
            reason: TermReason::NoStubs
        }
        .is_terminal());
        assert!(!Event::DetectionStarted {
            id,
            scion: RefId(9)
        }
        .is_terminal());
        assert!(!Event::CdmForwarded {
            id,
            hop: 1,
            branches: 2,
            pruned_local: 0,
            pruned_no_new_info: 0
        }
        .is_terminal());
    }

    #[test]
    fn filter_routes_families() {
        let only_nss = TraceFilter {
            detections: false,
            nss: true,
            phases: false,
            quiescence: false,
            mutator: false,
        };
        assert!(Event::NssAcked {
            to: ProcId(1),
            seq: 3
        }
        .passes(&only_nss));
        assert!(!Event::PhaseStarted { phase: Phase::Lgc }.passes(&only_nss));
        assert!(!Event::VoteCast { sweep: 2 }.passes(&only_nss));
        assert!(!Event::DetectionStarted {
            id: DetectionId(0),
            scion: RefId(1)
        }
        .passes(&only_nss));
        assert!(!Event::MutatorOp {
            op: MutatorOpKind::Invoke,
            ref_id: Some(RefId(4))
        }
        .passes(&only_nss));
        let only_mutator = TraceFilter {
            detections: false,
            nss: false,
            phases: false,
            quiescence: false,
            mutator: true,
        };
        assert!(Event::MutatorOp {
            op: MutatorOpKind::Allocate,
            ref_id: None
        }
        .passes(&only_mutator));
    }

    #[test]
    fn json_carries_discriminant_and_payload() {
        let r = Recorded {
            seq: 17,
            at: SimTime(42),
            proc: ProcId(3),
            lamport: 9,
            event: Event::CdmSent {
                id: DetectionId(7),
                to: ProcId(4),
                via: RefId(19),
                hop: 2,
                sources: 3,
                targets: 2,
                bytes: 120,
            },
        };
        let line = serde_json::to_string(&r.to_json()).unwrap();
        assert!(line.contains("\"type\":\"cdm_sent\""), "{line}");
        assert!(line.contains("\"seq\":17"), "{line}");
        assert!(line.contains("\"hop\":2"), "{line}");
        assert!(line.contains("\"lc\":9"), "{line}");
    }

    #[test]
    fn unclocked_events_omit_the_lamport_key_and_parse_back_as_zero() {
        let r = Recorded {
            seq: 1,
            at: SimTime(2),
            proc: ProcId(0),
            lamport: 0,
            event: Event::VoteCast { sweep: 4 },
        };
        let line = serde_json::to_string(&r.to_json()).unwrap();
        assert!(!line.contains("\"lc\""), "{line}");
        let parsed = serde_json::from_str(&line).unwrap();
        let back = Recorded::from_json(&parsed).unwrap();
        assert_eq!(back.lamport, 0);
        assert_eq!(back, r);
    }

    /// Every variant must survive a JSON round trip exactly — the report
    /// CLI rebuilds detections from the exported lines.
    #[test]
    fn every_variant_round_trips_through_json() {
        let id = DetectionId(7);
        let events = vec![
            Event::DetectionStarted {
                id,
                scion: RefId(3),
            },
            Event::CdmSent {
                id,
                to: ProcId(4),
                via: RefId(19),
                hop: 2,
                sources: 3,
                targets: 2,
                bytes: 120,
            },
            Event::CdmDelivered {
                id,
                via: RefId(19),
                hop: 2,
                sources: 3,
                targets: 2,
                bytes: 120,
            },
            Event::CdmForwarded {
                id,
                hop: 2,
                branches: 2,
                pruned_local: 1,
                pruned_no_new_info: 0,
            },
            Event::CycleDetected {
                id,
                hop: 5,
                scions: 4,
            },
            Event::DetectionAborted {
                id,
                hop: 1,
                ref_id: RefId(2),
                source_ic: 10,
                target_ic: 11,
            },
            Event::DetectionDropped {
                id,
                hop: 9,
                reason: DropReason::HopCap,
            },
            Event::DetectionTerminated {
                id,
                hop: 3,
                reason: TermReason::NoNewInformation,
            },
            Event::ScionDeleted {
                scion: RefId(3),
                incarnation: 2,
            },
            Event::NssSent {
                to: ProcId(1),
                seq: 5,
                live_refs: 7,
                retry: true,
            },
            Event::NssApplied {
                from: ProcId(2),
                seq: 5,
                removed: 1,
                stale: false,
            },
            Event::NssAcked {
                to: ProcId(2),
                seq: 5,
            },
            Event::CandidatesScanned {
                picked: 2,
                deferred: 1,
            },
            Event::PhaseStarted { phase: Phase::Lgc },
            Event::PhaseEnded {
                phase: Phase::CdmHandling,
                nanos: 12345,
            },
            Event::VoteCast { sweep: 9 },
            Event::VoteRescinded { sweep: 10 },
            Event::MutatorOp {
                op: MutatorOpKind::Export,
                ref_id: Some(RefId(281474976710656)),
            },
            Event::MutatorOp {
                op: MutatorOpKind::DropRoot,
                ref_id: None,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let rec = Recorded {
                seq: i as u64,
                at: SimTime(100 + i as u64),
                proc: ProcId(3),
                lamport: 1 + i as u64,
                event,
            };
            let line = serde_json::to_string(&rec.to_json()).unwrap();
            let parsed = serde_json::from_str(&line).unwrap();
            let back = Recorded::from_json(&parsed)
                .unwrap_or_else(|| panic!("variant failed to parse back: {line}"));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn from_json_rejects_malformed_lines() {
        for bad in [
            r#"{"type":"trace_meta","events":3,"overwritten":0}"#,
            r#"{"type":"vote_cast","seq":1,"at_us":2,"proc":0}"#, // missing sweep
            r#"{"type":"cdm_sent","seq":1,"at_us":2,"proc":0,"id":1}"#, // missing wire fields
            r#"[1,2,3]"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(Recorded::from_json(&v).is_none(), "{bad}");
        }
    }
}
