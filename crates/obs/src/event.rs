//! The typed event taxonomy: everything the collector stack can report,
//! one variant per observable transition of the CDM lifecycle, the
//! reference-listing layer, the phase clocks, and the quiescence protocol.

use acdgc_model::{DetectionId, ProcId, RefId, SimTime, TraceFilter};
use serde_json::{json, Value};

/// A timed collector phase. Phases are bracketed by
/// [`Event::PhaseStarted`] / [`Event::PhaseEnded`] pairs and feed the
/// per-phase log2 duration histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Local mark+sweep collection.
    Lgc,
    /// Raw heap/table snapshot capture (`acdgc_snapshot::capture`).
    SnapshotCapture,
    /// Single-pass SCC-condensation summarizer.
    SummarizeEngine,
    /// Reference per-scion-BFS summarizer.
    SummarizeReference,
    /// Candidate scan over the published summary.
    CandidateScan,
    /// One CDM combine step (initiate or deliver) including outcome
    /// handling. Histogram-only: per-CDM start/end events would double the
    /// trace volume for no forensic value.
    CdmHandling,
}

impl Phase {
    pub const COUNT: usize = 6;
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Lgc,
        Phase::SnapshotCapture,
        Phase::SummarizeEngine,
        Phase::SummarizeReference,
        Phase::CandidateScan,
        Phase::CdmHandling,
    ];

    pub fn index(self) -> usize {
        match self {
            Phase::Lgc => 0,
            Phase::SnapshotCapture => 1,
            Phase::SummarizeEngine => 2,
            Phase::SummarizeReference => 3,
            Phase::CandidateScan => 4,
            Phase::CdmHandling => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Lgc => "lgc",
            Phase::SnapshotCapture => "snapshot_capture",
            Phase::SummarizeEngine => "summarize_engine",
            Phase::SummarizeReference => "summarize_reference",
            Phase::CandidateScan => "candidate_scan",
            Phase::CdmHandling => "cdm_handling",
        }
    }
}

/// Why a detection was dropped without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Safety rule 1: addressed scion absent from the current summary.
    NoScion,
    /// Backstop hop cap exceeded.
    HopCap,
}

impl DropReason {
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NoScion => "no_scion",
            DropReason::HopCap => "hop_cap",
        }
    }
}

/// Why a detection terminated normally (no cycle, no safety violation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermReason {
    NoStubs,
    AllStubsLocallyReachable,
    NoNewInformation,
    BudgetExhausted,
}

impl TermReason {
    pub fn name(self) -> &'static str {
        match self {
            TermReason::NoStubs => "no_stubs",
            TermReason::AllStubsLocallyReachable => "all_stubs_locally_reachable",
            TermReason::NoNewInformation => "no_new_information",
            TermReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// One observable transition. Detection events carry the detection id,
/// the hop depth of the processing step that produced them, and — for
/// wire events — source/target algebra sizes and encoded bytes, so a
/// trace alone reconstructs the paper's §3.1 walk tables.
///
/// Hop convention: the detector increments a CDM's hop counter on
/// delivery, so `CdmSent`/`CdmDelivered` record the depth at which the
/// *receiving* step processes the CDM. A sent/delivered pair for one CDM
/// therefore shares a hop value, and hops strictly increase along every
/// reconstructed path (checked by `DetectionPath::check_hops_increase`).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A detection was initiated from `scion` at the recording process.
    DetectionStarted {
        id: DetectionId,
        scion: RefId,
    },
    /// One CDM derivation left the recording process towards `to`.
    CdmSent {
        id: DetectionId,
        to: ProcId,
        via: RefId,
        hop: u32,
        sources: u32,
        targets: u32,
        bytes: u32,
    },
    /// A CDM arrived at the recording process (pre-combine).
    CdmDelivered {
        id: DetectionId,
        via: RefId,
        hop: u32,
        sources: u32,
        targets: u32,
        bytes: u32,
    },
    /// A processing step (initiate or deliver) combined the CDM with the
    /// local summary and forwarded `branches` derivations; the pruned
    /// counters record sibling branches that did not forward.
    CdmForwarded {
        id: DetectionId,
        hop: u32,
        branches: u32,
        pruned_local: u32,
        pruned_no_new_info: u32,
    },
    /// Matching cancelled completely: `scions` proven-garbage scions will
    /// be deleted.
    CycleDetected {
        id: DetectionId,
        hop: u32,
        scions: u32,
    },
    /// §3.2 invocation-counter barrier fired.
    DetectionAborted {
        id: DetectionId,
        hop: u32,
        ref_id: RefId,
        source_ic: u64,
        target_ic: u64,
    },
    DetectionDropped {
        id: DetectionId,
        hop: u32,
        reason: DropReason,
    },
    DetectionTerminated {
        id: DetectionId,
        hop: u32,
        reason: TermReason,
    },
    /// A cycle verdict deleted this scion at the recording (owning)
    /// process.
    ScionDeleted {
        scion: RefId,
        incarnation: u32,
    },
    /// Reference listing: a `NewSetStubs` left for `to`.
    NssSent {
        to: ProcId,
        seq: u64,
        live_refs: u32,
        retry: bool,
    },
    /// A `NewSetStubs` from `from` was applied (or rejected as stale).
    NssApplied {
        from: ProcId,
        seq: u64,
        removed: u32,
        stale: bool,
    },
    /// Threaded runtime: an NSS acknowledgement left for `to`.
    NssAcked {
        to: ProcId,
        seq: u64,
    },
    /// A candidate scan picked `picked` scions and deferred `deferred`
    /// (backoff window / scan cap).
    CandidatesScanned {
        picked: u32,
        deferred: u32,
    },
    PhaseStarted {
        phase: Phase,
    },
    PhaseEnded {
        phase: Phase,
        nanos: u64,
    },
    /// Threaded runtime: this worker cast its quiescence vote after
    /// `sweep` sweeps.
    VoteCast {
        sweep: u64,
    },
    /// Threaded runtime: a voted worker received a message and rescinded.
    VoteRescinded {
        sweep: u64,
    },
}

impl Event {
    /// The detection this event belongs to, if any.
    pub fn detection_id(&self) -> Option<DetectionId> {
        match *self {
            Event::DetectionStarted { id, .. }
            | Event::CdmSent { id, .. }
            | Event::CdmDelivered { id, .. }
            | Event::CdmForwarded { id, .. }
            | Event::CycleDetected { id, .. }
            | Event::DetectionAborted { id, .. }
            | Event::DetectionDropped { id, .. }
            | Event::DetectionTerminated { id, .. } => Some(id),
            _ => None,
        }
    }

    /// Whether this event ends its detection (exactly one terminal closes
    /// every processing step that does not forward).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::CycleDetected { .. }
                | Event::DetectionAborted { .. }
                | Event::DetectionDropped { .. }
                | Event::DetectionTerminated { .. }
        )
    }

    /// Stable snake_case discriminant, used as the JSONL `type` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DetectionStarted { .. } => "detection_started",
            Event::CdmSent { .. } => "cdm_sent",
            Event::CdmDelivered { .. } => "cdm_delivered",
            Event::CdmForwarded { .. } => "cdm_forwarded",
            Event::CycleDetected { .. } => "cycle_detected",
            Event::DetectionAborted { .. } => "detection_aborted",
            Event::DetectionDropped { .. } => "detection_dropped",
            Event::DetectionTerminated { .. } => "detection_terminated",
            Event::ScionDeleted { .. } => "scion_deleted",
            Event::NssSent { .. } => "nss_sent",
            Event::NssApplied { .. } => "nss_applied",
            Event::NssAcked { .. } => "nss_acked",
            Event::CandidatesScanned { .. } => "candidates_scanned",
            Event::PhaseStarted { .. } => "phase_started",
            Event::PhaseEnded { .. } => "phase_ended",
            Event::VoteCast { .. } => "vote_cast",
            Event::VoteRescinded { .. } => "vote_rescinded",
        }
    }

    /// Whether `filter` admits this event.
    pub fn passes(&self, filter: &TraceFilter) -> bool {
        match self {
            Event::DetectionStarted { .. }
            | Event::CdmSent { .. }
            | Event::CdmDelivered { .. }
            | Event::CdmForwarded { .. }
            | Event::CycleDetected { .. }
            | Event::DetectionAborted { .. }
            | Event::DetectionDropped { .. }
            | Event::DetectionTerminated { .. }
            | Event::ScionDeleted { .. }
            | Event::CandidatesScanned { .. } => filter.detections,
            Event::NssSent { .. } | Event::NssApplied { .. } | Event::NssAcked { .. } => filter.nss,
            Event::PhaseStarted { .. } | Event::PhaseEnded { .. } => filter.phases,
            Event::VoteCast { .. } | Event::VoteRescinded { .. } => filter.quiescence,
        }
    }
}

/// An [`Event`] as it sits in a ring buffer: stamped with a globally
/// unique, totally ordered sequence number (one shared atomic across all
/// processes of a run), the recording process, and the recording
/// process's clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Recorded {
    pub seq: u64,
    pub at: SimTime,
    pub proc: ProcId,
    pub event: Event,
}

impl Recorded {
    /// One flat JSON object per event — the JSONL schema (documented in
    /// DESIGN.md §Observability).
    pub fn to_json(&self) -> Value {
        let mut v = json!({
            "seq": self.seq,
            "at_us": self.at.0,
            "proc": self.proc.0,
            "type": self.event.kind(),
        });
        let obj = match &mut v {
            Value::Object(m) => m,
            _ => unreachable!(),
        };
        match &self.event {
            Event::DetectionStarted { id, scion } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("scion".into(), json!(scion.0));
            }
            Event::CdmSent {
                id,
                to,
                via,
                hop,
                sources,
                targets,
                bytes,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("to".into(), json!(to.0));
                obj.insert("via".into(), json!(via.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("sources".into(), json!(*sources));
                obj.insert("targets".into(), json!(*targets));
                obj.insert("bytes".into(), json!(*bytes));
            }
            Event::CdmDelivered {
                id,
                via,
                hop,
                sources,
                targets,
                bytes,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("via".into(), json!(via.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("sources".into(), json!(*sources));
                obj.insert("targets".into(), json!(*targets));
                obj.insert("bytes".into(), json!(*bytes));
            }
            Event::CdmForwarded {
                id,
                hop,
                branches,
                pruned_local,
                pruned_no_new_info,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("branches".into(), json!(*branches));
                obj.insert("pruned_local".into(), json!(*pruned_local));
                obj.insert("pruned_no_new_info".into(), json!(*pruned_no_new_info));
            }
            Event::CycleDetected { id, hop, scions } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("scions".into(), json!(*scions));
            }
            Event::DetectionAborted {
                id,
                hop,
                ref_id,
                source_ic,
                target_ic,
            } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("ref".into(), json!(ref_id.0));
                obj.insert("source_ic".into(), json!(*source_ic));
                obj.insert("target_ic".into(), json!(*target_ic));
            }
            Event::DetectionDropped { id, hop, reason } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("reason".into(), json!(reason.name()));
            }
            Event::DetectionTerminated { id, hop, reason } => {
                obj.insert("id".into(), json!(id.0));
                obj.insert("hop".into(), json!(*hop));
                obj.insert("reason".into(), json!(reason.name()));
            }
            Event::ScionDeleted { scion, incarnation } => {
                obj.insert("scion".into(), json!(scion.0));
                obj.insert("incarnation".into(), json!(*incarnation));
            }
            Event::NssSent {
                to,
                seq,
                live_refs,
                retry,
            } => {
                obj.insert("to".into(), json!(to.0));
                obj.insert("nss_seq".into(), json!(*seq));
                obj.insert("live_refs".into(), json!(*live_refs));
                obj.insert("retry".into(), json!(*retry));
            }
            Event::NssApplied {
                from,
                seq,
                removed,
                stale,
            } => {
                obj.insert("from".into(), json!(from.0));
                obj.insert("nss_seq".into(), json!(*seq));
                obj.insert("removed".into(), json!(*removed));
                obj.insert("stale".into(), json!(*stale));
            }
            Event::NssAcked { to, seq } => {
                obj.insert("to".into(), json!(to.0));
                obj.insert("nss_seq".into(), json!(*seq));
            }
            Event::CandidatesScanned { picked, deferred } => {
                obj.insert("picked".into(), json!(*picked));
                obj.insert("deferred".into(), json!(*deferred));
            }
            Event::PhaseStarted { phase } => {
                obj.insert("phase".into(), json!(phase.name()));
            }
            Event::PhaseEnded { phase, nanos } => {
                obj.insert("phase".into(), json!(phase.name()));
                obj.insert("nanos".into(), json!(*nanos));
            }
            Event::VoteCast { sweep } => {
                obj.insert("sweep".into(), json!(*sweep));
            }
            Event::VoteRescinded { sweep } => {
                obj.insert("sweep".into(), json!(*sweep));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        let id = DetectionId(1);
        assert!(Event::CycleDetected {
            id,
            hop: 3,
            scions: 4
        }
        .is_terminal());
        assert!(Event::DetectionTerminated {
            id,
            hop: 0,
            reason: TermReason::NoStubs
        }
        .is_terminal());
        assert!(!Event::DetectionStarted {
            id,
            scion: RefId(9)
        }
        .is_terminal());
        assert!(!Event::CdmForwarded {
            id,
            hop: 1,
            branches: 2,
            pruned_local: 0,
            pruned_no_new_info: 0
        }
        .is_terminal());
    }

    #[test]
    fn filter_routes_families() {
        let only_nss = TraceFilter {
            detections: false,
            nss: true,
            phases: false,
            quiescence: false,
        };
        assert!(Event::NssAcked {
            to: ProcId(1),
            seq: 3
        }
        .passes(&only_nss));
        assert!(!Event::PhaseStarted { phase: Phase::Lgc }.passes(&only_nss));
        assert!(!Event::VoteCast { sweep: 2 }.passes(&only_nss));
        assert!(!Event::DetectionStarted {
            id: DetectionId(0),
            scion: RefId(1)
        }
        .passes(&only_nss));
    }

    #[test]
    fn json_carries_discriminant_and_payload() {
        let r = Recorded {
            seq: 17,
            at: SimTime(42),
            proc: ProcId(3),
            event: Event::CdmSent {
                id: DetectionId(7),
                to: ProcId(4),
                via: RefId(19),
                hop: 2,
                sources: 3,
                targets: 2,
                bytes: 120,
            },
        };
        let line = serde_json::to_string(&r.to_json()).unwrap();
        assert!(line.contains("\"type\":\"cdm_sent\""), "{line}");
        assert!(line.contains("\"seq\":17"), "{line}");
        assert!(line.contains("\"hop\":2"), "{line}");
    }
}
