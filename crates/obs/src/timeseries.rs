//! Continuous time-series telemetry: bounded sample rings with
//! decimation-by-2 downsampling, counter→rate derivation, and sparkline
//! rendering.
//!
//! `Metrics` and `HealthReport`s answer *whether* a run behaved; this
//! module answers *how it evolved*. A [`Sampler`] periodically snapshots
//! per-process and global gauges (live objects, candidates and their
//! deepest retry backoff, in-flight CDMs, inbox depth, quiescence votes)
//! plus a small set of monotone counters into fixed-capacity
//! [`TimeSeries`] rings. Two clock semantics share one schema:
//!
//! * the sequential `System` samples every `sample_every` GC **rounds**
//!   (`at` is simulated microseconds, `round` the GC round index);
//! * the threaded runtime's watchdog monitor samples every `sample_every`
//!   **polls** of the lock-free heartbeat slots during healthy operation
//!   (`at` is wall-clock microseconds since run start, `round` the poll
//!   index).
//!
//! Series are bounded: when a ring would exceed its capacity it decimates
//! by 2 — every other *interior* sample is dropped; the first and the
//! newest samples always survive — so a run of any length keeps a
//! full-span, progressively coarser timeline in fixed memory. Samples
//! export as `"type":"sample"` JSONL lines inside the standard trace
//! artifact and are validated by `Trace::check` / `acdgc-report --check`
//! (monotonic timestamps and rounds, monotone counters, capacity bound).

use crate::event::{field_str, field_u16, field_u64};
use acdgc_model::{ProcId, SamplingConfig, SimTime};
use serde_json::{Map, Value};

/// One named accessor into a [`Sample`] field, as listed in
/// [`COUNTER_FIELDS`] and [`GAUGE_FIELDS`].
pub type SampleField = (&'static str, fn(&Sample) -> u64);

/// One exported sample paired with the declared capacity of the series it
/// came from — the form sample JSONL lines round-trip through, letting
/// `check_series` verify the bound offline from the artifact alone.
pub type SampleRow = (Sample, usize);

/// The monotone-counter fields of a [`Sample`], in export order. One list
/// drives encode, decode, monotonicity checking, and rate derivation, so
/// the four can never disagree on what a counter is.
pub const COUNTER_FIELDS: [SampleField; 7] = [
    ("lgc_runs", |s| s.lgc_runs),
    ("snapshots", |s| s.snapshots),
    ("cdms_sent", |s| s.cdms_sent),
    ("cycles_detected", |s| s.cycles_detected),
    ("objects_reclaimed", |s| s.objects_reclaimed),
    ("scions_reclaimed", |s| s.scions_reclaimed),
    ("mutator_ops", |s| s.mutator_ops),
];

/// The point-in-time gauge fields of a [`Sample`], in export order.
/// Gauges may move in either direction; only the counters above carry a
/// monotonicity invariant.
pub const GAUGE_FIELDS: [SampleField; 7] = [
    ("live_objects", |s| s.live_objects),
    ("candidates", |s| s.candidates),
    ("max_backoff_attempt", |s| s.max_backoff_attempt),
    ("in_flight_cdms", |s| s.in_flight_cdms),
    ("inbox_depth", |s| s.inbox_depth),
    ("votes_held", |s| s.votes_held),
    ("pinned_scions", |s| s.pinned_scions),
];

/// One telemetry snapshot. `proc` is `None` for the system-wide aggregate
/// series and `Some` for one process's series; the two use identical
/// fields (a global gauge is the sum of the per-process gauges, except
/// `max_backoff_attempt` and `votes_held`, which are a max and a count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sample {
    /// Microseconds — simulated for the sequential runtime, wall-clock
    /// since run start for the threaded runtime.
    pub at: SimTime,
    /// GC round (sequential) or watchdog poll index (threaded). Strictly
    /// increasing within a series.
    pub round: u64,
    pub proc: Option<ProcId>,
    // Gauges.
    pub live_objects: u64,
    pub candidates: u64,
    /// Deepest retry-backoff attempt among tracked candidates: how hard
    /// the detector is having to retry under message loss.
    pub max_backoff_attempt: u64,
    /// Sequential: messages in flight in the simulated network. Threaded:
    /// globally `enqueued - drained`; per process, the inbox depth.
    pub in_flight_cdms: u64,
    /// Threaded inbox depth from the enqueue/drain heartbeat ledgers;
    /// always 0 in the sequential runtime (the event loop has no inboxes).
    pub inbox_depth: u64,
    /// Quiescence votes currently held (threaded); 0 sequentially.
    pub votes_held: u64,
    /// Scions currently pinned by in-flight mutator exports/invocations
    /// (the pin/unpin handshake); 0 when no mutator runs.
    pub pinned_scions: u64,
    // Counters (monotone within a series).
    pub lgc_runs: u64,
    pub snapshots: u64,
    pub cdms_sent: u64,
    pub cycles_detected: u64,
    pub objects_reclaimed: u64,
    /// Scions reclaimed by any layer (acyclic reference listing + cycle
    /// verdicts).
    pub scions_reclaimed: u64,
    /// Concurrent-mutator operations completed (allocate + export +
    /// invoke + drop); 0 when no mutator runs.
    pub mutator_ops: u64,
}

impl Sample {
    /// One JSONL object, `"type":"sample"`. `cap` is the owning series'
    /// capacity, carried on every line so an offline checker can verify
    /// the bound without side-channel metadata.
    pub fn to_json(&self, cap: usize) -> Value {
        let mut m = Map::new();
        m.insert("type".into(), Value::from("sample"));
        m.insert("at".into(), Value::from(self.at.0));
        m.insert("round".into(), Value::from(self.round));
        if let Some(p) = self.proc {
            m.insert("proc".into(), Value::from(p.0));
        }
        m.insert("cap".into(), Value::from(cap as u64));
        for (name, get) in GAUGE_FIELDS {
            m.insert(name.into(), Value::from(get(self)));
        }
        for (name, get) in COUNTER_FIELDS {
            m.insert(name.into(), Value::from(get(self)));
        }
        Value::Object(m)
    }

    /// Inverse of [`Sample::to_json`]; returns the sample and the carried
    /// capacity. `None` when `v` is not a sample line.
    pub fn from_json(v: &Value) -> Option<(Sample, usize)> {
        let m = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        if field_str(m, "type")? != "sample" {
            return None;
        }
        let mut s = Sample {
            at: SimTime(field_u64(m, "at")?),
            round: field_u64(m, "round")?,
            proc: field_u16(m, "proc").map(ProcId),
            ..Sample::default()
        };
        let cap = field_u64(m, "cap")? as usize;
        s.live_objects = field_u64(m, "live_objects")?;
        s.candidates = field_u64(m, "candidates")?;
        s.max_backoff_attempt = field_u64(m, "max_backoff_attempt")?;
        s.in_flight_cdms = field_u64(m, "in_flight_cdms")?;
        s.inbox_depth = field_u64(m, "inbox_depth")?;
        s.votes_held = field_u64(m, "votes_held")?;
        s.pinned_scions = field_u64(m, "pinned_scions")?;
        s.lgc_runs = field_u64(m, "lgc_runs")?;
        s.snapshots = field_u64(m, "snapshots")?;
        s.cdms_sent = field_u64(m, "cdms_sent")?;
        s.cycles_detected = field_u64(m, "cycles_detected")?;
        s.objects_reclaimed = field_u64(m, "objects_reclaimed")?;
        s.scions_reclaimed = field_u64(m, "scions_reclaimed")?;
        s.mutator_ops = field_u64(m, "mutator_ops")?;
        Some((s, cap))
    }

    /// Render the gauge fields as Prometheus gauges (`acdgc_<name>`
    /// without the `_total` suffix — these are point-in-time values, not
    /// counters). Counter fields are not exposed here: the `Metrics`
    /// exposition already owns the `_total` namespace.
    pub fn to_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (name, get) in GAUGE_FIELDS {
            let _ = writeln!(
                out,
                "# HELP acdgc_{name} Point-in-time {} gauge from the latest telemetry sample.",
                name.replace('_', " ")
            );
            let _ = writeln!(out, "# TYPE acdgc_{name} gauge");
            let _ = writeln!(out, "acdgc_{name} {}", get(self));
        }
    }
}

/// A bounded sample ring. Pushes are O(1) amortized: appends until the
/// ring would exceed `capacity`, then decimates by 2 (keeps every
/// even-indexed sample plus the newest), doubling the effective spacing
/// of the retained history. The first and the most recent sample are
/// preserved across any number of decimations.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    capacity: usize,
    samples: Vec<Sample>,
    /// How many decimation passes have run (each halves resolution).
    decimations: u32,
    /// Total samples ever offered, including those decimation discarded.
    offered: u64,
}

impl TimeSeries {
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(4),
            samples: Vec::new(),
            decimations: 0,
            offered: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    pub fn offered(&self) -> u64 {
        self.offered
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Append one sample, decimating first when the ring is at capacity.
    pub fn push(&mut self, s: Sample) {
        self.offered += 1;
        if self.samples.len() >= self.capacity {
            self.decimate();
        }
        self.samples.push(s);
    }

    /// Drop every odd-indexed sample except the newest: index 0 (the
    /// first sample) is always even and the newest is re-kept explicitly,
    /// so both ends of the timeline survive every pass.
    fn decimate(&mut self) {
        let last = self.samples.len() - 1;
        let mut keep = 0usize;
        for i in 0..self.samples.len() {
            if i % 2 == 0 || i == last {
                self.samples.swap(keep, i);
                keep += 1;
            }
        }
        self.samples.truncate(keep);
        self.decimations += 1;
    }
}

/// One derived-rate row: a counter's total across the series plus its
/// average and peak per-second rates (timestamps are microseconds, so the
/// scale factor is 1e6).
#[derive(Clone, Debug, PartialEq)]
pub struct RateRow {
    pub name: &'static str,
    /// `last - first` over the series.
    pub total: u64,
    /// Average events/second over the full span.
    pub per_sec_avg: f64,
    /// Fastest events/second between any two adjacent samples.
    pub per_sec_peak: f64,
}

/// Counter→rate derivation over one series (chronological samples). Rows
/// follow [`COUNTER_FIELDS`] order; empty when fewer than two samples or
/// no time elapsed.
pub fn counter_rates(samples: &[Sample]) -> Vec<RateRow> {
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        return Vec::new();
    };
    let span_us = last.at.0.saturating_sub(first.at.0);
    if span_us == 0 {
        return Vec::new();
    }
    COUNTER_FIELDS
        .iter()
        .map(|&(name, get)| {
            let total = get(last).saturating_sub(get(first));
            let mut peak = 0.0f64;
            for w in samples.windows(2) {
                let dt = w[1].at.0.saturating_sub(w[0].at.0);
                if dt == 0 {
                    continue;
                }
                let dv = get(&w[1]).saturating_sub(get(&w[0]));
                peak = peak.max(dv as f64 * 1e6 / dt as f64);
            }
            RateRow {
                name,
                total,
                per_sec_avg: total as f64 * 1e6 / span_us as f64,
                per_sec_peak: peak,
            }
        })
        .collect()
}

/// Render `values` as a fixed-width ASCII sparkline using the eight
/// block-element glyphs. Values are bucketed to `width` columns (max
/// within each bucket) and scaled to the series' own min..max; a flat
/// series renders as a baseline of `▁`.
pub fn sparkline(values: &[u64], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    let bucketed: Vec<u64> = (0..cols)
        .map(|c| {
            let lo = c * values.len() / cols;
            let hi = ((c + 1) * values.len() / cols).max(lo + 1);
            values[lo..hi].iter().copied().max().unwrap_or(0)
        })
        .collect();
    let min = bucketed.iter().copied().min().unwrap_or(0);
    let max = bucketed.iter().copied().max().unwrap_or(0);
    bucketed
        .iter()
        .map(|&v| {
            if max == min {
                GLYPHS[0]
            } else {
                let level = ((v - min) as u128 * 7 / (max - min) as u128) as usize;
                GLYPHS[level]
            }
        })
        .collect()
}

/// Validate one chronological series: timestamps non-decreasing, rounds
/// strictly increasing, every [`COUNTER_FIELDS`] counter monotone, and
/// the sample count within the capacity each line carries. Returns every
/// violation found (empty = clean).
pub fn check_series(label: &str, samples: &[(Sample, usize)]) -> Vec<String> {
    let mut violations = Vec::new();
    if let Some(&(_, cap)) = samples.first() {
        if samples.len() > cap {
            violations.push(format!(
                "{label}: {} samples exceed the declared capacity {cap}",
                samples.len()
            ));
        }
    }
    for w in samples.windows(2) {
        let (a, b) = (&w[0].0, &w[1].0);
        if b.at < a.at {
            violations.push(format!(
                "{label}: timestamp not monotonic at round {}: {} after {}",
                b.round, b.at.0, a.at.0
            ));
        }
        if b.round <= a.round {
            violations.push(format!(
                "{label}: round not increasing: {} after {}",
                b.round, a.round
            ));
        }
        for (name, get) in COUNTER_FIELDS {
            if get(b) < get(a) {
                violations.push(format!(
                    "{label}: counter {name} went backwards at round {}: {} after {}",
                    b.round,
                    get(b),
                    get(a)
                ));
            }
        }
    }
    violations
}

/// Group a flat sample list (e.g. parsed from a trace artifact) into
/// per-series slices keyed by `proc` (`None` = the global series),
/// preserving line order within each group.
pub fn group_by_series(samples: &[SampleRow]) -> Vec<(Option<ProcId>, Vec<SampleRow>)> {
    let mut groups: Vec<(Option<ProcId>, Vec<SampleRow>)> = Vec::new();
    for &(s, cap) in samples {
        match groups.iter_mut().find(|(p, _)| *p == s.proc) {
            Some((_, g)) => g.push((s, cap)),
            None => groups.push((s.proc, vec![(s, cap)])),
        }
    }
    groups
}

/// The sampling subsystem a runtime embeds: one global [`TimeSeries`]
/// plus one per process, behind a [`SamplingConfig`]. Disabled, every
/// entry point is a single branch and no memory is allocated.
#[derive(Clone, Debug)]
pub struct Sampler {
    enabled: bool,
    sample_every: u64,
    capacity: usize,
    global: TimeSeries,
    per_proc: Vec<TimeSeries>,
}

impl Sampler {
    pub fn new(cfg: &SamplingConfig, procs: usize) -> Sampler {
        let capacity = cfg.capacity.max(4);
        let series = |_| TimeSeries::new(capacity);
        Sampler {
            enabled: cfg.enabled,
            sample_every: cfg.sample_every.max(1),
            capacity,
            global: TimeSeries::new(capacity),
            per_proc: if cfg.enabled {
                (0..procs).map(series).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// A disabled sampler (used where one is structurally required).
    pub fn disabled() -> Sampler {
        Sampler::new(&SamplingConfig::default(), 0)
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether `round` (a GC round or monitor poll index, starting at 1)
    /// is a sampling tick under the configured cadence.
    #[inline]
    pub fn due(&self, round: u64) -> bool {
        self.enabled && round % self.sample_every == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn global(&self) -> &TimeSeries {
        &self.global
    }

    pub fn per_proc(&self) -> &[TimeSeries] {
        &self.per_proc
    }

    /// Record the aggregate sample plus each process's sample for one
    /// sampling tick. `per_proc` must be indexed by process.
    pub fn record(&mut self, global: Sample, per_proc: &[Sample]) {
        if !self.enabled {
            return;
        }
        debug_assert!(global.proc.is_none());
        self.global.push(global);
        for (i, s) in per_proc.iter().enumerate() {
            if let Some(series) = self.per_proc.get_mut(i) {
                debug_assert_eq!(s.proc, Some(ProcId(i as u16)));
                series.push(*s);
            }
        }
    }

    /// All samples in export order: the global series, then each
    /// process's series. Paired with the capacity for JSONL export.
    pub fn export(&self) -> Vec<(Sample, usize)> {
        let mut out: Vec<(Sample, usize)> = self
            .global
            .samples()
            .iter()
            .map(|&s| (s, self.capacity))
            .collect();
        for series in &self.per_proc {
            out.extend(series.samples().iter().map(|&s| (s, self.capacity)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> Sample {
        Sample {
            at: SimTime(round * 1_000),
            round,
            cdms_sent: round * 3,
            objects_reclaimed: round,
            live_objects: 100u64.saturating_sub(round),
            ..Sample::default()
        }
    }

    #[test]
    fn ring_decimates_by_two_and_preserves_endpoints() {
        let mut ts = TimeSeries::new(8);
        for r in 1..=100 {
            ts.push(sample(r));
        }
        assert!(ts.len() <= 8, "capacity bound violated: {}", ts.len());
        assert!(ts.decimations() > 0);
        assert_eq!(ts.offered(), 100);
        assert_eq!(ts.samples().first().unwrap().round, 1, "first preserved");
        assert_eq!(ts.samples().last().unwrap().round, 100, "last preserved");
        // Retained rounds are still strictly increasing.
        let rounds: Vec<u64> = ts.samples().iter().map(|s| s.round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]), "{rounds:?}");
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let mut ts = TimeSeries::new(0);
        assert_eq!(ts.capacity(), 4);
        for r in 1..=20 {
            ts.push(sample(r));
        }
        assert!(ts.len() <= 4);
        assert_eq!(ts.samples().last().unwrap().round, 20);
    }

    #[test]
    fn sample_json_round_trips() {
        let s = Sample {
            at: SimTime(42_000),
            round: 7,
            proc: Some(ProcId(3)),
            live_objects: 12,
            candidates: 4,
            max_backoff_attempt: 2,
            in_flight_cdms: 5,
            inbox_depth: 1,
            votes_held: 1,
            lgc_runs: 9,
            snapshots: 9,
            cdms_sent: 31,
            cycles_detected: 2,
            objects_reclaimed: 52,
            scions_reclaimed: 6,
            pinned_scions: 2,
            mutator_ops: 77,
        };
        let v = s.to_json(256);
        let line = serde_json::to_string(&v).unwrap();
        assert!(line.contains("\"type\":\"sample\""), "{line}");
        let (back, cap) = Sample::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(cap, 256);
        // The global variant omits the proc field entirely.
        let g = Sample { proc: None, ..s };
        let gv = g.to_json(256);
        assert!(!serde_json::to_string(&gv).unwrap().contains("\"proc\""));
        assert_eq!(Sample::from_json(&gv).unwrap().0.proc, None);
    }

    #[test]
    fn rates_derive_avg_total_and_peak() {
        // 3 samples over 2 seconds; cdms_sent grows 0 -> 10 -> 40: the
        // second interval runs at 30/s, the average at 20/s.
        let mk = |at_us: u64, round: u64, sent: u64| Sample {
            at: SimTime(at_us),
            round,
            cdms_sent: sent,
            ..Sample::default()
        };
        let series = [mk(0, 1, 0), mk(1_000_000, 2, 10), mk(2_000_000, 3, 40)];
        let rates = counter_rates(&series);
        let row = rates.iter().find(|r| r.name == "cdms_sent").unwrap();
        assert_eq!(row.total, 40);
        assert!((row.per_sec_avg - 20.0).abs() < 1e-9, "{row:?}");
        assert!((row.per_sec_peak - 30.0).abs() < 1e-9, "{row:?}");
        assert!(counter_rates(&series[..1]).is_empty(), "needs two samples");
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        let line = sparkline(&[0, 1, 2, 3, 4, 5, 6, 7], 8);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[5, 5, 5], 3), "▁▁▁", "flat = baseline");
        assert_eq!(sparkline(&[], 10), "");
        // More values than width: bucketed down, endpoints still visible.
        let wide = sparkline(&(0..100).collect::<Vec<u64>>(), 10);
        assert_eq!(wide.chars().count(), 10);
        assert!(wide.starts_with('▁') && wide.ends_with('█'));
    }

    #[test]
    fn check_series_catches_each_violation_class() {
        let clean: Vec<(Sample, usize)> = (1..=5).map(|r| (sample(r), 16)).collect();
        assert!(check_series("g", &clean).is_empty());

        // Backwards timestamp.
        let mut bad = clean.clone();
        bad[3].0.at = SimTime(1);
        assert!(check_series("g", &bad)
            .iter()
            .any(|v| v.contains("timestamp")));

        // Repeated round.
        let mut bad = clean.clone();
        bad[2].0.round = bad[1].0.round;
        assert!(check_series("g", &bad)
            .iter()
            .any(|v| v.contains("round not increasing")));

        // Counter regression.
        let mut bad = clean.clone();
        bad[4].0.cdms_sent = 0;
        assert!(check_series("g", &bad)
            .iter()
            .any(|v| v.contains("cdms_sent went backwards")));

        // Capacity bound.
        let over: Vec<(Sample, usize)> = (1..=8).map(|r| (sample(r), 4)).collect();
        assert!(check_series("g", &over)
            .iter()
            .any(|v| v.contains("capacity")));
    }

    #[test]
    fn sampler_disabled_records_nothing() {
        let mut s = Sampler::disabled();
        assert!(!s.enabled());
        assert!(!s.due(4));
        s.record(Sample::default(), &[]);
        assert!(s.global().is_empty());
        assert!(s.export().is_empty());
    }

    #[test]
    fn sampler_cadence_and_series_layout() {
        let cfg = SamplingConfig {
            enabled: true,
            sample_every: 3,
            capacity: 16,
        };
        let mut s = Sampler::new(&cfg, 2);
        assert!(!s.due(1) && !s.due(2) && s.due(3) && s.due(6));
        let per = [
            Sample {
                proc: Some(ProcId(0)),
                ..sample(3)
            },
            Sample {
                proc: Some(ProcId(1)),
                ..sample(3)
            },
        ];
        s.record(sample(3), &per);
        assert_eq!(s.global().len(), 1);
        assert_eq!(s.per_proc()[0].len(), 1);
        assert_eq!(s.per_proc()[1].len(), 1);
        assert_eq!(s.export().len(), 3, "global + 2 proc samples");
        let grouped = group_by_series(&s.export());
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[0].0, None);
    }
}
