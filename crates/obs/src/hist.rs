//! Log2-bucket duration histograms: cost *distributions* per phase, not
//! just totals — the difference between "summarization averages 40µs" and
//! "one in a thousand summarizations stalls for 20ms".

use crate::event::Phase;
use serde_json::{json, Number, Value};
use std::fmt::Write as _;

const BUCKETS: usize = 64;

use crate::event::field_u64 as obj_u64;

fn num_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(Number::U64(n)) => Some(*n),
        Value::Number(Number::I64(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Power-of-two bucketed histogram over nanosecond durations. Bucket `b`
/// holds samples in `[2^(b-1), 2^b)` (bucket 0 holds 0ns). Fixed 64-slot
/// layout: merging is elementwise, recording is a `leading_zeros`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(nanos: u64) -> usize {
        (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.max = self.max.max(nanos);
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-quantile
    /// sample; 0 for an empty histogram. Bucket resolution only — good to
    /// a factor of two, which is what log2 buckets buy.
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_upper_ns, count)` pairs, ascending.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (if b == 0 { 0 } else { 1u64 << b }, n))
    }

    /// Append this histogram in Prometheus text exposition format:
    /// cumulative `<name>_bucket{...,le="..."}` lines for every non-empty
    /// bucket plus `+Inf`, then `<name>_sum` / `<name>_count`. `labels` is
    /// the pre-rendered label set without braces (may be empty).
    pub fn to_prometheus_into(&self, name: &str, labels: &str, out: &mut String) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (upper, n) in self.nonempty_buckets() {
            cumulative += n;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}"
            );
        }
        let brace = if labels.is_empty() {
            String::from("{le=\"+Inf\"}")
        } else {
            format!("{{{labels},le=\"+Inf\"}}")
        };
        let _ = writeln!(out, "{name}_bucket{brace} {}", self.count);
        let suffix_labels = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{suffix_labels} {}", self.sum);
        let _ = writeln!(out, "{name}_count{suffix_labels} {}", self.count);
    }

    /// Inverse of [`Histogram::to_json`]. `None` on schema mismatch
    /// (including a bucket upper bound that is not 0 or a power of two).
    pub fn from_json(v: &Value) -> Option<Histogram> {
        let m = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        let mut h = Histogram {
            count: obj_u64(m, "count")?,
            sum: obj_u64(m, "sum_ns")?,
            max: obj_u64(m, "max_ns")?,
            ..Histogram::default()
        };
        let pairs = match m.get("buckets")? {
            Value::Array(a) => a,
            _ => return None,
        };
        for pair in pairs {
            let (upper, n) = match pair {
                Value::Array(p) if p.len() == 2 => (num_u64(&p[0])?, num_u64(&p[1])?),
                _ => return None,
            };
            let b = if upper == 0 {
                0
            } else if upper.is_power_of_two() {
                upper.trailing_zeros() as usize
            } else {
                return None;
            };
            if b >= BUCKETS {
                return None;
            }
            h.buckets[b] = n;
        }
        (h.buckets.iter().sum::<u64>() == h.count).then_some(h)
    }

    /// Non-empty buckets as `[bucket_upper_ns, count]` pairs.
    pub fn to_json(&self) -> Value {
        let pairs: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let upper: u64 = if b == 0 { 0 } else { 1u64 << b };
                json!([upper, n])
            })
            .collect();
        json!({
            "count": self.count,
            "sum_ns": self.sum,
            "max_ns": self.max,
            "buckets": pairs,
        })
    }
}

/// One [`Histogram`] per [`Phase`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseHistograms {
    hists: [Histogram; Phase::COUNT],
}

impl PhaseHistograms {
    pub fn get(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.hists[phase.index()].record(nanos);
    }

    pub fn merge(&mut self, other: &PhaseHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Total samples across all phases.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(|h| h.count()).sum()
    }

    /// Phases with at least one sample, keyed by phase name.
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        for phase in Phase::ALL {
            let h = self.get(phase);
            if h.count() > 0 {
                m.insert(phase.name().to_string(), h.to_json());
            }
        }
        Value::Object(m)
    }

    /// Inverse of [`PhaseHistograms::to_json`] (unknown phase names are a
    /// schema error, absent phases stay empty).
    pub fn from_json(v: &Value) -> Option<PhaseHistograms> {
        let m = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        let mut out = PhaseHistograms::default();
        for (name, hv) in m.iter() {
            let phase = Phase::from_name(name)?;
            out.hists[phase.index()] = Histogram::from_json(hv)?;
        }
        Some(out)
    }

    /// Append every sampled phase as one labelled Prometheus histogram
    /// family, `acdgc_phase_duration_nanoseconds{phase="..."}` (metric
    /// names are documented in DESIGN.md §Runtime health).
    pub fn to_prometheus_into(&self, out: &mut String) {
        const NAME: &str = "acdgc_phase_duration_nanoseconds";
        if self.total_count() == 0 {
            return;
        }
        out.push_str(
            "# HELP acdgc_phase_duration_nanoseconds On-CPU time per collector phase \
             (log2 buckets, nanoseconds).\n",
        );
        out.push_str("# TYPE acdgc_phase_duration_nanoseconds histogram\n");
        for phase in Phase::ALL {
            let h = self.get(phase);
            if h.count() > 0 {
                h.to_prometheus_into(NAME, &format!("phase=\"{}\"", phase.name()), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_nanos(), 1030);
        assert_eq!(h.max_nanos(), 1024);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[11], 1);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_nanos(), 100);
        assert_eq!(a.buckets[3], 2, "two samples of 5ns");
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 16
        }
        h.record(10_000); // bucket 14, upper bound 16384
        assert_eq!(h.quantile_upper_nanos(0.5), 16);
        assert_eq!(h.quantile_upper_nanos(1.0), 16_384);
        assert_eq!(Histogram::new().quantile_upper_nanos(0.5), 0);
    }

    #[test]
    fn huge_sample_lands_in_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn zero_duration_samples_stay_in_bucket_zero() {
        // Sub-nanosecond phases truncate to 0ns on fast clocks; they must
        // neither vanish nor leak into the 1ns bucket.
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum_nanos(), 0);
        assert_eq!(h.max_nanos(), 0);
        assert_eq!(h.buckets[0], 10);
        assert_eq!(h.buckets[1], 0);
        assert_eq!(h.mean_nanos(), 0);
        assert_eq!(h.quantile_upper_nanos(0.99), 0);
        assert_eq!(h.nonempty_buckets().collect::<Vec<_>>(), vec![(0, 10)]);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        // Everything from 2^62 up shares the last bucket; its nominal
        // upper bound (2^63) must not overflow the shift.
        let mut h = Histogram::new();
        h.record(1u64 << 62);
        h.record(u64::MAX / 2);
        h.record(u64::MAX);
        assert_eq!(h.buckets[BUCKETS - 1], 3);
        assert_eq!(h.max_nanos(), u64::MAX);
        assert_eq!(h.quantile_upper_nanos(1.0), 1u64 << 63);
        // sum saturates rather than wrapping.
        assert_eq!(h.sum_nanos(), u64::MAX);
    }

    #[test]
    fn quantiles_on_empty_and_single_sample() {
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile_upper_nanos(q), 0, "empty at q={q}");
        }
        assert_eq!(empty.mean_nanos(), 0, "empty mean must not divide by 0");

        let mut one = Histogram::new();
        one.record(100); // bucket 7, upper 128
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.quantile_upper_nanos(q), 128, "single sample at q={q}");
        }
        // Out-of-range quantiles clamp instead of indexing off the end.
        assert_eq!(one.quantile_upper_nanos(-1.0), 128);
        assert_eq!(one.quantile_upper_nanos(2.0), 128);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record(1 << 20);
        h.record(u64::MAX);
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_json(&json!({"count": 1})).is_none());
        assert!(
            Histogram::from_json(&json!({
                "count": 1, "sum_ns": 3, "max_ns": 3, "buckets": [[3, 1]]
            }))
            .is_none(),
            "a non-power-of-two bucket bound is a schema error"
        );
        assert!(
            Histogram::from_json(&json!({
                "count": 5, "sum_ns": 3, "max_ns": 3, "buckets": [[4, 1]]
            }))
            .is_none(),
            "bucket total must match the stored count"
        );
    }

    #[test]
    fn phase_histograms_json_round_trips() {
        let mut p = PhaseHistograms::default();
        p.record(Phase::Lgc, 100);
        p.record(Phase::Lgc, 0);
        p.record(Phase::CdmHandling, 1 << 30);
        let back = PhaseHistograms::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert!(
            PhaseHistograms::from_json(&json!({"warp_drive": {}})).is_none(),
            "unknown phase names are rejected"
        );
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_closed() {
        let mut p = PhaseHistograms::default();
        p.record(Phase::Lgc, 3); // bucket upper 4
        p.record(Phase::Lgc, 3);
        p.record(Phase::Lgc, 1000); // bucket upper 1024
        let mut out = String::new();
        p.to_prometheus_into(&mut out);
        assert!(out.starts_with("# HELP acdgc_phase_duration_nanoseconds "));
        let help_idx = out.find("# HELP").unwrap();
        let type_idx = out.find("# TYPE acdgc_phase_duration_nanoseconds histogram\n");
        assert!(
            type_idx.is_some() && help_idx < type_idx.unwrap(),
            "# HELP precedes # TYPE:\n{out}"
        );
        let get = |needle: &str| {
            out.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("missing {needle} in:\n{out}"))
        };
        assert!(
            get("acdgc_phase_duration_nanoseconds_bucket{phase=\"lgc\",le=\"4\"}").ends_with(" 2")
        );
        assert!(
            get("acdgc_phase_duration_nanoseconds_bucket{phase=\"lgc\",le=\"1024\"}")
                .ends_with(" 3"),
            "cumulative, not per-bucket"
        );
        assert!(
            get("acdgc_phase_duration_nanoseconds_bucket{phase=\"lgc\",le=\"+Inf\"}")
                .ends_with(" 3")
        );
        assert!(get("acdgc_phase_duration_nanoseconds_sum{phase=\"lgc\"}").ends_with(" 1006"));
        assert!(get("acdgc_phase_duration_nanoseconds_count{phase=\"lgc\"}").ends_with(" 3"));
        // Unsampled phases are omitted entirely.
        assert!(!out.contains("phase=\"candidate_scan\""));
    }

    #[test]
    fn per_phase_isolation_and_merge() {
        let mut p = PhaseHistograms::default();
        p.record(Phase::Lgc, 100);
        p.record(Phase::SummarizeEngine, 200);
        assert_eq!(p.get(Phase::Lgc).count(), 1);
        assert_eq!(p.get(Phase::SnapshotCapture).count(), 0);
        let mut q = PhaseHistograms::default();
        q.record(Phase::Lgc, 300);
        p.merge(&q);
        assert_eq!(p.get(Phase::Lgc).count(), 2);
        assert_eq!(p.total_count(), 3);
    }
}
