//! Log2-bucket duration histograms: cost *distributions* per phase, not
//! just totals — the difference between "summarization averages 40µs" and
//! "one in a thousand summarizations stalls for 20ms".

use crate::event::Phase;
use serde_json::{json, Value};

const BUCKETS: usize = 64;

/// Power-of-two bucketed histogram over nanosecond durations. Bucket `b`
/// holds samples in `[2^(b-1), 2^b)` (bucket 0 holds 0ns). Fixed 64-slot
/// layout: merging is elementwise, recording is a `leading_zeros`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(nanos: u64) -> usize {
        (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.max = self.max.max(nanos);
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-quantile
    /// sample; 0 for an empty histogram. Bucket resolution only — good to
    /// a factor of two, which is what log2 buckets buy.
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max
    }

    /// Non-empty buckets as `[bucket_upper_ns, count]` pairs.
    pub fn to_json(&self) -> Value {
        let pairs: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let upper: u64 = if b == 0 { 0 } else { 1u64 << b };
                json!([upper, n])
            })
            .collect();
        json!({
            "count": self.count,
            "sum_ns": self.sum,
            "max_ns": self.max,
            "buckets": pairs,
        })
    }
}

/// One [`Histogram`] per [`Phase`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseHistograms {
    hists: [Histogram; Phase::COUNT],
}

impl PhaseHistograms {
    pub fn get(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.hists[phase.index()].record(nanos);
    }

    pub fn merge(&mut self, other: &PhaseHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Total samples across all phases.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(|h| h.count()).sum()
    }

    /// Phases with at least one sample, keyed by phase name.
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        for phase in Phase::ALL {
            let h = self.get(phase);
            if h.count() > 0 {
                m.insert(phase.name().to_string(), h.to_json());
            }
        }
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_nanos(), 1030);
        assert_eq!(h.max_nanos(), 1024);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[11], 1);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_nanos(), 100);
        assert_eq!(a.buckets[3], 2, "two samples of 5ns");
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 16
        }
        h.record(10_000); // bucket 14, upper bound 16384
        assert_eq!(h.quantile_upper_nanos(0.5), 16);
        assert_eq!(h.quantile_upper_nanos(1.0), 16_384);
        assert_eq!(Histogram::new().quantile_upper_nanos(0.5), 0);
    }

    #[test]
    fn huge_sample_lands_in_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn per_phase_isolation_and_merge() {
        let mut p = PhaseHistograms::default();
        p.record(Phase::Lgc, 100);
        p.record(Phase::SummarizeEngine, 200);
        assert_eq!(p.get(Phase::Lgc).count(), 1);
        assert_eq!(p.get(Phase::SnapshotCapture).count(), 0);
        let mut q = PhaseHistograms::default();
        q.record(Phase::Lgc, 300);
        p.merge(&q);
        assert_eq!(p.get(Phase::Lgc).count(), 2);
        assert_eq!(p.total_count(), 3);
    }
}
