//! `acdgc-obs` — structured event tracing and forensics for the collector
//! stack.
//!
//! The paper's claims are *behavioural*: CDMs terminate without global
//! synchronization, the IC barrier catches mutator/detector races, the
//! algebra stays bounded. Counters can say *that* those held; only an
//! event trace can show *how*. This crate provides:
//!
//! * a typed [`Event`] taxonomy over the CDM lifecycle, reference
//!   listing, phase timing, and quiescence voting;
//! * [`ProcTrace`] — a bounded per-process `Vec` ring buffer behind
//!   [`acdgc_model::TraceConfig`], with a zero-cost disabled path and a
//!   shared atomic sequence counter so concurrently recorded events merge
//!   into one total order;
//! * log2-bucket duration [`Histogram`]s per collector [`Phase`], per
//!   process and merged;
//! * [`Trace`] — the collected view: [`Trace::detection`] reconstructs
//!   one detection's ordered cross-process CDM path ([`DetectionPath`]),
//!   [`Trace::to_jsonl`] exports everything for post-mortems and
//!   [`Trace::from_jsonl`] re-ingests an export (the `acdgc-report` CLI);
//! * runtime health ([`health`]): per-worker [`Heartbeats`] slots, stall
//!   detection, and [`HealthReport`] snapshots of the pending event tails
//!   a hung worker would otherwise keep invisible;
//! * time-series telemetry ([`timeseries`]): a [`Sampler`] of periodic
//!   per-process and global gauge/counter [`Sample`]s in bounded
//!   decimating [`TimeSeries`] rings, exported as `sample` JSONL lines
//!   and rendered as sparkline timelines by `acdgc-report --timeline`;
//! * a causal layer ([`causal`]): per-process [`LamportClock`]s stamped
//!   on every event and piggybacked on every GC message, happens-before
//!   soundness checks ([`check_causal`]), critical-path latency
//!   [`Waterfall`]s, and Chrome trace-event export ([`perfetto_trace`])
//!   loadable in Perfetto.
//!
//! The crate sits below `heap`/`remoting`/`snapshot`/`sim` so every layer
//! can report events without dependency cycles; runtimes own the sinks
//! (one per process) and decide when to collect.

pub mod causal;
pub mod event;
pub mod health;
pub mod hist;
pub mod timeseries;
pub mod trace;

pub use causal::{
    check_causal, perfetto_trace, top_waterfalls, waterfall, LamportClock, PerfettoSummary,
    Segment, SegmentKind, Waterfall,
};
pub use event::{DropReason, Event, MutatorOpKind, Phase, Recorded, TermReason};
pub use health::{
    HealthReason, HealthReport, Heartbeat, HeartbeatSlot, Heartbeats, WorkerHealth, WorkerStage,
};
pub use hist::{Histogram, PhaseHistograms};
pub use timeseries::{
    check_series, counter_rates, group_by_series, sparkline, RateRow, Sample, SampleField,
    SampleRow, Sampler, TimeSeries, COUNTER_FIELDS, GAUGE_FIELDS,
};
pub use trace::{DetectionPath, PathBalance, ProcTrace, Trace, TraceCheck};
