//! Per-process ring buffers ([`ProcTrace`]), the collected cross-process
//! view ([`Trace`]), and detection forensics ([`DetectionPath`]).

use crate::causal::{check_causal, LamportClock};
use crate::event::{field_str, field_u16, field_u64, Event, Phase, Recorded};
use crate::health::HealthReport;
use crate::hist::PhaseHistograms;
use crate::timeseries::{check_series, group_by_series, Sample};
use acdgc_model::{DetectionId, ProcId, SimTime, TraceConfig, TraceFilter};
use serde_json::{json, Value};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One process's trace sink: a bounded `Vec` ring of [`Recorded`] events
/// plus per-phase duration histograms.
///
/// Sequence numbers come from an `Arc<AtomicU64>` that the embedding
/// runtime shares across all processes of a run, so the merged trace has
/// a total order even when processes record concurrently (each from its
/// own thread, or from a `rayon` parallel snapshot stage). Everything
/// else is process-local: recording never takes a shared lock.
///
/// The disabled path is one `bool` test per would-be event; no clock is
/// read and no event is built.
#[derive(Clone, Debug)]
pub struct ProcTrace {
    proc: ProcId,
    enabled: bool,
    filter: TraceFilter,
    capacity: usize,
    /// Whether recorded events carry Lamport stamps
    /// (`TraceConfig::lamport`).
    lamport: bool,
    /// This process's logical clock. Shared (`Arc` inside) with the
    /// embedding runtime so message send/receive paths can read and
    /// witness it without holding the trace sink.
    clock: LamportClock,
    seq: Arc<AtomicU64>,
    /// Ring storage: grows to `capacity`, then wraps at `head`.
    buf: Vec<Recorded>,
    head: usize,
    overwritten: u64,
    pub phases: PhaseHistograms,
}

impl ProcTrace {
    pub fn new(proc: ProcId, cfg: &TraceConfig) -> Self {
        ProcTrace {
            proc,
            enabled: cfg.enabled && cfg.capacity > 0,
            filter: cfg.filter,
            capacity: cfg.capacity.max(1),
            lamport: cfg.lamport,
            clock: LamportClock::new(),
            seq: Arc::new(AtomicU64::new(0)),
            buf: Vec::new(),
            head: 0,
            overwritten: 0,
            phases: PhaseHistograms::default(),
        }
    }

    /// A disabled sink (used where a `ProcTrace` is structurally required
    /// but tracing is off).
    pub fn disabled(proc: ProcId) -> Self {
        ProcTrace::new(proc, &TraceConfig::default())
    }

    pub fn proc(&self) -> ProcId {
        self.proc
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Events currently buffered (after any overwrites).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Adopt a shared sequence counter (the runtime links all processes
    /// of a run to one counter before any event is recorded).
    pub fn share_seq(&mut self, seq: Arc<AtomicU64>) {
        self.seq = seq;
    }

    pub fn seq_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq)
    }

    /// Whether events are Lamport-stamped (enabled *and* clocked).
    #[inline]
    pub fn lamport_enabled(&self) -> bool {
        self.enabled && self.lamport
    }

    /// A handle on this process's logical clock, for runtime paths that
    /// tick or witness it without holding the sink (the threaded
    /// runtime's workers stamp pending-tail events at record time).
    pub fn clock_handle(&self) -> LamportClock {
        self.clock.clone()
    }

    /// Current clock value, to piggyback on an outgoing message. `0` when
    /// clocks are off — receivers treat 0 as "no causal information".
    #[inline]
    pub fn clock_value(&self) -> u64 {
        if self.lamport_enabled() {
            self.clock.current()
        } else {
            0
        }
    }

    /// Fold a piggybacked remote clock value into the local clock (the
    /// message-receive half of the Lamport rules). Events recorded after
    /// this are stamped above `observed`.
    #[inline]
    pub fn witness(&self, observed: u64) {
        if self.lamport_enabled() {
            self.clock.witness(observed);
        }
    }

    /// Re-apply a (possibly different) trace configuration, keeping
    /// already-buffered events. Used when processes built under one
    /// config are handed to a runtime with another.
    pub fn reconfigure(&mut self, cfg: &TraceConfig) {
        self.enabled = cfg.enabled && cfg.capacity > 0;
        self.filter = cfg.filter;
        self.capacity = cfg.capacity.max(1);
        self.lamport = cfg.lamport;
    }

    /// Record one event (no-op when disabled or filtered out).
    #[inline]
    pub fn record(&mut self, at: SimTime, event: Event) {
        if !self.enabled {
            return;
        }
        self.push(at, event);
    }

    /// Record an event that already carries a Lamport stamp. The threaded
    /// runtime pre-assigns stamps when buffering events into its pending
    /// tails, so the stamp reflects when the event *happened*; flushing
    /// later through this path must not re-tick the clock.
    pub fn record_stamped(&mut self, at: SimTime, lamport: u64, event: Event) {
        if !self.enabled || !event.passes(&self.filter) {
            return;
        }
        self.push_stamped(at, lamport, event);
    }

    fn push(&mut self, at: SimTime, event: Event) {
        if !event.passes(&self.filter) {
            return;
        }
        let lamport = if self.lamport { self.clock.tick() } else { 0 };
        self.push_stamped(at, lamport, event);
    }

    fn push_stamped(&mut self, at: SimTime, lamport: u64, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let rec = Recorded {
            seq,
            at,
            proc: self.proc,
            lamport,
            event,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Buffered events in recording order.
    pub fn events(&self) -> impl Iterator<Item = &Recorded> {
        let (late, early) = self.buf.split_at(self.head);
        early.iter().chain(late.iter())
    }

    /// Start a bracketed phase: emits [`Event::PhaseStarted`] and arms a
    /// wall-clock stopwatch. Returns `None` (and emits nothing) when
    /// disabled — the `Instant::now()` is only paid when tracing.
    pub fn begin(&mut self, at: SimTime, phase: Phase) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.push(at, Event::PhaseStarted { phase });
        Some(Instant::now())
    }

    /// Close a bracketed phase: records the duration into the phase
    /// histogram and emits [`Event::PhaseEnded`].
    pub fn end(&mut self, at: SimTime, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.phases.record(phase, nanos);
            self.push(at, Event::PhaseEnded { phase, nanos });
        }
    }

    /// Arm a histogram-only stopwatch (no start/end events) for hot,
    /// high-frequency phases like per-CDM handling.
    pub fn stopwatch(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Close a histogram-only stopwatch.
    pub fn lap(&mut self, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.phases.record(phase, nanos);
        }
    }
}

/// The merged, seq-ordered view over every process's ring buffer —
/// everything the forensics and export APIs operate on.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All surviving events, sorted by sequence number.
    pub events: Vec<Recorded>,
    /// Events lost to ring overwrite across all processes. Non-zero means
    /// the trace is a suffix, not the whole story.
    pub overwritten: u64,
    /// Per-process phase histograms.
    pub phases: Vec<(ProcId, PhaseHistograms)>,
    /// Time-series telemetry samples (global series first, then per
    /// process), each paired with its series' declared capacity. Empty
    /// unless the run sampled (`SamplingConfig::enabled`).
    pub samples: Vec<(Sample, usize)>,
    /// Which runtime produced the trace (`"sequential"` / `"threaded"`),
    /// when known. Critical-path analysis uses it to label cross-process
    /// gaps: simulated network transit vs real inbox queue wait.
    pub runtime: Option<String>,
}

impl Trace {
    /// Merge the given per-process sinks into one ordered trace.
    pub fn collect<'a, I>(procs: I) -> Trace
    where
        I: IntoIterator<Item = &'a ProcTrace>,
    {
        let mut events = Vec::new();
        let mut overwritten = 0;
        let mut phases = Vec::new();
        for pt in procs {
            events.extend(pt.events().cloned());
            overwritten += pt.overwritten();
            phases.push((pt.proc(), pt.phases.clone()));
        }
        events.sort_by_key(|r| r.seq);
        Trace {
            events,
            overwritten,
            phases,
            samples: Vec::new(),
            runtime: None,
        }
    }

    /// Attach a sampler's exported time-series (builder-style, so runtime
    /// `trace()` accessors can chain it onto [`Trace::collect`]).
    pub fn with_samples(mut self, samples: Vec<(Sample, usize)>) -> Trace {
        self.samples = samples;
        self
    }

    /// Tag which runtime produced the trace (builder-style, like
    /// [`Trace::with_samples`]).
    pub fn with_runtime(mut self, runtime: &str) -> Trace {
        self.runtime = Some(runtime.to_string());
        self
    }

    /// System-wide phase histograms (all processes merged).
    pub fn merged_phases(&self) -> PhaseHistograms {
        let mut merged = PhaseHistograms::default();
        for (_, p) in &self.phases {
            merged.merge(p);
        }
        merged
    }

    /// Every detection id with at least one surviving event, ascending.
    pub fn detection_ids(&self) -> Vec<DetectionId> {
        let mut ids: Vec<DetectionId> = self
            .events
            .iter()
            .filter_map(|r| r.event.detection_id())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Detections that produced a [`Event::CycleDetected`] verdict.
    pub fn detected_cycles(&self) -> Vec<DetectionId> {
        let mut ids: Vec<DetectionId> = self
            .events
            .iter()
            .filter(|r| matches!(r.event, Event::CycleDetected { .. }))
            .filter_map(|r| r.event.detection_id())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Reconstruct the ordered cross-process CDM path of one detection.
    pub fn detection(&self, id: DetectionId) -> DetectionPath {
        DetectionPath {
            id,
            events: self
                .events
                .iter()
                .filter(|r| r.event.detection_id() == Some(id))
                .cloned()
                .collect(),
        }
    }

    /// Export everything as JSON Lines: one `trace_meta` header, one
    /// object per event, one `phase_histograms` object per process, then
    /// one `sample` object per telemetry sample.
    pub fn to_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut meta = json!({
            "type": "trace_meta",
            "events": self.events.len(),
            "overwritten": self.overwritten,
        });
        if let (Some(rt), Value::Object(m)) = (&self.runtime, &mut meta) {
            m.insert("runtime".into(), json!(rt.as_str()));
        }
        writeln!(
            w,
            "{}",
            serde_json::to_string(&meta).expect("value serialization is infallible")
        )?;
        for rec in &self.events {
            writeln!(
                w,
                "{}",
                serde_json::to_string(&rec.to_json()).expect("value serialization is infallible")
            )?;
        }
        for (proc, phases) in &self.phases {
            if phases.total_count() == 0 {
                continue;
            }
            let line = json!({
                "type": "phase_histograms",
                "proc": proc.0,
                "phases": phases.to_json(),
            });
            writeln!(
                w,
                "{}",
                serde_json::to_string(&line).expect("value serialization is infallible")
            )?;
        }
        for (sample, cap) in &self.samples {
            writeln!(
                w,
                "{}",
                serde_json::to_string(&sample.to_json(*cap))
                    .expect("value serialization is infallible")
            )?;
        }
        Ok(())
    }

    /// Write the JSONL export to `path`, creating parent directories.
    pub fn dump_jsonl(&self, path: &std::path::Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        self.to_jsonl(&mut f)
    }

    /// Inverse of [`Trace::to_jsonl`]: re-ingest an exported artifact.
    /// Also returns any `health_report` lines appended after the export
    /// (the threaded runtime's watchdog writes them there). Unknown line
    /// types are an error — a half-understood artifact must not silently
    /// pass checks.
    pub fn from_jsonl(text: &str) -> Result<(Trace, Vec<HealthReport>), String> {
        let mut trace = Trace::default();
        let mut health = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let m = match &v {
                Value::Object(m) => m,
                _ => return Err(format!("line {lineno}: not a JSON object")),
            };
            let kind =
                field_str(m, "type").ok_or_else(|| format!("line {lineno}: no type field"))?;
            match kind {
                "trace_meta" => {
                    trace.overwritten = field_u64(m, "overwritten")
                        .ok_or_else(|| format!("line {lineno}: trace_meta without overwritten"))?;
                    trace.runtime = field_str(m, "runtime").map(str::to_string);
                }
                "phase_histograms" => {
                    let proc =
                        ProcId(field_u16(m, "proc").ok_or_else(|| {
                            format!("line {lineno}: phase_histograms without proc")
                        })?);
                    let phases = m
                        .get("phases")
                        .and_then(PhaseHistograms::from_json)
                        .ok_or_else(|| format!("line {lineno}: bad phase_histograms payload"))?;
                    trace.phases.push((proc, phases));
                }
                "health_report" => {
                    health.push(
                        HealthReport::from_json(&v)
                            .ok_or_else(|| format!("line {lineno}: bad health_report payload"))?,
                    );
                }
                "sample" => {
                    trace.samples.push(
                        Sample::from_json(&v)
                            .ok_or_else(|| format!("line {lineno}: bad sample payload"))?,
                    );
                }
                _ => {
                    trace.events.push(
                        Recorded::from_json(&v)
                            .ok_or_else(|| format!("line {lineno}: bad {kind} event payload"))?,
                    );
                }
            }
        }
        trace.events.sort_by_key(|r| r.seq);
        Ok((trace, health))
    }

    /// Run every machine-checkable invariant over every reconstructed
    /// detection. The checks are chosen to hold under message loss,
    /// duplication, and un-drained inboxes (the stress artifacts are
    /// produced under exactly those), so a violation means a *recording*
    /// is wrong — a dropped terminal, a duplicated forward, a
    /// non-monotonic hop — not that the network misbehaved:
    ///
    /// * hop monotonicity along every path ([`DetectionPath::check_hops_increase`]);
    /// * `branches == sent`: every emitted CDM is announced by its
    ///   forward step (send-side recording precedes fault injection);
    /// * `terminals + forward_steps == started + delivered`: every
    ///   processing step closes with exactly one verdict or forward.
    ///
    /// Telemetry samples are additionally validated per series (global
    /// and per process): monotonic timestamps, strictly increasing
    /// rounds, monotone counters, and the capacity bound each `sample`
    /// line declares.
    ///
    /// Lamport-clocked traces are additionally validated causally (see
    /// [`crate::causal::check_causal`]): per-process stamps strictly
    /// increase in seq order, and every paired receive carries a stamp
    /// above its send. Both properties survive truncation, so like the
    /// sample checks they run even on suffix traces.
    ///
    /// A trace with ring overwrites is a suffix: the detection-ledger
    /// checks are skipped and [`TraceCheck::skipped_overwritten`] is set.
    /// Sample series never overwrite (they decimate), so the sample
    /// checks run regardless.
    pub fn check(&self) -> TraceCheck {
        let mut check = TraceCheck {
            detections: 0,
            hop_violations: Vec::new(),
            balance_violations: Vec::new(),
            sample_violations: Vec::new(),
            causal_violations: check_causal(self),
            skipped_overwritten: self.overwritten > 0,
        };
        for (proc, series) in group_by_series(&self.samples) {
            let label = match proc {
                None => "samples[global]".to_string(),
                Some(p) => format!("samples[{p}]"),
            };
            check
                .sample_violations
                .extend(check_series(&label, &series));
        }
        if check.skipped_overwritten {
            return check;
        }
        for id in self.detection_ids() {
            check.detections += 1;
            let path = self.detection(id);
            if let Err(e) = path.check_hops_increase() {
                check.hop_violations.push(e);
            }
            let b = path.balance();
            if b.branches != b.sent {
                check.balance_violations.push(format!(
                    "{id}: {} forwarded branches but {} CdmSent events",
                    b.branches, b.sent
                ));
            }
            let steps = u64::from(b.started) + b.delivered;
            if b.terminals + b.forward_steps != steps {
                check.balance_violations.push(format!(
                    "{id}: {} processing steps (started={} + delivered={}) closed by \
                     {} terminals + {} forwards",
                    steps, b.started as u8, b.delivered, b.terminals, b.forward_steps
                ));
            }
        }
        check
    }
}

/// Result of [`Trace::check`]: the ledger- and monotonicity-level verdicts
/// `acdgc-report --check` gates CI on.
#[derive(Clone, Debug, Default)]
pub struct TraceCheck {
    /// Detections examined.
    pub detections: usize,
    pub hop_violations: Vec<String>,
    pub balance_violations: Vec<String>,
    /// Telemetry-series violations (non-monotonic timestamps/rounds,
    /// regressing counters, capacity overruns). Checked even for suffix
    /// traces — sampling decimates instead of overwriting.
    pub sample_violations: Vec<String>,
    /// Lamport-clock violations (per-process non-monotone stamps, receive
    /// stamp ≤ send stamp). Checked even for suffix traces — a suffix of
    /// a causally sound trace is itself causally sound.
    pub causal_violations: Vec<String>,
    /// True when the trace had ring overwrites and the detection checks
    /// were skipped (a suffix trace cannot be balanced).
    pub skipped_overwritten: bool,
}

impl TraceCheck {
    pub fn ok(&self) -> bool {
        self.hop_violations.is_empty()
            && self.balance_violations.is_empty()
            && self.sample_violations.is_empty()
            && self.causal_violations.is_empty()
    }

    /// All violations, for printing.
    pub fn violations(&self) -> impl Iterator<Item = &String> {
        self.hop_violations
            .iter()
            .chain(self.balance_violations.iter())
            .chain(self.sample_violations.iter())
            .chain(self.causal_violations.iter())
    }
}

/// Counted processing-step balance of one detection (see
/// [`DetectionPath::balance`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathBalance {
    pub started: bool,
    pub sent: u64,
    pub delivered: u64,
    /// Processing steps that forwarded (each emits one `CdmForwarded`).
    pub forward_steps: u64,
    /// Sum of `branches` over all forward steps (== CDMs emitted).
    pub branches: u64,
    pub terminals: u64,
}

/// The seq-ordered event slice of one detection, with the invariant
/// checks the property tests (and post-mortems) lean on.
#[derive(Clone, Debug)]
pub struct DetectionPath {
    pub id: DetectionId,
    pub events: Vec<Recorded>,
}

impl DetectionPath {
    pub fn started(&self) -> bool {
        self.events
            .iter()
            .any(|r| matches!(r.event, Event::DetectionStarted { .. }))
    }

    /// The initiating process, if the start event survived.
    pub fn initiator(&self) -> Option<ProcId> {
        self.events
            .iter()
            .find(|r| matches!(r.event, Event::DetectionStarted { .. }))
            .map(|r| r.proc)
    }

    /// Distinct processes in order of first appearance.
    pub fn procs(&self) -> Vec<ProcId> {
        let mut out = Vec::new();
        for r in &self.events {
            if !out.contains(&r.proc) {
                out.push(r.proc);
            }
        }
        out
    }

    pub fn terminals(&self) -> Vec<&Recorded> {
        self.events
            .iter()
            .filter(|r| r.event.is_terminal())
            .collect()
    }

    pub fn found_cycle(&self) -> bool {
        self.events
            .iter()
            .any(|r| matches!(r.event, Event::CycleDetected { .. }))
    }

    /// Count the lifecycle ledger. In a lossless, fully-drained run with
    /// no ring overwrite:
    ///
    /// * `delivered == sent` (every CDM landed),
    /// * `branches == sent` (every emitted CDM was announced by its
    ///   forward step),
    /// * `terminals + forward_steps == started + delivered` (every
    ///   processing step — the initiation plus one per delivery — either
    ///   forwarded or terminated, never both, never neither).
    pub fn balance(&self) -> PathBalance {
        let mut b = PathBalance {
            started: false,
            sent: 0,
            delivered: 0,
            forward_steps: 0,
            branches: 0,
            terminals: 0,
        };
        for r in &self.events {
            match r.event {
                Event::DetectionStarted { .. } => b.started = true,
                Event::CdmSent { .. } => b.sent += 1,
                Event::CdmDelivered { .. } => b.delivered += 1,
                Event::CdmForwarded { branches, .. } => {
                    b.forward_steps += 1;
                    b.branches += u64::from(branches);
                }
                _ if r.event.is_terminal() => b.terminals += 1,
                _ => {}
            }
        }
        b
    }

    /// Check hop monotonicity: every `CdmSent` must carry a hop strictly
    /// greater than the hop of the processing step that produced it (the
    /// last `DetectionStarted` / `CdmDelivered` at the same process
    /// before it). Returns the first violation.
    pub fn check_hops_increase(&self) -> Result<(), String> {
        use std::collections::HashMap;
        // Hop context of the processing step currently running at each
        // process (None once the step's outputs are done is fine: contexts
        // are only read by the sends that follow their step).
        let mut ctx: HashMap<ProcId, u32> = HashMap::new();
        for r in &self.events {
            match r.event {
                Event::DetectionStarted { .. } => {
                    ctx.insert(r.proc, 0);
                }
                Event::CdmDelivered { hop, .. } => {
                    ctx.insert(r.proc, hop);
                }
                Event::CdmSent { hop, .. } => match ctx.get(&r.proc) {
                    None => {
                        return Err(format!(
                            "{}: CdmSent at {} (hop {hop}) with no prior start/delivery there",
                            self.id, r.proc
                        ));
                    }
                    Some(&prev) if hop <= prev => {
                        return Err(format!(
                            "{}: hop not increasing at {}: sent hop {hop} after step hop {prev}",
                            self.id, r.proc
                        ));
                    }
                    Some(_) => {}
                },
                _ => {}
            }
        }
        Ok(())
    }

    /// Cross-process generalization of [`check_hops_increase`]: Lamport
    /// stamps must strictly increase along the path — every event a
    /// processing step emits is stamped above the step's opening event
    /// (start/delivery), and every delivery is stamped above its matching
    /// send. Trivially `Ok` on unclocked (or partially clocked) paths:
    /// a stamp of 0 means "no causal information", not "time zero".
    ///
    /// [`check_hops_increase`]: DetectionPath::check_hops_increase
    pub fn check_lamport_increases(&self) -> Result<(), String> {
        use std::collections::HashMap;
        if self.events.iter().any(|r| r.lamport == 0) {
            return Ok(());
        }
        // Lamport stamp of the processing step currently open per process.
        let mut step: HashMap<ProcId, u64> = HashMap::new();
        // Minimum send stamp per (dest, via, hop) — duplicates share the
        // route key, and any copy's delivery happens after the first send.
        let mut sends: HashMap<(ProcId, u64, u32), u64> = HashMap::new();
        for r in &self.events {
            match r.event {
                Event::DetectionStarted { .. } => {
                    step.insert(r.proc, r.lamport);
                }
                Event::CdmSent { to, via, hop, .. } => {
                    if let Some(&s) = step.get(&r.proc) {
                        if r.lamport <= s {
                            return Err(format!(
                                "{}: lamport not increasing at {}: sent lc {} after step lc {s}",
                                self.id, r.proc, r.lamport
                            ));
                        }
                    }
                    let e = sends.entry((to, via.0, hop)).or_insert(u64::MAX);
                    *e = (*e).min(r.lamport);
                }
                Event::CdmDelivered { via, hop, .. } => {
                    if let Some(&s) = sends.get(&(r.proc, via.0, hop)) {
                        if r.lamport <= s {
                            return Err(format!(
                                "{}: receive lc {} ≤ send lc {s} at {} (via {via}, hop {hop})",
                                self.id, r.lamport, r.proc
                            ));
                        }
                    }
                    step.insert(r.proc, r.lamport);
                }
                _ => {
                    if let Some(&s) = step.get(&r.proc) {
                        if r.lamport <= s {
                            return Err(format!(
                                "{}: lamport not increasing at {}: {} lc {} after step lc {s}",
                                self.id,
                                r.proc,
                                r.event.kind(),
                                r.lamport
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the cross-process message path, e.g.
    /// `d3: P2[r14] --r15(h1,3s/2t,112B)--> P5 --…--> cycle(7 scions)`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{}:", self.id);
        for r in &self.events {
            match r.event {
                Event::DetectionStarted { scion, .. } => {
                    let _ = write!(out, " {}[{}]", r.proc, scion);
                }
                Event::CdmSent {
                    to,
                    via,
                    hop,
                    sources,
                    targets,
                    bytes,
                    ..
                } => {
                    let _ = write!(
                        out,
                        " --{via}(h{hop},{sources}s/{targets}t,{bytes}B)--> {to}"
                    );
                }
                Event::CycleDetected { scions, .. } => {
                    let _ = write!(out, " => cycle({scions} scions) at {}", r.proc);
                }
                Event::DetectionAborted { ref_id, .. } => {
                    let _ = write!(out, " => aborted(ic mismatch on {ref_id}) at {}", r.proc);
                }
                Event::DetectionDropped { reason, .. } => {
                    let _ = write!(out, " => dropped({}) at {}", reason.name(), r.proc);
                }
                Event::DetectionTerminated { reason, .. } => {
                    let _ = write!(out, " => terminated({}) at {}", reason.name(), r.proc);
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::RefId;

    fn cfg(capacity: usize) -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity,
            ..TraceConfig::default()
        }
    }

    fn started(id: u64, scion: u64) -> Event {
        Event::DetectionStarted {
            id: DetectionId(id),
            scion: RefId(scion),
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut pt = ProcTrace::disabled(ProcId(0));
        assert!(!pt.enabled());
        pt.record(SimTime(1), started(0, 1));
        assert!(pt.begin(SimTime(1), Phase::Lgc).is_none());
        assert!(pt.stopwatch().is_none());
        assert_eq!(pt.len(), 0);
        assert_eq!(pt.phases.total_count(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(3));
        for i in 0..5 {
            pt.record(SimTime(i), started(i, i));
        }
        assert_eq!(pt.len(), 3);
        assert_eq!(pt.overwritten(), 2);
        let seqs: Vec<u64> = pt.events().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn shared_seq_totally_orders_across_procs() {
        let mut a = ProcTrace::new(ProcId(0), &cfg(16));
        let mut b = ProcTrace::new(ProcId(1), &cfg(16));
        b.share_seq(a.seq_handle());
        a.record(SimTime(1), started(0, 1));
        b.record(SimTime(1), started(1, 2));
        a.record(SimTime(2), started(2, 3));
        let t = Trace::collect([&a, &b]);
        let seqs: Vec<u64> = t.events.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(t.events[1].proc, ProcId(1));
    }

    #[test]
    fn filter_suppresses_but_burns_no_seq_for_filtered() {
        let mut c = cfg(16);
        c.filter.phases = false;
        let mut pt = ProcTrace::new(ProcId(0), &c);
        let t0 = pt.begin(SimTime(1), Phase::Lgc);
        pt.end(SimTime(1), Phase::Lgc, t0);
        pt.record(SimTime(2), started(0, 1));
        assert_eq!(pt.len(), 1, "phase events filtered out");
        assert_eq!(pt.events().next().unwrap().seq, 0, "no seq gap");
        assert_eq!(
            pt.phases.get(Phase::Lgc).count(),
            1,
            "histograms still fed when the event family is filtered"
        );
    }

    #[test]
    fn detection_path_balance_and_hops() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(64));
        let mut other = ProcTrace::new(ProcId(1), &cfg(64));
        other.share_seq(pt.seq_handle());
        let id = DetectionId(7);
        pt.record(SimTime(1), started(7, 1));
        pt.record(
            SimTime(1),
            Event::CdmSent {
                id,
                to: ProcId(1),
                via: RefId(1),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        pt.record(
            SimTime(1),
            Event::CdmForwarded {
                id,
                hop: 0,
                branches: 1,
                pruned_local: 0,
                pruned_no_new_info: 0,
            },
        );
        other.record(
            SimTime(2),
            Event::CdmDelivered {
                id,
                via: RefId(1),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        other.record(
            SimTime(2),
            Event::CycleDetected {
                id,
                hop: 1,
                scions: 2,
            },
        );
        let trace = Trace::collect([&pt, &other]);
        let path = trace.detection(id);
        assert_eq!(path.procs(), vec![ProcId(0), ProcId(1)]);
        assert_eq!(path.initiator(), Some(ProcId(0)));
        let b = path.balance();
        assert!(b.started);
        assert_eq!((b.sent, b.delivered), (1, 1));
        assert_eq!(b.terminals + b.forward_steps, 1 + b.delivered);
        assert_eq!(b.branches, b.sent);
        path.check_hops_increase().unwrap();
        assert!(path.found_cycle());
        assert!(path.render().contains("=> cycle(2 scions)"));
    }

    #[test]
    fn hop_violation_is_reported() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(16));
        pt.record(SimTime(1), started(3, 1));
        pt.record(
            SimTime(1),
            Event::CdmSent {
                id: DetectionId(3),
                to: ProcId(1),
                via: RefId(1),
                hop: 0, // must be > 0 after a start
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        let trace = Trace::collect([&pt]);
        assert!(trace
            .detection(DetectionId(3))
            .check_hops_increase()
            .is_err());
    }

    /// Build the healthy single-cycle detection used by the export tests:
    /// start at P0, one CDM to P1, cycle verdict there.
    fn two_proc_cycle_trace() -> Trace {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(64));
        let mut other = ProcTrace::new(ProcId(1), &cfg(64));
        other.share_seq(pt.seq_handle());
        let id = DetectionId(7);
        pt.record(SimTime(1), started(7, 1));
        pt.record(
            SimTime(1),
            Event::CdmForwarded {
                id,
                hop: 0,
                branches: 1,
                pruned_local: 0,
                pruned_no_new_info: 0,
            },
        );
        pt.record(
            SimTime(1),
            Event::CdmSent {
                id,
                to: ProcId(1),
                via: RefId(1),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        other.record(
            SimTime(2),
            Event::CdmDelivered {
                id,
                via: RefId(1),
                hop: 1,
                sources: 1,
                targets: 1,
                bytes: 64,
            },
        );
        other.record(
            SimTime(2),
            Event::CycleDetected {
                id,
                hop: 1,
                scions: 2,
            },
        );
        let t0 = pt.begin(SimTime(3), Phase::Lgc);
        pt.end(SimTime(3), Phase::Lgc, t0);
        Trace::collect([&pt, &other])
    }

    #[test]
    fn jsonl_round_trips_into_equal_trace() {
        let trace = two_proc_cycle_trace();
        let mut buf = Vec::new();
        trace.to_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (back, health) = Trace::from_jsonl(&text).unwrap();
        assert!(health.is_empty());
        assert_eq!(back.events, trace.events);
        assert_eq!(back.overwritten, 0);
        assert_eq!(back.phases.len(), 1, "only P0 sampled a phase");
        assert_eq!(back.phases[0].1, trace.phases[0].1);
        assert!(back.check().ok());
    }

    #[test]
    fn from_jsonl_surfaces_health_reports_and_rejects_junk() {
        let trace = two_proc_cycle_trace();
        let mut buf = Vec::new();
        trace.to_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        let report = crate::health::HealthReport {
            at_us: 99,
            reason: crate::health::HealthReason::Quiescent,
            workers: vec![],
        };
        text.push_str(&serde_json::to_string(&report.to_json()).unwrap());
        text.push('\n');
        let (_, health) = Trace::from_jsonl(&text).unwrap();
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].at_us, 99);

        assert!(Trace::from_jsonl("{\"type\":\"mystery\"}\n").is_err());
        assert!(Trace::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn check_flags_a_dropped_terminal() {
        let trace = two_proc_cycle_trace();
        assert!(trace.check().ok());
        // Synthetic corruption: remove the terminal verdict. The delivered
        // CDM's processing step now closes with nothing — exactly the
        // bookkeeping hole `--check` exists to catch.
        let mut corrupted = trace.clone();
        corrupted
            .events
            .retain(|r| !matches!(r.event, Event::CycleDetected { .. }));
        let check = corrupted.check();
        assert!(!check.ok());
        assert_eq!(check.balance_violations.len(), 1, "{check:?}");
        assert!(check.hop_violations.is_empty());
    }

    #[test]
    fn check_skips_suffix_traces() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(2));
        for i in 0..5 {
            pt.record(SimTime(i), started(i, i));
        }
        let trace = Trace::collect([&pt]);
        let check = trace.check();
        assert!(check.skipped_overwritten);
        assert!(check.ok(), "a suffix trace is unjudgeable, not guilty");
    }

    /// Two global + one per-proc telemetry samples with advancing clocks
    /// and counters.
    fn sample_fixture() -> Vec<(Sample, usize)> {
        let mk = |round: u64, proc| Sample {
            at: SimTime(round * 1_000),
            round,
            proc,
            live_objects: 10 + round,
            cdms_sent: round * 2,
            ..Sample::default()
        };
        vec![
            (mk(1, None), 64),
            (mk(2, None), 64),
            (mk(2, Some(ProcId(1))), 64),
        ]
    }

    #[test]
    fn jsonl_round_trips_samples_and_checks_them() {
        let trace = two_proc_cycle_trace().with_samples(sample_fixture());
        let mut buf = Vec::new();
        trace.to_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("\"type\":\"sample\"").count(), 3);
        let (back, _) = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.samples, trace.samples);
        let check = back.check();
        assert!(check.ok(), "{:?}", check.sample_violations);

        // Corrupt the global series: reverse its rounds/timestamps. The
        // sample checker must flag it even though the event ledger is fine.
        let mut corrupted = back.clone();
        corrupted.samples.swap(0, 1);
        let check = corrupted.check();
        assert!(!check.ok());
        assert!(!check.sample_violations.is_empty(), "{check:?}");
    }

    #[test]
    fn sample_checks_run_even_on_suffix_traces() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(2));
        for i in 0..5 {
            pt.record(SimTime(i), started(i, i));
        }
        let mut samples = sample_fixture();
        samples.swap(0, 1); // non-monotonic global series
        let trace = Trace::collect([&pt]).with_samples(samples);
        let check = trace.check();
        assert!(check.skipped_overwritten);
        assert!(
            !check.sample_violations.is_empty(),
            "overwritten events must not blind the sample checker"
        );
        assert!(!check.ok());
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let mut pt = ProcTrace::new(ProcId(0), &cfg(16));
        let t0 = pt.begin(SimTime(1), Phase::SummarizeEngine);
        pt.end(SimTime(1), Phase::SummarizeEngine, t0);
        pt.record(SimTime(2), started(0, 9));
        let trace = Trace::collect([&pt]);
        let mut buf = Vec::new();
        trace.to_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 3 events + 1 histogram line.
        assert_eq!(lines.len(), 5, "{text}");
        for line in lines {
            serde_json::from_str(line).expect("every line parses as JSON");
        }
    }
}
