//! Runtime health: per-worker heartbeats, stall detection, and
//! [`HealthReport`] snapshots for the threaded runtime.
//!
//! PR 3's flight recorder has a blind spot by design: threaded workers
//! buffer their lock-free tail events until the next sweep-boundary flush,
//! so the one worker that hangs is exactly the worker whose latest events
//! the trace cannot show. This module closes that gap the way termination
//! detectors treat liveness — as a first-class observable:
//!
//! * every worker publishes a [`HeartbeatSlot`] of relaxed atomics (last
//!   beat, sweep, stage, vote state, pending-event count, inbox depth)
//!   once per loop iteration — a handful of stores, no locks;
//! * a monitor thread (armed by `WatchdogConfig`) polls the slots and
//!   flags any worker whose last beat is older than `stall_after`;
//! * on stall — and once at the end of every run (quiescence or
//!   deadline) — it snapshots each worker's *pending* (not yet flushed)
//!   event tail plus its metrics ledger into a [`HealthReport`].
//!
//! The report is both human-renderable ([`HealthReport::render`]) and a
//! JSONL line ([`HealthReport::to_json`]) appended to trace artifacts, so
//! `acdgc-report` can summarize run health offline.

use crate::event::{field_bool, field_str, field_u16, field_u64, Event};
use acdgc_model::{ProcId, SimTime};
use serde_json::{json, Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a worker's main loop was when it last beat. Encoded as a `u64`
/// so the slot stays a plain atomic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerStage {
    /// Spawned, no loop iteration completed yet.
    Starting,
    /// Draining the inbox.
    Draining,
    /// Inside a GC sweep (LGC, NSS, snapshot, scan, initiations).
    Sweeping,
    /// Vote cast; idling on drain + global-quiet checks.
    Voted,
    /// Past the stop flag, applying the final drain.
    FinalDrain,
    /// Exited; an old beat is normal, not a stall.
    Done,
}

impl WorkerStage {
    pub const ALL: [WorkerStage; 6] = [
        WorkerStage::Starting,
        WorkerStage::Draining,
        WorkerStage::Sweeping,
        WorkerStage::Voted,
        WorkerStage::FinalDrain,
        WorkerStage::Done,
    ];

    pub fn code(self) -> u64 {
        match self {
            WorkerStage::Starting => 0,
            WorkerStage::Draining => 1,
            WorkerStage::Sweeping => 2,
            WorkerStage::Voted => 3,
            WorkerStage::FinalDrain => 4,
            WorkerStage::Done => 5,
        }
    }

    pub fn from_code(code: u64) -> WorkerStage {
        WorkerStage::ALL
            .into_iter()
            .find(|s| s.code() == code)
            .unwrap_or(WorkerStage::Starting)
    }

    pub fn name(self) -> &'static str {
        match self {
            WorkerStage::Starting => "starting",
            WorkerStage::Draining => "draining",
            WorkerStage::Sweeping => "sweeping",
            WorkerStage::Voted => "voted",
            WorkerStage::FinalDrain => "final_drain",
            WorkerStage::Done => "done",
        }
    }

    pub fn from_name(name: &str) -> Option<WorkerStage> {
        WorkerStage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One worker's published vitals. Writers are the owning worker (beats,
/// stage, pending count) and its peers (inbox enqueue side); the monitor
/// only reads. All accesses are `Relaxed`: the watchdog tolerates a
/// slightly stale read — its threshold is milliseconds, not nanoseconds —
/// and keeping the slot off the coherence hot path is the point.
#[derive(Debug, Default)]
pub struct HeartbeatSlot {
    /// Microseconds since run start at the worker's last beat.
    last_beat_us: AtomicU64,
    /// Sweeps completed (the worker's `round`).
    sweep: AtomicU64,
    /// [`WorkerStage`] code.
    stage: AtomicU64,
    /// 1 while the worker holds its quiescence vote.
    voted: AtomicU64,
    /// Events buffered in the worker's pending tail (not yet flushed into
    /// its process ring).
    pending_events: AtomicU64,
    /// Messages successfully enqueued towards this worker (bumped by
    /// senders — the vendored channel has no `len()`, so depth is the
    /// difference of these two ledgers).
    inbox_enqueued: AtomicU64,
    /// Messages this worker has drained.
    inbox_drained: AtomicU64,
}

impl HeartbeatSlot {
    /// Worker-side: publish one beat.
    pub fn beat(&self, now_us: u64, sweep: u64, stage: WorkerStage, voted: bool) {
        self.last_beat_us.store(now_us, Ordering::Relaxed);
        self.sweep.store(sweep, Ordering::Relaxed);
        self.stage.store(stage.code(), Ordering::Relaxed);
        self.voted.store(u64::from(voted), Ordering::Relaxed);
    }

    /// Worker-side: refresh the stage (and beat) mid-iteration, e.g. when
    /// entering a sweep, so a stall points at the phase it happened in.
    pub fn set_stage(&self, stage: WorkerStage, now_us: u64) {
        self.stage.store(stage.code(), Ordering::Relaxed);
        self.last_beat_us.store(now_us, Ordering::Relaxed);
    }

    /// Worker-side: publish the pending-tail length after a record/flush.
    pub fn set_pending(&self, events: usize) {
        self.pending_events.store(events as u64, Ordering::Relaxed);
    }

    /// Sender-side: a message was accepted into this worker's inbox.
    pub fn note_enqueue(&self) {
        self.inbox_enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker-side: a message was taken out of the inbox.
    pub fn note_drain(&self) {
        self.inbox_drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Monitor-side: coherent-enough copy of the vitals.
    pub fn snapshot(&self) -> Heartbeat {
        Heartbeat {
            last_beat_us: self.last_beat_us.load(Ordering::Relaxed),
            sweep: self.sweep.load(Ordering::Relaxed),
            stage: WorkerStage::from_code(self.stage.load(Ordering::Relaxed)),
            voted: self.voted.load(Ordering::Relaxed) == 1,
            pending_events: self.pending_events.load(Ordering::Relaxed),
            inbox_enqueued: self.inbox_enqueued.load(Ordering::Relaxed),
            inbox_drained: self.inbox_drained.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`HeartbeatSlot`].
#[derive(Clone, Copy, Debug)]
pub struct Heartbeat {
    pub last_beat_us: u64,
    pub sweep: u64,
    pub stage: WorkerStage,
    pub voted: bool,
    pub pending_events: u64,
    pub inbox_enqueued: u64,
    pub inbox_drained: u64,
}

impl Heartbeat {
    /// Messages sitting in the inbox (enqueued but not yet drained). The
    /// two ledgers are read independently, so transiently this can lag by
    /// in-flight increments; saturate rather than wrap.
    pub fn inbox_depth(&self) -> u64 {
        self.inbox_enqueued.saturating_sub(self.inbox_drained)
    }
}

/// The shared slot array: one [`HeartbeatSlot`] per worker, allocated by
/// the runtime before the threads start.
#[derive(Debug)]
pub struct Heartbeats {
    slots: Vec<HeartbeatSlot>,
}

impl Heartbeats {
    pub fn new(workers: usize) -> Arc<Heartbeats> {
        Arc::new(Heartbeats {
            slots: (0..workers).map(|_| HeartbeatSlot::default()).collect(),
        })
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn slot(&self, worker: usize) -> &HeartbeatSlot {
        &self.slots[worker]
    }

    pub fn snapshot(&self) -> Vec<Heartbeat> {
        self.slots.iter().map(|s| s.snapshot()).collect()
    }
}

/// Why a [`HealthReport`] was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthReason {
    /// The monitor found at least one worker past the stall threshold.
    Stall,
    /// The run ended through the quiescence protocol.
    Quiescent,
    /// The run ended through the wall-clock deadline backstop.
    Deadline,
}

impl HealthReason {
    pub fn name(self) -> &'static str {
        match self {
            HealthReason::Stall => "stall",
            HealthReason::Quiescent => "quiescent",
            HealthReason::Deadline => "deadline",
        }
    }

    pub fn from_name(name: &str) -> Option<HealthReason> {
        [
            HealthReason::Stall,
            HealthReason::Quiescent,
            HealthReason::Deadline,
        ]
        .into_iter()
        .find(|r| r.name() == name)
    }
}

/// One worker's state inside a [`HealthReport`].
#[derive(Clone, Debug)]
pub struct WorkerHealth {
    pub proc: ProcId,
    pub stage: WorkerStage,
    pub last_beat_us: u64,
    pub sweep: u64,
    pub voted: bool,
    pub inbox_depth: u64,
    /// Whether this worker tripped the stall threshold for this report.
    pub stalled: bool,
    /// The worker's pending (not-yet-flushed) event tail — the events the
    /// ring buffer cannot show while the worker is stuck.
    pub pending_tail: Vec<(SimTime, Event)>,
    /// The process's metrics ledger as JSON, when the process lock could
    /// be acquired without blocking (`None` means the lock was held —
    /// itself a datapoint for a stall).
    pub ledger: Option<Value>,
}

impl WorkerHealth {
    fn to_json(&self) -> Value {
        let tail: Vec<Value> = self
            .pending_tail
            .iter()
            .map(|(at, e)| {
                let mut v = json!({ "at_us": at.0, "type": e.kind() });
                if let Value::Object(m) = &mut v {
                    e.payload_into(m);
                }
                v
            })
            .collect();
        let mut v = json!({
            "proc": self.proc.0,
            "stage": self.stage.name(),
            "last_beat_us": self.last_beat_us,
            "sweep": self.sweep,
            "voted": self.voted,
            "inbox_depth": self.inbox_depth,
            "stalled": self.stalled,
            "pending_tail": tail,
        });
        if let (Value::Object(m), Some(ledger)) = (&mut v, &self.ledger) {
            m.insert("ledger".into(), ledger.clone());
        }
        v
    }

    fn from_json(v: &Value) -> Option<WorkerHealth> {
        let m = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        let tail_vals = match m.get("pending_tail")? {
            Value::Array(a) => a,
            _ => return None,
        };
        let mut pending_tail = Vec::with_capacity(tail_vals.len());
        for tv in tail_vals {
            let tm = match tv {
                Value::Object(tm) => tm,
                _ => return None,
            };
            let at = SimTime(field_u64(tm, "at_us")?);
            let event = Event::from_json(field_str(tm, "type")?, tm)?;
            pending_tail.push((at, event));
        }
        Some(WorkerHealth {
            proc: ProcId(field_u16(m, "proc")?),
            stage: WorkerStage::from_name(field_str(m, "stage")?)?,
            last_beat_us: field_u64(m, "last_beat_us")?,
            sweep: field_u64(m, "sweep")?,
            voted: field_bool(m, "voted")?,
            inbox_depth: field_u64(m, "inbox_depth")?,
            stalled: field_bool(m, "stalled")?,
            pending_tail,
            ledger: m.get("ledger").cloned(),
        })
    }
}

/// A snapshot of every worker's vitals plus the forensic material a stuck
/// run hides: pending event tails and per-process ledgers.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Microseconds since run start when the report was taken.
    pub at_us: u64,
    pub reason: HealthReason,
    pub workers: Vec<WorkerHealth>,
}

impl HealthReport {
    /// The workers this report flags as stalled.
    pub fn stalled(&self) -> Vec<ProcId> {
        self.workers
            .iter()
            .filter(|w| w.stalled)
            .map(|w| w.proc)
            .collect()
    }

    /// Total pending (unflushed) events across all workers.
    pub fn pending_events(&self) -> usize {
        self.workers.iter().map(|w| w.pending_tail.len()).sum()
    }

    /// One JSONL object, `"type":"health_report"` — appended to trace
    /// artifacts after the phase-histogram footers.
    pub fn to_json(&self) -> Value {
        json!({
            "type": "health_report",
            "at_us": self.at_us,
            "reason": self.reason.name(),
            "workers": self.workers.iter().map(|w| w.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Inverse of [`HealthReport::to_json`]; `None` when `v` is not a
    /// health-report line.
    pub fn from_json(v: &Value) -> Option<HealthReport> {
        let m: &Map = match v {
            Value::Object(m) => m,
            _ => return None,
        };
        if field_str(m, "type")? != "health_report" {
            return None;
        }
        let worker_vals = match m.get("workers")? {
            Value::Array(a) => a,
            _ => return None,
        };
        let mut workers = Vec::with_capacity(worker_vals.len());
        for wv in worker_vals {
            workers.push(WorkerHealth::from_json(wv)?);
        }
        Some(HealthReport {
            at_us: field_u64(m, "at_us")?,
            reason: HealthReason::from_name(field_str(m, "reason")?)?,
            workers,
        })
    }

    /// Human-readable multi-line rendering, one worker per line:
    ///
    /// ```text
    /// health@1250ms [stall]: 1 stalled, 3 pending events
    ///   P0 sweeping  sweep=41 beat=1249ms inbox=0 pending=0
    ///   P2 voted     sweep=38 beat=801ms  inbox=1 pending=3  STALLED
    ///     pending: vote_cast nss_acked nss_acked
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "health@{}ms [{}]: {} stalled, {} pending events\n",
            self.at_us / 1000,
            self.reason.name(),
            self.stalled().len(),
            self.pending_events(),
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  {} {:<11} sweep={} beat={}ms inbox={} pending={}{}{}",
                w.proc,
                w.stage.name(),
                w.sweep,
                w.last_beat_us / 1000,
                w.inbox_depth,
                w.pending_tail.len(),
                if w.voted { " voted" } else { "" },
                if w.stalled { "  STALLED" } else { "" },
            );
            if w.stalled && !w.pending_tail.is_empty() {
                let kinds: Vec<&str> = w.pending_tail.iter().map(|(_, e)| e.kind()).collect();
                let _ = writeln!(out, "    pending: {}", kinds.join(" "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::DetectionId;

    #[test]
    fn stage_codes_round_trip() {
        for stage in WorkerStage::ALL {
            assert_eq!(WorkerStage::from_code(stage.code()), stage);
            assert_eq!(WorkerStage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(WorkerStage::from_code(999), WorkerStage::Starting);
    }

    #[test]
    fn slot_snapshot_reflects_beats_and_ledgers() {
        let hb = Heartbeats::new(2);
        hb.slot(0).beat(1_000, 3, WorkerStage::Sweeping, false);
        hb.slot(0).set_pending(4);
        hb.slot(0).note_enqueue();
        hb.slot(0).note_enqueue();
        hb.slot(0).note_drain();
        let snap = hb.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].last_beat_us, 1_000);
        assert_eq!(snap[0].sweep, 3);
        assert_eq!(snap[0].stage, WorkerStage::Sweeping);
        assert_eq!(snap[0].pending_events, 4);
        assert_eq!(snap[0].inbox_depth(), 1);
        assert_eq!(snap[1].stage, WorkerStage::Starting, "untouched slot");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = HealthReport {
            at_us: 123_456,
            reason: HealthReason::Stall,
            workers: vec![
                WorkerHealth {
                    proc: ProcId(0),
                    stage: WorkerStage::Sweeping,
                    last_beat_us: 123_000,
                    sweep: 41,
                    voted: false,
                    inbox_depth: 0,
                    stalled: false,
                    pending_tail: vec![],
                    ledger: None,
                },
                WorkerHealth {
                    proc: ProcId(2),
                    stage: WorkerStage::Voted,
                    last_beat_us: 80_100,
                    sweep: 38,
                    voted: true,
                    inbox_depth: 1,
                    stalled: true,
                    pending_tail: vec![
                        (SimTime(80_000), Event::VoteCast { sweep: 38 }),
                        (
                            SimTime(80_050),
                            Event::DetectionStarted {
                                id: DetectionId(9),
                                scion: acdgc_model::RefId(4),
                            },
                        ),
                    ],
                    ledger: Some(json!({"cdms_sent": 12})),
                },
            ],
        };
        let line = serde_json::to_string(&report.to_json()).unwrap();
        assert!(line.contains("\"type\":\"health_report\""), "{line}");
        let back = HealthReport::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back.at_us, report.at_us);
        assert_eq!(back.reason, HealthReason::Stall);
        assert_eq!(back.stalled(), vec![ProcId(2)]);
        assert_eq!(back.pending_events(), 2);
        assert_eq!(
            back.workers[1].pending_tail[0].1,
            Event::VoteCast { sweep: 38 }
        );
        assert!(back.workers[1].ledger.is_some());
        assert!(back.workers[0].ledger.is_none());
    }

    #[test]
    fn render_names_the_stalled_worker_and_its_tail() {
        let report = HealthReport {
            at_us: 1_250_000,
            reason: HealthReason::Stall,
            workers: vec![WorkerHealth {
                proc: ProcId(3),
                stage: WorkerStage::Voted,
                last_beat_us: 801_000,
                sweep: 38,
                voted: true,
                inbox_depth: 1,
                stalled: true,
                pending_tail: vec![(SimTime(800_900), Event::VoteCast { sweep: 38 })],
                ledger: None,
            }],
        };
        let text = report.render();
        assert!(text.contains("[stall]"), "{text}");
        assert!(text.contains("P3"), "{text}");
        assert!(text.contains("STALLED"), "{text}");
        assert!(text.contains("pending: vote_cast"), "{text}");
    }
}
