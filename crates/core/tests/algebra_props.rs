//! Property tests for the CDM algebra: matching laws the detector's
//! safety argument leans on.

use acdgc_dcda::{Cdm, MatchResult};
use acdgc_model::{DetectionId, ProcId, RefId};
use proptest::prelude::*;

fn entries() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..12, 0u64..4), 0..16)
}

fn build(source: &[(u64, u64)], target: &[(u64, u64)]) -> Cdm {
    let mut cdm = Cdm::initiate(
        DetectionId(0),
        ProcId(0),
        RefId(source.first().map(|e| e.0).unwrap_or(0)),
        source.first().map(|e| e.1).unwrap_or(0),
    );
    cdm.source.clear();
    for &(r, ic) in source {
        cdm.add_source(RefId(r), ic);
    }
    for &(r, ic) in target {
        cdm.add_target(RefId(r), ic);
    }
    cdm
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Matching is a pure function: same algebra, same result, and
    /// insertion order cannot matter (sets are canonical).
    #[test]
    fn matching_is_deterministic_and_order_free(
        mut source in entries(),
        target in entries(),
    ) {
        let a = build(&source, &target);
        source.reverse();
        let b = build(&source, &target);
        // First-wins on duplicate keys means reversal may change captured
        // counters; restrict the law to duplicate-free inputs.
        let mut seen = std::collections::HashSet::new();
        prop_assume!(source.iter().all(|e| seen.insert(e.0)));
        prop_assert!(a.same_algebra(&b));
        prop_assert_eq!(a.matching(true), b.matching(true));
    }

    /// CycleFound with the barrier on requires exact key sets AND exact
    /// counter agreement.
    #[test]
    fn cycle_verdict_characterization(source in entries(), target in entries()) {
        let cdm = build(&source, &target);
        let verdict = cdm.matching(true);
        let keys_equal = cdm.source.len() == cdm.target.len()
            && cdm.source.keys().all(|k| cdm.target.contains_key(k));
        let ics_equal = cdm
            .source
            .iter()
            .all(|(k, v)| cdm.target.get(k) == Some(v));
        match verdict {
            MatchResult::CycleFound => {
                prop_assert!(keys_equal && ics_equal);
            }
            MatchResult::IcMismatch { ref_id, source_ic, target_ic } => {
                prop_assert_eq!(cdm.source.get(&ref_id), Some(&source_ic));
                prop_assert_eq!(cdm.target.get(&ref_id), Some(&target_ic));
                prop_assert_ne!(source_ic, target_ic);
            }
            MatchResult::Pending { unresolved, wavefront } => {
                // Pending residues are exactly the symmetric difference of
                // the key sets (restricted per side).
                for r in &unresolved {
                    prop_assert!(cdm.source.contains_key(r));
                    prop_assert!(!cdm.target.contains_key(r));
                }
                for r in &wavefront {
                    prop_assert!(cdm.target.contains_key(r));
                    prop_assert!(!cdm.source.contains_key(r));
                }
                prop_assert!(!(keys_equal && ics_equal), "should have been a cycle");
            }
        }
    }

    /// With the barrier OFF, matching never reports a mismatch (the unsafe
    /// A1 regime), and the verdict depends on key sets alone.
    #[test]
    fn barrier_off_ignores_counters(source in entries(), target in entries()) {
        let cdm = build(&source, &target);
        let verdict = cdm.matching(false);
        let is_mismatch = matches!(verdict, MatchResult::IcMismatch { .. });
        prop_assert!(!is_mismatch);
        let keys_equal = cdm.source.len() == cdm.target.len()
            && cdm.source.keys().all(|k| cdm.target.contains_key(k));
        prop_assert_eq!(matches!(verdict, MatchResult::CycleFound), keys_equal);
    }

    /// The barrier is monotone-conservative: if barrier-on says cycle,
    /// barrier-off agrees (turning the barrier on can only *block*
    /// conclusions, never create them).
    #[test]
    fn barrier_only_blocks(source in entries(), target in entries()) {
        let cdm = build(&source, &target);
        if cdm.matching(true) == MatchResult::CycleFound {
            prop_assert_eq!(cdm.matching(false), MatchResult::CycleFound);
        }
    }

    /// Adding any target entry for an unresolved source reference with the
    /// matching counter strictly shrinks the unresolved set.
    #[test]
    fn resolving_a_dependency_shrinks_unresolved(source in entries(), target in entries()) {
        let cdm = build(&source, &target);
        if let MatchResult::Pending { unresolved, .. } = cdm.matching(true) {
            if let Some(&r) = unresolved.first() {
                let ic = cdm.source[&r];
                let mut resolved = cdm.clone();
                resolved.add_target(r, ic);
                match resolved.matching(true) {
                    MatchResult::Pending { unresolved: u2, .. } => {
                        prop_assert_eq!(u2.len(), unresolved.len() - 1);
                    }
                    MatchResult::CycleFound => {
                        prop_assert_eq!(unresolved.len(), 1);
                    }
                    MatchResult::IcMismatch { .. } => {
                        prop_assert!(false, "added matching counter");
                    }
                }
            }
        }
    }

    /// Wire size is monotone in entry count and matches the documented
    /// formula.
    #[test]
    fn size_formula(source in entries(), target in entries()) {
        let cdm = build(&source, &target);
        prop_assert_eq!(
            cdm.size_bytes(),
            32 + 16 * (cdm.source.len() + cdm.target.len())
        );
    }
}
