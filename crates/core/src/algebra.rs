//! The CDM and its algebra (§3 of the paper).
//!
//! The paper writes a CDM as two sets separated by `→`, e.g.
//! `{{F_P2, Q_P4} → {Q_P4, O_P3}}`: the *source set* holds compiled
//! dependencies (scions that lead into the traversed path), the *target
//! set* holds the references the message has been forwarded along. Here
//! both sets map a [`RefId`] to the invocation counter captured by the
//! summary that contributed the entry — scion-side counters in the source
//! set, stub-side counters in the target set. Counter equality is the
//! §3.2 barrier against mutator/detector races.

use acdgc_model::{DetectionId, ProcId, RefId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Invocation counter value.
pub type Ic = u64;

/// The credit a fresh detection starts with (weight-throwing termination
/// detection, Dijkstra–Scholten style). Expansion splits a CDM's credit
/// exactly across its forwarded branches; every terminal outcome returns
/// the arriving CDM's credit to the initiator. When the initiator has
/// recovered the full credit and every returned share was a *conclusive*
/// termination (dead end or live path — not a hop/budget/slack cutoff),
/// the detection provably walked every branch without finding a cycle:
/// the candidate is live and need not be retried until the mutator moves
/// again. A power of two so repeated halving stays exact for a long time;
/// truncated shares are rounded into the first branch, so credit is
/// conserved by construction.
pub const FULL_CREDIT: u64 = 1 << 32;

/// One algebra entry as `(reference, counter)` — exposed for tests and
/// trace assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Entry {
    pub ref_id: RefId,
    pub ic: Ic,
}

/// Result of algebraic matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchResult {
    /// Source and target cancel exactly: a distributed garbage cycle.
    CycleFound,
    /// Detection is incomplete: `unresolved` dependencies remain and/or the
    /// `wavefront` has traversed references whose scion side is unseen.
    Pending {
        unresolved: Vec<RefId>,
        wavefront: Vec<RefId>,
    },
    /// The same reference carries different counters on the two sides: the
    /// mutator invoked through it between the two snapshots. Unsafe to
    /// conclude anything; the detection must abort.
    IcMismatch {
        ref_id: RefId,
        source_ic: Ic,
        target_ic: Ic,
    },
}

/// A Cycle Detection Message.
///
/// Self-contained: processes keep no state about CDMs in flight, so a lost
/// CDM costs nothing but the work it carried.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cdm {
    /// Trace/metrics identity; not consulted by the algorithm.
    pub detection_id: DetectionId,
    /// Process that initiated the detection.
    pub initiator: ProcId,
    /// Hops travelled; bounded by the configured cap as a backstop.
    pub hops: u32,
    /// Remaining message budget for this derivation; split across
    /// branches on fan-out, so one detection sends at most the configured
    /// budget of CDMs in total. Set by the initiator; not part of the
    /// algebra.
    pub budget: u32,
    /// Remaining consecutive non-growing hops this derivation may make
    /// (see `GcConfig::nongrowth_slack`). Reset on every growing hop; not
    /// part of the algebra.
    pub slack: u32,
    /// Termination-detection credit carried by this derivation (see
    /// [`FULL_CREDIT`]). Split exactly across forwarded branches on
    /// fan-out; returned to the initiator whenever the derivation dies.
    /// Not part of the algebra — it only drives the initiator's lazy
    /// liveness verdicts, never a deletion.
    pub credit: u64,
    /// Dependencies: scion-side `(reference, counter)` entries.
    pub source: BTreeMap<RefId, Ic>,
    /// Traversed references: stub-side `(reference, counter)` entries.
    pub target: BTreeMap<RefId, Ic>,
    /// Which process owns each source entry's scion (recorded at the
    /// witnessing visit). Not part of the algebra (it is functionally
    /// determined by the reference id); used by the cycle verdict to
    /// delete every scion of the proven-garbage set, not just the local
    /// one — single-scion deletion leaves "zombie" references on objects
    /// still protected by their other scions, which poisons later walks
    /// over densely shared garbage.
    pub owners: BTreeMap<RefId, ProcId>,
    /// Scion incarnations witnessed at source-insertion time. Verdict
    /// deletions carry them so a late deletion can never kill a newer,
    /// recreated (live) scion under the same reference id.
    pub incarnations: BTreeMap<RefId, u32>,
}

/// Outcome of inserting an entry whose reference may already be present.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert {
    /// Entry added, or already present with the same counter.
    Ok,
    /// Already present with a *different* counter: the reference was
    /// invoked between the summaries that contributed the two sightings.
    Conflict { existing: Ic, incoming: Ic },
}

fn insert_entry(set: &mut BTreeMap<RefId, Ic>, ref_id: RefId, ic: Ic) -> Insert {
    match set.get(&ref_id) {
        None => {
            set.insert(ref_id, ic);
            Insert::Ok
        }
        Some(&existing) if existing == ic => Insert::Ok,
        Some(&existing) => Insert::Conflict {
            existing,
            incoming: ic,
        },
    }
}

impl Cdm {
    /// Fresh CDM for a detection initiated at `initiator` from `scion`.
    pub fn initiate(
        detection_id: DetectionId,
        initiator: ProcId,
        scion: RefId,
        scion_ic: Ic,
    ) -> Self {
        let mut source = BTreeMap::new();
        source.insert(scion, scion_ic);
        Cdm {
            detection_id,
            initiator,
            hops: 0,
            budget: u32::MAX,
            slack: 0,
            credit: FULL_CREDIT,
            source,
            target: BTreeMap::new(),
            owners: BTreeMap::new(),
            incarnations: BTreeMap::new(),
        }
    }

    /// Add a dependency (scion-side entry) to the source set, recording
    /// the process that owns the scion.
    pub fn add_source(&mut self, ref_id: RefId, ic: Ic) -> Insert {
        insert_entry(&mut self.source, ref_id, ic)
    }

    /// Record which process owns `ref_id`'s scion (the witnessing visit).
    pub fn record_owner(&mut self, ref_id: RefId, owner: ProcId) {
        self.owners.insert(ref_id, owner);
    }

    /// Record the scion incarnation witnessed for `ref_id` (set when the
    /// scion-side entry is inserted at its owner).
    pub fn record_incarnation(&mut self, ref_id: RefId, incarnation: u32) {
        self.incarnations.insert(ref_id, incarnation);
    }

    /// Every scion of the matched set with its owner, witnessed
    /// incarnation, and witnessed invocation counter: the deletion list a
    /// cycle verdict authorizes. The counter rides along so the deletion
    /// site can re-apply the paper's lazy IC barrier at *delete* time — a
    /// verdict is only acted upon if the mutator has not used the
    /// reference since the walk witnessed it (a concurrent re-export or
    /// invocation advances the live counter past the witnessed one).
    pub fn matched_scions(&self) -> Vec<(ProcId, RefId, u32, Ic)> {
        self.source
            .iter()
            .filter_map(|(r, ic)| {
                let owner = self.owners.get(r)?;
                let inc = self.incarnations.get(r)?;
                Some((*owner, *r, *inc, *ic))
            })
            .collect()
    }

    /// Add a traversed reference (stub-side entry) to the target set.
    pub fn add_target(&mut self, ref_id: RefId, ic: Ic) -> Insert {
        insert_entry(&mut self.target, ref_id, ic)
    }

    /// Two CDMs carry the same algebra (paper's `Alg_x = Alg_y`, used by
    /// the branch-termination rule). Hop counts and ids are not algebra.
    pub fn same_algebra(&self, other: &Cdm) -> bool {
        self.source == other.source && self.target == other.target
    }

    /// Algebraic matching (§3, "CDM Matching"): cancel references present
    /// in both sets. With `ic_barrier` set (the default, and the only safe
    /// configuration), a reference whose two sightings disagree on the
    /// counter aborts the match; the A1 ablation disables the barrier to
    /// demonstrate the unsafety the paper's counters prevent.
    pub fn matching(&self, ic_barrier: bool) -> MatchResult {
        let mut unresolved = Vec::new();
        for (&ref_id, &source_ic) in &self.source {
            match self.target.get(&ref_id) {
                Some(&target_ic) if target_ic == source_ic => {}
                Some(&target_ic) if ic_barrier => {
                    return MatchResult::IcMismatch {
                        ref_id,
                        source_ic,
                        target_ic,
                    };
                }
                Some(_) => {} // barrier disabled: cancel regardless (UNSAFE)
                None => unresolved.push(ref_id),
            }
        }
        let wavefront: Vec<RefId> = self
            .target
            .keys()
            .filter(|r| !self.source.contains_key(r))
            .copied()
            .collect();
        if unresolved.is_empty() && wavefront.is_empty() {
            MatchResult::CycleFound
        } else {
            MatchResult::Pending {
                unresolved,
                wavefront,
            }
        }
    }

    /// Approximate wire size for byte accounting: header plus 16 bytes per
    /// entry (reference id + counter).
    pub fn size_bytes(&self) -> usize {
        32 + 16 * (self.source.len() + self.target.len())
    }
}

impl fmt::Debug for Cdm {
    /// Rendered in the paper's notation: `{{r1, r2} -> {r2, r3}}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.detection_id)?;
        write!(f, "{{")?;
        for (i, (r, ic)) in self.source.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}@{ic}")?;
        }
        write!(f, "}} -> {{")?;
        for (i, (r, ic)) in self.target.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}@{ic}")?;
        }
        write!(f, "}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdm() -> Cdm {
        Cdm::initiate(DetectionId(0), ProcId(0), RefId(1), 0)
    }

    #[test]
    fn initiation_matches_paper_alg0() {
        // Step 1 of §3: Alg_0 ⇒ {{F_P2} → {}}.
        let c = cdm();
        assert_eq!(c.source.len(), 1);
        assert!(c.target.is_empty());
        assert_eq!(c.hops, 0);
    }

    #[test]
    fn disjoint_sets_are_pending() {
        // Step 6-7 of §3: Matching({F_P2} → {Q_P4}) finds nothing to cancel.
        let mut c = cdm();
        c.add_target(RefId(2), 0);
        match c.matching(true) {
            MatchResult::Pending {
                unresolved,
                wavefront,
            } => {
                assert_eq!(unresolved, vec![RefId(1)]);
                assert_eq!(wavefront, vec![RefId(2)]);
            }
            other => panic!("expected pending, got {other:?}"),
        }
    }

    #[test]
    fn full_cancellation_is_cycle() {
        // Steps 24-26 of §3: Matching(Alg_4) ⇒ {{} → {}} ⇒ cycle found.
        let mut c = cdm();
        for r in 2..=4u64 {
            c.add_source(RefId(r), 0);
        }
        for r in 1..=4u64 {
            c.add_target(RefId(r), 0);
        }
        assert_eq!(c.matching(true), MatchResult::CycleFound);
    }

    #[test]
    fn partial_cancellation_reduces() {
        // Step 13 of §3: Matching({F,Q} → {Q,O}) ⇒ {F} → {O}.
        let mut c = cdm(); // F = r1
        c.add_source(RefId(2), 0); // Q
        c.add_target(RefId(2), 0); // Q
        c.add_target(RefId(3), 0); // O
        match c.matching(true) {
            MatchResult::Pending {
                unresolved,
                wavefront,
            } => {
                assert_eq!(unresolved, vec![RefId(1)]);
                assert_eq!(wavefront, vec![RefId(3)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ic_mismatch_aborts() {
        // §3.2.1 step 7-8: {{F,x}} vs {{F,x+1}} ⇒ abort.
        let mut c = Cdm::initiate(DetectionId(0), ProcId(0), RefId(1), 7);
        c.add_target(RefId(1), 8);
        assert_eq!(
            c.matching(true),
            MatchResult::IcMismatch {
                ref_id: RefId(1),
                source_ic: 7,
                target_ic: 8
            }
        );
    }

    #[test]
    fn barrier_disabled_cancels_unsafely() {
        let mut c = Cdm::initiate(DetectionId(0), ProcId(0), RefId(1), 7);
        c.add_target(RefId(1), 8);
        assert_eq!(c.matching(false), MatchResult::CycleFound);
    }

    #[test]
    fn insert_conflict_detected() {
        let mut c = cdm();
        assert_eq!(c.add_source(RefId(1), 0), Insert::Ok, "same ic idempotent");
        assert_eq!(
            c.add_source(RefId(1), 3),
            Insert::Conflict {
                existing: 0,
                incoming: 3
            }
        );
        assert_eq!(c.add_target(RefId(9), 1), Insert::Ok);
        assert_eq!(
            c.add_target(RefId(9), 2),
            Insert::Conflict {
                existing: 1,
                incoming: 2
            }
        );
    }

    #[test]
    fn same_algebra_ignores_hops_and_ids() {
        let mut a = cdm();
        let mut b = Cdm::initiate(DetectionId(9), ProcId(5), RefId(1), 0);
        b.hops = 42;
        assert!(a.same_algebra(&b));
        a.add_target(RefId(2), 0);
        assert!(!a.same_algebra(&b));
    }

    #[test]
    fn matching_is_insertion_order_independent() {
        let mut a = cdm();
        a.add_source(RefId(5), 1);
        a.add_source(RefId(3), 2);
        a.add_target(RefId(3), 2);
        a.add_target(RefId(5), 1);
        let mut b = cdm();
        b.add_target(RefId(5), 1);
        b.add_source(RefId(3), 2);
        b.add_source(RefId(5), 1);
        b.add_target(RefId(3), 2);
        assert_eq!(a.matching(true), b.matching(true));
        assert!(a.same_algebra(&b));
    }

    #[test]
    fn size_grows_with_entries() {
        let mut c = cdm();
        let base = c.size_bytes();
        c.add_target(RefId(2), 0);
        assert_eq!(c.size_bytes(), base + 16);
    }

    #[test]
    fn debug_renders_paper_notation() {
        let mut c = cdm();
        c.add_target(RefId(2), 3);
        let s = format!("{c:?}");
        assert!(s.contains("{r1@0} -> {r2@3}"), "got {s}");
    }
}
