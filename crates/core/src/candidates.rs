//! Cycle-candidate selection.
//!
//! §2.1: "If this object is not invoked for a certain amount of time we can
//! make a guess that this object is, in fact, part of a distributed cycle
//! of garbage." The paper leaves heuristics to the literature; this module
//! implements the age heuristic it sketches, plus per-scion backoff so a
//! failed detection is not immediately retried.

use acdgc_model::{GcConfig, RefId, SimTime};
use acdgc_snapshot::SummarizedGraph;
use rustc_hash::FxHashMap;

/// Per-process memory of recent detection attempts. This is heuristic
/// state only — it influences *when* detections start, never their safety.
#[derive(Clone, Debug, Default)]
pub struct CandidateState {
    last_attempt: FxHashMap<RefId, SimTime>,
    /// How many times each scion has been picked. Drives the exponential
    /// retry backoff: a detection whose CDMs were lost leaves no trace at
    /// the initiator, so failures are indistinguishable from slowness and
    /// every attempt is treated as a failure until the scion disappears
    /// (success deletes it; `retain_known` then clears both maps).
    attempts: FxHashMap<RefId, u32>,
    /// Scions a completed detection proved *live* (every branch of the
    /// walk terminated conclusively without a cycle — see the credit
    /// scheme on `Cdm::credit`), keyed to the mutation epoch the proof is
    /// valid for. A proven-live scion is not re-picked while the epoch
    /// stands: without this, live-but-not-locally-rooted structure (e.g.
    /// an anchored distributed ring, whose scions all fail the
    /// `Local.Reach` test everywhere except the anchor's process) is
    /// re-picked after every capped backoff forever, and a quiescence
    /// protocol that counts picked candidates as pending work can never
    /// close. Lazy in the paper's sense: any mutation invalidates it.
    proven_live: FxHashMap<RefId, u64>,
    /// Current mutation epoch, set by the runtime before each scan.
    /// Verdicts recorded under a different epoch are dead on arrival and
    /// an epoch change clears the suppression set.
    epoch: u64,
}

impl CandidateState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget attempts for scions no longer present (bounds memory).
    pub fn retain_known(&mut self, summary: &SummarizedGraph) {
        self.last_attempt.retain(|r, _| summary.scion(*r).is_some());
        self.attempts.retain(|r, _| summary.scion(*r).is_some());
        self.proven_live.retain(|r, _| summary.scion(*r).is_some());
    }

    /// Advance the mutation epoch. Any mutator operation invalidates every
    /// standing liveness verdict: the structure it proved live may have
    /// just become garbage.
    pub fn set_epoch(&mut self, epoch: u64) {
        if epoch != self.epoch {
            self.proven_live.clear();
            self.epoch = epoch;
        }
    }

    /// Record that a completed detection proved `scion` live. Ignored when
    /// `epoch` is not the current mutation epoch (the verdict raced a
    /// mutator operation and may be stale).
    pub fn record_live_verdict(&mut self, scion: RefId, epoch: u64) {
        if epoch == self.epoch {
            self.proven_live.insert(scion, epoch);
        }
    }

    /// Scions currently suppressed by a standing liveness verdict.
    pub fn proven_live_count(&self) -> usize {
        self.proven_live.len()
    }

    /// Number of scions currently under backoff bookkeeping.
    pub fn tracked(&self) -> usize {
        self.last_attempt.len()
    }

    /// Detection attempts recorded for `scion` so far.
    pub fn attempts_for(&self, scion: RefId) -> u32 {
        self.attempts.get(&scion).copied().unwrap_or(0)
    }

    /// Deepest attempt count across every tracked scion — the telemetry
    /// gauge for how far retry backoff has escalated on this process.
    pub fn max_attempts(&self) -> u32 {
        self.attempts.values().copied().max().unwrap_or(0)
    }
}

/// Result of one candidate scan.
#[derive(Clone, Debug, Default)]
pub struct CandidateScan {
    /// Scions to initiate detections from, most-stale first.
    pub picked: Vec<RefId>,
    /// Scions that are eligible but were *not* picked this scan — still
    /// inside their retry backoff window, or cut by
    /// `max_candidates_per_scan`. Nonzero means detection work is pending:
    /// a quiescence protocol must not declare this process quiet.
    pub deferred: usize,
    /// Scions that would have been eligible but were pinned at snapshot
    /// time (an export or invocation was in flight through them). They are
    /// mutator-active by definition, and also outstanding work: the pin
    /// will drop and the scion be re-judged, so quiescence must wait.
    pub pinned: usize,
    /// Eligible scions suppressed by a standing liveness verdict (a prior
    /// detection walked every branch and found no cycle, and no mutation
    /// has happened since). Deliberately NOT pending work: the verdict is
    /// exactly the statement that retrying is pointless until the mutator
    /// moves, which is what lets quiescence close over live distributed
    /// structure.
    pub suppressed: usize,
}

impl CandidateScan {
    /// Whether this scan leaves detection work outstanding — scions picked
    /// now, eligible scions throttled into a later scan, or candidates
    /// suppressed only by an in-flight pin. Quiescence detectors must
    /// treat any of these as activity.
    pub fn work_pending(&self) -> bool {
        !self.picked.is_empty() || self.deferred > 0 || self.pinned > 0
    }
}

/// Pick scions worth starting a detection from, most-stale first:
///
/// * not locally reachable (a reachable target is trivially live),
/// * at least one stub transitively reachable (a distributed cycle needs an
///   outgoing path),
/// * not pinned (an in-flight export or invocation is mutator activity on
///   the reference: the IC barrier would reject the verdict anyway, so the
///   detection would be wasted work),
/// * not invoked for `candidate_age`,
/// * outside its retry backoff window ([`GcConfig::backoff_for`],
///   exponential in the number of prior attempts, capped),
/// * at most `max_candidates_per_scan`.
///
/// Besides the picked scions, reports how many eligible scions were
/// deferred (backoff or scan cap) so callers can tell "nothing to do"
/// apart from "work pending but throttled".
pub fn scan_candidates(
    summary: &SummarizedGraph,
    state: &mut CandidateState,
    now: SimTime,
    cfg: &GcConfig,
) -> CandidateScan {
    let mut deferred = 0usize;
    let mut pinned = 0usize;
    let mut suppressed = 0usize;
    let mut eligible: Vec<(&SimTime, RefId)> = Vec::new();
    for scion in summary.scions.values() {
        if scion.target_locally_reachable {
            continue;
        }
        if scion.stubs_from.is_empty() {
            continue;
        }
        if now.since(scion.last_invoked) < cfg.candidate_age {
            continue;
        }
        if scion.pinned > 0 {
            pinned += 1;
            continue;
        }
        // Entries only survive while their epoch is current (`set_epoch`
        // clears on change), so presence alone means the verdict stands.
        if state.proven_live.contains_key(&scion.ref_id) {
            suppressed += 1;
            continue;
        }
        if let Some(last) = state.last_attempt.get(&scion.ref_id) {
            let tried = state.attempts.get(&scion.ref_id).copied().unwrap_or(1);
            if now.since(*last) < cfg.backoff_for(tried) {
                deferred += 1;
                continue;
            }
        }
        eligible.push((&scion.last_invoked, scion.ref_id));
    }
    // Most-stale first; RefId tiebreak for determinism.
    eligible.sort_unstable_by_key(|(t, r)| (**t, *r));
    deferred += eligible.len().saturating_sub(cfg.max_candidates_per_scan);
    eligible.truncate(cfg.max_candidates_per_scan);
    let picked: Vec<RefId> = eligible.into_iter().map(|(_, r)| r).collect();
    for &r in &picked {
        state.last_attempt.insert(r, now);
        *state.attempts.entry(r).or_insert(0) += 1;
    }
    CandidateScan {
        picked,
        deferred,
        pinned,
        suppressed,
    }
}

/// [`scan_candidates`] with the scan timed into the
/// [`acdgc_obs::Phase::CandidateScan`] histogram and the outcome recorded
/// as an [`acdgc_obs::Event::CandidatesScanned`] event.
pub fn scan_candidates_observed(
    summary: &SummarizedGraph,
    state: &mut CandidateState,
    now: SimTime,
    cfg: &GcConfig,
    obs: &mut acdgc_obs::ProcTrace,
) -> CandidateScan {
    let started = obs.stopwatch();
    let scan = scan_candidates(summary, state, now, cfg);
    obs.lap(acdgc_obs::Phase::CandidateScan, started);
    obs.record(
        now,
        acdgc_obs::Event::CandidatesScanned {
            picked: scan.picked.len() as u32,
            deferred: scan.deferred as u32,
        },
    );
    scan
}

/// [`scan_candidates`] without the deferred-work report.
pub fn select_candidates(
    summary: &SummarizedGraph,
    state: &mut CandidateState,
    now: SimTime,
    cfg: &GcConfig,
) -> Vec<RefId> {
    scan_candidates(summary, state, now, cfg).picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{ProcId, SimDuration};
    use acdgc_snapshot::ScionSummary;

    fn summary_with(scions: Vec<(u64, bool, usize, u64)>) -> SummarizedGraph {
        // (ref, locally_reachable, stub_count, last_invoked_ticks)
        let mut s = SummarizedGraph::empty(ProcId(0));
        for (r, local, stubs, last) in scions {
            s.scions.insert(
                RefId(r),
                ScionSummary {
                    ref_id: RefId(r),
                    from_proc: ProcId(1),
                    ic: 0,
                    stubs_from: (100..100 + stubs as u64).map(RefId).collect(),
                    target_locally_reachable: local,
                    last_invoked: SimTime(last),
                    incarnation: 0,
                    pinned: 0,
                },
            );
        }
        s
    }

    fn cfg() -> GcConfig {
        GcConfig {
            candidate_age: SimDuration(100),
            candidate_backoff: SimDuration(500),
            max_candidates_per_scan: 2,
            ..GcConfig::default()
        }
    }

    #[test]
    fn filters_reachable_and_stubless() {
        let s = summary_with(vec![
            (1, true, 1, 0),  // locally reachable: out
            (2, false, 0, 0), // no stubs: out
            (3, false, 1, 0), // eligible
        ]);
        let mut state = CandidateState::new();
        let picked = select_candidates(&s, &mut state, SimTime(1_000), &cfg());
        assert_eq!(picked, vec![RefId(3)]);
    }

    #[test]
    fn age_threshold_applies() {
        let s = summary_with(vec![(1, false, 1, 950), (2, false, 1, 100)]);
        let mut state = CandidateState::new();
        let picked = select_candidates(&s, &mut state, SimTime(1_000), &cfg());
        assert_eq!(picked, vec![RefId(2)], "recently invoked scion skipped");
    }

    #[test]
    fn backoff_suppresses_retry_then_allows() {
        let s = summary_with(vec![(1, false, 1, 0)]);
        let mut state = CandidateState::new();
        assert_eq!(
            select_candidates(&s, &mut state, SimTime(1_000), &cfg()),
            vec![RefId(1)]
        );
        assert!(
            select_candidates(&s, &mut state, SimTime(1_100), &cfg()).is_empty(),
            "within backoff"
        );
        assert_eq!(
            select_candidates(&s, &mut state, SimTime(1_600), &cfg()),
            vec![RefId(1)],
            "after backoff"
        );
    }

    #[test]
    fn scan_cap_and_staleness_order() {
        let s = summary_with(vec![
            (1, false, 1, 300),
            (2, false, 1, 100),
            (3, false, 1, 200),
        ]);
        let mut state = CandidateState::new();
        let picked = select_candidates(&s, &mut state, SimTime(10_000), &cfg());
        assert_eq!(picked, vec![RefId(2), RefId(3)], "two most stale");
    }

    #[test]
    fn repeated_failures_back_off_exponentially() {
        let s = summary_with(vec![(1, false, 1, 0)]);
        let mut state = CandidateState::new();
        let cfg = GcConfig {
            candidate_age: SimDuration(0),
            candidate_backoff: SimDuration(500),
            candidate_backoff_max: SimDuration(1_500),
            max_candidates_per_scan: 2,
            ..GcConfig::default()
        };
        // Attempt 1 at t=1000; attempt 2 allowed 500 later.
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(1_000), &cfg).picked,
            vec![RefId(1)]
        );
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(1_500), &cfg).picked,
            vec![RefId(1)]
        );
        // After 2 attempts the window doubles to 1000.
        let scan = scan_candidates(&s, &mut state, SimTime(2_400), &cfg);
        assert!(scan.picked.is_empty(), "900 < doubled backoff of 1000");
        assert_eq!(scan.deferred, 1, "throttled scion reported as deferred");
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(2_500), &cfg).picked,
            vec![RefId(1)]
        );
        // After 3 attempts the window would be 2000 but caps at 1500.
        assert!(scan_candidates(&s, &mut state, SimTime(3_900), &cfg)
            .picked
            .is_empty());
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(4_000), &cfg).picked,
            vec![RefId(1)],
            "capped backoff keeps retries coming"
        );
        assert_eq!(state.attempts_for(RefId(1)), 4);
    }

    #[test]
    fn scan_cap_overflow_counts_as_deferred() {
        let s = summary_with(vec![
            (1, false, 1, 300),
            (2, false, 1, 100),
            (3, false, 1, 200),
        ]);
        let mut state = CandidateState::new();
        let scan = scan_candidates(&s, &mut state, SimTime(10_000), &cfg());
        assert_eq!(scan.picked.len(), 2);
        assert_eq!(scan.deferred, 1, "third eligible scion cut by the cap");
    }

    #[test]
    fn pinned_scion_skipped_but_counted_as_pending_work() {
        let mut s = summary_with(vec![(1, false, 1, 0), (2, false, 1, 0)]);
        s.scions.get_mut(&RefId(1)).unwrap().pinned = 1;
        let mut state = CandidateState::new();
        let scan = scan_candidates(&s, &mut state, SimTime(10_000), &cfg());
        assert_eq!(scan.picked, vec![RefId(2)], "pinned scion not picked");
        assert_eq!(scan.pinned, 1);
        assert!(scan.work_pending());
        assert_eq!(
            state.attempts_for(RefId(1)),
            0,
            "a pin is not a detection attempt: no backoff charged"
        );
        // Unpinned (the in-flight message landed): picked next scan
        // (alongside r2, whose backoff has also expired by now).
        s.scions.get_mut(&RefId(1)).unwrap().pinned = 0;
        let scan = scan_candidates(&s, &mut state, SimTime(20_000), &cfg());
        assert!(scan.picked.contains(&RefId(1)));
        assert_eq!(scan.pinned, 0);
    }

    #[test]
    fn liveness_verdict_suppresses_until_mutation() {
        let s = summary_with(vec![(1, false, 1, 0)]);
        let mut state = CandidateState::new();
        let cfg = cfg();
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(1_000), &cfg).picked,
            vec![RefId(1)]
        );
        // The detection completed and proved the scion live at epoch 0.
        state.record_live_verdict(RefId(1), 0);
        let scan = scan_candidates(&s, &mut state, SimTime(10_000), &cfg);
        assert!(scan.picked.is_empty(), "proven-live scion not re-picked");
        assert_eq!(scan.suppressed, 1);
        assert_eq!(scan.deferred, 0, "a live verdict is not pending work");
        assert!(!scan.work_pending(), "quiescence may close over it");
        // A mutation invalidates the verdict: picked again.
        state.set_epoch(1);
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(20_000), &cfg).picked,
            vec![RefId(1)]
        );
        // A verdict recorded under a stale epoch is dead on arrival.
        state.record_live_verdict(RefId(1), 0);
        assert_eq!(
            scan_candidates(&s, &mut state, SimTime(40_000), &cfg).picked,
            vec![RefId(1)]
        );
    }

    #[test]
    fn retain_known_drops_dead_scions() {
        let s = summary_with(vec![(1, false, 1, 0)]);
        let mut state = CandidateState::new();
        select_candidates(&s, &mut state, SimTime(1_000), &cfg());
        assert_eq!(state.tracked(), 1);
        let empty = SummarizedGraph::empty(ProcId(0));
        state.retain_known(&empty);
        assert_eq!(state.tracked(), 0);
    }
}
