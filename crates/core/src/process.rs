//! CDM processing: initiation, delivery, expansion and forwarding.
//!
//! Both entry points are **pure functions** of the process's current
//! summarized graph and the message — the statelessness the paper sells
//! against back-tracing and group-based collectors. Everything a process
//! ever contributes to a detection is encoded into the outbound CDMs.

use crate::algebra::{Cdm, Insert, MatchResult};
use acdgc_model::{GcConfig, ProcId, RefId};
use acdgc_snapshot::SummarizedGraph;

/// A CDM to forward, addressed by the reference it travels along.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutboundCdm {
    /// Process owning the matching scion.
    pub dest: ProcId,
    /// The stub (reference) the CDM follows.
    pub via: RefId,
    pub cdm: Cdm,
}

/// Why a detection stopped making progress at this process without either
/// finding a cycle or aborting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminateReason {
    /// The scion's target reaches no stubs: the graph is process-local
    /// beyond this point, so no *distributed* cycle can pass through.
    NoStubs,
    /// Every outgoing path is locally reachable (`Local.Reach`): the
    /// subgraph is live, detection must not follow (§2.1).
    AllStubsLocallyReachable,
    /// Every derivation equals its parent algebra: no new information
    /// (§3.1 step 15, the rule that stops mutually-linked cycle loops).
    NoNewInformation,
    /// The detection's message budget ran out (dense fan-out). The next
    /// candidate scan retries with a fresh budget; meanwhile the acyclic
    /// layer keeps shrinking the structure.
    BudgetExhausted,
}

/// Result of processing a CDM (or initiating one) at a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Safety rule 1: the addressed scion is not in the current summary
    /// (created after the snapshot, or already deleted). Drop silently.
    DroppedNoScion,
    /// Invocation counters disagree: mutator activity behind the detector
    /// (§3.2). The detection aborts.
    AbortedIcMismatch {
        ref_id: RefId,
        source_ic: u64,
        target_ic: u64,
    },
    /// Backstop hop cap exceeded.
    DroppedHopCap,
    /// Matching cancelled completely: a distributed garbage cycle. Every
    /// scion of the matched set is garbage; `delete` lists them with their
    /// owning processes, witnessed incarnations, and witnessed invocation
    /// counters (the paper deletes only the local one, which strands
    /// objects protected by several scions — see `Cdm::matched_scions`).
    /// The deletion site must re-check both the incarnation (ABA guard)
    /// and the counter (lazy IC barrier against a concurrent mutator)
    /// before removing the scion. The acyclic DGC reclaims the objects.
    CycleFound {
        delete: Vec<(ProcId, RefId, u32, u64)>,
    },
    /// The walk continues along these references. The counters record the
    /// sibling branches that did *not* forward (live path pruned, or the
    /// §3.1 step 15 no-new-information rule).
    Forwarded {
        out: Vec<OutboundCdm>,
        branches_pruned_local: u32,
        branches_no_new_info: u32,
        /// Of the `branches_no_new_info` total, how many were cut by
        /// budget starvation rather than the no-new-information rule.
        /// The distinction matters for liveness verdicts: a slack-pruned
        /// branch added nothing the walk had not already covered (its
        /// stub's pair is in the CDM algebra, so an ancestor explored
        /// past it), but a starved branch carried *new* information that
        /// was never walked — real coverage loss the initiator must not
        /// mistake for a complete, clean walk.
        branches_starved: u32,
    },
    /// The detection dies here, see [`TerminateReason`].
    Terminated(TerminateReason),
}

impl Outcome {
    /// Convenience for tests: the forwarded derivations, if any.
    pub fn forwards(&self) -> &[OutboundCdm] {
        match self {
            Outcome::Forwarded { out, .. } => out,
            _ => &[],
        }
    }
}

/// Initiate a detection from `scion` (a cycle candidate) against the
/// current summary. Mirrors §3 steps 1–4: build `{{scion} → {}}`, then
/// expand and forward.
pub fn initiate(summary: &SummarizedGraph, cdm: Cdm, scion: RefId, cfg: &GcConfig) -> Outcome {
    debug_assert!(cdm.target.is_empty() && cdm.hops == 0, "fresh CDM expected");
    if summary.scion(scion).is_none() {
        return Outcome::DroppedNoScion;
    }
    let mut cdm = cdm;
    cdm.budget = cdm.budget.min(cfg.detection_budget);
    cdm.slack = cfg.nongrowth_slack;
    cdm.record_owner(scion, summary.proc);
    if let Some(s) = summary.scion(scion) {
        cdm.record_incarnation(scion, s.incarnation);
    }
    expand(summary, cdm, scion, cfg)
}

/// Deliver a CDM that arrived along reference `scion` (it was forwarded
/// through the matching stub by the previous process).
pub fn deliver(summary: &SummarizedGraph, mut cdm: Cdm, scion: RefId, cfg: &GcConfig) -> Outcome {
    // Safety rule 1: "CDM sent to non-existent scions are discarded and
    // detection terminated" (§3.2). Covers scions newer than the summary
    // and scions already reclaimed.
    let Some(scion_summary) = summary.scion(scion) else {
        return Outcome::DroppedNoScion;
    };

    // §3.2.1 optimization: the sender recorded the stub-side counter in the
    // target set; compare against our scion-side counter immediately.
    if cfg.ic_barrier && cfg.ic_check_on_delivery {
        if let Some(&stub_ic) = cdm.target.get(&scion) {
            if stub_ic != scion_summary.ic {
                return Outcome::AbortedIcMismatch {
                    ref_id: scion,
                    source_ic: scion_summary.ic,
                    target_ic: stub_ic,
                };
            }
        }
    }

    cdm.hops += 1;
    if cdm.hops > cfg.max_hops {
        return Outcome::DroppedHopCap;
    }

    expand(summary, cdm, scion, cfg)
}

/// Common body: record the delivered scion as a dependency, run matching,
/// and derive one outbound CDM per followable stub.
fn expand(summary: &SummarizedGraph, cdm: Cdm, scion: RefId, cfg: &GcConfig) -> Outcome {
    if cfg.eager_combine {
        expand_eager(summary, cdm, scion, cfg)
    } else {
        expand_per_branch(summary, cdm, scion, cfg)
    }
}

/// The paper's per-reference expansion (§3): one derivation per followable
/// stub of the delivered scion.
fn expand_per_branch(
    summary: &SummarizedGraph,
    mut cdm: Cdm,
    scion: RefId,
    cfg: &GcConfig,
) -> Outcome {
    let scion_summary = summary
        .scion(scion)
        .expect("caller verified scion presence");

    // The delivered scion is itself a dependency of the path (§3 step 1:
    // "it is the first dependency"). A counter conflict with an earlier
    // sighting means mutator activity: abort.
    if let Insert::Conflict { existing, incoming } = cdm.add_source(scion, scion_summary.ic) {
        if cfg.ic_barrier {
            return Outcome::AbortedIcMismatch {
                ref_id: scion,
                source_ic: existing,
                target_ic: incoming,
            };
        }
    }
    cdm.record_owner(scion, summary.proc);
    cdm.record_incarnation(scion, scion_summary.incarnation);

    // Matching happens on delivery (§3 steps 24-26): if every dependency
    // has been resolved by traversal, the cycle is proven.
    match cdm.matching(cfg.ic_barrier) {
        MatchResult::CycleFound => {
            return Outcome::CycleFound {
                delete: cdm.matched_scions(),
            }
        }
        MatchResult::IcMismatch {
            ref_id,
            source_ic,
            target_ic,
        } => {
            return Outcome::AbortedIcMismatch {
                ref_id,
                source_ic,
                target_ic,
            }
        }
        MatchResult::Pending { .. } => {}
    }

    if scion_summary.stubs_from.is_empty() {
        return Outcome::Terminated(TerminateReason::NoStubs);
    }

    let mut outbound = Vec::new();
    let mut saw_followable = false;
    let mut branches_pruned_local = 0u32;
    let mut branches_no_new_info = 0u32;
    for &stub_ref in &scion_summary.stubs_from {
        let Some(stub) = summary.stub(stub_ref) else {
            // The stub left the table between summarization inputs; treat
            // like a locally-unfollowable path (conservative: no forward).
            branches_pruned_local += 1;
            continue;
        };
        // §2.1: "those stubs that are locally reachable are immediately
        // discarded from the point of view of the DCDA" — a live path.
        if stub.local_reach {
            branches_pruned_local += 1;
            continue;
        }
        saw_followable = true;

        let mut branch = cdm.clone();
        if let Insert::Conflict { existing, incoming } = branch.add_target(stub_ref, stub.ic) {
            if cfg.ic_barrier {
                return Outcome::AbortedIcMismatch {
                    ref_id: stub_ref,
                    source_ic: existing,
                    target_ic: incoming,
                };
            }
        }
        // Extra dependencies (§3.1 step 5): every other scion converging on
        // this stub must also be garbage for the cycle to be garbage.
        for &dep in &stub.scions_to {
            let Some(dep_summary) = summary.scion(dep) else {
                continue;
            };
            if let Insert::Conflict { existing, incoming } = branch.add_source(dep, dep_summary.ic)
            {
                if cfg.ic_barrier {
                    return Outcome::AbortedIcMismatch {
                        ref_id: dep,
                        source_ic: existing,
                        target_ic: incoming,
                    };
                }
            }
            branch.record_owner(dep, summary.proc);
            branch.record_incarnation(dep, dep_summary.incarnation);
        }

        // §3.1 step 15, with bounded slack: a derivation equal to its
        // parent algebra brings no new information. The strict rule drops
        // it immediately; with slack, it may make a limited number of
        // consecutive non-growing hops (needed to re-cross explored
        // references toward unexplored ones in densely shared garbage —
        // see `GcConfig::nongrowth_slack`). Growing derivations get their
        // slack refreshed.
        let grew = !branch.same_algebra(&cdm);
        if grew {
            branch.slack = cfg.nongrowth_slack;
        } else if cfg.branch_termination {
            if cdm.slack == 0 {
                branches_no_new_info += 1;
                continue;
            }
            branch.slack = cdm.slack - 1;
        }
        outbound.push((
            grew,
            OutboundCdm {
                dest: stub.target_proc,
                via: stub_ref,
                cdm: branch,
            },
        ));
    }

    if outbound.is_empty() {
        let reason = if !saw_followable {
            TerminateReason::AllStubsLocallyReachable
        } else {
            TerminateReason::NoNewInformation
        };
        return Outcome::Terminated(reason);
    }

    // Split the remaining message budget across the surviving branches so
    // one detection sends at most the initiator's budget of CDMs no matter
    // how densely the garbage fans out. Growing branches are served first,
    // and shares halve geometrically, so the most promising derivation
    // keeps budget proportional to the remainder (depth is throttled only
    // logarithmically by fan-out, not divided away).
    outbound.sort_by_key(|(grew, ob)| (!grew, ob.via));
    let mut remaining = cdm.budget.saturating_sub(1);
    let mut starved = 0u32;
    let mut forwards = Vec::with_capacity(outbound.len());
    let n = outbound.len();
    for (i, (_grew, mut ob)) in outbound.into_iter().enumerate() {
        let share = if i + 1 == n {
            remaining
        } else {
            remaining - remaining / 2
        };
        remaining -= share;
        if share == 0 {
            starved += 1;
            continue;
        }
        ob.cdm.budget = share;
        forwards.push(ob);
    }
    if forwards.is_empty() {
        return Outcome::Terminated(TerminateReason::BudgetExhausted);
    }
    // Budget-starved siblings count as no-new-information losses for
    // metrics purposes (they carry real coverage loss the next scan must
    // retry).
    branches_no_new_info += starved;
    // Split the termination-detection credit exactly across the surviving
    // branches (remainder to the first), so the shares always sum to the
    // parent's credit and the initiator can recognize full recovery.
    let k = forwards.len() as u64;
    let share = cdm.credit / k;
    let rem = cdm.credit % k;
    for (i, ob) in forwards.iter_mut().enumerate() {
        ob.cdm.credit = share + if i == 0 { rem } else { 0 };
    }
    Outcome::Forwarded {
        out: forwards,
        branches_pruned_local,
        branches_no_new_info,
        branches_starved: starved,
    }
}

/// Extension beyond the paper (`GcConfig::eager_combine`): combine the CDM
/// with the whole relevant local snapshot.
///
/// One visit witnesses, transitively: the delivered scion, every stub
/// reachable from it, every local scion converging on any of those stubs
/// (the dependencies), every stub reachable from *those*, and so on — the
/// full local closure. The CDM is then forwarded once per distinct process
/// that still owes a scion-side witness for some traversed stub. Soundness
/// is unchanged: every entry is still a genuine summary sighting with its
/// captured counter, and matching/abort semantics are identical. What
/// changes is the walk's granularity: per *process* instead of per
/// *reference*, collapsing the factorial branch explosion on densely
/// shared garbage.
fn expand_eager(summary: &SummarizedGraph, mut cdm: Cdm, scion: RefId, cfg: &GcConfig) -> Outcome {
    let baseline = cdm.clone();
    let mut branches_pruned_local = 0u32;
    let mut saw_followable = false;

    // Phase 1 — witness every scion this process owes the walk: the
    // delivered one plus every already-traversed reference whose scion
    // lives here. No expansion yet: if these witnesses complete the
    // match, the verdict fires without dragging local webs in.
    let mut spine: Vec<RefId> = Vec::new();
    let witness = |cdm: &mut Cdm, r: RefId| -> Option<Outcome> {
        let ssum = summary.scion(r)?;
        if let Insert::Conflict { existing, incoming } = cdm.add_source(r, ssum.ic) {
            if cfg.ic_barrier {
                return Some(Outcome::AbortedIcMismatch {
                    ref_id: r,
                    source_ic: existing,
                    target_ic: incoming,
                });
            }
        }
        cdm.record_owner(r, summary.proc);
        cdm.record_incarnation(r, ssum.incarnation);
        None
    };
    if let Some(abort) = witness(&mut cdm, scion) {
        return abort;
    }
    spine.push(scion);
    let owed: Vec<RefId> = cdm
        .target
        .keys()
        .copied()
        .filter(|r| *r != scion && summary.scion(*r).is_some())
        .collect();
    for r in owed {
        if let Some(abort) = witness(&mut cdm, r) {
            return abort;
        }
        spine.push(r);
    }
    match cdm.matching(cfg.ic_barrier) {
        MatchResult::CycleFound => {
            return Outcome::CycleFound {
                delete: cdm.matched_scions(),
            }
        }
        MatchResult::IcMismatch {
            ref_id,
            source_ic,
            target_ic,
        } => {
            return Outcome::AbortedIcMismatch {
                ref_id,
                source_ic,
                target_ic,
            }
        }
        MatchResult::Pending { .. } => {}
    }

    // Phase 2 — expand the walk's spine: traverse the stubs reachable
    // from the witnessed scions. Dependencies discovered via `ScionsTo`
    // are witnessed (source entries) but NOT expanded — cancellation
    // needs their *stubs* traversed, which happens when a walk passes
    // through their holders, not by exploring their targets' webs (which
    // may converge with live references and poison the verdict).
    for s in spine {
        let ssum = summary.scion(s).expect("witnessed above");
        for &t in &ssum.stubs_from {
            let Some(stub) = summary.stub(t) else {
                branches_pruned_local += 1;
                continue;
            };
            if stub.local_reach {
                branches_pruned_local += 1;
                continue;
            }
            saw_followable = true;
            if let Insert::Conflict { existing, incoming } = cdm.add_target(t, stub.ic) {
                if cfg.ic_barrier {
                    return Outcome::AbortedIcMismatch {
                        ref_id: t,
                        source_ic: existing,
                        target_ic: incoming,
                    };
                }
            }
            // The scion of a traversed reference lives where its stub
            // points; remember it so later visits can still route the
            // chain there.
            cdm.record_owner(t, stub.target_proc);
            for &dep in &stub.scions_to {
                if let Some(abort) = witness(&mut cdm, dep) {
                    return abort;
                }
            }
        }
    }

    match cdm.matching(cfg.ic_barrier) {
        MatchResult::CycleFound => {
            return Outcome::CycleFound {
                delete: cdm.matched_scions(),
            }
        }
        MatchResult::IcMismatch {
            ref_id,
            source_ic,
            target_ic,
        } => {
            return Outcome::AbortedIcMismatch {
                ref_id,
                source_ic,
                target_ic,
            }
        }
        MatchResult::Pending { .. } => {}
    }

    // Every traversed reference still owing a scion-side witness is a
    // pending destination; the owner was recorded when the stub was
    // traversed, so references picked up at *earlier* visits stay
    // routable.
    let mut dests: std::collections::BTreeMap<acdgc_model::ProcId, RefId> =
        std::collections::BTreeMap::new();
    for &r in cdm.target.keys() {
        if cdm.source.contains_key(&r) {
            continue;
        }
        if let Some(&owner) = cdm.owners.get(&r) {
            dests.entry(owner).or_insert(r);
        }
    }
    if dests.is_empty() {
        let reason = if !saw_followable {
            if cdm.target.is_empty() {
                TerminateReason::NoStubs
            } else {
                TerminateReason::AllStubsLocallyReachable
            }
        } else {
            TerminateReason::NoNewInformation
        };
        return Outcome::Terminated(reason);
    }

    // Growth/slack semantics as in the per-branch mode.
    let grew = !cdm.same_algebra(&baseline);
    let slack = if grew {
        cfg.nongrowth_slack
    } else if cfg.branch_termination {
        if cdm.slack == 0 {
            return Outcome::Terminated(TerminateReason::NoNewInformation);
        }
        cdm.slack - 1
    } else {
        cdm.slack
    };

    // A single chain suffices: eager visits are commutative (each one
    // witnesses everything its process owes, whatever the arrival order),
    // so no search over visit orders is needed — forward to exactly one
    // owing process and keep the whole remaining budget. Walk length is
    // then linear in the number of references, not factorial in the
    // fan-out.
    let budget = cdm.budget.saturating_sub(1);
    if budget == 0 {
        return Outcome::Terminated(TerminateReason::BudgetExhausted);
    }
    let (dest, via) = dests.into_iter().next().expect("dests non-empty");
    let mut chain = cdm;
    chain.budget = budget;
    chain.slack = slack;
    let out = vec![OutboundCdm {
        dest,
        via,
        cdm: chain,
    }];
    Outcome::Forwarded {
        out,
        branches_pruned_local,
        branches_no_new_info: 0,
        branches_starved: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{DetectionId, SimTime};
    use acdgc_snapshot::{ScionSummary, StubSummary};

    /// Build a summary by hand.
    struct SummaryBuilder(SummarizedGraph);

    impl SummaryBuilder {
        fn new(proc: u16) -> Self {
            SummaryBuilder(SummarizedGraph {
                proc: ProcId(proc),
                version: 1,
                taken_at: SimTime(0),
                ..SummarizedGraph::default()
            })
        }

        fn scion(mut self, r: u64, from: u16, ic: u64, stubs_from: &[u64], local: bool) -> Self {
            self.0.scions.insert(
                RefId(r),
                ScionSummary {
                    ref_id: RefId(r),
                    from_proc: ProcId(from),
                    ic,
                    stubs_from: stubs_from.iter().map(|&s| RefId(s)).collect(),
                    target_locally_reachable: local,
                    last_invoked: SimTime(0),
                    incarnation: 0,
                    pinned: 0,
                },
            );
            self
        }

        fn stub(mut self, r: u64, to: u16, ic: u64, scions_to: &[u64], local_reach: bool) -> Self {
            self.0.stubs.insert(
                RefId(r),
                StubSummary {
                    ref_id: RefId(r),
                    target_proc: ProcId(to),
                    ic,
                    scions_to: scions_to.iter().map(|&s| RefId(s)).collect(),
                    local_reach,
                },
            );
            self
        }

        fn build(self) -> SummarizedGraph {
            self.0
        }
    }

    fn cfg() -> GcConfig {
        GcConfig::default()
    }

    fn fresh(scion: u64, ic: u64) -> Cdm {
        Cdm::initiate(DetectionId(0), ProcId(0), RefId(scion), ic)
    }

    /// Two-process ring: P0 scion r1 -> stub r2; P1 scion r2 -> stub r1.
    fn two_ring() -> (SummarizedGraph, SummarizedGraph) {
        let p0 = SummaryBuilder::new(0)
            .scion(1, 1, 0, &[2], false)
            .stub(2, 1, 0, &[1], false)
            .build();
        let p1 = SummaryBuilder::new(1)
            .scion(2, 0, 0, &[1], false)
            .stub(1, 0, 0, &[2], false)
            .build();
        (p0, p1)
    }

    #[test]
    fn two_process_cycle_detected() {
        let (p0, p1) = two_ring();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        let fws = out.forwards();
        assert_eq!(fws.len(), 1);
        assert_eq!(fws[0].dest, ProcId(1));
        assert_eq!(fws[0].via, RefId(2));

        let out = deliver(&p1, fws[0].cdm.clone(), RefId(2), &cfg());
        let fws = out.forwards();
        assert_eq!(fws.len(), 1, "P1 forwards back along r1: {out:?}");
        assert_eq!(fws[0].dest, ProcId(0));

        let out = deliver(&p0, fws[0].cdm.clone(), RefId(1), &cfg());
        assert_eq!(
            out,
            Outcome::CycleFound {
                delete: vec![(ProcId(0), RefId(1), 0, 0), (ProcId(1), RefId(2), 0, 0)]
            },
            "the verdict authorizes deleting every scion of the matched set"
        );
    }

    #[test]
    fn locally_reachable_stub_prunes_path() {
        let p0 = SummaryBuilder::new(0)
            .scion(1, 1, 0, &[2], false)
            .stub(2, 1, 0, &[1], true) // Local.Reach = true
            .build();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        assert_eq!(
            out,
            Outcome::Terminated(TerminateReason::AllStubsLocallyReachable)
        );
    }

    #[test]
    fn no_stubs_terminates() {
        let p0 = SummaryBuilder::new(0).scion(1, 1, 0, &[], false).build();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        assert_eq!(out, Outcome::Terminated(TerminateReason::NoStubs));
    }

    #[test]
    fn rule1_unknown_scion_dropped() {
        let p0 = SummaryBuilder::new(0).build();
        let out = deliver(&p0, fresh(1, 0), RefId(1), &cfg());
        assert_eq!(out, Outcome::DroppedNoScion);
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        assert_eq!(out, Outcome::DroppedNoScion);
    }

    #[test]
    fn delivery_ic_check_aborts_on_stale_stub_counter() {
        // CDM carries a target entry for r2 with stub-side ic 3; the scion
        // side has since seen more invocations (ic 4).
        let p1 = SummaryBuilder::new(1)
            .scion(2, 0, 4, &[1], false)
            .stub(1, 0, 0, &[2], false)
            .build();
        let mut cdm = fresh(1, 0);
        cdm.add_target(RefId(2), 3);
        let out = deliver(&p1, cdm, RefId(2), &cfg());
        assert_eq!(
            out,
            Outcome::AbortedIcMismatch {
                ref_id: RefId(2),
                source_ic: 4,
                target_ic: 3
            }
        );
    }

    #[test]
    fn matching_catches_mismatch_when_delivery_check_disabled() {
        // Same race, but the optimization is off: the walk continues and the
        // mismatch must be caught by matching when the loop closes (the
        // paper's mandatory path, §3.2.1 step 7).
        let mut cfg = cfg();
        cfg.ic_check_on_delivery = false;
        let (p0, p1) = two_ring();
        // Initiate at P0 with the *old* counter for r1 (pretend P0's
        // summary predates an invocation: scion r1 ic recorded as 0)...
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg);
        let cdm = out.forwards()[0].cdm.clone();
        // ...but P1's summary saw the invocation: its stub r1 has ic 1.
        let mut p1 = p1;
        p1.stubs.get_mut(&RefId(1)).unwrap().ic = 1;
        let out = deliver(&p1, cdm, RefId(2), &cfg);
        let cdm = out.forwards()[0].cdm.clone();
        // Loop closes at P0: source has r1@0, target has r1@1 -> abort.
        let out = deliver(&p0, cdm, RefId(1), &cfg);
        assert_eq!(
            out,
            Outcome::AbortedIcMismatch {
                ref_id: RefId(1),
                source_ic: 0,
                target_ic: 1
            }
        );
    }

    #[test]
    fn extra_dependencies_accumulate_from_scions_to() {
        // P1: scion r2 leads to stub r1, but scion r9 also leads to r1.
        // The derivation must record r9 as an unresolved dependency
        // (Fig. 1's "extra dependency" / §3.1 step 5).
        let p1 = SummaryBuilder::new(1)
            .scion(2, 0, 0, &[1], false)
            .scion(9, 3, 0, &[1], false)
            .stub(1, 0, 0, &[2, 9], false)
            .build();
        let (p0, _) = two_ring();
        // Strict §3.1 step 15 semantics throughout (slack 0).
        let mut strict = cfg();
        strict.nongrowth_slack = 0;
        let out = initiate(&p0, fresh(1, 0), RefId(1), &strict);
        let cdm = out.forwards()[0].cdm.clone();
        let out = deliver(&p1, cdm, RefId(2), &strict);
        let fwd = &out.forwards()[0].cdm;
        assert!(fwd.source.contains_key(&RefId(9)), "dependency recorded");
        // Closing the loop at P0 must NOT report a cycle: r9 is unresolved,
        // and the stale branch is terminated on the spot.
        let out = deliver(&p0, fwd.clone(), RefId(1), &strict);
        assert_eq!(
            out,
            Outcome::Terminated(TerminateReason::NoNewInformation),
            "unresolved dependency blocks the conclusion"
        );
    }

    #[test]
    fn strict_rule_stops_stale_derivations() {
        // Deliver a CDM that already contains everything this process
        // would add: the derivation equals its parent and, with zero
        // slack, must not be forwarded (§3.1 step 15).
        let (p0, _) = two_ring();
        let mut cfg = cfg();
        cfg.nongrowth_slack = 0;
        let mut cdm = fresh(1, 0);
        cdm.add_target(RefId(2), 0);
        cdm.add_source(RefId(9), 0); // pending dependency keeps match open
        let out = deliver(&p0, cdm, RefId(1), &cfg);
        // P0 would forward along r2, but the branch algebra is unchanged.
        assert_eq!(out, Outcome::Terminated(TerminateReason::NoNewInformation));
    }

    #[test]
    fn slack_allows_bounded_nongrowing_hops_then_stops() {
        // With slack K, a stale derivation may ping-pong K times and no
        // more: termination is preserved.
        let (p0, p1) = two_ring();
        let mut cfg = cfg();
        cfg.nongrowth_slack = 3;
        let mut cdm = fresh(1, 0);
        cdm.add_target(RefId(2), 0);
        cdm.add_source(RefId(9), 0); // unresolvable dependency
        cdm.slack = cfg.nongrowth_slack;
        // Round trip P0 -> P1 -> P0 ... . The first lap still grows (the
        // delivered scions enter the algebra); after that every hop is
        // non-growing and consumes slack, so the walk must terminate
        // within a small bounded number of hops — never a cycle verdict.
        let mut hops = 0u32;
        let mut at_p0 = true;
        let mut current = cdm;
        let bound = 4 * (cfg.nongrowth_slack + 2);
        loop {
            let (summary, scion) = if at_p0 {
                (&p0, RefId(1))
            } else {
                (&p1, RefId(2))
            };
            match deliver(summary, current.clone(), scion, &cfg) {
                Outcome::Forwarded { out, .. } => {
                    assert_eq!(out.len(), 1);
                    current = out[0].cdm.clone();
                    at_p0 = !at_p0;
                    hops += 1;
                    assert!(hops <= bound, "unbounded walk");
                }
                Outcome::Terminated(TerminateReason::NoNewInformation) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(hops >= cfg.nongrowth_slack, "slack hops were allowed");
        assert!(hops <= bound, "and the walk stayed bounded");
    }

    #[test]
    fn budget_split_preserves_depth_on_the_growing_branch() {
        // Fan-out halves the budget geometrically instead of dividing it
        // evenly: the first (growing) branch keeps half the remainder.
        let p0 = SummaryBuilder::new(0)
            .scion(1, 1, 0, &[2, 3, 4], false)
            .stub(2, 1, 0, &[1], false)
            .stub(3, 2, 0, &[1], false)
            .stub(4, 3, 0, &[1], false)
            .build();
        let mut cfg = cfg();
        cfg.detection_budget = 100;
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg);
        let fws = out.forwards();
        assert_eq!(fws.len(), 3);
        let budgets: Vec<u32> = fws.iter().map(|f| f.cdm.budget).collect();
        assert_eq!(budgets.iter().sum::<u32>(), 99, "total bounded by budget-1");
        assert_eq!(budgets[0], 50, "first branch keeps half");
        assert!(budgets[0] > budgets[1] && budgets[1] >= budgets[2]);
    }

    /// Dense 3-process clump (every object references every remote
    /// object): the per-reference walk's branch factor is factorial in
    /// references, while eager combine settles each process in one visit.
    fn dense_summaries() -> Vec<SummarizedGraph> {
        // Refs: r(ij) = ref from Pi to Pj's object, i,j in {0,1,2}, i != j.
        // id = 10*i + j. Every object is the target of two scions and the
        // holder of two stubs; every scion reaches both local stubs.
        let mut summaries = Vec::new();
        for i in 0u64..3 {
            let mut b = SummaryBuilder::new(i as u16);
            let others: Vec<u64> = (0u64..3).filter(|&j| j != i).collect();
            let stubs: Vec<u64> = others.iter().map(|&j| 10 * i + j).collect();
            for &j in &others {
                b = b.scion(10 * j + i, j as u16, 0, &stubs, false);
            }
            for (&j, &sref) in others.iter().zip(stubs.iter()) {
                let deps: Vec<u64> = others.iter().map(|&k| 10 * k + i).collect();
                b = b.stub(sref, j as u16, 0, &deps, false);
            }
            summaries.push(b.build());
        }
        summaries
    }

    #[test]
    fn eager_combine_settles_dense_clump() {
        let summaries = dense_summaries();
        let mut cfg = cfg();
        cfg.eager_combine = true;
        cfg.detection_budget = 64;
        // Walk: initiate at P0 on scion r(1->0)=10; breadth-first over the
        // outcome tree until a cycle verdict (bounded by budget).
        let mut pending = vec![(
            ProcId(0),
            RefId(10),
            Cdm::initiate(DetectionId(0), ProcId(0), RefId(10), 0),
        )];
        let mut first = true;
        let mut found = false;
        let mut processed = 0;
        while let Some((proc, via, cdm)) = pending.pop() {
            processed += 1;
            assert!(processed < 500, "runaway walk");
            let out = if std::mem::take(&mut first) {
                initiate(&summaries[proc.index()], cdm, via, &cfg)
            } else {
                deliver(&summaries[proc.index()], cdm, via, &cfg)
            };
            match out {
                Outcome::CycleFound { .. } => {
                    found = true;
                    break;
                }
                Outcome::Forwarded { out, .. } => {
                    for ob in out {
                        pending.push((ob.dest, ob.via, ob.cdm));
                    }
                }
                _ => {}
            }
        }
        assert!(found, "eager combine proves the dense clump garbage");
        assert!(processed <= 16, "a handful of visits suffice: {processed}");
    }

    #[test]
    fn eager_combine_respects_local_reach() {
        // Same clump but one stub is locally reachable: live, no verdict.
        let mut summaries = dense_summaries();
        summaries[1].stubs.get_mut(&RefId(10)).unwrap().local_reach = true;
        let mut cfg = cfg();
        cfg.eager_combine = true;
        let mut pending = vec![(
            ProcId(0),
            RefId(10),
            Cdm::initiate(DetectionId(0), ProcId(0), RefId(10), 0),
        )];
        let mut first = true;
        let mut guard = 0;
        while let Some((proc, via, cdm)) = pending.pop() {
            guard += 1;
            assert!(guard < 2_000, "terminates");
            let out = if std::mem::take(&mut first) {
                initiate(&summaries[proc.index()], cdm, via, &cfg)
            } else {
                deliver(&summaries[proc.index()], cdm, via, &cfg)
            };
            match out {
                Outcome::CycleFound { .. } => panic!("live clump misjudged"),
                Outcome::Forwarded { out, .. } => {
                    for ob in out {
                        pending.push((ob.dest, ob.via, ob.cdm));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn eager_combine_two_ring_concludes_in_one_hop() {
        // The single visit at P1 witnesses both ends of both references:
        // the cycle is proven one hop earlier than per-branch mode.
        let (p0, p1) = two_ring();
        let mut cfg = cfg();
        cfg.eager_combine = true;
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg);
        let cdm = out.forwards()[0].cdm.clone();
        let out = deliver(&p1, cdm, RefId(2), &cfg);
        assert_eq!(
            out,
            Outcome::CycleFound {
                delete: vec![(ProcId(0), RefId(1), 0, 0), (ProcId(1), RefId(2), 0, 0)]
            }
        );
    }

    #[test]
    fn budget_exhaustion_terminates() {
        let (p0, _) = two_ring();
        let mut cfg = cfg();
        cfg.detection_budget = 1;
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg);
        assert_eq!(out, Outcome::Terminated(TerminateReason::BudgetExhausted));
    }

    #[test]
    fn branch_termination_disabled_forwards_anyway() {
        let mut cfg = cfg();
        cfg.branch_termination = false;
        let (p0, _) = two_ring();
        let mut cdm = fresh(1, 0);
        cdm.add_target(RefId(2), 0);
        cdm.add_source(RefId(9), 0);
        let out = deliver(&p0, cdm, RefId(1), &cfg);
        assert_eq!(out.forwards().len(), 1, "A2 ablation: loops forever");
    }

    #[test]
    fn hop_cap_drops() {
        let (_, p1) = two_ring();
        let mut cfg = cfg();
        cfg.max_hops = 1;
        let mut cdm = fresh(1, 0);
        cdm.hops = 1;
        cdm.add_target(RefId(2), 0);
        let out = deliver(&p1, cdm, RefId(2), &cfg);
        assert_eq!(out, Outcome::DroppedHopCap);
    }

    #[test]
    fn fanout_creates_one_derivation_per_stub() {
        // §3.1 steps 1-3: StubsFrom(F) = {V, K} ⇒ two CDM derivations.
        let p0 = SummaryBuilder::new(0)
            .scion(1, 1, 0, &[2, 3], false)
            .stub(2, 1, 0, &[1], false)
            .stub(3, 2, 0, &[1], false)
            .build();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        let fws = out.forwards();
        assert_eq!(fws.len(), 2);
        let dests: Vec<ProcId> = fws.iter().map(|f| f.dest).collect();
        assert!(dests.contains(&ProcId(1)) && dests.contains(&ProcId(2)));
        // Each branch records only its own stub in the target set.
        for f in fws {
            assert_eq!(f.cdm.target.len(), 1);
            assert!(f.cdm.target.contains_key(&f.via));
        }
    }

    #[test]
    fn mixed_stubs_follow_only_unreachable() {
        let p0 = SummaryBuilder::new(0)
            .scion(1, 1, 0, &[2, 3], false)
            .stub(2, 1, 0, &[1], true) // live path: pruned
            .stub(3, 2, 0, &[1], false)
            .build();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        let fws = out.forwards();
        assert_eq!(fws.len(), 1);
        assert_eq!(fws[0].via, RefId(3));
    }

    #[test]
    fn stub_missing_from_summary_is_skipped() {
        // StubsFrom names r2 but the stub summary is absent (died between
        // captures): conservatively do not follow.
        let p0 = SummaryBuilder::new(0).scion(1, 1, 0, &[2], false).build();
        let out = initiate(&p0, fresh(1, 0), RefId(1), &cfg());
        assert_eq!(
            out,
            Outcome::Terminated(TerminateReason::AllStubsLocallyReachable)
        );
    }

    #[test]
    fn dependency_on_missing_scion_is_skipped() {
        // stub r1's scions_to names r9, but r9's summary is gone (scion
        // already reclaimed): the dependency no longer exists.
        let p1 = SummaryBuilder::new(1)
            .scion(2, 0, 0, &[1], false)
            .stub(1, 0, 0, &[2, 9], false)
            .build();
        let mut cdm = fresh(1, 0);
        cdm.add_target(RefId(2), 0);
        let out = deliver(&p1, cdm, RefId(2), &cfg());
        let fwd = &out.forwards()[0].cdm;
        assert!(!fwd.source.contains_key(&RefId(9)));
    }
}
