//! The Distributed Cycle Detection Algorithm (DCDA) — the paper's
//! contribution.
//!
//! The DCDA finds distributed cycles of garbage **asynchronously**: no
//! global synchronization, no consensus, no per-process state about
//! detections in flight. A detection is a *Cycle Detection Message* (CDM)
//! hopping between processes; at each hop the CDM is combined with the
//! receiving process's [`acdgc_snapshot::SummarizedGraph`] — an
//! independently-taken snapshot — and either dies (one of the safety rules
//! fired), concludes (a cycle was found), or forwards derivations along the
//! unreached outgoing references.
//!
//! The CDM carries the paper's **algebra** ([`algebra::Cdm`]): a *source
//! set* of compiled dependencies (scion-side entries) and a *target set* of
//! traversed references (stub-side entries), every entry tagged with the
//! invocation counter observed in the summary that contributed it.
//! [`algebra::Cdm::matching`] cancels entries present in both sets with
//! equal counters:
//!
//! * both sets empty ⇒ **cycle found** — every dependency was resolved by
//!   actually traversing its reference, so the initiating scion can be
//!   deleted and the acyclic DGC unravels the rest;
//! * a reference with *different* counters on the two sides ⇒ the mutator
//!   ran behind the detector's back (the Fig. 5 race) ⇒ **abort**;
//! * otherwise the residue is the unresolved-dependency set plus the
//!   wavefront, and the walk continues.
//!
//! Safety rules of §2.2 as implemented by [`process::deliver`]:
//!
//! 1. CDM delivered for a scion absent from the current summary ⇒ drop.
//! 2. (by construction) a CDM is only ever sent along a stub present in
//!    the sender's summary.
//! 3. invocation-counter mismatch ⇒ abort (at matching, and optionally
//!    already at delivery).
//! 4. otherwise combine and continue.
//!
//! Termination needs no cooperation: the algebra grows monotonically over
//! the finite universe of (reference, counter) pairs, and a derivation
//! equal to the algebra it derives from is not forwarded (§3.1 step 15).
//!
//! # Example: the paper's §3 matching steps
//!
//! ```
//! use acdgc_dcda::{Cdm, MatchResult};
//! use acdgc_model::{DetectionId, ProcId, RefId};
//!
//! // Step 1: Alg_0 = {{F_P2} -> {}} — F's scion is the first dependency.
//! let f = RefId(1);
//! let mut alg = Cdm::initiate(DetectionId(0), ProcId(1), f, 0);
//!
//! // Steps 2-3: StubsFrom(F_P2) = {Q_P4}; the stub enters the target set.
//! let q = RefId(2);
//! alg.add_target(q, 0);
//!
//! // Step 6: Matching(Alg_1) — nothing cancels yet.
//! assert!(matches!(alg.matching(true), MatchResult::Pending { .. }));
//!
//! // ... the walk eventually adds every scion and stub of the ring ...
//! alg.add_source(q, 0);
//! alg.add_target(f, 0);
//!
//! // Steps 24-26: Matching(Alg_4) => {{} -> {}} — a cycle is proven.
//! assert_eq!(alg.matching(true), MatchResult::CycleFound);
//!
//! // §3.2: had the mutator invoked through F meanwhile, the counters
//! // would disagree and matching would abort instead.
//! let mut raced = alg.clone();
//! raced.target.insert(f, 1); // stub side saw the invocation (x+1)
//! assert!(matches!(
//!     raced.matching(true),
//!     MatchResult::IcMismatch { .. }
//! ));
//! ```

pub mod algebra;
pub mod candidates;
pub mod process;

pub use algebra::{Cdm, Entry, MatchResult, FULL_CREDIT};
pub use candidates::{
    scan_candidates, scan_candidates_observed, select_candidates, CandidateScan, CandidateState,
};
pub use process::{deliver, initiate, OutboundCdm, Outcome, TerminateReason};
