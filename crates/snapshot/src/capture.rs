//! Flat snapshot representation, independent of live heap structures.
//!
//! [`SnapshotData`] is what the codecs serialize: the full object graph of
//! a process (objects, fields, roots) plus its remoting tables. It is the
//! analogue of the serialized image Rotor/.Net write to disk; the S1
//! experiment measures encoding it.

use acdgc_heap::{Heap, HeapRef};
use acdgc_model::{ObjId, ProcId, RefId, SimTime, Slot};
use acdgc_remoting::RemotingTables;

/// One serialized object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapObject {
    pub slot: Slot,
    pub generation: u32,
    pub payload_words: u32,
    pub refs: Vec<HeapRef>,
}

/// One serialized stub entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapStub {
    pub ref_id: RefId,
    pub target: ObjId,
    pub ic: u64,
}

/// One serialized scion entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapScion {
    pub ref_id: RefId,
    pub target: ObjId,
    pub from_proc: ProcId,
    pub ic: u64,
}

/// A full process snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SnapshotData {
    pub proc: ProcId,
    pub taken_at: SimTime,
    pub objects: Vec<SnapObject>,
    pub roots: Vec<Slot>,
    pub stubs: Vec<SnapStub>,
    pub scions: Vec<SnapScion>,
}

impl SnapshotData {
    /// Total reference-field count, a proxy for graph density.
    pub fn edge_count(&self) -> usize {
        self.objects.iter().map(|o| o.refs.len()).sum()
    }
}

/// Capture the current state of a process into a flat snapshot. Objects,
/// roots and tables are emitted in deterministic (slot / ref-id) order.
pub fn capture(heap: &Heap, tables: &RemotingTables, taken_at: SimTime) -> SnapshotData {
    let mut objects: Vec<SnapObject> = heap
        .iter()
        .map(|(slot, rec)| SnapObject {
            slot,
            generation: rec.generation,
            payload_words: rec.payload_words,
            refs: rec.refs.clone(),
        })
        .collect();
    objects.sort_unstable_by_key(|o| o.slot);

    let mut roots: Vec<Slot> = heap.roots().collect();
    roots.sort_unstable();

    let mut stubs: Vec<SnapStub> = tables
        .stubs()
        .map(|s| SnapStub {
            ref_id: s.ref_id,
            target: s.target,
            ic: s.ic,
        })
        .collect();
    stubs.sort_unstable_by_key(|s| s.ref_id);

    let mut scions: Vec<SnapScion> = tables
        .scions()
        .map(|s| SnapScion {
            ref_id: s.ref_id,
            target: s.target,
            from_proc: s.from_proc,
            ic: s.ic,
        })
        .collect();
    scions.sort_unstable_by_key(|s| s.ref_id);

    SnapshotData {
        proc: heap.proc(),
        taken_at,
        objects,
        roots,
        stubs,
        scions,
    }
}

/// [`capture`] bracketed by [`acdgc_obs::Phase::SnapshotCapture`]
/// start/end events and its duration histogram.
pub fn capture_observed(
    heap: &Heap,
    tables: &RemotingTables,
    taken_at: SimTime,
    obs: &mut acdgc_obs::ProcTrace,
) -> SnapshotData {
    let started = obs.begin(taken_at, acdgc_obs::Phase::SnapshotCapture);
    let snap = capture(heap, tables, taken_at);
    obs.end(taken_at, acdgc_obs::Phase::SnapshotCapture, started);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_deterministic_and_complete() {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(2);
        let b = heap.alloc(3);
        heap.add_ref(b, HeapRef::Local(a.slot)).unwrap();
        heap.add_ref(a, HeapRef::Remote(RefId(1))).unwrap();
        heap.add_root(a).unwrap();
        tables.add_stub(RefId(1), ObjId::new(ProcId(1), 0, 0), SimTime(0));
        tables.add_scion(RefId(2), b, ProcId(2), SimTime(0));

        let snap1 = capture(&heap, &tables, SimTime(9));
        let snap2 = capture(&heap, &tables, SimTime(9));
        assert_eq!(snap1, snap2);
        assert_eq!(snap1.objects.len(), 2);
        assert_eq!(snap1.roots, vec![a.slot]);
        assert_eq!(snap1.stubs.len(), 1);
        assert_eq!(snap1.scions.len(), 1);
        assert_eq!(snap1.edge_count(), 2);
        assert_eq!(snap1.taken_at, SimTime(9));
    }

    #[test]
    fn freed_objects_not_captured() {
        let mut heap = Heap::new(ProcId(0));
        let tables = RemotingTables::new(ProcId(0));
        let _keep = heap.alloc(1);
        let _gone = heap.alloc(1);
        // Collect: nothing is rooted, both die.
        acdgc_heap::collect(&mut heap, &[]);
        let snap = capture(&heap, &tables, SimTime(0));
        assert!(snap.objects.is_empty());
    }
}
