//! Incremental summarization.
//!
//! §4: "Graph summarization ... is performed, lazily and incrementally, in
//! each process, after a new object graph has been serialized". The full
//! summarizer ([`crate::summarize`]) re-runs one BFS per scion; when
//! little changed since the last snapshot that is wasted work. The
//! incremental summarizer keeps the previous [`SummarizedGraph`] and a
//! dirty set, and recomputes:
//!
//! * the root closure — always (roots are cheap and `Local.Reach` must be
//!   exact),
//! * the per-scion closure only for scions that are **dirty**: new since
//!   the last summary, or whose reachable subgraph may have changed.
//!
//! Even dirty scions rarely pay a BFS: any *graph* change sets
//! `all_dirty` (and forces a full engine pass), so when the tracker is
//! not all-dirty the engine's condensation from the last full pass still
//! describes the heap exactly. A dirty scion whose target was part of
//! that condensation resolves its `StubsFrom` by decoding the cached
//! per-component bitset ([`SccEngine::cached_stubs_from`], O(W/64))
//! instead of re-walking the object graph; only targets allocated since
//! the last full pass fall back to a breadth-first closure. The
//! `target_locally_reachable` bit always comes from the freshly
//! recomputed root closure, never from the cached condensation.
//!
//! Dirtiness is tracked conservatively by the process runtime calling
//! [`DirtyTracker`] hooks on mutator events. Any reference edit or
//! invocation in a process marks *all* scions of that process dirty unless
//! the edit provably cannot affect scion closures (allocation of an
//! unreferenced object). This is deliberately coarse — the win targeted is
//! the common "nothing happened in this process since the last snapshot"
//! case, which is exactly the steady state of the paper's lazy regime.
//!
//! The equivalence property `incremental == full` holds for every event
//! sequence (property-tested in `tests/`): the incremental path exists for
//! cost, never for different answers.

use crate::engine::SccEngine;
use crate::summary::{ScionSummary, SummarizedGraph};
use acdgc_heap::lgc::{closure_into, Closure, ClosureScratch};
use acdgc_heap::Heap;
use acdgc_model::{ProcId, RefId, SimTime};
use acdgc_remoting::RemotingTables;
use rustc_hash::{FxHashMap, FxHashSet};

/// Conservative mutator-event tracker feeding the incremental summarizer.
#[derive(Clone, Debug, Default)]
pub struct DirtyTracker {
    /// Everything changed: recompute all scions (set by reference edits,
    /// invocations importing references, LGC reclamation).
    all_dirty: bool,
    /// Individually dirty scions (e.g. newly created ones).
    dirty: FxHashSet<RefId>,
}

impl DirtyTracker {
    pub fn new() -> Self {
        DirtyTracker {
            // The first summary must compute everything.
            all_dirty: true,
            dirty: FxHashSet::default(),
        }
    }

    /// A reference field was added or removed anywhere in the process, or
    /// an LGC ran: scion closures may have changed arbitrarily.
    pub fn graph_changed(&mut self) {
        self.all_dirty = true;
    }

    /// A scion was created (it has no summary yet).
    pub fn scion_created(&mut self, r: RefId) {
        self.dirty.insert(r);
    }

    /// An invocation arrived through `r`: its captured counter and
    /// last-invoked time are stale (the closure itself is not).
    pub fn scion_invoked(&mut self, r: RefId) {
        self.dirty.insert(r);
    }

    pub fn is_all_dirty(&self) -> bool {
        self.all_dirty
    }

    fn take(&mut self) -> (bool, FxHashSet<RefId>) {
        let all = self.all_dirty;
        self.all_dirty = false;
        (all, std::mem::take(&mut self.dirty))
    }
}

/// Incremental summarizer state: previous summary + dirty set, plus the
/// reusable traversal scratch (SCC engine for full recomputes, closure
/// buffers for the per-scion path).
#[derive(Clone, Debug)]
pub struct IncrementalSummarizer {
    tracker: DirtyTracker,
    previous: SummarizedGraph,
    engine: SccEngine,
    root_closure: Closure,
    scion_closure: Closure,
    scratch: ClosureScratch,
}

impl IncrementalSummarizer {
    pub fn new(proc: ProcId) -> Self {
        IncrementalSummarizer {
            tracker: DirtyTracker::new(),
            previous: SummarizedGraph::empty(proc),
            engine: SccEngine::new(),
            root_closure: Closure::default(),
            scion_closure: Closure::default(),
            scratch: ClosureScratch::default(),
        }
    }

    pub fn tracker(&mut self) -> &mut DirtyTracker {
        &mut self.tracker
    }

    /// Produce the next summary. Scion closures are reused from the
    /// previous summary when provably unchanged; counters, last-invoked
    /// times and every `Local.Reach` bit are always refreshed.
    pub fn summarize(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
    ) -> SummarizedGraph {
        let (all_dirty, dirty) = self.tracker.take();
        if all_dirty {
            // Full recompute: one single-pass SCC summarization with
            // aliased propagation (identical output to the reference, a
            // fraction of the traversal work). The engine keeps its
            // condensation cached afterwards, which is what lets later
            // not-all-dirty rounds answer dirty scions without a BFS.
            self.previous = self
                .engine
                .summarize_condensed(heap, tables, version, taken_at);
            return self.previous.clone();
        }

        // Root closure is always recomputed: Local.Reach must be exact.
        closure_into(
            heap,
            heap.roots(),
            &mut self.root_closure,
            &mut self.scratch,
        );
        let root_closure = &self.root_closure;

        let mut scions: FxHashMap<RefId, ScionSummary> = FxHashMap::default();
        let mut scions_to: FxHashMap<RefId, Vec<RefId>> = FxHashMap::default();
        for scion in tables.scions() {
            let stubs_from: Vec<RefId> = match self.previous.scion(scion.ref_id) {
                Some(prev) if !dirty.contains(&scion.ref_id) => {
                    // Closure unchanged; validate stubs still exist (a
                    // stub's death without a graph edit is impossible, but
                    // stay conservative).
                    prev.stubs_from
                        .iter()
                        .copied()
                        .filter(|r| tables.stub(*r).is_some())
                        .collect()
                }
                // Dirty scion (new, or its counters moved). The graph
                // itself is unchanged — any edge edit or LGC would have
                // set `all_dirty` — so the engine's cached condensation
                // still answers reachability exactly: decode the target
                // component's bitset instead of re-walking the heap.
                _ => match self.engine.cached_stubs_from(scion.target.slot, tables) {
                    Some(stubs) => stubs,
                    None => {
                        // Target outside the cached condensation (e.g.
                        // allocated since the last full pass, or no full
                        // pass yet): one breadth-first closure.
                        closure_into(
                            heap,
                            [scion.target.slot],
                            &mut self.scion_closure,
                            &mut self.scratch,
                        );
                        let mut stubs: Vec<RefId> = self
                            .scion_closure
                            .stubs
                            .iter()
                            .copied()
                            .filter(|r| tables.stub(*r).is_some())
                            .collect();
                        stubs.sort_unstable();
                        stubs
                    }
                },
            };
            for &stub_ref in &stubs_from {
                scions_to.entry(stub_ref).or_default().push(scion.ref_id);
            }
            scions.insert(
                scion.ref_id,
                ScionSummary {
                    ref_id: scion.ref_id,
                    from_proc: scion.from_proc,
                    ic: scion.ic,
                    stubs_from,
                    target_locally_reachable: root_closure
                        .slots
                        .contains(scion.target.slot as usize),
                    last_invoked: scion.last_invoked,
                    incarnation: scion.incarnation,
                    pinned: scion.pinned,
                },
            );
        }

        let mut stubs = FxHashMap::default();
        let interesting: Vec<RefId> = scions_to
            .keys()
            .copied()
            .chain(root_closure.stubs.iter().copied())
            .collect();
        for ref_id in interesting {
            if stubs.contains_key(&ref_id) {
                continue;
            }
            let Some(stub) = tables.stub(ref_id) else {
                continue;
            };
            let mut to = scions_to.remove(&ref_id).unwrap_or_default();
            to.sort_unstable();
            to.dedup();
            stubs.insert(
                ref_id,
                crate::summary::StubSummary {
                    ref_id,
                    target_proc: stub.target.proc,
                    ic: stub.ic,
                    scions_to: to,
                    local_reach: root_closure.stubs.contains(&ref_id),
                },
            );
        }

        self.previous = SummarizedGraph {
            proc: heap.proc(),
            version,
            taken_at,
            scions,
            stubs,
        };
        self.previous.clone()
    }
}

/// Compare two summaries for semantic equality, ignoring version/time.
pub fn summaries_equivalent(a: &SummarizedGraph, b: &SummarizedGraph) -> bool {
    if a.proc != b.proc || a.scions.len() != b.scions.len() || a.stubs.len() != b.stubs.len() {
        return false;
    }
    a.scions.iter().all(|(r, s)| b.scion(*r) == Some(s))
        && a.stubs.iter().all(|(r, s)| b.stub(*r) == Some(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use acdgc_heap::HeapRef;
    use acdgc_model::ObjId;

    fn world() -> (Heap, RemotingTables) {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        heap.add_ref(b, HeapRef::Remote(RefId(2))).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_stub(RefId(2), ObjId::new(ProcId(2), 0, 0), SimTime(0));
        (heap, tables)
    }

    #[test]
    fn first_summary_matches_full() {
        let (heap, tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        let i = inc.summarize(&heap, &tables, 1, SimTime(5));
        let f = summarize(&heap, &tables, 1, SimTime(5));
        assert!(summaries_equivalent(&i, &f));
    }

    #[test]
    fn clean_resummarize_reuses_closures_and_matches_full() {
        let (mut heap, mut tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        // Only counters move (an invocation), no graph change.
        tables
            .record_receive_through_scion(RefId(1), SimTime(3))
            .unwrap();
        inc.tracker().scion_invoked(RefId(1));
        let i = inc.summarize(&heap, &tables, 2, SimTime(4));
        let f = summarize(&heap, &tables, 2, SimTime(4));
        assert!(summaries_equivalent(&i, &f));
        assert_eq!(i.scion(RefId(1)).unwrap().ic, 1, "counter refreshed");
        let _ = &mut heap;
    }

    #[test]
    fn graph_edit_forces_full_recompute() {
        let (mut heap, mut tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        // Cut the local edge a -> b: stub r2 is no longer reachable from
        // the scion.
        let a = heap.id_of_slot(0).unwrap();
        let b = heap.id_of_slot(1).unwrap();
        heap.remove_ref(a, HeapRef::Local(b.slot)).unwrap();
        inc.tracker().graph_changed();
        let i = inc.summarize(&heap, &tables, 2, SimTime(1));
        let f = summarize(&heap, &tables, 2, SimTime(1));
        assert!(summaries_equivalent(&i, &f));
        assert!(i.scion(RefId(1)).unwrap().stubs_from.is_empty());
        let _ = &mut tables;
    }

    #[test]
    fn new_scion_is_computed_without_global_recompute() {
        let (mut heap, mut tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        let c = heap.alloc(1);
        tables.add_scion(RefId(9), c, ProcId(3), SimTime(1));
        inc.tracker().scion_created(RefId(9));
        let i = inc.summarize(&heap, &tables, 2, SimTime(2));
        let f = summarize(&heap, &tables, 2, SimTime(2));
        assert!(summaries_equivalent(&i, &f));
        assert!(i.scion(RefId(9)).is_some());
    }

    #[test]
    fn root_changes_always_visible_without_dirty_marks() {
        // Local.Reach is recomputed even with a clean tracker: rooting b
        // flips the stub's bit.
        let (mut heap, tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        let before = inc.summarize(&heap, &tables, 1, SimTime(0));
        assert!(!before.stub(RefId(2)).unwrap().local_reach);
        let b = heap.id_of_slot(1).unwrap();
        heap.add_root(b).unwrap();
        let after = inc.summarize(&heap, &tables, 2, SimTime(1));
        assert!(after.stub(RefId(2)).unwrap().local_reach);
        let f = summarize(&heap, &tables, 2, SimTime(1));
        assert!(summaries_equivalent(&after, &f));
    }

    #[test]
    fn dirty_scion_on_covered_slot_resolves_from_condensation() {
        // A new scion whose target already existed at the last full pass
        // is answered from the engine's cached condensation (the target's
        // component bitset), not a BFS — the graph is unchanged, so the
        // cache is exact. Target b (slot 1) holds stub r2 directly.
        let (heap, mut tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        let b = heap.id_of_slot(1).unwrap();
        tables.add_scion(RefId(7), b, ProcId(3), SimTime(1));
        inc.tracker().scion_created(RefId(7));
        assert!(
            !inc.tracker.is_all_dirty(),
            "scion creation alone must not force a full pass"
        );
        let i = inc.summarize(&heap, &tables, 2, SimTime(2));
        assert_eq!(i.scion(RefId(7)).unwrap().stubs_from, vec![RefId(2)]);
        let f = summarize(&heap, &tables, 2, SimTime(2));
        assert!(summaries_equivalent(&i, &f));
        // The stub's reverse edge picked up the new scion too.
        assert_eq!(
            i.stub(RefId(2)).unwrap().scions_to,
            vec![RefId(1), RefId(7)]
        );
    }

    #[test]
    fn removed_scion_disappears() {
        let (heap, mut tables) = world();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        tables.remove_scion(RefId(1));
        // No dirty mark needed: the scion loop iterates the live table.
        let i = inc.summarize(&heap, &tables, 2, SimTime(1));
        assert!(i.scion(RefId(1)).is_none());
        let f = summarize(&heap, &tables, 2, SimTime(1));
        assert!(summaries_equivalent(&i, &f));
    }
}
