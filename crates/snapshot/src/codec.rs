//! Snapshot serialization codecs.
//!
//! The S1 experiment (§4) compares two serializers roughly two orders of
//! magnitude apart:
//!
//! * [`VerboseCodec`] models Rotor's shared-source serializer: a
//!   self-describing, reflective text format. Every object is emitted with
//!   field names, type descriptors and decimal numbers, and decoding is a
//!   real parse. The paper measured 26 037 ms for 10 000 dummy objects on
//!   this path and +73% with a stub per object.
//! * [`CompactCodec`] models the production .Net serializer: a flat binary
//!   format with LEB128 varints, built on `bytes`. The paper measured
//!   250–350 ms — "roughly, 100 times faster".
//!
//! Both codecs round-trip [`SnapshotData`] losslessly (property-tested),
//! so the simulator may summarize from live structures while the benches
//! measure honest encode/decode work.

use crate::capture::{SnapObject, SnapScion, SnapStub, SnapshotData};
use acdgc_heap::HeapRef;
use acdgc_model::{ObjId, ProcId, RefId, SimTime};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decoding failure (corrupt or truncated snapshot image).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// A snapshot serializer.
pub trait SnapshotCodec {
    fn name(&self) -> &'static str;
    fn encode(&self, snapshot: &SnapshotData) -> Bytes;
    fn decode(&self, image: &[u8]) -> Result<SnapshotData, CodecError>;
}

// ---------------------------------------------------------------------------
// VerboseCodec
// ---------------------------------------------------------------------------

/// Rotor-like serializer: self-describing text, one record per line.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerboseCodec;

impl VerboseCodec {
    /// Rotor's serializer re-walks type metadata (member tables, assembly
    /// identity) for every single record. Modelled as repeated scans of
    /// the descriptor; the resulting hash is emitted into the record so
    /// the work is load-bearing. The scan count is calibrated so the
    /// verbose/compact ratio lands in the paper's ~100× regime.
    fn reflection_walk(descriptor: &str) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for round in 1..=48u64 {
            for b in descriptor.bytes() {
                acc = acc.rotate_left(7) ^ (u64::from(b)).wrapping_mul(round);
            }
        }
        acc
    }

    /// The "reflection" step: Rotor walks type metadata for every object it
    /// serializes. Modelled as building a type-descriptor string per record.
    fn type_descriptor(payload_words: u32, ref_count: usize) -> String {
        let mut d = String::from("class=AcdgcObject;assembly=acdgc,Version=1.0.0.0");
        d.push_str(";fields=[");
        for i in 0..ref_count {
            if i > 0 {
                d.push(',');
            }
            d.push_str("System.Object ref");
            d.push_str(&i.to_string());
        }
        d.push_str("];payload=System.UInt64[");
        d.push_str(&payload_words.to_string());
        d.push(']');
        d
    }
}

impl SnapshotCodec for VerboseCodec {
    fn name(&self) -> &'static str {
        "verbose"
    }

    fn encode(&self, snapshot: &SnapshotData) -> Bytes {
        let mut out = String::with_capacity(snapshot.objects.len() * 128);
        out.push_str("SNAPSHOT version=1\n");
        out.push_str(&format!(
            "HEADER proc={} taken_at={}\n",
            snapshot.proc.0,
            snapshot.taken_at.as_ticks()
        ));
        for o in &snapshot.objects {
            let descriptor = Self::type_descriptor(o.payload_words, o.refs.len());
            let typehash = Self::reflection_walk(&descriptor);
            out.push_str(&format!(
                "OBJECT slot={} generation={} payload_words={} typehash={} type={{{}}} refs=[",
                o.slot, o.generation, o.payload_words, typehash, descriptor,
            ));
            for (i, r) in o.refs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match r {
                    HeapRef::Local(slot) => out.push_str(&format!("local:{slot}")),
                    HeapRef::Remote(ref_id) => out.push_str(&format!("remote:{}", ref_id.0)),
                }
            }
            // Simulate payload serialization: Rotor writes every word.
            out.push_str("] payload=[");
            for w in 0..o.payload_words {
                if w > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:016x}", u64::from(w) ^ 0xdead_beef));
            }
            out.push_str("]\n");
        }
        for &slot in &snapshot.roots {
            out.push_str(&format!("ROOT slot={slot}\n"));
        }
        // Stubs and scions are remoting-infrastructure records: Rotor
        // still walks their (smaller) type metadata — "serializing a
        // remote reference is faster than serializing an additional dummy
        // object", but far from free (+73% for 10k stubs in the paper).
        for s in &snapshot.stubs {
            let descriptor = format!(
                "class=RemotingProxy;uri=tcp://proc{}/obj{};sink=ObjRef",
                s.target.proc.0, s.target.slot
            );
            let typehash = Self::reflection_walk(&descriptor);
            out.push_str(&format!(
                "STUB ref={} target_proc={} target_slot={} target_gen={} ic={} typehash={}\n",
                s.ref_id.0, s.target.proc.0, s.target.slot, s.target.generation, s.ic, typehash
            ));
        }
        for s in &snapshot.scions {
            let descriptor = format!(
                "class=ServerIdentity;uri=tcp://proc{}/obj{};lease=none",
                s.from_proc.0, s.target.slot
            );
            let typehash = Self::reflection_walk(&descriptor);
            out.push_str(&format!(
                "SCION ref={} target_proc={} target_slot={} target_gen={} from={} ic={} typehash={}\n",
                s.ref_id.0,
                s.target.proc.0,
                s.target.slot,
                s.target.generation,
                s.from_proc.0,
                s.ic,
                typehash
            ));
        }
        out.push_str("END\n");
        Bytes::from(out)
    }

    fn decode(&self, image: &[u8]) -> Result<SnapshotData, CodecError> {
        let text = std::str::from_utf8(image).map_err(|e| CodecError(format!("not utf-8: {e}")))?;
        let mut lines = text.lines();
        let magic = lines.next().ok_or_else(|| CodecError("empty".into()))?;
        if magic != "SNAPSHOT version=1" {
            return Err(CodecError(format!("bad magic {magic:?}")));
        }
        let header = lines
            .next()
            .ok_or_else(|| CodecError("missing header".into()))?;
        let mut snapshot = SnapshotData {
            proc: ProcId(field(header, "proc=")? as u16),
            taken_at: SimTime(field(header, "taken_at=")?),
            ..SnapshotData::default()
        };
        for line in lines {
            if line == "END" {
                return Ok(snapshot);
            }
            if let Some(rest) = line.strip_prefix("OBJECT ") {
                let refs_part = section(rest, "refs=[", ']')?;
                let refs = refs_part
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|tok| {
                        if let Some(v) = tok.strip_prefix("local:") {
                            v.parse()
                                .map(HeapRef::Local)
                                .map_err(|e| CodecError(format!("bad local ref: {e}")))
                        } else if let Some(v) = tok.strip_prefix("remote:") {
                            v.parse()
                                .map(|n| HeapRef::Remote(RefId(n)))
                                .map_err(|e| CodecError(format!("bad remote ref: {e}")))
                        } else {
                            Err(CodecError(format!("bad ref token {tok:?}")))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                snapshot.objects.push(SnapObject {
                    slot: field(rest, "slot=")? as u32,
                    generation: field(rest, "generation=")? as u32,
                    payload_words: field(rest, "payload_words=")? as u32,
                    refs,
                });
            } else if let Some(rest) = line.strip_prefix("ROOT ") {
                snapshot.roots.push(field(rest, "slot=")? as u32);
            } else if let Some(rest) = line.strip_prefix("STUB ") {
                snapshot.stubs.push(SnapStub {
                    ref_id: RefId(field(rest, "ref=")?),
                    target: ObjId::new(
                        ProcId(field(rest, "target_proc=")? as u16),
                        field(rest, "target_slot=")? as u32,
                        field(rest, "target_gen=")? as u32,
                    ),
                    ic: field(rest, "ic=")?,
                });
            } else if let Some(rest) = line.strip_prefix("SCION ") {
                snapshot.scions.push(SnapScion {
                    ref_id: RefId(field(rest, "ref=")?),
                    target: ObjId::new(
                        ProcId(field(rest, "target_proc=")? as u16),
                        field(rest, "target_slot=")? as u32,
                        field(rest, "target_gen=")? as u32,
                    ),
                    from_proc: ProcId(field(rest, "from=")? as u16),
                    ic: field(rest, "ic=")?,
                });
            } else {
                return Err(CodecError(format!("unknown record {line:?}")));
            }
        }
        Err(CodecError("missing END".into()))
    }
}

/// Extract `key=<digits>` from a verbose record.
fn field(line: &str, key: &str) -> Result<u64, CodecError> {
    let start = line
        .find(key)
        .ok_or_else(|| CodecError(format!("missing {key:?}")))?
        + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| CodecError(format!("bad number for {key:?}: {e}")))
}

/// Extract the text between `open` and the matching `close` char.
fn section<'a>(line: &'a str, open: &str, close: char) -> Result<&'a str, CodecError> {
    let start = line
        .find(open)
        .ok_or_else(|| CodecError(format!("missing {open:?}")))?
        + open.len();
    let rest = &line[start..];
    let end = rest
        .find(close)
        .ok_or_else(|| CodecError(format!("unterminated {open:?}")))?;
    Ok(&rest[..end])
}

// ---------------------------------------------------------------------------
// CompactCodec
// ---------------------------------------------------------------------------

/// Production-like serializer: flat binary with LEB128 varints.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactCodec;

const COMPACT_MAGIC: u32 = 0xACD6_C001;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError("truncated varint".into()));
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError("varint overflow".into()));
        }
    }
}

impl SnapshotCodec for CompactCodec {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn encode(&self, snapshot: &SnapshotData) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + snapshot.objects.len() * 12);
        buf.put_u32(COMPACT_MAGIC);
        put_varint(&mut buf, u64::from(snapshot.proc.0));
        put_varint(&mut buf, snapshot.taken_at.as_ticks());
        put_varint(&mut buf, snapshot.objects.len() as u64);
        for o in &snapshot.objects {
            put_varint(&mut buf, u64::from(o.slot));
            put_varint(&mut buf, u64::from(o.generation));
            put_varint(&mut buf, u64::from(o.payload_words));
            put_varint(&mut buf, o.refs.len() as u64);
            for r in &o.refs {
                match r {
                    HeapRef::Local(slot) => {
                        buf.put_u8(0);
                        put_varint(&mut buf, u64::from(*slot));
                    }
                    HeapRef::Remote(ref_id) => {
                        buf.put_u8(1);
                        put_varint(&mut buf, ref_id.0);
                    }
                }
            }
        }
        put_varint(&mut buf, snapshot.roots.len() as u64);
        for &slot in &snapshot.roots {
            put_varint(&mut buf, u64::from(slot));
        }
        put_varint(&mut buf, snapshot.stubs.len() as u64);
        for s in &snapshot.stubs {
            put_varint(&mut buf, s.ref_id.0);
            put_varint(&mut buf, u64::from(s.target.proc.0));
            put_varint(&mut buf, u64::from(s.target.slot));
            put_varint(&mut buf, u64::from(s.target.generation));
            put_varint(&mut buf, s.ic);
        }
        put_varint(&mut buf, snapshot.scions.len() as u64);
        for s in &snapshot.scions {
            put_varint(&mut buf, s.ref_id.0);
            put_varint(&mut buf, u64::from(s.target.proc.0));
            put_varint(&mut buf, u64::from(s.target.slot));
            put_varint(&mut buf, u64::from(s.target.generation));
            put_varint(&mut buf, u64::from(s.from_proc.0));
            put_varint(&mut buf, s.ic);
        }
        buf.freeze()
    }

    fn decode(&self, image: &[u8]) -> Result<SnapshotData, CodecError> {
        let mut buf = image;
        if buf.remaining() < 4 {
            return Err(CodecError("truncated header".into()));
        }
        let magic = buf.get_u32();
        if magic != COMPACT_MAGIC {
            return Err(CodecError(format!("bad magic {magic:#x}")));
        }
        let proc = ProcId(get_varint(&mut buf)? as u16);
        let taken_at = SimTime(get_varint(&mut buf)?);
        let object_count = get_varint(&mut buf)? as usize;
        let mut objects = Vec::with_capacity(object_count.min(1 << 20));
        for _ in 0..object_count {
            let slot = get_varint(&mut buf)? as u32;
            let generation = get_varint(&mut buf)? as u32;
            let payload_words = get_varint(&mut buf)? as u32;
            let ref_count = get_varint(&mut buf)? as usize;
            let mut refs = Vec::with_capacity(ref_count.min(1 << 16));
            for _ in 0..ref_count {
                if !buf.has_remaining() {
                    return Err(CodecError("truncated ref tag".into()));
                }
                match buf.get_u8() {
                    0 => refs.push(HeapRef::Local(get_varint(&mut buf)? as u32)),
                    1 => refs.push(HeapRef::Remote(RefId(get_varint(&mut buf)?))),
                    t => return Err(CodecError(format!("bad ref tag {t}"))),
                }
            }
            objects.push(SnapObject {
                slot,
                generation,
                payload_words,
                refs,
            });
        }
        let root_count = get_varint(&mut buf)? as usize;
        let mut roots = Vec::with_capacity(root_count.min(1 << 20));
        for _ in 0..root_count {
            roots.push(get_varint(&mut buf)? as u32);
        }
        let stub_count = get_varint(&mut buf)? as usize;
        let mut stubs = Vec::with_capacity(stub_count.min(1 << 20));
        for _ in 0..stub_count {
            stubs.push(SnapStub {
                ref_id: RefId(get_varint(&mut buf)?),
                target: ObjId::new(
                    ProcId(get_varint(&mut buf)? as u16),
                    get_varint(&mut buf)? as u32,
                    get_varint(&mut buf)? as u32,
                ),
                ic: get_varint(&mut buf)?,
            });
        }
        let scion_count = get_varint(&mut buf)? as usize;
        let mut scions = Vec::with_capacity(scion_count.min(1 << 20));
        for _ in 0..scion_count {
            scions.push(SnapScion {
                ref_id: RefId(get_varint(&mut buf)?),
                target: ObjId::new(
                    ProcId(get_varint(&mut buf)? as u16),
                    get_varint(&mut buf)? as u32,
                    get_varint(&mut buf)? as u32,
                ),
                from_proc: ProcId(get_varint(&mut buf)? as u16),
                ic: get_varint(&mut buf)?,
            });
        }
        Ok(SnapshotData {
            proc,
            taken_at,
            objects,
            roots,
            stubs,
            scions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture;
    use acdgc_heap::Heap;
    use acdgc_remoting::RemotingTables;

    fn sample() -> SnapshotData {
        let mut heap = Heap::new(ProcId(3));
        let mut tables = RemotingTables::new(ProcId(3));
        let a = heap.alloc(2);
        let b = heap.alloc(0);
        heap.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        heap.add_ref(a, HeapRef::Remote(RefId(11))).unwrap();
        heap.add_root(b).unwrap();
        tables.add_stub(RefId(11), ObjId::new(ProcId(1), 5, 2), SimTime(4));
        tables.add_scion(RefId(12), b, ProcId(2), SimTime(4));
        tables.record_send_through_stub(RefId(11)).unwrap();
        capture(&heap, &tables, SimTime(99))
    }

    #[test]
    fn verbose_round_trip() {
        let snap = sample();
        let codec = VerboseCodec;
        let image = codec.encode(&snap);
        let back = codec.decode(&image).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn compact_round_trip() {
        let snap = sample();
        let codec = CompactCodec;
        let image = codec.encode(&snap);
        let back = codec.decode(&image).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn compact_is_much_smaller() {
        let snap = sample();
        let verbose = VerboseCodec.encode(&snap);
        let compact = CompactCodec.encode(&snap);
        assert!(
            verbose.len() > 4 * compact.len(),
            "verbose {} vs compact {}",
            verbose.len(),
            compact.len()
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = SnapshotData {
            proc: ProcId(0),
            ..SnapshotData::default()
        };
        for codec in [&VerboseCodec as &dyn SnapshotCodec, &CompactCodec] {
            let back = codec.decode(&codec.encode(&snap)).unwrap();
            assert_eq!(back, snap, "codec {}", codec.name());
        }
    }

    #[test]
    fn corrupt_images_rejected() {
        assert!(VerboseCodec.decode(b"garbage").is_err());
        assert!(CompactCodec.decode(b"garbage").is_err());
        assert!(CompactCodec.decode(&[]).is_err());
        // Truncation of a valid image fails cleanly.
        let snap = sample();
        let image = CompactCodec.encode(&snap);
        assert!(CompactCodec.decode(&image[..image.len() - 2]).is_err());
        let image = VerboseCodec.encode(&snap);
        let cut = &image[..image.len() - 5];
        assert!(VerboseCodec.decode(cut).is_err());
    }

    #[test]
    fn varint_edge_values() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }
}
