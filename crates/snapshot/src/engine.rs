//! Single-pass SCC-condensation summarization engine.
//!
//! The paper's formulation of graph summarization (§3) — and
//! [`crate::summarize`], which transcribes it — runs one breadth-first
//! traversal **per scion**: O(S·(V+E)) for S scions over a heap with V
//! objects and E references. The per-scion traversals are almost entirely
//! redundant: two scions whose targets reach the same strongly connected
//! component of the local heap see, from that point on, exactly the same
//! stubs.
//!
//! This engine computes every `StubsFrom` / `ScionsTo` / `Local.Reach`
//! fact from **one** traversal:
//!
//! 1. One iterative Tarjan pass condenses the local object graph into its
//!    SCC DAG — O(V+E). Tarjan emits components callees-first, so every
//!    condensation edge points from a later-emitted component to an
//!    earlier one.
//! 2. Local root reachability is propagated **forward** over the
//!    condensation (descending emission index), marking every component
//!    reachable from a root and recording the stubs those components hold
//!    directly (the `Local.Reach` bits) — O(V+E).
//! 3. Reachable-stub sets are propagated **bottom-up** (ascending emission
//!    index, i.e. reverse topological order): each component's
//!    [`BitSet`] — one bit per table stub — is the union of the stub bits
//!    its members hold directly and the sets of its successor components.
//!    Each union is a word-parallel OR — O(E·W/64) for a W-stub universe.
//!    Sets live in a slot pool indexed through `reach_of`, which lets the
//!    aliased propagation mode (see [`SccEngine::summarize_adaptive`])
//!    make a component with no direct stubs and out-degree ≤ 1 *inherit*
//!    its successor's pool slot in O(1) instead of copying a full-width
//!    bitset — on disjoint scion chains the whole propagation collapses
//!    to pointer assignments.
//! 4. A scion's `StubsFrom` is then just its target component's bitset,
//!    decoded; `ScionsTo` is the inversion — O(S·W/64 + output).
//!
//! Stub bit indices are assigned in ascending `RefId` order, so decoding a
//! bitset yields the sorted `stubs_from` vector the reference produces —
//! the engine's output is **identical** to [`crate::summarize`]'s, not
//! just equivalent (property-tested in `tests/engine_props.rs`).
//!
//! All intermediate state lives in the engine and is reused across calls:
//! a steady-state snapshot performs no scratch allocations (only the
//! returned [`SummarizedGraph`] is freshly allocated).

use crate::summary::{ScionSummary, StubSummary, SummarizedGraph};
use acdgc_heap::{Heap, HeapRef};
use acdgc_model::{BitSet, RefId, SimTime, Slot};
use acdgc_remoting::RemotingTables;
use rustc_hash::FxHashMap;

const UNVISITED: u32 = u32::MAX;

/// Pool slot holding the canonical empty reachable-stub set.
const EMPTY_SLOT: u32 = 0;

/// Which implementation an adaptive summarization dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummarizePath {
    /// The paper's per-scion BFS ([`crate::summarize`]).
    Reference,
    /// The SCC-condensation engine with aliased propagation.
    Engine,
}

/// What [`SccEngine::summarize_adaptive`] saw and decided on its last
/// call; exposed for tests, benches and forensics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchStats {
    pub path: SummarizePath,
    /// Scion count S at dispatch time.
    pub scions: usize,
    /// Stub universe width W at dispatch time.
    pub stub_width: usize,
    /// Live objects V at dispatch time.
    pub live_objects: usize,
    /// Reference fields E at dispatch time (from the heap's incremental
    /// counter).
    pub ref_fields: u64,
    /// Components whose reachable-stub set was inherited by reference
    /// (no direct stubs, out-degree ≤ 1) in the last engine-path run.
    pub inherited_components: usize,
    /// Components that materialized an owned bitset in the last
    /// engine-path run.
    pub unioned_components: usize,
}

impl Default for DispatchStats {
    fn default() -> Self {
        DispatchStats {
            path: SummarizePath::Engine,
            scions: 0,
            stub_width: 0,
            live_objects: 0,
            ref_fields: 0,
            inherited_components: 0,
            unioned_components: 0,
        }
    }
}

/// Reusable single-pass summarizer. One engine per process; see the
/// module docs for the algorithm.
#[derive(Clone, Debug, Default)]
pub struct SccEngine {
    // --- Tarjan state, indexed by slot -----------------------------------
    dfs_num: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    comp_of: Vec<u32>,
    stack: Vec<Slot>,
    /// Explicit DFS frames `(slot, next field index)`; recursion would
    /// overflow the thread stack on long object chains.
    frames: Vec<(Slot, u32)>,
    // --- condensation, indexed by component emission order ---------------
    /// Component members, grouped contiguously in emission order.
    members: Vec<Slot>,
    /// Exclusive end of component `c`'s member range in `members`.
    comp_end: Vec<u32>,
    /// Component is reachable from a local root.
    comp_root: Vec<bool>,
    /// Pool slot holding component `c`'s reachable-stub set. Aliased
    /// propagation maps many chain components to one shared slot;
    /// [`EMPTY_SLOT`] is the shared empty set.
    reach_of: Vec<u32>,
    /// Bitset pool; `pool_len` slots are live for the current run, the
    /// rest are retained allocations from earlier runs.
    pool: Vec<BitSet>,
    pool_len: usize,
    /// Scratch: distinct successor components / direct stub bits of the
    /// component being propagated.
    succ_scratch: Vec<u32>,
    direct_scratch: Vec<u32>,
    // --- stub universe ----------------------------------------------------
    /// Table stubs in ascending `RefId` order; position = bit index.
    stub_ids: Vec<RefId>,
    stub_bit: FxHashMap<RefId, u32>,
    /// Stubs held directly by root-reachable objects (`Local.Reach`).
    root_stub_bits: BitSet,
    // --- adaptive dispatch -------------------------------------------------
    dispatch: DispatchStats,
    /// The retained condensation (`comp_of`/`reach_of`/`pool`/`stub_ids`)
    /// reflects the heap as of the last engine-path run; false until the
    /// first run and after a reference-path dispatch.
    condensation_cached: bool,
}

impl SccEngine {
    pub fn new() -> Self {
        SccEngine::default()
    }

    /// Summarize the current heap + remoting state; output is identical to
    /// [`crate::summarize`] on the same inputs. This is the full engine:
    /// every component materializes its own bitset (the baseline the
    /// aliased mode is benchmarked against).
    pub fn summarize(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
    ) -> SummarizedGraph {
        self.run_engine(heap, tables, false);
        self.build_summary(heap, tables, version, taken_at)
    }

    /// Engine run with aliased propagation: components with no direct
    /// stubs and out-degree ≤ 1 inherit their successor's reach set by
    /// reference. Identical output, strictly less bitset work; used by
    /// the adaptive dispatch and the incremental summarizer's full
    /// passes (it leaves the condensation cached for
    /// [`SccEngine::cached_stubs_from`]).
    pub fn summarize_condensed(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
    ) -> SummarizedGraph {
        self.run_engine(heap, tables, true);
        self.build_summary(heap, tables, version, taken_at)
    }

    fn run_engine(&mut self, heap: &Heap, tables: &RemotingTables, alias: bool) {
        self.prepare(heap.slot_upper_bound(), tables);
        self.run_tarjan(heap);
        self.mark_root_components(heap);
        self.propagate_reach(heap, alias);
        self.condensation_cached = true;
    }

    /// Dispatch between the reference BFS and the (aliased) engine from
    /// O(1) graph statistics, then summarize. Output is exactly equal to
    /// both on every input; only the cost differs. See
    /// [`SccEngine::last_dispatch`] for what was decided and why.
    ///
    /// The model compares traversal upper bounds in visited-field units:
    /// the reference pays one BFS per scion plus the root closure, each
    /// bounded by the whole graph (V + E); the engine pays ~three linear
    /// passes (Tarjan, root marking, propagation) plus a per-scion
    /// W/64-word bitset decode. Small scion counts therefore go to the
    /// reference — exactly the regime where per-scion traversal is
    /// provably cheap — and everything else goes to the engine, whose
    /// aliased propagation no longer loses on disjoint chains.
    pub fn summarize_adaptive(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
    ) -> SummarizedGraph {
        match self.choose_path(heap, tables) {
            SummarizePath::Reference => {
                self.condensation_cached = false;
                crate::summary::summarize(heap, tables, version, taken_at)
            }
            SummarizePath::Engine => self.summarize_condensed(heap, tables, version, taken_at),
        }
    }

    /// Pick the cheaper implementation for the current graph shape and
    /// record the decision in [`SccEngine::last_dispatch`].
    fn choose_path(&mut self, heap: &Heap, tables: &RemotingTables) -> SummarizePath {
        let scions = tables.scion_count();
        let stub_width = tables.stub_count();
        let stats = heap.stats();
        let graph = stats.live_objects as u64 + stats.ref_fields + 1;
        let reference_cost = (scions as u64 + 1).saturating_mul(graph);
        let engine_cost = 3u64.saturating_mul(graph)
            + (scions as u64 + 1).saturating_mul(stub_width as u64 / 64 + 1);
        let path = if reference_cost <= engine_cost {
            SummarizePath::Reference
        } else {
            SummarizePath::Engine
        };
        self.dispatch = DispatchStats {
            path,
            scions,
            stub_width,
            live_objects: stats.live_objects,
            ref_fields: stats.ref_fields,
            inherited_components: 0,
            unioned_components: 0,
        };
        path
    }

    /// The decision and statistics of the most recent
    /// [`SccEngine::summarize_adaptive`] call (component counters are
    /// also updated by direct engine runs).
    pub fn last_dispatch(&self) -> DispatchStats {
        self.dispatch
    }

    /// [`SccEngine::summarize`] bracketed by
    /// [`acdgc_obs::Phase::SummarizeEngine`] start/end events and its
    /// duration histogram.
    pub fn summarize_observed(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
        obs: &mut acdgc_obs::ProcTrace,
    ) -> SummarizedGraph {
        let started = obs.begin(taken_at, acdgc_obs::Phase::SummarizeEngine);
        let summary = self.summarize(heap, tables, version, taken_at);
        obs.end(taken_at, acdgc_obs::Phase::SummarizeEngine, started);
        summary
    }

    /// [`SccEngine::summarize_adaptive`] bracketed by the phase matching
    /// the path actually taken ([`acdgc_obs::Phase::SummarizeReference`]
    /// or [`acdgc_obs::Phase::SummarizeEngine`]), so traces attribute the
    /// cost to the implementation that paid it.
    pub fn summarize_adaptive_observed(
        &mut self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
        obs: &mut acdgc_obs::ProcTrace,
    ) -> SummarizedGraph {
        let path = self.choose_path(heap, tables);
        let phase = match path {
            SummarizePath::Reference => acdgc_obs::Phase::SummarizeReference,
            SummarizePath::Engine => acdgc_obs::Phase::SummarizeEngine,
        };
        let started = obs.begin(taken_at, phase);
        let summary = match path {
            SummarizePath::Reference => {
                self.condensation_cached = false;
                crate::summary::summarize(heap, tables, version, taken_at)
            }
            SummarizePath::Engine => self.summarize_condensed(heap, tables, version, taken_at),
        };
        obs.end(taken_at, phase, started);
        summary
    }

    /// Reachable table stubs cached for the object in `slot` by the last
    /// engine-path run, decoded in ascending `RefId` order and filtered
    /// against the *current* stub table. `None` when no condensation is
    /// cached or the slot was not part of it (e.g. allocated since) —
    /// callers must fall back to a traversal. Only valid while the heap
    /// graph is unchanged since that run: stub additions always come with
    /// a holder edge (a graph change), so filtering handles removals and
    /// the caller's dirty tracking handles everything else.
    pub fn cached_stubs_from(&self, slot: Slot, tables: &RemotingTables) -> Option<Vec<RefId>> {
        if !self.condensation_cached {
            return None;
        }
        let c = *self.comp_of.get(slot as usize)?;
        if c == UNVISITED {
            return None;
        }
        let set = &self.pool[self.reach_of[c as usize] as usize];
        Some(
            set.iter()
                .map(|bit| self.stub_ids[bit])
                .filter(|r| tables.stub(*r).is_some())
                .collect(),
        )
    }

    /// Reset all scratch (keeping allocations) and index the stub table.
    fn prepare(&mut self, n: usize, tables: &RemotingTables) {
        self.dfs_num.clear();
        self.dfs_num.resize(n, UNVISITED);
        self.low.clear();
        self.low.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.comp_of.clear();
        self.comp_of.resize(n, UNVISITED);
        self.stack.clear();
        self.frames.clear();
        self.members.clear();
        self.comp_end.clear();
        self.comp_root.clear();
        self.root_stub_bits.clear();

        self.stub_ids.clear();
        self.stub_ids.extend(tables.stubs().map(|s| s.ref_id));
        // Ascending-RefId bit assignment makes bitset decoding emit the
        // sorted stub lists the reference summarizer produces.
        self.stub_ids.sort_unstable();
        self.stub_bit.clear();
        for (i, &r) in self.stub_ids.iter().enumerate() {
            self.stub_bit.insert(r, i as u32);
        }
    }

    #[inline]
    fn begin_visit(&mut self, v: Slot, counter: &mut u32) {
        let vi = v as usize;
        self.dfs_num[vi] = *counter;
        self.low[vi] = *counter;
        *counter += 1;
        self.stack.push(v);
        self.on_stack[vi] = true;
    }

    /// Iterative Tarjan over the occupied slots. Components are emitted
    /// callees-first: every cross-component edge lands in a component with
    /// a smaller emission index.
    fn run_tarjan(&mut self, heap: &Heap) {
        let n = self.dfs_num.len();
        let mut counter: u32 = 0;
        for start in 0..n {
            let start_slot = start as Slot;
            if self.dfs_num[start] != UNVISITED || heap.get_slot(start_slot).is_none() {
                continue;
            }
            self.begin_visit(start_slot, &mut counter);
            self.frames.push((start_slot, 0));
            while let Some(&(v, cursor)) = self.frames.last() {
                let vi = v as usize;
                let refs = &heap.get_slot(v).expect("visited slot occupied").refs;
                let mut i = cursor as usize;
                let mut descended = false;
                while i < refs.len() {
                    if let HeapRef::Local(w) = refs[i] {
                        if heap.get_slot(w).is_some() {
                            let wi = w as usize;
                            if self.dfs_num[wi] == UNVISITED {
                                self.frames.last_mut().expect("frame exists").1 = i as u32 + 1;
                                self.begin_visit(w, &mut counter);
                                self.frames.push((w, 0));
                                descended = true;
                                break;
                            }
                            if self.on_stack[wi] {
                                self.low[vi] = self.low[vi].min(self.dfs_num[wi]);
                            }
                        }
                    }
                    i += 1;
                }
                if descended {
                    continue;
                }
                self.frames.pop();
                if self.low[vi] == self.dfs_num[vi] {
                    let c = self.comp_end.len() as u32;
                    loop {
                        let w = self.stack.pop().expect("tarjan stack nonempty");
                        self.on_stack[w as usize] = false;
                        self.comp_of[w as usize] = c;
                        self.members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    self.comp_end.push(self.members.len() as u32);
                }
                if let Some(&(parent, _)) = self.frames.last() {
                    let pi = parent as usize;
                    self.low[pi] = self.low[pi].min(self.low[vi]);
                }
            }
        }
    }

    #[inline]
    fn comp_range(&self, c: usize) -> std::ops::Range<usize> {
        let start = if c == 0 {
            0
        } else {
            self.comp_end[c - 1] as usize
        };
        start..self.comp_end[c] as usize
    }

    /// Forward reachability from local roots over the condensation, plus
    /// the `Local.Reach` stub bits (stubs held directly by root-reachable
    /// objects). Descending emission order visits predecessors first.
    fn mark_root_components(&mut self, heap: &Heap) {
        let num = self.comp_end.len();
        self.comp_root.resize(num, false);
        for slot in heap.roots() {
            if heap.get_slot(slot).is_some() {
                self.comp_root[self.comp_of[slot as usize] as usize] = true;
            }
        }
        for c in (0..num).rev() {
            if !self.comp_root[c] {
                continue;
            }
            for mi in self.comp_range(c) {
                let v = self.members[mi];
                let refs = &heap.get_slot(v).expect("member slot occupied").refs;
                for &field in refs {
                    match field {
                        HeapRef::Local(w) => {
                            if heap.get_slot(w).is_some() {
                                self.comp_root[self.comp_of[w as usize] as usize] = true;
                            }
                        }
                        HeapRef::Remote(r) => {
                            if let Some(&bit) = self.stub_bit.get(&r) {
                                self.root_stub_bits.insert(bit as usize);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Bottom-up reachable-stub propagation: ascending emission order is
    /// reverse topological order, so every successor component's set is
    /// final when it is unioned in. Sets live in a pool addressed through
    /// `reach_of`; with `alias` on, a component holding no stubs directly
    /// and seeing at most one distinct successor component takes its
    /// successor's pool slot instead of materializing a set — the chains
    /// that dominate disjoint scion topologies then cost O(1) per
    /// component instead of O(W/64).
    fn propagate_reach(&mut self, heap: &Heap, alias: bool) {
        let num = self.comp_end.len();
        self.reach_of.clear();
        if self.pool.is_empty() {
            self.pool.push(BitSet::default());
        }
        self.pool[EMPTY_SLOT as usize].clear();
        self.pool_len = 1;
        let mut inherited = 0usize;
        let mut unioned = 0usize;
        for c in 0..num {
            self.succ_scratch.clear();
            self.direct_scratch.clear();
            for mi in self.comp_range(c) {
                let v = self.members[mi];
                let refs = &heap.get_slot(v).expect("member slot occupied").refs;
                for &field in refs {
                    match field {
                        HeapRef::Local(w) => {
                            if heap.get_slot(w).is_some() {
                                let cw = self.comp_of[w as usize];
                                if cw as usize != c {
                                    debug_assert!(
                                        (cw as usize) < c,
                                        "tarjan emission order violated"
                                    );
                                    self.succ_scratch.push(cw);
                                }
                            }
                        }
                        HeapRef::Remote(r) => {
                            if let Some(&bit) = self.stub_bit.get(&r) {
                                self.direct_scratch.push(bit);
                            }
                        }
                    }
                }
            }
            self.succ_scratch.sort_unstable();
            self.succ_scratch.dedup();
            let slot = if alias && self.direct_scratch.is_empty() && self.succ_scratch.len() <= 1 {
                inherited += 1;
                match self.succ_scratch.first() {
                    Some(&cw) => self.reach_of[cw as usize],
                    None => EMPTY_SLOT,
                }
            } else {
                unioned += 1;
                if self.pool_len == self.pool.len() {
                    self.pool.push(BitSet::default());
                }
                let s = self.pool_len;
                self.pool_len += 1;
                let (finished, rest) = self.pool.split_at_mut(s);
                let current = &mut rest[0];
                current.clear();
                for &bit in &self.direct_scratch {
                    current.insert(bit as usize);
                }
                for &cw in &self.succ_scratch {
                    let src = self.reach_of[cw as usize] as usize;
                    debug_assert!(src < s, "successor slot allocated after its reader");
                    current.union_with(&finished[src]);
                }
                s as u32
            };
            self.reach_of.push(slot);
        }
        self.dispatch.inherited_components = inherited;
        self.dispatch.unioned_components = unioned;
    }

    /// Decode the per-component facts into the summary form.
    fn build_summary(
        &self,
        heap: &Heap,
        tables: &RemotingTables,
        version: u64,
        taken_at: SimTime,
    ) -> SummarizedGraph {
        let mut scions: FxHashMap<RefId, ScionSummary> = FxHashMap::default();
        let mut scions_to: FxHashMap<RefId, Vec<RefId>> = FxHashMap::default();
        for scion in tables.scions() {
            let slot = scion.target.slot;
            let (stubs_from, target_locally_reachable) = if heap.get_slot(slot).is_some() {
                let c = self.comp_of[slot as usize] as usize;
                let mut from = Vec::new();
                for bit in self.pool[self.reach_of[c] as usize].iter() {
                    let r = self.stub_ids[bit];
                    from.push(r);
                    scions_to.entry(r).or_default().push(scion.ref_id);
                }
                (from, self.comp_root[c])
            } else {
                // Dangling target (freed slot): nothing reachable, exactly
                // like the reference's empty closure from a dead seed.
                (Vec::new(), false)
            };
            scions.insert(
                scion.ref_id,
                ScionSummary {
                    ref_id: scion.ref_id,
                    from_proc: scion.from_proc,
                    ic: scion.ic,
                    stubs_from,
                    target_locally_reachable,
                    last_invoked: scion.last_invoked,
                    incarnation: scion.incarnation,
                    pinned: scion.pinned,
                },
            );
        }

        // A stub appears in the summary iff some scion reaches it or a
        // root-reachable object holds it; the bit universe is the stub
        // table, so no existence filtering is needed.
        for bit in self.root_stub_bits.iter() {
            scions_to.entry(self.stub_ids[bit]).or_default();
        }
        let mut stubs: FxHashMap<RefId, StubSummary> = FxHashMap::default();
        for (ref_id, mut to) in scions_to {
            let stub = tables.stub(ref_id).expect("bit universe is the stub table");
            to.sort_unstable();
            to.dedup();
            let bit = self.stub_bit[&ref_id] as usize;
            stubs.insert(
                ref_id,
                StubSummary {
                    ref_id,
                    target_proc: stub.target.proc,
                    ic: stub.ic,
                    scions_to: to,
                    local_reach: self.root_stub_bits.contains(bit),
                },
            );
        }

        SummarizedGraph {
            proc: heap.proc(),
            version,
            taken_at,
            scions,
            stubs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::summaries_equivalent;
    use crate::summary::summarize;
    use acdgc_model::{ObjId, ProcId};

    fn assert_matches_reference(heap: &Heap, tables: &RemotingTables) {
        let mut engine = SccEngine::new();
        let by_engine = engine.summarize(heap, tables, 7, SimTime(3));
        let by_reference = summarize(heap, tables, 7, SimTime(3));
        assert!(
            summaries_equivalent(&by_engine, &by_reference),
            "engine: {by_engine:?}\nreference: {by_reference:?}"
        );
        assert_eq!(by_engine.version, 7);
        assert_eq!(by_engine.taken_at, SimTime(3));
    }

    /// scion(r1) -> a -> b -> stub(r2); root -> c -> stub(r3).
    fn fixture() -> (Heap, RemotingTables) {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        let c = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        heap.add_ref(b, HeapRef::Remote(RefId(2))).unwrap();
        heap.add_ref(c, HeapRef::Remote(RefId(3))).unwrap();
        heap.add_root(c).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_stub(RefId(2), ObjId::new(ProcId(2), 0, 0), SimTime(0));
        tables.add_stub(RefId(3), ObjId::new(ProcId(3), 0, 0), SimTime(0));
        (heap, tables)
    }

    #[test]
    fn matches_reference_on_fixture() {
        let (heap, tables) = fixture();
        assert_matches_reference(&heap, &tables);
    }

    #[test]
    fn chain_summary_facts() {
        let (heap, tables) = fixture();
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(10));
        let scion = s.scion(RefId(1)).unwrap();
        assert_eq!(scion.stubs_from, vec![RefId(2)]);
        assert!(!scion.target_locally_reachable);
        assert_eq!(s.stub(RefId(2)).unwrap().scions_to, vec![RefId(1)]);
        assert!(!s.stub(RefId(2)).unwrap().local_reach);
        assert!(s.stub(RefId(3)).unwrap().local_reach);
        assert!(s.stub(RefId(3)).unwrap().scions_to.is_empty());
    }

    #[test]
    fn local_cycle_collapses_to_one_component() {
        // scion -> a <-> b -> stub; the cycle is one SCC, so both members
        // share one reachable-stub set.
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        heap.add_ref(b, HeapRef::Local(a.slot)).unwrap();
        heap.add_ref(b, HeapRef::Remote(RefId(5))).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_scion(RefId(2), b, ProcId(2), SimTime(0));
        tables.add_stub(RefId(5), ObjId::new(ProcId(3), 0, 0), SimTime(0));
        assert_matches_reference(&heap, &tables);
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert_eq!(s.scion(RefId(1)).unwrap().stubs_from, vec![RefId(5)]);
        assert_eq!(s.scion(RefId(2)).unwrap().stubs_from, vec![RefId(5)]);
        assert_eq!(
            s.stub(RefId(5)).unwrap().scions_to,
            vec![RefId(1), RefId(2)]
        );
    }

    #[test]
    fn shared_tail_and_root_overlap() {
        // Two scion chains converge on a shared tail holding two stubs;
        // a root also reaches one chain, flipping Local.Reach and
        // target_locally_reachable.
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        let tail = heap.alloc(1);
        let rooted = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(tail.slot)).unwrap();
        heap.add_ref(b, HeapRef::Local(tail.slot)).unwrap();
        heap.add_ref(tail, HeapRef::Remote(RefId(10))).unwrap();
        heap.add_ref(tail, HeapRef::Remote(RefId(11))).unwrap();
        heap.add_ref(rooted, HeapRef::Local(b.slot)).unwrap();
        heap.add_root(rooted).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_scion(RefId(2), b, ProcId(2), SimTime(0));
        tables.add_stub(RefId(10), ObjId::new(ProcId(3), 0, 0), SimTime(0));
        tables.add_stub(RefId(11), ObjId::new(ProcId(3), 1, 0), SimTime(0));
        assert_matches_reference(&heap, &tables);
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert!(!s.scion(RefId(1)).unwrap().target_locally_reachable);
        assert!(s.scion(RefId(2)).unwrap().target_locally_reachable);
        assert!(s.stub(RefId(10)).unwrap().local_reach);
        assert_eq!(
            s.scion(RefId(1)).unwrap().stubs_from,
            vec![RefId(10), RefId(11)]
        );
    }

    #[test]
    fn dangling_scion_target_is_empty() {
        let heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        // Scion whose target slot was never allocated (e.g. freed before
        // the snapshot): the reference seeds an empty closure from it.
        tables.add_scion(
            RefId(1),
            ObjId::new(ProcId(0), 99, 0),
            ProcId(1),
            SimTime(0),
        );
        assert_matches_reference(&heap, &tables);
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        let scion = s.scion(RefId(1)).unwrap();
        assert!(scion.stubs_from.is_empty());
        assert!(!scion.target_locally_reachable);
    }

    #[test]
    fn heap_held_refs_without_table_stub_are_ignored() {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        // r9 is held in the heap but has no stub table entry (e.g. removed
        // by the monitor between edits): it must not surface anywhere.
        heap.add_ref(a, HeapRef::Remote(RefId(9))).unwrap();
        heap.add_root(a).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        assert_matches_reference(&heap, &tables);
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert!(s.stub(RefId(9)).is_none());
        assert!(s.scion(RefId(1)).unwrap().stubs_from.is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 200k-object chain: a recursive Tarjan would blow the stack.
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let n = 200_000;
        let ids: Vec<ObjId> = (0..n).map(|_| heap.alloc(1)).collect();
        for pair in ids.windows(2) {
            heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
        }
        heap.add_ref(ids[n - 1], HeapRef::Remote(RefId(2))).unwrap();
        tables.add_scion(RefId(1), ids[0], ProcId(1), SimTime(0));
        tables.add_stub(RefId(2), ObjId::new(ProcId(1), 0, 0), SimTime(0));
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert_eq!(s.scion(RefId(1)).unwrap().stubs_from, vec![RefId(2)]);
    }

    #[test]
    fn engine_reuse_across_mutations_stays_exact() {
        let (mut heap, mut tables) = fixture();
        let mut engine = SccEngine::new();
        let first = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert!(summaries_equivalent(
            &first,
            &summarize(&heap, &tables, 1, SimTime(0))
        ));
        // Mutate: new rooted object adopting the scion chain, plus a new
        // stub, then re-run on the same engine (scratch reuse path).
        let d = heap.alloc(1);
        let a = heap.id_of_slot(0).unwrap();
        heap.add_ref(d, HeapRef::Local(a.slot)).unwrap();
        heap.add_ref(d, HeapRef::Remote(RefId(8))).unwrap();
        heap.add_root(d).unwrap();
        tables.add_stub(RefId(8), ObjId::new(ProcId(4), 0, 0), SimTime(1));
        let second = engine.summarize(&heap, &tables, 2, SimTime(2));
        assert!(summaries_equivalent(
            &second,
            &summarize(&heap, &tables, 2, SimTime(2))
        ));
        assert!(second.scion(RefId(1)).unwrap().target_locally_reachable);
        assert!(second.stub(RefId(2)).unwrap().local_reach);
    }

    #[test]
    fn empty_world() {
        let heap = Heap::new(ProcId(0));
        let tables = RemotingTables::new(ProcId(0));
        let mut engine = SccEngine::new();
        let s = engine.summarize(&heap, &tables, 1, SimTime(0));
        assert!(s.scions.is_empty());
        assert!(s.stubs.is_empty());
    }

    /// `chains` disjoint scion chains of `len` objects, each ending in a
    /// stub — the all-out-degree-≤1 shape the aliased propagation targets.
    fn chain_world(chains: usize, len: usize) -> (Heap, RemotingTables) {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        for chain in 0..chains {
            let ids: Vec<ObjId> = (0..len).map(|_| heap.alloc(1)).collect();
            for pair in ids.windows(2) {
                heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
            }
            let stub = RefId((chains + chain) as u64);
            tables.add_scion(RefId(chain as u64), ids[0], ProcId(1), SimTime(0));
            tables.add_stub(stub, ObjId::new(ProcId(1), chain as u32, 0), SimTime(0));
            heap.add_ref(*ids.last().unwrap(), HeapRef::Remote(stub))
                .unwrap();
        }
        (heap, tables)
    }

    #[test]
    fn aliased_propagation_matches_dense_and_inherits_chains() {
        let (heap, tables) = chain_world(8, 25);
        let mut dense = SccEngine::new();
        let mut aliased = SccEngine::new();
        let a = dense.summarize(&heap, &tables, 1, SimTime(0));
        let b = aliased.summarize_condensed(&heap, &tables, 1, SimTime(0));
        assert!(summaries_equivalent(&a, &b), "{a:?}\n{b:?}");
        assert!(summaries_equivalent(
            &b,
            &summarize(&heap, &tables, 1, SimTime(0))
        ));
        // Dense mode materializes one set per component; aliased mode
        // inherits every interior chain component (24 of 25 per chain).
        assert_eq!(dense.last_dispatch().inherited_components, 0);
        assert_eq!(dense.last_dispatch().unioned_components, 8 * 25);
        assert_eq!(aliased.last_dispatch().inherited_components, 8 * 24);
        assert_eq!(aliased.last_dispatch().unioned_components, 8);
    }

    #[test]
    fn adaptive_dispatch_follows_the_cost_model() {
        // Two scions over a long chain: (S+1)·graph is far below 3·graph,
        // so the per-scion reference walk is provably the cheaper bound.
        let (heap, tables) = chain_world(2, 200);
        let mut engine = SccEngine::new();
        let s = engine.summarize_adaptive(&heap, &tables, 1, SimTime(0));
        assert_eq!(engine.last_dispatch().path, SummarizePath::Reference);
        assert_eq!(engine.last_dispatch().scions, 2);
        assert!(summaries_equivalent(
            &s,
            &summarize(&heap, &tables, 1, SimTime(0))
        ));

        // Many scions: the reference bound is S·graph, the engine is ~3
        // linear passes.
        let (heap, tables) = chain_world(50, 8);
        let s = engine.summarize_adaptive(&heap, &tables, 1, SimTime(0));
        assert_eq!(engine.last_dispatch().path, SummarizePath::Engine);
        assert!(engine.last_dispatch().inherited_components > 0);
        assert!(summaries_equivalent(
            &s,
            &summarize(&heap, &tables, 1, SimTime(0))
        ));
    }

    #[test]
    fn cached_stubs_follow_engine_runs_and_reference_invalidates() {
        let (heap, tables) = chain_world(3, 4);
        let mut engine = SccEngine::new();
        assert_eq!(
            engine.cached_stubs_from(0, &tables),
            None,
            "no condensation before the first run"
        );
        engine.summarize_condensed(&heap, &tables, 1, SimTime(0));
        // Chain 0 starts at slot 0 and reaches exactly its own stub.
        assert_eq!(
            engine.cached_stubs_from(0, &tables),
            Some(vec![RefId(3)]),
            "chain head reaches its chain's stub"
        );
        assert_eq!(
            engine.cached_stubs_from(999, &tables),
            None,
            "slots outside the condensation force the caller's fallback"
        );
        // A reference-path dispatch leaves no valid condensation behind.
        let (small_heap, small_tables) = chain_world(2, 100);
        engine.summarize_adaptive(&small_heap, &small_tables, 2, SimTime(1));
        assert_eq!(engine.last_dispatch().path, SummarizePath::Reference);
        assert_eq!(engine.cached_stubs_from(0, &small_tables), None);
    }
}
