//! Snapshots and graph summarization (§2.2 and §4 of the paper).
//!
//! Each process periodically captures its object graph, independently of
//! every other process. Two artifacts come out of a capture:
//!
//! * a **serialized snapshot** ([`SnapshotData`] through a
//!   [`codec::SnapshotCodec`]) — the on-disk image whose cost the paper
//!   measures. Two codecs reproduce the paper's two serialization regimes:
//!   [`codec::VerboseCodec`] (self-describing, reflective, string-heavy —
//!   the Rotor serializer that took 26 s for 10 000 objects) and
//!   [`codec::CompactCodec`] (flat binary varints — the production .Net
//!   serializer, ~100× faster);
//! * a **summarized graph** ([`SummarizedGraph`]) — the only thing the
//!   cycle detector ever reads: per scion the set of stubs transitively
//!   reachable from it (`StubsFrom`), per stub the scions leading to it
//!   (`ScionsTo`) and its local reachability bit (`Local.Reach`), plus the
//!   invocation counters captured at snapshot time. References strictly
//!   internal to the process are summarized away.
//!
//! Two summarizer implementations produce that graph: [`summarize`], the
//! paper's per-scion breadth-first formulation (kept as the reference
//! oracle), and [`SccEngine`], a single-pass SCC-condensation engine that
//! computes identical output in O(V + E) graph work (see
//! [`engine`]). [`SccEngine::summarize_adaptive`] dispatches between the
//! two per snapshot from O(1) graph statistics (and runs the engine with
//! chain-aliased propagation), so neither implementation's worst case is
//! ever paid; [`incremental::IncrementalSummarizer`] layers dirty
//! tracking on top and resolves dirty scions from the engine's cached
//! condensation between full passes.

pub mod capture;
pub mod codec;
pub mod engine;
pub mod incremental;
pub mod summary;

pub use capture::{capture, capture_observed, SnapObject, SnapshotData};
pub use codec::{CodecError, CompactCodec, SnapshotCodec, VerboseCodec};
pub use engine::{DispatchStats, SccEngine, SummarizePath};
pub use incremental::{summaries_equivalent, DirtyTracker, IncrementalSummarizer};
pub use summary::{summarize, summarize_observed, ScionSummary, StubSummary, SummarizedGraph};
