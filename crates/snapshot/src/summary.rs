//! Graph summarization: the DCDA's view of a process.
//!
//! "This summarization transforms a snapshot of an application graph into a
//! set of scions and stubs, with their corresponding associations" (§3).
//! The traversal is breadth-first, as in the paper, and runs once from the
//! roots plus once per scion; internal references disappear entirely.

use acdgc_heap::lgc::closure;
use acdgc_heap::Heap;
use acdgc_model::{ProcId, RefId, SimTime};
use acdgc_remoting::RemotingTables;
use rustc_hash::FxHashMap;

/// Summary of one scion (incoming remote reference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScionSummary {
    pub ref_id: RefId,
    /// Process holding the matching stub.
    pub from_proc: ProcId,
    /// Invocation counter captured at snapshot time.
    pub ic: u64,
    /// Stubs (in this process) transitively reachable from the scion's
    /// target object — the paper's `StubsFrom`. Sorted for determinism.
    pub stubs_from: Vec<RefId>,
    /// Whether the scion's target is reachable from this process's local
    /// roots; such scions are never cycle candidates.
    pub target_locally_reachable: bool,
    /// Last invocation received through the scion before the snapshot;
    /// drives the candidate-age heuristic.
    pub last_invoked: SimTime,
    /// Scion incarnation under its reference id (ABA guard for verdict
    /// deletions).
    pub incarnation: u32,
    /// Pin count captured at snapshot time. A pinned scion has an export
    /// or invocation in flight — it is mutator-active by definition and
    /// must not be treated as a cycle candidate.
    pub pinned: u32,
}

/// Summary of one stub (outgoing remote reference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StubSummary {
    pub ref_id: RefId,
    /// Process owning the target object (where the matching scion lives).
    pub target_proc: ProcId,
    /// Invocation counter captured at snapshot time.
    pub ic: u64,
    /// Scions (in this process) that transitively lead to this stub — the
    /// paper's `ScionsTo`. Sorted for determinism.
    pub scions_to: Vec<RefId>,
    /// The paper's `Local.Reach` bit: the stub is reachable from a local
    /// root, so any path through it is live and detection must not follow.
    pub local_reach: bool,
}

/// The summarized graph of one process at one instant: everything the
/// cycle detector is allowed to know about the process.
#[derive(Clone, Debug, Default)]
pub struct SummarizedGraph {
    pub proc: ProcId,
    /// Monotone per-process version; bumped on every summarization.
    pub version: u64,
    pub taken_at: SimTime,
    pub scions: FxHashMap<RefId, ScionSummary>,
    pub stubs: FxHashMap<RefId, StubSummary>,
}

impl SummarizedGraph {
    /// Empty summary (a process that has never snapshot).
    pub fn empty(proc: ProcId) -> Self {
        SummarizedGraph {
            proc,
            ..SummarizedGraph::default()
        }
    }

    pub fn scion(&self, r: RefId) -> Option<&ScionSummary> {
        self.scions.get(&r)
    }

    pub fn stub(&self, r: RefId) -> Option<&StubSummary> {
        self.stubs.get(&r)
    }
}

/// Summarize the current heap + remoting state of a process.
///
/// The result is equivalent to summarizing a serialized snapshot taken at
/// the same instant (the codecs round-trip [`crate::SnapshotData`]
/// losslessly); reading the live structures directly just avoids paying
/// serialization cost twice in the simulator.
pub fn summarize(
    heap: &Heap,
    tables: &RemotingTables,
    version: u64,
    taken_at: SimTime,
) -> SummarizedGraph {
    let root_closure = closure(heap, heap.roots());

    let mut scions: FxHashMap<RefId, ScionSummary> = FxHashMap::default();
    let mut scions_to: FxHashMap<RefId, Vec<RefId>> = FxHashMap::default();

    // One BFS per scion: StubsFrom, plus the inverted ScionsTo index.
    for scion in tables.scions() {
        let reach = closure(heap, [scion.target.slot]);
        let mut stubs_from: Vec<RefId> = reach
            .stubs
            .iter()
            .copied()
            .filter(|r| tables.stub(*r).is_some())
            .collect();
        stubs_from.sort_unstable();
        for &stub_ref in &stubs_from {
            scions_to.entry(stub_ref).or_default().push(scion.ref_id);
        }
        scions.insert(
            scion.ref_id,
            ScionSummary {
                ref_id: scion.ref_id,
                from_proc: scion.from_proc,
                ic: scion.ic,
                stubs_from,
                target_locally_reachable: root_closure.slots.contains(scion.target.slot as usize),
                last_invoked: scion.last_invoked,
                incarnation: scion.incarnation,
                pinned: scion.pinned,
            },
        );
    }

    // Stub summaries: every stub reachable from a root or from some scion.
    let mut stubs: FxHashMap<RefId, StubSummary> = FxHashMap::default();
    let interesting: Vec<RefId> = scions_to
        .keys()
        .copied()
        .chain(root_closure.stubs.iter().copied())
        .collect();
    for ref_id in interesting {
        if stubs.contains_key(&ref_id) {
            continue;
        }
        let Some(stub) = tables.stub(ref_id) else {
            continue;
        };
        let mut to = scions_to.remove(&ref_id).unwrap_or_default();
        to.sort_unstable();
        to.dedup();
        stubs.insert(
            ref_id,
            StubSummary {
                ref_id,
                target_proc: stub.target.proc,
                ic: stub.ic,
                scions_to: to,
                local_reach: root_closure.stubs.contains(&ref_id),
            },
        );
    }

    SummarizedGraph {
        proc: heap.proc(),
        version,
        taken_at,
        scions,
        stubs,
    }
}

/// [`summarize`] bracketed by [`acdgc_obs::Phase::SummarizeReference`]
/// start/end events and its duration histogram.
pub fn summarize_observed(
    heap: &Heap,
    tables: &RemotingTables,
    version: u64,
    taken_at: SimTime,
    obs: &mut acdgc_obs::ProcTrace,
) -> SummarizedGraph {
    let started = obs.begin(taken_at, acdgc_obs::Phase::SummarizeReference);
    let summary = summarize(heap, tables, version, taken_at);
    obs.end(taken_at, acdgc_obs::Phase::SummarizeReference, started);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_heap::HeapRef;
    use acdgc_model::ObjId;

    /// P0 heap: scion(r1) -> a -> b -> stub(r2); root -> c -> stub(r3).
    fn fixture() -> (Heap, RemotingTables) {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        let c = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        heap.add_ref(b, HeapRef::Remote(RefId(2))).unwrap();
        heap.add_ref(c, HeapRef::Remote(RefId(3))).unwrap();
        heap.add_root(c).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_stub(RefId(2), ObjId::new(ProcId(2), 0, 0), SimTime(0));
        tables.add_stub(RefId(3), ObjId::new(ProcId(3), 0, 0), SimTime(0));
        (heap, tables)
    }

    #[test]
    fn stubs_from_follows_local_chain() {
        let (heap, tables) = fixture();
        let s = summarize(&heap, &tables, 1, SimTime(10));
        let scion = s.scion(RefId(1)).unwrap();
        assert_eq!(scion.stubs_from, vec![RefId(2)]);
        assert!(!scion.target_locally_reachable);
        assert_eq!(s.version, 1);
        assert_eq!(s.taken_at, SimTime(10));
    }

    #[test]
    fn scions_to_is_inverse_of_stubs_from() {
        let (heap, tables) = fixture();
        let s = summarize(&heap, &tables, 1, SimTime(0));
        let stub = s.stub(RefId(2)).unwrap();
        assert_eq!(stub.scions_to, vec![RefId(1)]);
        assert!(!stub.local_reach);
    }

    #[test]
    fn root_reachable_stub_flagged() {
        let (heap, tables) = fixture();
        let s = summarize(&heap, &tables, 1, SimTime(0));
        let stub = s.stub(RefId(3)).unwrap();
        assert!(stub.local_reach);
        assert!(stub.scions_to.is_empty());
    }

    #[test]
    fn locally_reachable_scion_target_flagged() {
        let (mut heap, mut tables) = fixture();
        // Root c also points at the scion target a.
        let c = heap.id_of_slot(2).unwrap();
        let a = heap.id_of_slot(0).unwrap();
        heap.add_ref(c, HeapRef::Local(a.slot)).unwrap();
        tables.add_scion(RefId(9), a, ProcId(2), SimTime(0));
        let s = summarize(&heap, &tables, 1, SimTime(0));
        assert!(s.scion(RefId(9)).unwrap().target_locally_reachable);
        // And the stub reachable from a is now also root-reachable.
        assert!(s.stub(RefId(2)).unwrap().local_reach);
    }

    #[test]
    fn internal_references_are_summarized_away() {
        let (heap, tables) = fixture();
        let s = summarize(&heap, &tables, 1, SimTime(0));
        // The summary contains only scions and stubs, never objects: the
        // a->b edge is gone, only its consequence (r1 leads to r2) remains.
        assert_eq!(s.scions.len(), 1);
        assert_eq!(s.stubs.len(), 2);
    }

    #[test]
    fn multiple_scions_to_one_stub() {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        let shared = heap.alloc(1);
        heap.add_ref(a, HeapRef::Local(shared.slot)).unwrap();
        heap.add_ref(b, HeapRef::Local(shared.slot)).unwrap();
        heap.add_ref(shared, HeapRef::Remote(RefId(5))).unwrap();
        tables.add_scion(RefId(1), a, ProcId(1), SimTime(0));
        tables.add_scion(RefId(2), b, ProcId(2), SimTime(0));
        tables.add_stub(RefId(5), ObjId::new(ProcId(3), 0, 0), SimTime(0));
        let s = summarize(&heap, &tables, 1, SimTime(0));
        assert_eq!(
            s.stub(RefId(5)).unwrap().scions_to,
            vec![RefId(1), RefId(2)]
        );
        assert_eq!(s.scion(RefId(1)).unwrap().stubs_from, vec![RefId(5)]);
        assert_eq!(s.scion(RefId(2)).unwrap().stubs_from, vec![RefId(5)]);
    }

    #[test]
    fn captured_ics_reflect_table_state() {
        let (heap, mut tables) = fixture();
        tables
            .record_receive_through_scion(RefId(1), SimTime(5))
            .unwrap();
        tables.record_send_through_stub(RefId(2)).unwrap();
        tables.record_send_through_stub(RefId(2)).unwrap();
        let s = summarize(&heap, &tables, 2, SimTime(6));
        assert_eq!(s.scion(RefId(1)).unwrap().ic, 1);
        assert_eq!(s.scion(RefId(1)).unwrap().last_invoked, SimTime(5));
        assert_eq!(s.stub(RefId(2)).unwrap().ic, 2);
    }

    #[test]
    fn stub_unreachable_from_anywhere_is_omitted() {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        // A garbage object (no roots, no scions) holds the only reference
        // to stub r7: the summary must not mention r7.
        let dead = heap.alloc(1);
        heap.add_ref(dead, HeapRef::Remote(RefId(7))).unwrap();
        tables.add_stub(RefId(7), ObjId::new(ProcId(1), 0, 0), SimTime(0));
        let s = summarize(&heap, &tables, 1, SimTime(0));
        assert!(s.stub(RefId(7)).is_none());
    }

    #[test]
    fn empty_summary() {
        let s = SummarizedGraph::empty(ProcId(4));
        assert_eq!(s.proc, ProcId(4));
        assert_eq!(s.version, 0);
        assert!(s.scions.is_empty());
    }
}
