//! Property tests: both snapshot codecs round-trip every snapshot, and
//! summarizing a decoded snapshot is equivalent to summarizing the live
//! structures (the simulator's shortcut is sound).

use acdgc_heap::{Heap, HeapRef};
use acdgc_model::{ObjId, ProcId, RefId, SimTime};
use acdgc_remoting::RemotingTables;
use acdgc_snapshot::{
    capture, summaries_equivalent, summarize, CompactCodec, IncrementalSummarizer, SnapshotCodec,
    VerboseCodec,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct WorldRecipe {
    payloads: Vec<u32>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
    stubs: Vec<(usize, u16, u64)>,  // (holder, target proc, ic)
    scions: Vec<(usize, u16, u64)>, // (target, from proc, ic)
}

fn world_recipe() -> impl Strategy<Value = WorldRecipe> {
    (1usize..16).prop_flat_map(|objects| {
        (
            prop::collection::vec(0u32..6, objects..=objects),
            prop::collection::vec((0..objects, 0..objects), 0..32),
            prop::collection::vec(0..objects, 0..3),
            prop::collection::vec((0..objects, 1u16..4, 0u64..9), 0..6),
            prop::collection::vec((0..objects, 1u16..4, 0u64..9), 0..6),
        )
            .prop_map(|(payloads, edges, roots, stubs, scions)| WorldRecipe {
                payloads,
                edges,
                roots,
                stubs,
                scions,
            })
    })
}

fn build(recipe: &WorldRecipe) -> (Heap, RemotingTables) {
    let mut heap = Heap::new(ProcId(0));
    let mut tables = RemotingTables::new(ProcId(0));
    let ids: Vec<ObjId> = recipe.payloads.iter().map(|&p| heap.alloc(p)).collect();
    for &(f, t) in &recipe.edges {
        heap.add_ref(ids[f], HeapRef::Local(ids[t].slot)).unwrap();
    }
    for &r in &recipe.roots {
        heap.add_root(ids[r]).unwrap();
    }
    let mut next_ref = 0u64;
    for &(holder, proc, ic) in &recipe.stubs {
        let target = ObjId::new(ProcId(proc), next_ref as u32, 0);
        if tables.stub_for_target(target).is_some() {
            continue;
        }
        let r = RefId(next_ref);
        next_ref += 1;
        tables.add_stub(r, target, SimTime(0));
        for _ in 0..ic {
            tables.record_send_through_stub(r).unwrap();
        }
        heap.add_ref(ids[holder], HeapRef::Remote(r)).unwrap();
    }
    for &(target, proc, ic) in &recipe.scions {
        if tables.scion_for_source(ProcId(proc), ids[target]).is_some() {
            continue;
        }
        let r = RefId(next_ref);
        next_ref += 1;
        tables.add_scion(r, ids[target], ProcId(proc), SimTime(0));
        for i in 0..ic {
            tables.record_receive_through_scion(r, SimTime(i)).unwrap();
        }
    }
    (heap, tables)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn both_codecs_round_trip(recipe in world_recipe()) {
        let (heap, tables) = build(&recipe);
        let snap = capture(&heap, &tables, SimTime(17));
        let via_verbose = VerboseCodec.decode(&VerboseCodec.encode(&snap)).unwrap();
        prop_assert_eq!(&via_verbose, &snap);
        let via_compact = CompactCodec.decode(&CompactCodec.encode(&snap)).unwrap();
        prop_assert_eq!(&via_compact, &snap);
    }

    #[test]
    fn codecs_agree_through_each_other(recipe in world_recipe()) {
        // Decode one codec's image, re-encode with the other: stable.
        let (heap, tables) = build(&recipe);
        let snap = capture(&heap, &tables, SimTime(0));
        let verbose_image = VerboseCodec.encode(&snap);
        let decoded = VerboseCodec.decode(&verbose_image).unwrap();
        let compact_image = CompactCodec.encode(&decoded);
        let final_snap = CompactCodec.decode(&compact_image).unwrap();
        prop_assert_eq!(final_snap, snap);
    }

    /// The incremental summarizer with an all-dirty tracker equals the
    /// full summarizer on arbitrary worlds.
    #[test]
    fn incremental_first_pass_equals_full(recipe in world_recipe()) {
        let (heap, tables) = build(&recipe);
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        let i = inc.summarize(&heap, &tables, 1, SimTime(0));
        let f = summarize(&heap, &tables, 1, SimTime(0));
        prop_assert!(summaries_equivalent(&i, &f));
    }

    /// Clean re-summarization (no mutator events) equals the full
    /// summarizer on arbitrary worlds.
    #[test]
    fn incremental_clean_pass_equals_full(recipe in world_recipe()) {
        let (heap, tables) = build(&recipe);
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        let i = inc.summarize(&heap, &tables, 2, SimTime(1));
        let f = summarize(&heap, &tables, 2, SimTime(1));
        prop_assert!(summaries_equivalent(&i, &f));
    }

    /// Summaries computed from a decoded snapshot match summaries computed
    /// from the live structures: the DCDA sees the same world either way.
    #[test]
    fn summary_of_snapshot_equals_summary_of_live(recipe in world_recipe()) {
        let (heap, tables) = build(&recipe);
        let snap = capture(&heap, &tables, SimTime(3));
        let image = CompactCodec.encode(&snap);
        let decoded = CompactCodec.decode(&image).unwrap();
        // Rebuild heap+tables from the snapshot.
        let mut heap2 = Heap::new(decoded.proc);
        let mut slot_map = std::collections::HashMap::new();
        for o in &decoded.objects {
            let id = heap2.alloc(o.payload_words);
            slot_map.insert(o.slot, id);
        }
        for o in &decoded.objects {
            let from = slot_map[&o.slot];
            for r in &o.refs {
                match r {
                    HeapRef::Local(s) => {
                        let to = slot_map[s];
                        heap2.add_ref(from, HeapRef::Local(to.slot)).unwrap();
                    }
                    HeapRef::Remote(rr) => {
                        heap2.add_ref(from, HeapRef::Remote(*rr)).unwrap();
                    }
                }
            }
        }
        for s in &decoded.roots {
            heap2.add_root(slot_map[s]).unwrap();
        }
        let mut tables2 = RemotingTables::new(decoded.proc);
        for s in &decoded.stubs {
            tables2.add_stub(s.ref_id, s.target, SimTime(0));
            for _ in 0..s.ic {
                tables2.record_send_through_stub(s.ref_id).unwrap();
            }
        }
        for s in &decoded.scions {
            let target = slot_map[&s.target.slot];
            tables2.add_scion(s.ref_id, target, s.from_proc, SimTime(0));
            for _ in 0..s.ic {
                tables2.record_receive_through_scion(s.ref_id, SimTime(0)).unwrap();
            }
        }
        let live = summarize(&heap, &tables, 1, SimTime(0));
        let rebuilt = summarize(&heap2, &tables2, 1, SimTime(0));
        // Compare the reachability structure (ICs differ in last_invoked
        // times, which capture() does not carry for stubs).
        prop_assert_eq!(live.scions.len(), rebuilt.scions.len());
        prop_assert_eq!(live.stubs.len(), rebuilt.stubs.len());
        for (r, s) in &live.scions {
            let o = &rebuilt.scions[r];
            prop_assert_eq!(&s.stubs_from, &o.stubs_from);
            prop_assert_eq!(s.target_locally_reachable, o.target_locally_reachable);
            prop_assert_eq!(s.ic, o.ic);
        }
        for (r, s) in &live.stubs {
            let o = &rebuilt.stubs[r];
            prop_assert_eq!(&s.scions_to, &o.scions_to);
            prop_assert_eq!(s.local_reach, o.local_reach);
            prop_assert_eq!(s.ic, o.ic);
        }
    }
}
