//! Property tests: the single-pass SCC engine, the reference per-scion
//! summarizer and the incremental summarizer all agree — on arbitrary
//! static worlds and across arbitrary mutation sequences (edge edits,
//! root flips, local collections, stub/scion churn, scion re-incarnation,
//! invocations). The engine's output is checked for *exact* equality with
//! the reference (same maps, same sorted vectors, same incarnation and
//! `local_reach` bits), not just semantic equivalence.

use acdgc_heap::{lgc, Heap, HeapRef};
use acdgc_model::{ObjId, ProcId, RefId, SimTime};
use acdgc_remoting::RemotingTables;
use acdgc_snapshot::{
    summaries_equivalent, summarize, IncrementalSummarizer, SccEngine, SummarizePath,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

#[derive(Debug, Clone)]
struct WorldRecipe {
    payloads: Vec<u32>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
    stubs: Vec<(usize, u16)>,  // (holder, target proc)
    scions: Vec<(usize, u16)>, // (target, from proc)
}

fn world_recipe() -> impl Strategy<Value = WorldRecipe> {
    (1usize..12).prop_flat_map(|objects| {
        (
            prop::collection::vec(0u32..4, objects..=objects),
            prop::collection::vec((0..objects, 0..objects), 0..28),
            prop::collection::vec(0..objects, 0..4),
            prop::collection::vec((0..objects, 1u16..4), 0..6),
            prop::collection::vec((0..objects, 1u16..4), 0..6),
        )
            .prop_map(|(payloads, edges, roots, stubs, scions)| WorldRecipe {
                payloads,
                edges,
                roots,
                stubs,
                scions,
            })
    })
}

struct World {
    heap: Heap,
    tables: RemotingTables,
    next_ref: u64,
    clock: u64,
}

fn build(recipe: &WorldRecipe) -> World {
    let mut heap = Heap::new(ProcId(0));
    let mut tables = RemotingTables::new(ProcId(0));
    let ids: Vec<ObjId> = recipe.payloads.iter().map(|&p| heap.alloc(p)).collect();
    for &(f, t) in &recipe.edges {
        heap.add_ref(ids[f], HeapRef::Local(ids[t].slot)).unwrap();
    }
    for &r in &recipe.roots {
        heap.add_root(ids[r]).unwrap();
    }
    let mut next_ref = 0u64;
    for &(holder, proc) in &recipe.stubs {
        let r = RefId(next_ref);
        next_ref += 1;
        tables.add_stub(r, ObjId::new(ProcId(proc), r.0 as u32, 0), SimTime(0));
        heap.add_ref(ids[holder], HeapRef::Remote(r)).unwrap();
    }
    for &(target, proc) in &recipe.scions {
        if tables.scion_for_source(ProcId(proc), ids[target]).is_none() {
            let r = RefId(next_ref);
            next_ref += 1;
            tables.add_scion(r, ids[target], ProcId(proc), SimTime(0));
        }
    }
    World {
        heap,
        tables,
        next_ref,
        clock: 1,
    }
}

/// Apply one mutation, mirroring the dirty-tracking hooks the process
/// runtime would fire for it.
fn apply(world: &mut World, inc: &mut IncrementalSummarizer, op: (u8, usize, usize)) {
    let (kind, a, b) = op;
    let n = world.heap.slot_upper_bound().max(1);
    let sa = (a % n) as u32;
    let now = SimTime(world.clock);
    match kind % 9 {
        0 => {
            // Add a local edge.
            let to_slot = (b % n) as u32;
            if let (Some(from), Some(to)) =
                (world.heap.id_of_slot(sa), world.heap.id_of_slot(to_slot))
            {
                world.heap.add_ref(from, HeapRef::Local(to.slot)).unwrap();
                inc.tracker().graph_changed();
            }
        }
        1 => {
            // Remove one reference field.
            if let Some(from) = world.heap.id_of_slot(sa) {
                let refs = world.heap.get(from).unwrap().refs.clone();
                if !refs.is_empty() {
                    world.heap.remove_ref(from, refs[b % refs.len()]).unwrap();
                    inc.tracker().graph_changed();
                }
            }
        }
        2 => {
            if let Some(id) = world.heap.id_of_slot(sa) {
                world.heap.add_root(id).unwrap();
            }
        }
        3 => {
            if let Some(id) = world.heap.id_of_slot(sa) {
                world.heap.remove_root(id).unwrap();
            }
        }
        4 => {
            // Local collection: frees slots and kills orphaned stubs.
            let targets = world.tables.scion_target_slots();
            let result = lgc::collect(&mut world.heap, &targets);
            world.tables.remove_dead_stubs(&result.sweep.dead_stubs);
            inc.tracker().graph_changed();
        }
        5 => {
            // New stub held by an existing object.
            if let Some(holder) = world.heap.id_of_slot(sa) {
                let r = RefId(world.next_ref);
                world.next_ref += 1;
                world.tables.add_stub(
                    r,
                    ObjId::new(ProcId(1 + (b % 3) as u16), r.0 as u32, 0),
                    now,
                );
                world.heap.add_ref(holder, HeapRef::Remote(r)).unwrap();
                inc.tracker().graph_changed();
            }
        }
        6 => {
            // New scion protecting an existing object.
            if let Some(target) = world.heap.id_of_slot(sa) {
                let from = ProcId(1 + (b % 3) as u16);
                if world.tables.scion_for_source(from, target).is_none() {
                    let r = RefId(world.next_ref);
                    world.next_ref += 1;
                    world.tables.add_scion(r, target, from, now);
                    inc.tracker().scion_created(r);
                }
            }
        }
        7 => {
            // Remove a scion; sometimes re-establish it under the same
            // RefId, which must bump the incarnation everywhere.
            let ids: Vec<RefId> = world.tables.scions().map(|s| s.ref_id).collect();
            if !ids.is_empty() {
                let r = ids[a % ids.len()];
                let old = world.tables.remove_scion(r).unwrap();
                if b % 2 == 0 {
                    if let Some(target) = world.heap.id_of_slot(old.target.slot) {
                        world.tables.add_scion(r, target, old.from_proc, now);
                        inc.tracker().scion_created(r);
                    }
                }
            }
        }
        _ => {
            // Invocation arriving through a scion.
            let ids: Vec<RefId> = world.tables.scions().map(|s| s.ref_id).collect();
            if !ids.is_empty() {
                let r = ids[a % ids.len()];
                world.tables.record_receive_through_scion(r, now).unwrap();
                inc.tracker().scion_invoked(r);
            }
        }
    }
    world.clock += 1;
}

/// The three summarizers agree on the current world state; the engine is
/// held to exact output equality with the reference.
fn check(
    world: &World,
    engine: &mut SccEngine,
    inc: &mut IncrementalSummarizer,
    version: u64,
) -> Result<(), TestCaseError> {
    let t = SimTime(world.clock);
    let reference = summarize(&world.heap, &world.tables, version, t);
    let by_engine = engine.summarize(&world.heap, &world.tables, version, t);
    prop_assert_eq!(&by_engine.scions, &reference.scions);
    prop_assert_eq!(&by_engine.stubs, &reference.stubs);
    prop_assert_eq!(by_engine.proc, reference.proc);
    // The adaptive dispatcher must be exact whichever path it picks —
    // these small worlds mostly land on the reference side of the cost
    // model, and the reuse of `engine` right after a dense run also
    // exercises scratch/cache invalidation across the two entry points.
    let by_adaptive = engine.summarize_adaptive(&world.heap, &world.tables, version, t);
    prop_assert_eq!(&by_adaptive.scions, &reference.scions);
    prop_assert_eq!(&by_adaptive.stubs, &reference.stubs);
    let by_inc = inc.summarize(&world.heap, &world.tables, version, t);
    prop_assert!(
        summaries_equivalent(&by_inc, &reference),
        "incremental diverged:\n  inc: {:?}\n  ref: {:?}",
        by_inc,
        reference
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Static worlds: one-shot agreement of all three implementations.
    #[test]
    fn engine_matches_reference_on_static_worlds(recipe in world_recipe()) {
        let world = build(&recipe);
        let mut engine = SccEngine::new();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        check(&world, &mut engine, &mut inc, 1)?;
    }

    /// Mutation sequences: after every mutation the persistent engine
    /// (scratch reuse path) and the incremental summarizer (dirty-set
    /// path) both still match a from-scratch reference summarization.
    #[test]
    fn summarizers_agree_across_mutation_sequences(
        recipe in world_recipe(),
        ops in prop::collection::vec((0u8..9, 0usize..64, 0usize..64), 0..20),
    ) {
        let mut world = build(&recipe);
        let mut engine = SccEngine::new();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        let mut version = 1;
        check(&world, &mut engine, &mut inc, version)?;
        for op in ops {
            apply(&mut world, &mut inc, op);
            version += 1;
            check(&world, &mut engine, &mut inc, version)?;
        }
    }

    /// Worlds built to straddle the adaptive dispatcher's cost boundary:
    /// disjoint scion chains (the engine's aliasing sweet spot) plus a
    /// converging web (the reference's worst case), with the total scion
    /// count sweeping across the Reference/Engine switchover. Adaptive
    /// output must equal the reference exactly on both sides, and the
    /// decision must agree with the cost model in the regimes where the
    /// model's answer is forced: with S <= 2 scions the reference bound
    /// (S+1)·graph never exceeds the engine's 3·graph floor, and with
    /// S >= 4 the world is large enough that it always does.
    #[test]
    fn adaptive_exact_across_dispatch_boundary(
        chains in 0usize..24,
        len in 1usize..6,
        web in 0usize..12,
        root_hub in 0u8..2,
    ) {
        let mut heap = Heap::new(ProcId(0));
        let mut tables = RemotingTables::new(ProcId(0));
        let mut next_scion = 0u64;
        for _ in 0..chains {
            let ids: Vec<ObjId> = (0..len).map(|_| heap.alloc(1)).collect();
            for pair in ids.windows(2) {
                heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
            }
            let stub = RefId(1000 + next_scion);
            tables.add_scion(RefId(next_scion), ids[0], ProcId(1), SimTime(0));
            tables.add_stub(stub, ObjId::new(ProcId(1), stub.0 as u32, 0), SimTime(0));
            heap.add_ref(*ids.last().unwrap(), HeapRef::Remote(stub)).unwrap();
            next_scion += 1;
        }
        if web > 0 {
            let hub = heap.alloc(1);
            tables.add_stub(RefId(999), ObjId::new(ProcId(2), 0, 0), SimTime(0));
            heap.add_ref(hub, HeapRef::Remote(RefId(999))).unwrap();
            if root_hub == 1 {
                heap.add_root(hub).unwrap();
            }
            for _ in 0..web {
                let spoke = heap.alloc(1);
                heap.add_ref(spoke, HeapRef::Local(hub.slot)).unwrap();
                tables.add_scion(RefId(next_scion), spoke, ProcId(3), SimTime(0));
                next_scion += 1;
            }
        }
        let mut engine = SccEngine::new();
        let reference = summarize(&heap, &tables, 1, SimTime(0));
        let adaptive = engine.summarize_adaptive(&heap, &tables, 1, SimTime(0));
        prop_assert_eq!(&adaptive.scions, &reference.scions);
        prop_assert_eq!(&adaptive.stubs, &reference.stubs);
        let d = engine.last_dispatch();
        prop_assert_eq!(d.scions, chains + web);
        if chains + web <= 2 {
            prop_assert_eq!(d.path, SummarizePath::Reference);
        } else if chains + web >= 4 {
            prop_assert_eq!(d.path, SummarizePath::Engine);
        }
    }

    /// Clean re-summarizations (no mutator events between snapshots) keep
    /// all three implementations in agreement — the incremental
    /// summarizer's closure-reuse path against the engine's scratch-reuse
    /// path.
    #[test]
    fn repeated_clean_snapshots_stay_in_agreement(recipe in world_recipe()) {
        let world = build(&recipe);
        let mut engine = SccEngine::new();
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        for version in 1..4u64 {
            check(&world, &mut engine, &mut inc, version)?;
        }
    }
}
