//! Per-process object heap and local garbage collector (LGC).
//!
//! The paper runs on managed runtimes (Rotor/.Net); their object heaps and
//! tracing collectors are reproduced here as an explicit object graph:
//!
//! * [`Heap`] — a slot arena of [`ObjectRecord`]s whose fields are
//!   [`HeapRef`]s: either local slots or remote references (a `RefId`
//!   naming a stub owned by the remoting layer),
//! * local *roots* (the paper's global variables and thread stacks),
//! * [`lgc`] — a mark-sweep collector that traces from the roots *and* from
//!   the scion targets supplied by the reference-listing layer, exactly the
//!   cooperation §4 describes ("the reference-listing algorithm must
//!   prevent the LGC from reclaiming objects that ... are target of
//!   incoming remote references").
//!
//! The LGC also reports the facts the distributed layers need: which slots
//! are *root*-reachable (as opposed to merely scion-reachable) and which
//! stubs are held by live objects.

pub mod heap;
pub mod lgc;
pub mod object;

pub use heap::{Heap, HeapStats};
pub use lgc::{
    closure, closure_into, collect, collect_observed, mark, sweep, Closure, ClosureScratch,
    CollectResult, MarkResult, SweepResult,
};
pub use object::{HeapRef, ObjectRecord};
