//! The slot-arena heap of one simulated process.

use crate::object::{HeapRef, ObjectRecord};
use acdgc_model::{ModelError, ObjId, ProcId, RefId, Slot};
use rustc_hash::FxHashSet;

/// Aggregate heap statistics, maintained incrementally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    pub allocated_total: u64,
    pub freed_total: u64,
    pub live_objects: usize,
    /// Reference fields held by live objects (local and remote edges).
    /// Summarizer cost models read this in O(1) instead of walking the
    /// heap to estimate E.
    pub ref_fields: u64,
}

#[derive(Clone, Debug)]
struct SlotEntry {
    /// Incremented every time the slot is freed; allocation stamps the
    /// current value into the object so stale `ObjId`s are detectable.
    generation: u32,
    record: Option<ObjectRecord>,
}

/// Object heap of one process: slot arena with free-list reuse, a root set,
/// and a reference-edit API. All mutation goes through methods so that
/// structural invariants (valid slots, root membership) hold by
/// construction; the collectors in [`crate::lgc`] rely on them.
#[derive(Clone, Debug)]
pub struct Heap {
    proc: ProcId,
    slots: Vec<SlotEntry>,
    free: Vec<Slot>,
    roots: FxHashSet<Slot>,
    stats: HeapStats,
}

impl Heap {
    pub fn new(proc: ProcId) -> Self {
        Heap {
            proc,
            slots: Vec::new(),
            free: Vec::new(),
            roots: FxHashSet::default(),
            stats: HeapStats::default(),
        }
    }

    pub fn proc(&self) -> ProcId {
        self.proc
    }

    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Number of slots ever used (live + free); collectors size mark
    /// bitmaps from this.
    pub fn slot_upper_bound(&self) -> usize {
        self.slots.len()
    }

    /// Allocate an object with the given simulated payload size.
    pub fn alloc(&mut self, payload_words: u32) -> ObjId {
        self.stats.allocated_total += 1;
        self.stats.live_objects += 1;
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.slots[slot as usize];
            debug_assert!(entry.record.is_none(), "free list slot was occupied");
            entry.record = Some(ObjectRecord::new(entry.generation, payload_words));
            ObjId::new(self.proc, slot, entry.generation)
        } else {
            let slot = self.slots.len() as Slot;
            self.slots.push(SlotEntry {
                generation: 0,
                record: Some(ObjectRecord::new(0, payload_words)),
            });
            ObjId::new(self.proc, slot, 0)
        }
    }

    /// Free a slot directly. Normal reclamation goes through
    /// [`crate::lgc::sweep`]; this is the primitive it uses.
    pub(crate) fn free_slot(&mut self, slot: Slot) -> Option<ObjectRecord> {
        let entry = self.slots.get_mut(slot as usize)?;
        let record = entry.record.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.roots.remove(&slot);
        self.free.push(slot);
        self.stats.freed_total += 1;
        self.stats.live_objects -= 1;
        self.stats.ref_fields -= record.refs.len() as u64;
        Some(record)
    }

    fn check(&self, id: ObjId) -> Result<(), ModelError> {
        if id.proc != self.proc {
            return Err(ModelError::UnknownProcess(id.proc));
        }
        match self.slots.get(id.slot as usize) {
            Some(SlotEntry {
                generation,
                record: Some(_),
            }) if *generation == id.generation => Ok(()),
            _ => Err(ModelError::DanglingObject(id)),
        }
    }

    /// Borrow an object record by validated handle.
    pub fn get(&self, id: ObjId) -> Result<&ObjectRecord, ModelError> {
        self.check(id)?;
        Ok(self.slots[id.slot as usize].record.as_ref().unwrap())
    }

    pub fn get_mut(&mut self, id: ObjId) -> Result<&mut ObjectRecord, ModelError> {
        self.check(id)?;
        Ok(self.slots[id.slot as usize].record.as_mut().unwrap())
    }

    /// Borrow by raw slot (collector-internal; no generation check).
    pub fn get_slot(&self, slot: Slot) -> Option<&ObjectRecord> {
        self.slots.get(slot as usize)?.record.as_ref()
    }

    /// Whether `id` still names a live allocation.
    pub fn contains(&self, id: ObjId) -> bool {
        self.check(id).is_ok()
    }

    /// Current `ObjId` for an occupied slot, if any.
    pub fn id_of_slot(&self, slot: Slot) -> Option<ObjId> {
        let entry = self.slots.get(slot as usize)?;
        entry
            .record
            .as_ref()
            .map(|_| ObjId::new(self.proc, slot, entry.generation))
    }

    // --- roots -----------------------------------------------------------

    /// Make `id` a local root (global variable / stack reference).
    pub fn add_root(&mut self, id: ObjId) -> Result<(), ModelError> {
        self.check(id)?;
        self.roots.insert(id.slot);
        Ok(())
    }

    pub fn remove_root(&mut self, id: ObjId) -> Result<bool, ModelError> {
        self.check(id)?;
        Ok(self.roots.remove(&id.slot))
    }

    pub fn is_root(&self, id: ObjId) -> bool {
        self.check(id).is_ok() && self.roots.contains(&id.slot)
    }

    pub fn roots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.roots.iter().copied()
    }

    // --- reference edits --------------------------------------------------

    /// Add a reference field `from -> to`.
    pub fn add_ref(&mut self, from: ObjId, to: HeapRef) -> Result<(), ModelError> {
        if let HeapRef::Local(slot) = to {
            if self.get_slot(slot).is_none() {
                return Err(ModelError::BadSlot(slot));
            }
        }
        self.get_mut(from)?.refs.push(to);
        self.stats.ref_fields += 1;
        Ok(())
    }

    /// Remove one occurrence of `to` from `from`'s fields.
    pub fn remove_ref(&mut self, from: ObjId, to: HeapRef) -> Result<(), ModelError> {
        let record = self.get_mut(from)?;
        match record.refs.iter().position(|&r| r == to) {
            Some(pos) => {
                record.refs.swap_remove(pos);
                self.stats.ref_fields -= 1;
                Ok(())
            }
            None => Err(ModelError::MissingReference),
        }
    }

    /// Iterate `(slot, record)` over live objects.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &ObjectRecord)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.record.as_ref().map(|r| (i as Slot, r)))
    }

    /// All remote references held anywhere in the heap (live objects only).
    pub fn all_remote_refs(&self) -> FxHashSet<RefId> {
        self.iter().flat_map(|(_, rec)| rec.remote_refs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(ProcId(0))
    }

    #[test]
    fn alloc_and_get() {
        let mut h = heap();
        let a = h.alloc(4);
        assert_eq!(h.get(a).unwrap().payload_words, 4);
        assert_eq!(h.stats().live_objects, 1);
        assert!(h.contains(a));
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut h = heap();
        let a = h.alloc(1);
        assert!(h.free_slot(a.slot).is_some());
        let b = h.alloc(1);
        assert_eq!(a.slot, b.slot, "slot must be reused");
        assert_ne!(a.generation, b.generation);
        assert!(!h.contains(a), "stale handle must be rejected");
        assert!(h.contains(b));
        assert!(matches!(h.get(a), Err(ModelError::DanglingObject(_))));
    }

    #[test]
    fn roots_are_cleared_on_free() {
        let mut h = heap();
        let a = h.alloc(1);
        h.add_root(a).unwrap();
        assert!(h.is_root(a));
        h.free_slot(a.slot);
        let b = h.alloc(1);
        assert!(!h.is_root(b), "reused slot must not inherit rootness");
    }

    #[test]
    fn add_and_remove_refs() {
        let mut h = heap();
        let a = h.alloc(1);
        let b = h.alloc(1);
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.add_ref(a, HeapRef::Remote(RefId(7))).unwrap();
        assert_eq!(h.get(a).unwrap().refs.len(), 2);
        h.remove_ref(a, HeapRef::Local(b.slot)).unwrap();
        assert_eq!(
            h.remove_ref(a, HeapRef::Local(b.slot)),
            Err(ModelError::MissingReference)
        );
        assert_eq!(h.all_remote_refs().len(), 1);
    }

    #[test]
    fn add_ref_to_missing_slot_fails() {
        let mut h = heap();
        let a = h.alloc(1);
        assert_eq!(
            h.add_ref(a, HeapRef::Local(99)),
            Err(ModelError::BadSlot(99))
        );
    }

    #[test]
    fn duplicate_refs_allowed_and_removed_one_at_a_time() {
        let mut h = heap();
        let a = h.alloc(1);
        let b = h.alloc(1);
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.remove_ref(a, HeapRef::Local(b.slot)).unwrap();
        assert_eq!(h.get(a).unwrap().refs.len(), 1);
    }

    #[test]
    fn wrong_process_handle_rejected() {
        let mut h = heap();
        let a = h.alloc(1);
        let foreign = ObjId::new(ProcId(1), a.slot, a.generation);
        assert!(matches!(h.get(foreign), Err(ModelError::UnknownProcess(_))));
    }

    #[test]
    fn iter_skips_freed() {
        let mut h = heap();
        let a = h.alloc(1);
        let _b = h.alloc(1);
        h.free_slot(a.slot);
        assert_eq!(h.iter().count(), 1);
        assert_eq!(h.stats().freed_total, 1);
    }
}
