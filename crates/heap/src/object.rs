//! Object records and reference fields.

use acdgc_model::{RefId, Slot};

/// One reference field of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeapRef {
    /// Reference to another object in the same heap.
    Local(Slot),
    /// Reference to an object in another process, held through the stub
    /// identified by this [`RefId`]. The stub itself (target process and
    /// object, invocation counter) lives in the remoting layer.
    Remote(RefId),
}

impl HeapRef {
    pub fn as_local(self) -> Option<Slot> {
        match self {
            HeapRef::Local(s) => Some(s),
            HeapRef::Remote(_) => None,
        }
    }

    pub fn as_remote(self) -> Option<RefId> {
        match self {
            HeapRef::Remote(r) => Some(r),
            HeapRef::Local(_) => None,
        }
    }
}

/// An allocated object: its outgoing reference fields plus a simulated
/// payload size, used by the snapshot codecs to model serialization cost
/// (the paper's "dummy objects just holding a reference" have
/// `payload_words == 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Generation of the slot at allocation time; detects stale `ObjId`s.
    pub generation: u32,
    /// Outgoing references. Duplicates are allowed (an object may hold the
    /// same reference in several fields); removal drops one occurrence.
    pub refs: Vec<HeapRef>,
    /// Simulated payload size in 8-byte words.
    pub payload_words: u32,
}

impl ObjectRecord {
    pub fn new(generation: u32, payload_words: u32) -> Self {
        ObjectRecord {
            generation,
            refs: Vec::new(),
            payload_words,
        }
    }

    /// Iterate the remote references held by this object.
    pub fn remote_refs(&self) -> impl Iterator<Item = RefId> + '_ {
        self.refs.iter().filter_map(|r| r.as_remote())
    }

    /// Iterate the local references held by this object.
    pub fn local_refs(&self) -> impl Iterator<Item = Slot> + '_ {
        self.refs.iter().filter_map(|r| r.as_local())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_projections() {
        assert_eq!(HeapRef::Local(3).as_local(), Some(3));
        assert_eq!(HeapRef::Local(3).as_remote(), None);
        assert_eq!(HeapRef::Remote(RefId(9)).as_remote(), Some(RefId(9)));
        assert_eq!(HeapRef::Remote(RefId(9)).as_local(), None);
    }

    #[test]
    fn record_ref_iterators() {
        let mut rec = ObjectRecord::new(0, 1);
        rec.refs.push(HeapRef::Local(1));
        rec.refs.push(HeapRef::Remote(RefId(5)));
        rec.refs.push(HeapRef::Local(2));
        assert_eq!(rec.local_refs().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rec.remote_refs().collect::<Vec<_>>(), vec![RefId(5)]);
    }
}
