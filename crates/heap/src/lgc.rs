//! Mark-sweep local garbage collector.
//!
//! The LGC traces from two seed sets, as required by the reference-listing
//! algorithm (§4 of the paper):
//!
//! * the process's local **roots**, and
//! * the **scion targets** supplied by the remoting layer (objects kept
//!   alive solely because remote processes reference them).
//!
//! Besides reclaiming unreachable slots, it reports the reachability facts
//! consumed upstream: the root-reachable slot set (needed for the
//! summarizer's `Local.Reach` bits), the live stub set (the basis of
//! `NewSetStubs` messages) and the stubs that died with this collection.

use crate::heap::Heap;
use acdgc_model::{BitSet, ObjId, RefId, Slot};
use rustc_hash::FxHashSet;

/// Transitive closure over local edges from a seed set: the slots reached
/// and the remote references (stubs) encountered along the way.
#[derive(Clone, Debug, Default)]
pub struct Closure {
    pub slots: BitSet,
    pub stubs: FxHashSet<RefId>,
}

/// Reusable buffers for [`closure_into`]. Call sites that trace
/// repeatedly (periodic collections, every snapshot) keep one of these and
/// amortize the mark bitmap and worklist allocations to zero.
#[derive(Clone, Debug, Default)]
pub struct ClosureScratch {
    queue: Vec<Slot>,
}

/// Breadth-first closure from `seeds` following only local edges; remote
/// references are recorded, not followed (they are this process's stubs).
///
/// Breadth-first matches the paper's summarization choice ("It transverses
/// the graph, breadth-first, in order to minimize overhead").
pub fn closure(heap: &Heap, seeds: impl IntoIterator<Item = Slot>) -> Closure {
    let mut out = Closure {
        slots: BitSet::with_capacity(heap.slot_upper_bound()),
        stubs: FxHashSet::default(),
    };
    closure_into(heap, seeds, &mut out, &mut ClosureScratch::default());
    out
}

/// [`closure`] writing into caller-owned buffers: `out` is cleared and
/// refilled (its `BitSet` and hash-set allocations are kept), and the
/// breadth-first worklist lives in `scratch`.
pub fn closure_into(
    heap: &Heap,
    seeds: impl IntoIterator<Item = Slot>,
    out: &mut Closure,
    scratch: &mut ClosureScratch,
) {
    out.slots.clear();
    out.stubs.clear();
    let queue = &mut scratch.queue;
    queue.clear();
    for seed in seeds {
        if heap.get_slot(seed).is_some() && out.slots.insert(seed as usize) {
            queue.push(seed);
        }
    }
    let mut cursor = 0;
    while cursor < queue.len() {
        let slot = queue[cursor];
        cursor += 1;
        let record = heap.get_slot(slot).expect("queued slot must be occupied");
        for &field in &record.refs {
            match field {
                crate::object::HeapRef::Local(next) => {
                    if heap.get_slot(next).is_some() && out.slots.insert(next as usize) {
                        queue.push(next);
                    }
                }
                crate::object::HeapRef::Remote(ref_id) => {
                    out.stubs.insert(ref_id);
                }
            }
        }
    }
}

/// Result of the mark phase.
#[derive(Clone, Debug)]
pub struct MarkResult {
    /// Slots reachable from local roots only.
    pub root_reachable: BitSet,
    /// Slots reachable from roots or scion targets: the live set.
    pub live: BitSet,
    /// Stubs held by root-reachable objects (their `Local.Reach` is true).
    pub root_reachable_stubs: FxHashSet<RefId>,
    /// Stubs held by any live object: the `NewSetStubs` content.
    pub live_stubs: FxHashSet<RefId>,
}

impl MarkResult {
    /// Filter a stub-table iteration down to the stubs this mark did *not*
    /// reach — the ones the integration mode must remove (`VmIntegrated`)
    /// or condemn (`WeakRefMonitor`). Input order is preserved.
    pub fn dead_stubs_among(&self, stubs: impl IntoIterator<Item = RefId>) -> Vec<RefId> {
        stubs
            .into_iter()
            .filter(|r| !self.live_stubs.contains(r))
            .collect()
    }
}

/// Mark phase: trace from roots, then extend with the scion targets.
pub fn mark(heap: &Heap, scion_targets: &[Slot]) -> MarkResult {
    let from_roots = closure(heap, heap.roots());
    let full = closure(heap, heap.roots().chain(scion_targets.iter().copied()));
    MarkResult {
        root_reachable: from_roots.slots,
        live: full.slots,
        root_reachable_stubs: from_roots.stubs,
        live_stubs: full.stubs,
    }
}

/// Result of the sweep phase.
#[derive(Clone, Debug, Default)]
pub struct SweepResult {
    /// Handles of the reclaimed objects (their pre-free identity).
    pub freed: Vec<ObjId>,
    /// Remote references that were held *only* by reclaimed objects: the
    /// corresponding stubs are dead and must leave the remoting table.
    pub dead_stubs: Vec<RefId>,
}

/// Sweep: free every slot not in `live`, collecting the stubs that die.
pub fn sweep(heap: &mut Heap, live: &BitSet, live_stubs: &FxHashSet<RefId>) -> SweepResult {
    let mut result = SweepResult::default();
    let mut dead_stub_set: FxHashSet<RefId> = FxHashSet::default();
    let upper = heap.slot_upper_bound() as Slot;
    for slot in 0..upper {
        if live.contains(slot as usize) {
            continue;
        }
        if let Some(id) = heap.id_of_slot(slot) {
            let record = heap.free_slot(slot).expect("occupied slot");
            result.freed.push(id);
            for ref_id in record.remote_refs() {
                if !live_stubs.contains(&ref_id) {
                    dead_stub_set.insert(ref_id);
                }
            }
        }
    }
    result.dead_stubs = dead_stub_set.into_iter().collect();
    result.dead_stubs.sort_unstable();
    result
}

/// Result of a full collection.
#[derive(Clone, Debug)]
pub struct CollectResult {
    pub mark: MarkResult,
    pub sweep: SweepResult,
}

/// One full mark-sweep collection with the given scion targets.
pub fn collect(heap: &mut Heap, scion_targets: &[Slot]) -> CollectResult {
    let mark = mark(heap, scion_targets);
    let sweep = sweep(heap, &mark.live, &mark.live_stubs);
    CollectResult { mark, sweep }
}

/// [`collect`] bracketed by [`acdgc_obs::Phase::Lgc`] start/end events and
/// its duration histogram. With tracing disabled this is [`collect`] plus
/// one branch.
pub fn collect_observed(
    heap: &mut Heap,
    scion_targets: &[Slot],
    now: acdgc_model::SimTime,
    obs: &mut acdgc_obs::ProcTrace,
) -> CollectResult {
    let started = obs.begin(now, acdgc_obs::Phase::Lgc);
    let result = collect(heap, scion_targets);
    obs.end(now, acdgc_obs::Phase::Lgc, started);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::HeapRef;
    use acdgc_model::ProcId;

    fn chain(heap: &mut Heap, n: usize) -> Vec<ObjId> {
        let ids: Vec<ObjId> = (0..n).map(|_| heap.alloc(1)).collect();
        for w in ids.windows(2) {
            heap.add_ref(w[0], HeapRef::Local(w[1].slot)).unwrap();
        }
        ids
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let mut h = Heap::new(ProcId(0));
        let ids = chain(&mut h, 3);
        h.add_root(ids[0]).unwrap();
        let orphan = h.alloc(1);
        let result = collect(&mut h, &[]);
        assert_eq!(result.sweep.freed, vec![orphan]);
        assert_eq!(h.stats().live_objects, 3);
    }

    #[test]
    fn scion_targets_keep_objects_alive() {
        let mut h = Heap::new(ProcId(0));
        let ids = chain(&mut h, 3);
        // No roots at all: only the scion target protects the chain.
        let result = collect(&mut h, &[ids[0].slot]);
        assert!(result.sweep.freed.is_empty());
        assert!(result.mark.live.contains(ids[2].slot as usize));
        assert!(
            !result.mark.root_reachable.contains(ids[0].slot as usize),
            "scion-kept objects are not root-reachable"
        );
    }

    #[test]
    fn root_reachable_vs_live_distinction() {
        let mut h = Heap::new(ProcId(0));
        let rooted = h.alloc(1);
        h.add_root(rooted).unwrap();
        let scion_kept = h.alloc(1);
        let mark = mark(&h, &[scion_kept.slot]);
        assert!(mark.root_reachable.contains(rooted.slot as usize));
        assert!(!mark.root_reachable.contains(scion_kept.slot as usize));
        assert!(mark.live.contains(scion_kept.slot as usize));
    }

    #[test]
    fn dead_stub_reporting() {
        let mut h = Heap::new(ProcId(0));
        let holder = h.alloc(1);
        h.add_ref(holder, HeapRef::Remote(RefId(42))).unwrap();
        // holder is garbage: its stub must be reported dead.
        let result = collect(&mut h, &[]);
        assert_eq!(result.sweep.freed, vec![holder]);
        assert_eq!(result.sweep.dead_stubs, vec![RefId(42)]);
    }

    #[test]
    fn stub_shared_with_live_holder_survives() {
        let mut h = Heap::new(ProcId(0));
        let live = h.alloc(1);
        h.add_root(live).unwrap();
        let dead = h.alloc(1);
        h.add_ref(live, HeapRef::Remote(RefId(1))).unwrap();
        h.add_ref(dead, HeapRef::Remote(RefId(1))).unwrap();
        let result = collect(&mut h, &[]);
        assert_eq!(result.sweep.freed, vec![dead]);
        assert!(
            result.sweep.dead_stubs.is_empty(),
            "stub still held by a live object must not be reported dead"
        );
        assert!(result.mark.live_stubs.contains(&RefId(1)));
    }

    #[test]
    fn local_cycle_is_collected() {
        let mut h = Heap::new(ProcId(0));
        let a = h.alloc(1);
        let b = h.alloc(1);
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.add_ref(b, HeapRef::Local(a.slot)).unwrap();
        let result = collect(&mut h, &[]);
        assert_eq!(result.sweep.freed.len(), 2, "local cycles are collected");
    }

    #[test]
    fn closure_records_stubs_without_following() {
        let mut h = Heap::new(ProcId(0));
        let a = h.alloc(1);
        let b = h.alloc(1);
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.add_ref(b, HeapRef::Remote(RefId(5))).unwrap();
        let c = closure(&h, [a.slot]);
        assert_eq!(c.slots.count(), 2);
        assert!(c.stubs.contains(&RefId(5)));
    }

    #[test]
    fn closure_into_reuses_buffers_and_matches() {
        let mut h = Heap::new(ProcId(0));
        let ids = chain(&mut h, 4);
        h.add_ref(ids[3], HeapRef::Remote(RefId(9))).unwrap();
        let fresh = closure(&h, [ids[0].slot]);
        let mut out = Closure::default();
        let mut scratch = ClosureScratch::default();
        // Pre-dirty the buffers: closure_into must fully reset them.
        out.slots.insert(123);
        out.stubs.insert(RefId(77));
        closure_into(&h, [ids[0].slot], &mut out, &mut scratch);
        // Compare contents, not representation: the pre-dirtied bitset
        // keeps its larger backing allocation after the clear.
        assert_eq!(
            out.slots.iter().collect::<Vec<_>>(),
            fresh.slots.iter().collect::<Vec<_>>()
        );
        assert_eq!(out.stubs, fresh.stubs);
        // Second run over a different seed reuses the same allocations.
        closure_into(&h, [ids[2].slot], &mut out, &mut scratch);
        assert_eq!(out.slots.count(), 2);
    }

    #[test]
    fn closure_tolerates_dangling_seed() {
        let mut h = Heap::new(ProcId(0));
        let a = h.alloc(1);
        h.free_slot(a.slot);
        let c = closure(&h, [a.slot]);
        assert!(c.slots.is_empty());
    }

    #[test]
    fn self_referencing_root_survives() {
        let mut h = Heap::new(ProcId(0));
        let a = h.alloc(1);
        h.add_ref(a, HeapRef::Local(a.slot)).unwrap();
        h.add_root(a).unwrap();
        let result = collect(&mut h, &[]);
        assert!(result.sweep.freed.is_empty());
    }

    #[test]
    fn sweep_is_idempotent() {
        let mut h = Heap::new(ProcId(0));
        let _orphan = h.alloc(1);
        let first = collect(&mut h, &[]);
        assert_eq!(first.sweep.freed.len(), 1);
        let second = collect(&mut h, &[]);
        assert!(second.sweep.freed.is_empty());
    }

    #[test]
    fn diamond_graph_marked_once() {
        // a -> b, a -> c, b -> d, c -> d : closure must visit d once.
        let mut h = Heap::new(ProcId(0));
        let a = h.alloc(1);
        let b = h.alloc(1);
        let c = h.alloc(1);
        let d = h.alloc(1);
        h.add_ref(a, HeapRef::Local(b.slot)).unwrap();
        h.add_ref(a, HeapRef::Local(c.slot)).unwrap();
        h.add_ref(b, HeapRef::Local(d.slot)).unwrap();
        h.add_ref(c, HeapRef::Local(d.slot)).unwrap();
        let cl = closure(&h, [a.slot]);
        assert_eq!(cl.slots.count(), 4);
    }
}
