//! Property tests for the heap and the mark-sweep LGC.

use acdgc_heap::{collect, lgc, Heap, HeapRef};
use acdgc_model::{ObjId, ProcId, RefId, Slot};
use proptest::prelude::*;

/// A recipe for building a heap deterministically from proptest inputs.
#[derive(Debug, Clone)]
struct HeapRecipe {
    objects: usize,
    edges: Vec<(usize, usize)>,
    remote: Vec<(usize, u64)>,
    roots: Vec<usize>,
    scion_targets: Vec<usize>,
}

fn recipe() -> impl Strategy<Value = HeapRecipe> {
    (2usize..24).prop_flat_map(|objects| {
        (
            Just(objects),
            prop::collection::vec((0..objects, 0..objects), 0..48),
            prop::collection::vec((0..objects, 0u64..8), 0..12),
            prop::collection::vec(0..objects, 0..4),
            prop::collection::vec(0..objects, 0..4),
        )
            .prop_map(
                |(objects, edges, remote, roots, scion_targets)| HeapRecipe {
                    objects,
                    edges,
                    remote,
                    roots,
                    scion_targets,
                },
            )
    })
}

fn build(recipe: &HeapRecipe) -> (Heap, Vec<ObjId>, Vec<Slot>) {
    let mut heap = Heap::new(ProcId(0));
    let ids: Vec<ObjId> = (0..recipe.objects).map(|_| heap.alloc(1)).collect();
    for &(f, t) in &recipe.edges {
        heap.add_ref(ids[f], HeapRef::Local(ids[t].slot)).unwrap();
    }
    for &(f, r) in &recipe.remote {
        heap.add_ref(ids[f], HeapRef::Remote(RefId(r))).unwrap();
    }
    for &r in &recipe.roots {
        heap.add_root(ids[r]).unwrap();
    }
    let scions: Vec<Slot> = recipe.scion_targets.iter().map(|&i| ids[i].slot).collect();
    (heap, ids, scions)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// After a collection, exactly the closure of roots ∪ scion targets
    /// survives.
    #[test]
    fn collect_leaves_exactly_the_reachable(recipe in recipe()) {
        let (mut heap, ids, scions) = build(&recipe);
        let expected = lgc::closure(
            &heap,
            heap.roots().chain(scions.iter().copied()).collect::<Vec<_>>(),
        );
        let expected_count = expected.slots.count();
        let result = collect(&mut heap, &scions);
        prop_assert_eq!(heap.stats().live_objects, expected_count);
        for id in &ids {
            prop_assert_eq!(
                heap.contains(*id),
                expected.slots.contains(id.slot as usize),
                "object {:?}", id
            );
        }
        // Live stubs reported == remote refs of surviving objects.
        prop_assert_eq!(result.mark.live_stubs, heap.all_remote_refs());
    }

    /// Collection is idempotent: a second run frees nothing.
    #[test]
    fn collect_is_idempotent(recipe in recipe()) {
        let (mut heap, _ids, scions) = build(&recipe);
        collect(&mut heap, &scions);
        let second = collect(&mut heap, &scions);
        prop_assert!(second.sweep.freed.is_empty());
        prop_assert!(second.sweep.dead_stubs.is_empty());
    }

    /// Root-reachable is a subset of live, and root-reachable stubs a
    /// subset of live stubs.
    #[test]
    fn root_reachable_subset_of_live(recipe in recipe()) {
        let (heap, _ids, scions) = build(&recipe);
        let mark = lgc::mark(&heap, &scions);
        for slot in mark.root_reachable.iter() {
            prop_assert!(mark.live.contains(slot));
        }
        for r in &mark.root_reachable_stubs {
            prop_assert!(mark.live_stubs.contains(r));
        }
    }

    /// Slot reuse never resurrects a stale handle.
    #[test]
    fn stale_handles_stay_stale(recipe in recipe()) {
        let (mut heap, ids, scions) = build(&recipe);
        collect(&mut heap, &scions);
        let dead: Vec<ObjId> = ids.iter().copied().filter(|o| !heap.contains(*o)).collect();
        // Allocate as many new objects as were freed: slots get reused.
        for _ in 0..dead.len() {
            heap.alloc(1);
        }
        for d in dead {
            prop_assert!(!heap.contains(d), "stale {:?} resurrected", d);
        }
    }
}
