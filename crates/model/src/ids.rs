//! Identifiers for processes, objects, remote references and detections.
//!
//! The paper names objects by letter and enclosing process (`F_P2`). Here a
//! process is a [`ProcId`], an object is an [`ObjId`] (process + heap slot)
//! and a *remote reference* — one stub in the holding process paired with
//! one scion in the target process — is a [`RefId`]. The CDM algebra of §3
//! is keyed by `RefId`: a dependency contributed by a scion is resolved only
//! when that same reference's stub is traversed (see DESIGN.md for why this
//! is the sound generalization of the paper's object-name shorthand).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a simulated process (the paper's `P1`, `P2`, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Index into dense per-process arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A slot in a process heap. Slots are reused after reclamation; an
/// [`ObjId`] therefore also carries a generation to catch stale handles.
pub type Slot = u32;

/// Global name of an object: the owning process plus its heap slot and the
/// slot's generation at allocation time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId {
    /// The process that owns the object.
    pub proc: ProcId,
    /// Heap slot within the owning process.
    pub slot: Slot,
    /// The slot's generation at allocation time (stale-handle guard).
    pub generation: u32,
}

impl ObjId {
    /// Assemble an object id from its three components.
    pub fn new(proc: ProcId, slot: Slot, generation: u32) -> Self {
        ObjId {
            proc,
            slot,
            generation,
        }
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}g{}", self.proc, self.slot, self.generation)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identity of one inter-process reference: a stub (outgoing side) and a
/// scion (incoming side) share the same `RefId`.
///
/// `RefId`s are allocated from a single system-wide counter so they are
/// unique across all processes for the lifetime of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RefId(pub u64);

impl fmt::Debug for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identity of one cycle-detection attempt. Only used for tracing and
/// metrics: the algorithm itself keeps no per-detection state at processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DetectionId(pub u64);

impl fmt::Debug for DetectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for DetectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Monotone allocator for [`RefId`]s / [`DetectionId`]s.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next_ref: u64,
    next_detection: u64,
}

impl IdAllocator {
    /// Fresh allocator, both counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next [`RefId`].
    pub fn next_ref_id(&mut self) -> RefId {
        let id = RefId(self.next_ref);
        self.next_ref += 1;
        id
    }

    /// Allocate the next [`DetectionId`].
    pub fn next_detection_id(&mut self) -> DetectionId {
        let id = DetectionId(self.next_detection);
        self.next_detection += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_display() {
        assert_eq!(format!("{}", ProcId(3)), "P3");
        assert_eq!(format!("{:?}", ProcId(3)), "P3");
    }

    #[test]
    fn obj_id_carries_generation() {
        let a = ObjId::new(ProcId(1), 7, 0);
        let b = ObjId::new(ProcId(1), 7, 1);
        assert_ne!(a, b, "same slot, different generation must differ");
        assert_eq!(format!("{a}"), "P1#7g0");
    }

    #[test]
    fn id_allocator_is_monotone_and_distinct() {
        let mut alloc = IdAllocator::new();
        let r0 = alloc.next_ref_id();
        let r1 = alloc.next_ref_id();
        let d0 = alloc.next_detection_id();
        let d1 = alloc.next_detection_id();
        assert!(r0 < r1);
        assert!(d0 < d1);
        assert_eq!(r0, RefId(0));
        assert_eq!(d1, DetectionId(1));
    }

    #[test]
    fn ref_id_ordering_matches_counter() {
        let mut alloc = IdAllocator::new();
        let ids: Vec<RefId> = (0..100).map(|_| alloc.next_ref_id()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
