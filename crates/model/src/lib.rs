//! Foundation types for the ACDGC reproduction.
//!
//! This crate defines the vocabulary shared by every subsystem of the
//! reproduction of *Asynchronous Complete Distributed Garbage Collection*
//! (Veiga & Ferreira, IPPS 2005):
//!
//! * [`ProcId`], [`ObjId`], [`RefId`] — names for processes, objects and
//!   remote references (a remote reference is a stub/scion *pair* sharing
//!   one [`RefId`]),
//! * [`SimTime`] / [`SimDuration`] — the discrete-event simulation clock,
//! * [`GcConfig`], [`NetConfig`] — tuning knobs for the collector and the
//!   simulated network,
//! * small utilities: a dense [`bitset::BitSet`] used by tracing
//!   collectors, and deterministic RNG seeding helpers in [`rng`].
//!
//! Nothing in this crate knows about heaps, messages or detection; it is
//! the dependency root of the workspace.

#![warn(missing_docs)]

pub mod bitset;
pub mod config;
pub mod error;
pub mod ids;
pub mod rng;
pub mod time;

pub use bitset::BitSet;
pub use config::{
    GcConfig, IntegrationMode, MutatorConfig, NetConfig, SamplingConfig, SummarizerKind,
    TraceConfig, TraceFilter, WatchdogConfig,
};
pub use error::ModelError;
pub use ids::{DetectionId, IdAllocator, ObjId, ProcId, RefId, Slot};
pub use time::{SimDuration, SimTime};
