//! Deterministic RNG management.
//!
//! Every stochastic component (network faults, random workloads, property
//! tests) derives its generator from a single run seed through
//! [`derive_seed`], so components do not perturb each other's streams and a
//! run is reproducible from its seed alone.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from a run seed and a component label.
///
/// SplitMix64 finalizer over `seed ^ hash(label)`: cheap, well distributed,
/// and stable across platforms (no `std::hash` involvement).
pub fn derive_seed(run_seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(run_seed ^ h)
}

/// One round of the SplitMix64 output function.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build a fast component RNG from a run seed and label.
pub fn component_rng(run_seed: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(run_seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, "net"), derive_seed(42, "net"));
        assert_ne!(derive_seed(42, "net"), derive_seed(42, "workload"));
        assert_ne!(derive_seed(42, "net"), derive_seed(43, "net"));
    }

    #[test]
    fn component_rng_reproduces_stream() {
        let mut a = component_rng(7, "x");
        let mut b = component_rng(7, "x");
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn splitmix_spreads_nearby_seeds() {
        // Adjacent inputs must not produce adjacent outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
