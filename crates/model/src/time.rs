//! Discrete simulated time.
//!
//! The simulator advances a logical clock in *ticks*; by convention one
//! tick is one microsecond, which makes latency and pause numbers easy to
//! read against the paper's millisecond-scale measurements, but nothing in
//! the code depends on that interpretation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in ticks since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Convenience constructor: `t` milliseconds (1 tick = 1 µs).
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// The raw tick count (1 tick = 1 µs).
    pub fn as_ticks(self) -> u64 {
        self.0
    }

    /// Saturating distance to an earlier instant.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ms` milliseconds (1 tick = 1 µs).
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A span of `us` microseconds (= ticks).
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// The raw tick count (1 tick = 1 µs).
    pub fn as_ticks(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds, truncating.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(2);
        let t2 = t + SimDuration::from_millis(3);
        assert_eq!(t2, SimTime(5_000));
        assert_eq!(t2 - t, SimDuration::from_millis(3));
        assert_eq!(t2.since(t).as_millis(), 3);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime(5);
        let late = SimTime(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
