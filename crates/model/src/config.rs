//! Configuration for the collector stack and the simulated network.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How the reference-listing layer learns that a stub has died.
///
/// The paper has two implementations that differ exactly here:
/// the Rotor build integrates with the VM's collector, while the OBIWAN
/// build runs at user level and monitors transparent proxies through weak
/// references (§4, "a running thread that monitors existing stubs").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntegrationMode {
    /// The LGC reports the live stub set directly at the end of each
    /// collection (Rotor-style, in-VM).
    VmIntegrated,
    /// Dead stubs linger until a separate monitor pass observes that their
    /// weak proxy handle was cleared (OBIWAN-style, user-level). Adds
    /// latency between an LGC and the corresponding `NewSetStubs`.
    WeakRefMonitor,
}

/// Which graph-summarization implementation a process runs at snapshot
/// time. Both produce identical `SummarizedGraph`s (property-tested);
/// they differ only in cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummarizerKind {
    /// Single-pass engine: one Tarjan SCC condensation of the local heap
    /// followed by bottom-up bitset propagation of reachable-stub sets —
    /// O(V + E + S·W/64) for S scions over a W-stub universe.
    SccEngine,
    /// The paper's literal formulation: one breadth-first traversal per
    /// scion — O(S·(V + E)). Kept as the reference oracle and for
    /// ablation-style comparisons.
    Reference,
    /// Per-snapshot cost-model dispatch between the two: cheap graph
    /// statistics (scion count S, stub universe width W, live objects V,
    /// reference-field count E — all maintained incrementally, read in
    /// O(1)) pick the reference BFS when S is small enough that per-scion
    /// traversal undercuts a whole-heap condensation, and the engine
    /// otherwise. The engine run additionally inherits reachable-stub
    /// sets by reference along out-degree ≤ 1 condensation chains instead
    /// of OR-ing full-width bitsets, which removes the engine's only
    /// losing case (many fully disjoint scion chains). Output is exactly
    /// equal to both on every input.
    Adaptive,
}

/// Which event families a trace records. Defaults to everything; narrowing
/// the filter shrinks ring-buffer pressure on long runs where only one
/// family matters (e.g. detection forensics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFilter {
    /// CDM lifecycle: initiation, sends, deliveries, forwards, verdicts,
    /// aborts, terminations, scion deletions, candidate scans.
    pub detections: bool,
    /// Reference listing: `NewSetStubs` send / apply / ack.
    pub nss: bool,
    /// Phase start/end pairs (LGC, snapshot capture, summarization).
    pub phases: bool,
    /// Threaded-runtime quiescence votes and rescinds.
    pub quiescence: bool,
    /// Concurrent-mutator operations (allocate / export / invoke / drop)
    /// recorded by the threaded runtime's mutator threads.
    pub mutator: bool,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            detections: true,
            nss: true,
            phases: true,
            quiescence: true,
            mutator: true,
        }
    }
}

/// Structured-event tracing knobs (see the `acdgc-obs` crate). Disabled by
/// default: the disabled path is a single branch per would-be event, so
/// production configurations pay nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Whether events are recorded at all.
    pub enabled: bool,
    /// Per-process ring-buffer capacity in events; the oldest events are
    /// overwritten once it fills (the overwrite count is surfaced so a
    /// truncated trace is never mistaken for a complete one).
    pub capacity: usize,
    /// Which event families are recorded.
    pub filter: TraceFilter,
    /// Stamp every recorded event with a per-process Lamport clock and
    /// piggyback the clock on every GC message, giving the trace a sound
    /// happens-before order (see the `acdgc-obs` crate's `causal` module).
    /// Off by default: clocked traces cost one extra atomic per recorded
    /// event and 8 bytes per message envelope.
    pub lamport: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 65_536,
            filter: TraceFilter::default(),
            lamport: false,
        }
    }
}

impl TraceConfig {
    /// Tracing on with default capacity and an all-pass filter.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing on with Lamport clocks: every event carries a causal stamp
    /// and cross-process order becomes checkable/reconstructable.
    pub fn causal() -> Self {
        TraceConfig {
            enabled: true,
            lamport: true,
            ..TraceConfig::default()
        }
    }
}

/// Threaded-runtime watchdog knobs (see the `acdgc-obs` crate's `health`
/// module). The threaded runtime's `SimTime` ticks are wall-clock
/// microseconds, so both durations here are wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Whether the monitor thread runs at all. Disabled, workers still
    /// publish heartbeats (a handful of relaxed atomic stores per sweep)
    /// but nobody reads them and no reports are built.
    pub enabled: bool,
    /// A worker whose last heartbeat is older than this is reported as
    /// stalled. The threshold is measured against *any* heartbeat — every
    /// worker beats at least once per loop iteration even while voted — so
    /// a healthy idle worker never trips it; only a worker stuck inside a
    /// sweep, a drain, or a hook does.
    pub stall_after: SimDuration,
    /// Monitor poll cadence. Stall detection latency is `stall_after` +
    /// at most one poll.
    pub poll_every: SimDuration,
    /// Cap on stall `HealthReport`s emitted per run; each report covers
    /// every worker, so a handful is plenty and a livelocked run cannot
    /// flood memory. The terminal (quiescence/deadline) report is always
    /// emitted and does not count against this.
    pub max_stall_reports: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            stall_after: SimDuration::from_millis(400),
            poll_every: SimDuration::from_millis(25),
            max_stall_reports: 8,
        }
    }
}

/// Continuous time-series telemetry knobs (see the `acdgc-obs` crate's
/// `timeseries` module). Disabled by default, exactly like [`TraceConfig`]:
/// the disabled path is one branch per would-be sample, so production
/// configurations pay nothing.
///
/// When enabled, the sequential runtime takes one sample every
/// `sample_every` GC rounds (round-clock semantics), and the threaded
/// runtime's watchdog monitor emits one sample every `sample_every` polls
/// of the heartbeat slots (wall-clock semantics) while the run is healthy,
/// not just at stalls. Each series is a bounded ring of at most `capacity`
/// samples: on overflow it decimates by 2 (every other interior sample is
/// dropped, first and last preserved), so arbitrarily long runs keep a
/// full-span, progressively coarser timeline in fixed memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Whether samples are taken at all.
    pub enabled: bool,
    /// Sampling cadence: one sample per `sample_every` GC rounds
    /// (sequential) or watchdog polls (threaded). Clamped to at least 1.
    pub sample_every: u64,
    /// Per-series sample capacity; decimation-by-2 keeps every series at
    /// or under this bound. Clamped to at least 4 so first/last
    /// preservation always leaves room for interior structure.
    pub capacity: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            enabled: false,
            sample_every: 1,
            capacity: 1_024,
        }
    }
}

impl SamplingConfig {
    /// Sampling on with the default cadence and capacity.
    pub fn on() -> Self {
        SamplingConfig {
            enabled: true,
            ..SamplingConfig::default()
        }
    }
}

/// Concurrent-mutator knobs for the threaded runtime. The paper's central
/// claim is that detection stays safe and complete *while the application
/// keeps mutating* (§3.2); the mutator subsystem exercises exactly that
/// regime: seeded application threads allocate, export references, invoke
/// along them and drop them, racing the collector workers through the same
/// per-process locks and the scion pin/unpin handshake.
///
/// Disabled by default. All randomness derives from the run seed, so a
/// given `(seed, config)` pair replays the same operation sequence (the
/// interleaving with collector threads still varies with scheduling — that
/// is the point).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MutatorConfig {
    /// Whether mutator threads run at all. Off, the threaded runtime
    /// collects a frozen graph exactly as before.
    pub enabled: bool,
    /// Number of mutator threads. Each thread owns a disjoint slice of
    /// the process set (round-robin by index) and only mutates holders on
    /// its own processes, so threads never race each other on the same
    /// stub table; they race the *collector*, which is the interesting
    /// interleaving.
    pub threads: usize,
    /// Operations each mutator thread performs before declaring itself
    /// drained. Zero means the threads start, drain immediately and exit —
    /// observationally identical to `enabled: false` (tested).
    pub ops_per_thread: u64,
    /// Wall-clock pause between consecutive operations of one thread
    /// (rate pacing). Zero runs the mutator flat out.
    pub pace: SimDuration,
    /// Relative weight of *allocate* (new rooted object on a random owned
    /// process) in the op mix.
    pub allocate_weight: u32,
    /// Relative weight of *export*: create (or re-share) a remote
    /// reference from an owned live object to an object on another
    /// process, via the scion pin/unpin handshake.
    pub export_weight: u32,
    /// Relative weight of *invoke-along-reference*: bump the stub-side
    /// invocation counter, then pin the target scion, deliver the
    /// invocation, and unpin — the pin holds the target chain against
    /// concurrent deletion for the duration.
    pub invoke_weight: u32,
    /// Relative weight of *drop-reference*: remove a previously created
    /// remote reference or unroot a previously allocated object, turning
    /// mutator-built structure into (possibly cyclic) garbage.
    pub drop_weight: u32,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        MutatorConfig {
            enabled: false,
            threads: 1,
            ops_per_thread: 256,
            pace: SimDuration::ZERO,
            allocate_weight: 2,
            export_weight: 3,
            invoke_weight: 3,
            drop_weight: 2,
        }
    }
}

impl MutatorConfig {
    /// Mutation on with the default mix, `ops` operations per thread.
    pub fn on(ops: u64) -> Self {
        MutatorConfig {
            enabled: true,
            ops_per_thread: ops,
            ..MutatorConfig::default()
        }
    }

    /// Total weight of the op mix (never zero: a fully zero-weighted mix
    /// falls back to allocate).
    pub fn total_weight(&self) -> u32 {
        (self.allocate_weight + self.export_weight + self.invoke_weight + self.drop_weight).max(1)
    }
}

/// Collector tuning knobs. Defaults model the paper's lazy, low-disruption
/// regime; ablation experiments flip the named switches.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Period between local garbage collections of a process.
    pub lgc_period: SimDuration,
    /// Period between snapshot + summarization passes of a process.
    pub snapshot_period: SimDuration,
    /// Period between cycle-candidate scans of a process.
    pub scan_period: SimDuration,
    /// Extra delay between an LGC and stub-death visibility in
    /// [`IntegrationMode::WeakRefMonitor`] mode.
    pub monitor_period: SimDuration,
    /// A scion is a cycle candidate only if it has not been invoked for at
    /// least this long (§2.1: "not invoked for a certain amount of time").
    pub candidate_age: SimDuration,
    /// Base delay before re-initiating detection from the same scion. A
    /// detection whose CDMs died to message loss leaves no trace at the
    /// initiator (CDMs are unacknowledged by design), so the only complete
    /// recovery is to retry; successive retries back off exponentially
    /// from this base (see [`GcConfig::backoff_for`]).
    pub candidate_backoff: SimDuration,
    /// Hard cap on the exponential candidate backoff. Retries are never
    /// suppressed outright — under arbitrary GC-message loss that would
    /// forfeit completeness — they just space out, and this bound keeps
    /// the worst-case retry cadence (hence reclamation delay per lost
    /// CDM) finite and configurable.
    pub candidate_backoff_max: SimDuration,
    /// Maximum number of detections initiated per scan.
    pub max_candidates_per_scan: usize,
    /// How stub liveness reaches the reference-listing layer.
    pub integration: IntegrationMode,
    /// Safety barrier of §3.2: abort a detection when matching finds the
    /// same reference with different invocation counters. Disabling this is
    /// UNSAFE and exists only for ablation A1.
    pub ic_barrier: bool,
    /// Optimization from §3.2.1: also compare the stub-side counter carried
    /// by the CDM against the local scion counter at delivery time, instead
    /// of waiting for matching at the initiator.
    pub ic_check_on_delivery: bool,
    /// Termination rule of §3.1 step 15: stop forwarding a CDM derivation
    /// that brings no new information. Disabling this is for ablation A2
    /// (the hop cap then bounds the walk).
    pub branch_termination: bool,
    /// Relaxation of the step 15 rule: a derivation may make up to this
    /// many *consecutive* non-growing hops before it is terminated. The
    /// strict paper rule (slack 0) is provably incomplete on garbage with
    /// densely shared converging paths: full cancellation needs a single
    /// walk covering every reference, and such a walk may have to re-cross
    /// already-traversed references to reach untraversed ones (found by
    /// the exhaustive model checker in `tests/model_check.rs`). Growth
    /// still bounds total progress, so termination is preserved:
    /// every surviving branch alternates ≤`slack` non-growing hops with a
    /// strictly-growing one over a finite universe.
    pub nongrowth_slack: u32,
    /// Backstop bound on CDM forwarding depth. The algorithm terminates
    /// without it (the algebra grows monotonically over a finite universe);
    /// the cap bounds the A2 ablation and pathological configurations.
    pub max_hops: u32,
    /// Message budget per detection. A CDM carries its remaining budget;
    /// fan-out splits it across derivations, so one detection sends at
    /// most this many CDMs regardless of graph density (dense garbage
    /// clumps otherwise branch combinatorially). Exhaustion only delays
    /// reclamation: later rounds retry with fresh budgets while the
    /// acyclic layer shrinks the clump.
    pub detection_budget: u32,
    /// Extension beyond the paper: when a CDM is delivered, combine it
    /// with the *entire* relevant local snapshot — witness every local
    /// dependency scion and every stub reachable from any of them in one
    /// visit — instead of expanding only the delivered scion. The walk
    /// then needs one visit per involved *process* rather than per
    /// *reference*, which is what makes densely-linked multi-process
    /// garbage clumps tractable (per-reference walks branch factorially
    /// in references; see `examples/web_cache.rs`). Off by default: the
    /// worked examples of §3/§3.1 assume per-reference expansion.
    pub eager_combine: bool,
    /// Create stub/scion pairs for remote invocations' exported references
    /// (the paper's DGC-extended remoting). Disabled only by the Table 1
    /// baseline ("original Rotor") measurement.
    pub instrument_remoting: bool,
    /// Summarization implementation used at snapshot time.
    pub summarizer: SummarizerKind,
    /// Run the snapshot stage of a GC round over all processes in
    /// parallel. Sound because summarization only reads process-local
    /// state; the published summaries are identical to the sequential
    /// order's, so simulation results stay deterministic.
    pub parallel_snapshots: bool,
    /// Run the LGC and candidate-scan stages of a GC round over all
    /// processes in parallel too. Each stage is split into a pure
    /// per-process compute step (closure tracing, sweeping, dead-stub
    /// discovery, candidate picking) that fans out across threads, and a
    /// sequential apply step (metrics, network sends, detection
    /// initiation) executed in process-index order — so metrics ledgers
    /// and simulation results are bit-identical with this flag on or off.
    pub parallel_gc_phases: bool,
    /// Capacity of each inter-process channel in the threaded runtime.
    /// A full channel drops the (loss-tolerant) GC message rather than
    /// blocking a worker that may hold its own process lock; drops are
    /// surfaced in `ThreadedStats`.
    pub channel_capacity: usize,
    /// Threaded runtime: number of consecutive *quiet* sweeps (no frees,
    /// no stub deaths, no sends, no receipts, no pending retries) a worker
    /// observes before casting its quiescence vote. Higher values trade
    /// shutdown latency for robustness against transient lulls.
    pub quiet_sweeps: u32,
    /// Threaded runtime: resend an unacknowledged `NewSetStubs` after this
    /// many sweeps. The acyclic layer's messages are acknowledged (and
    /// retried until confirmed) because a lost final NSS would leak
    /// acyclic garbage forever — the cycle detector cannot reclaim it.
    pub nss_retry_sweeps: u32,
    /// Structured event tracing (`acdgc-obs`); off by default.
    pub trace: TraceConfig,
    /// Threaded-runtime watchdog: stall detection + health reports.
    pub watchdog: WatchdogConfig,
    /// Periodic time-series sampling (`acdgc-obs`); off by default.
    pub sampling: SamplingConfig,
    /// Threaded-runtime concurrent mutator; off by default (the sequential
    /// runtime drives mutation through explicit `System` calls instead).
    pub mutator: MutatorConfig,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            lgc_period: SimDuration::from_millis(50),
            snapshot_period: SimDuration::from_millis(100),
            scan_period: SimDuration::from_millis(100),
            monitor_period: SimDuration::from_millis(20),
            candidate_age: SimDuration::from_millis(150),
            candidate_backoff: SimDuration::from_millis(200),
            candidate_backoff_max: SimDuration::from_millis(800),
            max_candidates_per_scan: 4,
            integration: IntegrationMode::VmIntegrated,
            ic_barrier: true,
            ic_check_on_delivery: true,
            branch_termination: true,
            max_hops: 512,
            detection_budget: 16_384,
            nongrowth_slack: 8,
            eager_combine: false,
            instrument_remoting: true,
            summarizer: SummarizerKind::Adaptive,
            parallel_snapshots: true,
            parallel_gc_phases: true,
            channel_capacity: 1_024,
            quiet_sweeps: 16,
            nss_retry_sweeps: 8,
            trace: TraceConfig::default(),
            watchdog: WatchdogConfig::default(),
            sampling: SamplingConfig::default(),
            mutator: MutatorConfig::default(),
        }
    }
}

impl GcConfig {
    /// Configuration for tests that drive GC phases by hand.
    pub fn manual() -> Self {
        GcConfig {
            lgc_period: SimDuration(u64::MAX / 4),
            snapshot_period: SimDuration(u64::MAX / 4),
            scan_period: SimDuration(u64::MAX / 4),
            candidate_age: SimDuration::ZERO,
            candidate_backoff: SimDuration::ZERO,
            candidate_backoff_max: SimDuration::ZERO,
            ..GcConfig::default()
        }
    }

    /// Backoff before attempt number `attempts + 1` of a detection from a
    /// scion already tried `attempts` times: `candidate_backoff`
    /// doubled per failed attempt, hard-capped at `candidate_backoff_max`
    /// (never below the base). Retries never stop — only a *successful*
    /// detection (which deletes the scion) or the scion leaving the
    /// summary ends them — so message loss delays reclamation but cannot
    /// forfeit it.
    pub fn backoff_for(&self, attempts: u32) -> SimDuration {
        let base = self.candidate_backoff.as_ticks();
        if attempts <= 1 || base == 0 {
            return self.candidate_backoff;
        }
        let cap = self.candidate_backoff_max.as_ticks().max(base);
        let factor = 1u64 << (attempts - 1).min(32);
        SimDuration(base.saturating_mul(factor).min(cap))
    }
}

/// Simulated network behaviour. All randomness is drawn from the seeded
/// simulation RNG, so a given seed reproduces byte-identical runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Lower bound on one-way delivery latency.
    pub min_latency: SimDuration,
    /// Upper bound on one-way delivery latency (uniform in
    /// `min_latency..=max_latency`). Latency spread is what produces
    /// reordering.
    pub max_latency: SimDuration,
    /// Probability in `[0,1]` that a *GC* message (NewSetStubs, CDM) is
    /// dropped. Application messages (invocations) are delivered reliably:
    /// the paper's tolerance claim is about collector traffic.
    pub gc_drop_probability: f64,
    /// Probability in `[0,1]` that a GC message is delivered twice.
    pub gc_duplicate_probability: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_latency: SimDuration::from_micros(200),
            max_latency: SimDuration::from_micros(1_500),
            gc_drop_probability: 0.0,
            gc_duplicate_probability: 0.0,
        }
    }
}

impl NetConfig {
    /// A lossy network used by fault-tolerance tests and ablation A3.
    pub fn lossy(drop_probability: f64) -> Self {
        NetConfig {
            gc_drop_probability: drop_probability,
            ..NetConfig::default()
        }
    }

    /// Zero-latency, fully reliable network: useful in unit tests that
    /// reason about message counts rather than timing.
    pub fn instant() -> Self {
        NetConfig {
            min_latency: SimDuration::ZERO,
            max_latency: SimDuration::ZERO,
            gc_drop_probability: 0.0,
            gc_duplicate_probability: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let cfg = GcConfig::default();
        assert!(cfg.ic_barrier, "IC barrier must default on (safety)");
        assert!(cfg.branch_termination);
        assert!(cfg.instrument_remoting);
        assert!(cfg.max_hops > 0);
    }

    #[test]
    fn mutator_defaults_off_and_weighted() {
        let cfg = GcConfig::default();
        assert!(!cfg.mutator.enabled, "mutator must default off");
        assert!(cfg.mutator.total_weight() > 0);
        let degenerate = MutatorConfig {
            allocate_weight: 0,
            export_weight: 0,
            invoke_weight: 0,
            drop_weight: 0,
            ..MutatorConfig::default()
        };
        assert_eq!(degenerate.total_weight(), 1, "zero mix clamps to 1");
        assert!(MutatorConfig::on(64).enabled);
        assert_eq!(MutatorConfig::on(64).ops_per_thread, 64);
    }

    #[test]
    fn backoff_grows_exponentially_to_cap() {
        let cfg = GcConfig {
            candidate_backoff: SimDuration(100),
            candidate_backoff_max: SimDuration(650),
            ..GcConfig::default()
        };
        assert_eq!(cfg.backoff_for(0), SimDuration(100));
        assert_eq!(cfg.backoff_for(1), SimDuration(100));
        assert_eq!(cfg.backoff_for(2), SimDuration(200));
        assert_eq!(cfg.backoff_for(3), SimDuration(400));
        assert_eq!(cfg.backoff_for(4), SimDuration(650), "capped");
        assert_eq!(cfg.backoff_for(u32::MAX), SimDuration(650), "no overflow");
    }

    #[test]
    fn backoff_cap_never_undercuts_base() {
        let cfg = GcConfig {
            candidate_backoff: SimDuration(500),
            candidate_backoff_max: SimDuration(10), // misconfigured below base
            ..GcConfig::default()
        };
        assert_eq!(cfg.backoff_for(5), SimDuration(500));
    }

    #[test]
    fn zero_backoff_stays_zero() {
        let cfg = GcConfig::manual();
        assert_eq!(cfg.backoff_for(10), SimDuration::ZERO);
    }

    #[test]
    fn lossy_network_keeps_latency_defaults() {
        let cfg = NetConfig::lossy(0.25);
        assert_eq!(cfg.gc_drop_probability, 0.25);
        assert_eq!(cfg.min_latency, NetConfig::default().min_latency);
    }

    #[test]
    fn instant_network_is_deterministic() {
        let cfg = NetConfig::instant();
        assert_eq!(cfg.min_latency, SimDuration::ZERO);
        assert_eq!(cfg.max_latency, SimDuration::ZERO);
        assert_eq!(cfg.gc_drop_probability, 0.0);
    }
}
