//! Error types shared across the workspace.

use crate::ids::{ObjId, ProcId, RefId, Slot};
use std::fmt;

/// Errors raised by the substrate layers (heap, remoting, simulator) when a
/// caller names an entity that does not exist or violates a structural
/// invariant. The collector algorithms themselves never return errors: the
/// paper's safety rules all degrade to "drop the message / abort the
/// detection".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Heap slot is unallocated or its generation does not match.
    DanglingObject(ObjId),
    /// A slot index is outside the heap.
    BadSlot(Slot),
    /// No such process in the system.
    UnknownProcess(ProcId),
    /// No stub with this id at the given process.
    UnknownStub(ProcId, RefId),
    /// No scion with this id at the given process.
    UnknownScion(ProcId, RefId),
    /// Attempted to create a remote reference within a single process.
    SameProcessRemoteRef(ProcId),
    /// Attempted to remove a reference that the source object does not hold.
    MissingReference,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DanglingObject(o) => write!(f, "dangling object handle {o}"),
            ModelError::BadSlot(s) => write!(f, "slot {s} out of range"),
            ModelError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ModelError::UnknownStub(p, r) => write!(f, "no stub {r} at {p}"),
            ModelError::UnknownScion(p, r) => write!(f, "no scion {r} at {p}"),
            ModelError::SameProcessRemoteRef(p) => {
                write!(f, "remote reference within a single process {p}")
            }
            ModelError::MissingReference => write!(f, "reference not held by source object"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::UnknownStub(ProcId(2), RefId(9));
        assert_eq!(e.to_string(), "no stub r9 at P2");
        let e = ModelError::DanglingObject(ObjId::new(ProcId(0), 1, 2));
        assert!(e.to_string().contains("P0#1g2"));
    }
}
