//! A dense, growable bitset.
//!
//! Used by the tracing collectors (mark bits over heap slots) and the
//! summarizer. Kept local rather than pulling in a crate: the operations we
//! need are tiny and hot, and slot indices are dense by construction.

/// Dense bitset over `usize` indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty set able to hold indices `0..capacity` without reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            len: capacity,
        }
    }

    /// Number of indices addressable without growth.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    #[inline]
    fn ensure(&mut self, index: usize) {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if index >= self.len {
            self.len = index + 1;
        }
    }

    /// Insert `index`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        self.ensure(index);
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Remove `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        let (w, b) = (index / 64, index % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Whether `index` is set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        let (w, b) = (index / 64, index % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clear all bits, keeping the allocation (workhorse reuse).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Set-union in place: `self |= other`, one OR per 64 indices. This is
    /// the primitive behind the SCC summarizer's bottom-up stub-set
    /// propagation, where per-component reachable-stub sets merge along
    /// condensation edges.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            *dst |= src;
        }
        self.len = self.len.max(other.len);
    }

    /// Whether the two sets share any index (word-parallel, no iteration).
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterate set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter {
                word,
                base: wi * 64,
            })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = BitSet::default();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert reports already-present");
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_on_demand() {
        let mut s = BitSet::with_capacity(10);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let indices = [0usize, 1, 63, 64, 65, 127, 128, 500];
        let s: BitSet = indices.iter().copied().collect();
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, indices);
        assert_eq!(s.count(), indices.len());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::with_capacity(256);
        let cap = s.capacity();
        for i in 0..256 {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = BitSet::default();
        assert!(!s.remove(10_000));
    }

    #[test]
    fn union_with_merges_and_grows() {
        let mut a: BitSet = [1usize, 63].into_iter().collect();
        let b: BitSet = [2usize, 64, 500].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), [1, 2, 63, 64, 500]);
        // Union is idempotent and ignores the smaller operand's bounds.
        let before = a.clone();
        a.union_with(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn intersects_detects_overlap() {
        let a: BitSet = [3usize, 200].into_iter().collect();
        let b: BitSet = [200usize].into_iter().collect();
        let c: BitSet = [4usize, 199].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&BitSet::default()));
    }
}
