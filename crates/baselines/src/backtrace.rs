//! Maheshwari–Liskov-style distributed back-tracing.
//!
//! A suspect object is garbage iff no local root reaches it. Back-tracing
//! establishes this by walking the reference graph *backwards* from the
//! suspect: for each incoming remote reference, visit the process holding
//! the stub; if the stub is locally reachable there, a root was found and
//! the suspect is live; otherwise recurse into the references that lead to
//! that stub (`ScionsTo` — the same summarized inverse the DCDA uses).
//! A per-trace visited set ("trace ids" in \[11\]) terminates cycles: a
//! reference reached twice contributes no new liveness evidence.
//!
//! Costs charged, following the paper's critique:
//! * every remote step is a synchronous call + reply (2 messages), forming
//!   a chain of nested RPCs whose depth is the path length;
//! * every process visited must hold the trace's visited marks until the
//!   trace completes (`peak_state_entries`).

use acdgc_model::{ProcId, RefId};
use acdgc_sim::System;
use acdgc_snapshot::{summarize, SummarizedGraph};
use rustc_hash::FxHashSet;

/// Outcome of back-tracing one suspect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BacktraceReport {
    /// The suspect was proven garbage (no root reaches it).
    pub garbage: bool,
    /// Remote calls + replies.
    pub messages: u64,
    /// Deepest nested-RPC chain.
    pub max_depth: u64,
    /// References marked visited — state processes must retain per trace.
    pub peak_state_entries: usize,
    /// Scions deleted on a garbage verdict.
    pub scions_deleted: u64,
}

/// The back-tracer. Builds fresh summaries (the same information the DCDA
/// consumes) and walks them backwards.
pub struct Backtracer {
    summaries: Vec<SummarizedGraph>,
}

impl Backtracer {
    /// Snapshot every process. Mutator-quiescent by assumption; \[11\] needs
    /// transfer barriers to be safe under mutation, which are out of scope
    /// for the baseline comparison.
    pub fn new(sys: &System) -> Self {
        let summaries = sys
            .procs()
            .iter()
            .map(|p| summarize(&p.heap, &p.tables, 1, acdgc_model::SimTime(0)))
            .collect();
        Backtracer { summaries }
    }

    /// Back-trace the reference `suspect` (a scion at `owner`): is the
    /// subgraph it protects reachable from any root?
    pub fn trace(&self, sys: &mut System, owner: ProcId, suspect: RefId) -> BacktraceReport {
        let mut report = BacktraceReport::default();
        let mut visited: FxHashSet<RefId> = FxHashSet::default();
        let live = self.ref_reaches_root(suspect, owner, 0, &mut visited, &mut report);
        report.peak_state_entries = visited.len();
        report.garbage = !live;
        if report.garbage {
            // Verdict: delete the suspect scion (and every visited scion at
            // its owner — they are part of the same dead structure, but the
            // conservative variant deletes just the suspect, like the DCDA).
            if sys.proc_mut(owner).tables.remove_scion(suspect).is_some() {
                report.scions_deleted += 1;
            }
        }
        report
    }

    /// Does reference `r` (scion at `owner`) ultimately originate from a
    /// root? Walks to the stub's process and backtracks its inbound paths.
    fn ref_reaches_root(
        &self,
        r: RefId,
        owner: ProcId,
        depth: u64,
        visited: &mut FxHashSet<RefId>,
        report: &mut BacktraceReport,
    ) -> bool {
        report.max_depth = report.max_depth.max(depth);
        if !visited.insert(r) {
            return false; // already being traced: no new evidence
        }
        // Find the process holding the matching stub: the scion knows.
        let Some(scion) = self.summaries[owner.index()].scion(r) else {
            // Unknown reference (stale summary): conservatively live.
            return true;
        };
        let holder = scion.from_proc;
        // One remote call to `holder` and its reply.
        report.messages += 2;
        let Some(stub) = self.summaries[holder.index()].stub(r) else {
            // The stub is not in the holder's summary: it is not reachable
            // from any root or scion there — dead end, no root this way.
            return false;
        };
        if stub.local_reach {
            return true; // a root reaches the stub: suspect is live
        }
        // Recurse into every reference that leads to this stub.
        for &inbound in &stub.scions_to {
            if self.ref_reaches_root(inbound, holder, depth + 1, visited, report) {
                return true;
            }
        }
        false
    }

    /// Back-trace every scion in the system once, deleting proven-garbage
    /// ones, then run substrate rounds to reclaim objects. Returns the
    /// merged report.
    pub fn collect_all(sys: &mut System) -> BacktraceReport {
        let tracer = Backtracer::new(sys);
        let suspects: Vec<(ProcId, RefId)> = sys
            .procs()
            .iter()
            .flat_map(|p| {
                let owner = p.proc();
                p.tables
                    .scions()
                    .map(move |s| (owner, s.ref_id))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut merged = BacktraceReport::default();
        for (owner, r) in suspects {
            if sys.proc(owner).tables.scion(r).is_none() {
                continue; // deleted by an earlier verdict
            }
            let report = tracer.trace(sys, owner, r);
            merged.messages += report.messages;
            merged.max_depth = merged.max_depth.max(report.max_depth);
            merged.peak_state_entries = merged.peak_state_entries.max(report.peak_state_entries);
            merged.scions_deleted += report.scions_deleted;
        }
        merged.garbage = merged.scions_deleted > 0;
        // Substrate reclamation.
        for _ in 0..4 {
            sys.advance(acdgc_model::SimDuration::from_millis(1));
            for p in 0..sys.num_procs() {
                sys.run_lgc(ProcId(p as u16));
            }
            sys.drain_network();
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{GcConfig, NetConfig};
    use acdgc_sim::scenarios;

    fn system(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 23)
    }

    #[test]
    fn garbage_cycle_is_proven_garbage() {
        let mut sys = system(4);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        let tracer = Backtracer::new(&sys);
        let report = tracer.trace(&mut sys, fig.p2, fig.r_bf);
        assert!(report.garbage, "{report:?}");
        assert!(report.messages >= 8, "walks the whole ring: {report:?}");
        assert!(report.max_depth >= 3);
        assert_eq!(report.scions_deleted, 1);
    }

    #[test]
    fn live_cycle_is_proven_live() {
        let mut sys = system(4);
        let fig = scenarios::fig3(&mut sys);
        // A still rooted: B's stub at P1 is locally reachable.
        let tracer = Backtracer::new(&sys);
        let report = tracer.trace(&mut sys, fig.p2, fig.r_bf);
        assert!(!report.garbage);
        assert_eq!(report.scions_deleted, 0);
    }

    #[test]
    fn dependency_makes_cycle_live_until_dropped() {
        let mut sys = system(4);
        let fig = scenarios::fig1(&mut sys);
        let owner = fig.x.proc;
        let tracer = Backtracer::new(&sys);
        let report = tracer.trace(&mut sys, owner, fig.r_zx);
        assert!(!report.garbage, "w -> x keeps the cycle live");
        // Drop w's root; re-summarize and trace again.
        sys.remove_root(fig.w).unwrap();
        let tracer = Backtracer::new(&sys);
        let report = tracer.trace(&mut sys, owner, fig.r_zx);
        assert!(report.garbage);
    }

    #[test]
    fn collect_all_reclaims_fig4() {
        let mut sys = system(6);
        let _fig = scenarios::fig4(&mut sys);
        let report = Backtracer::collect_all(&mut sys);
        // A second sweep may be needed for scions orphaned by the first.
        let _ = Backtracer::collect_all(&mut sys);
        for _ in 0..4 {
            sys.gc_round();
        }
        assert_eq!(sys.total_live_objects(), 0, "{report:?}");
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn nested_rpc_depth_grows_with_ring_span() {
        let mut sys = system(6);
        let procs: Vec<ProcId> = (0..6).map(ProcId).collect();
        let ring = scenarios::ring(&mut sys, &procs, 2, false);
        let tracer = Backtracer::new(&sys);
        let owner = ring.heads[0].proc;
        let report = tracer.trace(&mut sys, owner, ring.refs[0]);
        assert!(report.garbage);
        assert!(
            report.max_depth >= 5,
            "depth tracks the ring span: {report:?}"
        );
    }
}
