//! Complete-DGC baselines from the paper's related work (§5).
//!
//! The paper argues its detector is cheaper and less intrusive than the
//! prior complete collectors. To reproduce that comparison (experiment A5)
//! two representative baselines are implemented against the same substrate:
//!
//! * [`hughes`] — global timestamp propagation in the style of Hughes
//!   \[7\]: local collections stamp everything reachable from roots with the
//!   current epoch, stamps flow stub→scion one hop per round, and a
//!   *globally synchronized* threshold round reclaims scions whose stamp
//!   proves no root has reached them. Complete, but the cost structure is
//!   exactly what the paper criticizes: continuous global work
//!   proportional to *all* remote references, plus a barrier every round
//!   (and in an asynchronous system the barrier is a consensus, impossible
//!   under faults \[5\]).
//! * [`backtrace`] — distributed back-tracing in the style of
//!   Maheshwari & Liskov \[11\]: from a suspect, walk *backwards* through
//!   incoming references (using the same `ScionsTo` summaries the DCDA
//!   uses) until a root is found or all paths are exhausted. Complete and
//!   targeted, but each trace is a chain of synchronous remote calls, and
//!   every process must hold per-trace visited state — the two costs the
//!   paper calls out ("direct acyclic chaining of recursive remote
//!   procedure calls, which is clearly unscalable"; "processes to keep
//!   state about detections on course").
//!
//! Both run mutator-quiescent; the DCDA's advantage under mutation (no
//! blocking, counter-based abort) is exercised by the main test suite.

pub mod backtrace;
pub mod hughes;

pub use backtrace::{BacktraceReport, Backtracer};
pub use hughes::{HughesCollector, HughesReport};
