//! Hughes-style global timestamp propagation.
//!
//! Model (one *round* = one globally synchronized step):
//!
//! 1. every process recomputes its stub stamps: a stub reachable from a
//!    local root is stamped with the current epoch; a stub reachable from a
//!    scion inherits that scion's stamp (max over all sources);
//! 2. every stub's stamp is sent to its scion (one message per remote
//!    reference, every round — the "permanent cost" the paper criticizes);
//! 3. a barrier computes the global collection threshold: stamps can have
//!    travelled at most one hop per round, so after `diameter` rounds any
//!    root-reachable scion carries a stamp newer than
//!    `epoch - diameter`; older scions are provably garbage and are
//!    deleted (their objects then fall to the ordinary LGC / reference
//!    listing).
//!
//! The barrier is counted as `2·(n-1)` control messages per round
//! (gather + broadcast), the textbook lower bound for a coordinator
//! barrier.

use acdgc_heap::lgc::closure;
use acdgc_model::{ProcId, RefId};
use acdgc_sim::System;
use rustc_hash::FxHashMap;

/// Outcome of a Hughes collection run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HughesReport {
    pub rounds: u64,
    /// Timestamp messages (one per stub per round).
    pub stamp_messages: u64,
    /// Barrier control messages (2·(n−1) per round).
    pub barrier_messages: u64,
    pub stamp_bytes: u64,
    /// Scions reclaimed by threshold.
    pub scions_collected: u64,
    /// Objects reclaimed by the LGCs after scion deletion.
    pub objects_reclaimed: u64,
}

impl HughesReport {
    pub fn total_messages(&self) -> u64 {
        self.stamp_messages + self.barrier_messages
    }
}

/// The collector state: per-reference stamps for both ends.
#[derive(Clone, Debug)]
pub struct HughesCollector {
    /// Assumed bound on the remote-hop diameter of live paths. Stamps need
    /// `diameter` rounds to reach everything a root protects; collecting
    /// below `epoch - diameter` is then safe.
    diameter: u64,
    epoch: u64,
    scion_stamp: FxHashMap<RefId, u64>,
    stub_stamp: FxHashMap<RefId, u64>,
}

impl HughesCollector {
    pub fn new(diameter: u64) -> Self {
        assert!(diameter >= 1);
        HughesCollector {
            diameter,
            epoch: 0,
            scion_stamp: FxHashMap::default(),
            stub_stamp: FxHashMap::default(),
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One synchronized round over all processes.
    pub fn run_round(&mut self, sys: &mut System, report: &mut HughesReport) {
        self.epoch += 1;
        report.rounds += 1;
        let n = sys.num_procs();

        // Phase 1: local propagation in every process.
        let mut outgoing: Vec<(RefId, u64)> = Vec::new();
        for p in 0..n {
            let proc = sys.proc(ProcId(p as u16));
            let heap = &proc.heap;
            let tables = &proc.tables;

            let mut new_stub_stamp: FxHashMap<RefId, u64> = FxHashMap::default();
            // Roots stamp with the current epoch.
            let root_closure = closure(heap, heap.roots().collect::<Vec<_>>());
            for &stub in &root_closure.stubs {
                new_stub_stamp.insert(stub, self.epoch);
            }
            // Scions propagate their stamps.
            for scion in tables.scions() {
                let stamp = *self.scion_stamp.entry(scion.ref_id).or_insert(self.epoch);
                let reach = closure(heap, [scion.target.slot]);
                for &stub in &reach.stubs {
                    let entry = new_stub_stamp.entry(stub).or_insert(0);
                    *entry = (*entry).max(stamp);
                }
            }
            for (stub, stamp) in new_stub_stamp {
                if tables.stub(stub).is_some() {
                    self.stub_stamp.insert(stub, stamp);
                    outgoing.push((stub, stamp));
                }
            }
        }

        // Phase 2: stamp messages stub -> scion.
        for (ref_id, stamp) in outgoing {
            report.stamp_messages += 1;
            report.stamp_bytes += 24;
            let s = self.scion_stamp.entry(ref_id).or_insert(0);
            *s = (*s).max(stamp);
        }

        // Phase 3: the barrier (global agreement that the round completed).
        report.barrier_messages += 2 * (n as u64).saturating_sub(1);
    }

    /// Delete every scion whose stamp proves it unreachable, then let the
    /// ordinary LGC/reference-listing rounds reclaim the objects.
    pub fn threshold_collect(&mut self, sys: &mut System, report: &mut HughesReport) {
        if self.epoch <= self.diameter {
            return; // threshold not yet meaningful
        }
        let threshold = self.epoch - self.diameter;
        let n = sys.num_procs();
        for p in 0..n {
            let proc = sys.proc_mut(ProcId(p as u16));
            let doomed: Vec<RefId> = proc
                .tables
                .scions()
                .filter(|s| {
                    self.scion_stamp
                        .get(&s.ref_id)
                        .is_some_and(|&st| st < threshold)
                })
                .map(|s| s.ref_id)
                .collect();
            for r in doomed {
                if proc.tables.remove_scion(r).is_some() {
                    report.scions_collected += 1;
                    self.scion_stamp.remove(&r);
                }
            }
        }
    }

    /// Run rounds until every distributed cycle is reclaimed or
    /// `max_rounds` elapse. Interleaves threshold collection and the
    /// substrate's normal LGC/reference-listing rounds (with the DCDA scans
    /// disabled — this is the *alternative* cycle collector).
    pub fn collect(&mut self, sys: &mut System, max_rounds: u64) -> HughesReport {
        let mut report = HughesReport::default();
        let before = sys.metrics.objects_reclaimed;
        for _ in 0..max_rounds {
            self.run_round(sys, &mut report);
            self.threshold_collect(sys, &mut report);
            // Substrate reclamation (LGC + NewSetStubs), no DCDA scans.
            sys.advance(acdgc_model::SimDuration::from_millis(1));
            for p in 0..sys.num_procs() {
                sys.run_lgc(ProcId(p as u16));
            }
            sys.drain_network();
            if sys.total_live_objects() == sys.oracle_live().len() && sys.total_scions() == 0 {
                break;
            }
            if sys.total_live_objects() == sys.oracle_live().len() && self.epoch > self.diameter + 2
            {
                break;
            }
        }
        report.objects_reclaimed = sys.metrics.objects_reclaimed - before;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{GcConfig, NetConfig};
    use acdgc_sim::scenarios;

    fn system(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 17)
    }

    #[test]
    fn collects_distributed_cycle() {
        let mut sys = system(4);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        let mut hughes = HughesCollector::new(8);
        let report = hughes.collect(&mut sys, 40);
        assert_eq!(sys.total_live_objects(), 0, "{report:?}");
        assert!(report.scions_collected >= 1);
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn preserves_live_cycle() {
        let mut sys = system(4);
        let _fig = scenarios::fig3(&mut sys);
        let mut hughes = HughesCollector::new(8);
        let _ = hughes.collect(&mut sys, 30);
        assert_eq!(sys.total_live_objects(), 14, "rooted cycle survives");
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn costs_scale_with_references_every_round() {
        let mut sys = system(4);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        let mut hughes = HughesCollector::new(8);
        let mut report = HughesReport::default();
        hughes.run_round(&mut sys, &mut report);
        hughes.run_round(&mut sys, &mut report);
        // 4 remote references -> 4 stamp messages per round, plus barrier.
        assert_eq!(report.stamp_messages, 8);
        assert_eq!(report.barrier_messages, 2 * 3 * 2);
        assert_eq!(report.total_messages(), 8 + 12);
    }

    #[test]
    fn live_chain_keeps_fresh_stamps() {
        let mut sys = system(3);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(2), 1);
        sys.add_root(a).unwrap();
        let r1 = sys.create_remote_ref(a, b).unwrap();
        let r2 = sys.create_remote_ref(b, c).unwrap();
        let mut hughes = HughesCollector::new(4);
        let mut report = HughesReport::default();
        for _ in 0..6 {
            hughes.run_round(&mut sys, &mut report);
        }
        // After >= 2 rounds the epoch has travelled both hops.
        assert!(hughes.scion_stamp[&r1] >= hughes.epoch() - 1);
        assert!(hughes.scion_stamp[&r2] >= hughes.epoch() - 2);
        hughes.threshold_collect(&mut sys, &mut report);
        assert_eq!(report.scions_collected, 0, "live chain untouched");
    }
}
