//! The sequential, deterministic whole-system simulator.

use crate::messages::{InvokeSpec, SysMessage};
use crate::metrics::Metrics;
use crate::oracle;
use crate::process::Process;
use acdgc_dcda::{Cdm, Outcome, TerminateReason};
use acdgc_heap::{lgc, HeapRef};
use acdgc_model::{
    GcConfig, IdAllocator, IntegrationMode, ModelError, NetConfig, ObjId, ProcId, RefId,
    SimDuration, SimTime, Slot,
};
use acdgc_net::{Envelope, MessageClass, NetStats, Network};
use acdgc_obs::{Event, Phase, Sample, Sampler, Trace};
use acdgc_remoting::{
    apply_new_set_stubs_observed, build_new_set_stubs, ExportedRef, InvokePayload, NewSetStubs,
    ReplyPayload,
};
use rayon::prelude::*;
use rustc_hash::FxHashSet;

/// A complete simulated distributed system: N processes, one network, one
/// clock, one metrics ledger.
pub struct System {
    cfg: GcConfig,
    procs: Vec<Process>,
    net: Network<SysMessage>,
    clock: SimTime,
    ids: IdAllocator,
    /// Verify every reclamation against the global reachability oracle.
    /// On by default; benches switch it off (it is O(heap) per LGC).
    pub check_safety: bool,
    /// The merged protocol-counter ledger for the whole system.
    pub metrics: Metrics,
    /// Time-series telemetry (`GcConfig::sampling`): one global + one
    /// per-process bounded series, fed every `sample_every` GC rounds.
    sampler: Sampler,
    /// Completed [`System::gc_round`] calls — the sequential sampling
    /// clock.
    rounds: u64,
}

impl System {
    /// Build a system of `num_procs` processes over a fresh network.
    ///
    /// `seed` derives every per-process and network RNG, so two systems
    /// built with the same arguments behave identically.
    pub fn new(num_procs: usize, cfg: GcConfig, net_cfg: NetConfig, seed: u64) -> Self {
        assert!(num_procs >= 1 && num_procs <= u16::MAX as usize);
        let mut procs: Vec<Process> = (0..num_procs)
            .map(|i| Process::new(ProcId(i as u16), &cfg))
            .collect();
        // One sequence counter across all processes: collected traces are
        // totally ordered by recording order, not just per-process.
        let seq = procs[0].obs.seq_handle();
        for proc in &mut procs[1..] {
            proc.obs.share_seq(seq.clone());
        }
        let sampler = Sampler::new(&cfg.sampling, num_procs);
        System {
            cfg,
            procs,
            net: Network::new(net_cfg, seed),
            clock: SimTime::ZERO,
            ids: IdAllocator::new(),
            check_safety: true,
            metrics: Metrics::default(),
            sampler,
            rounds: 0,
        }
    }

    // --- accessors -----------------------------------------------------------

    /// Current simulated time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The GC configuration the system was built with.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Mutable access to the GC configuration (tests retune mid-run).
    pub fn config_mut(&mut self) -> &mut GcConfig {
        &mut self.cfg
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// All processes, indexed by `ProcId`.
    pub fn procs(&self) -> &[Process] {
        &self.procs
    }

    /// The process with id `p`.
    pub fn proc(&self, p: ProcId) -> &Process {
        &self.procs[p.index()]
    }

    /// Mutable access to the process with id `p`.
    pub fn proc_mut(&mut self, p: ProcId) -> &mut Process {
        &mut self.procs[p.index()]
    }

    /// Delivery/loss/duplication counters from the simulated network.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// This process's share of the system counters. `self.metrics` stays
    /// the merged view; per-process attribution is what skewed workloads
    /// need.
    pub fn metrics_for(&self, p: ProcId) -> &Metrics {
        &self.procs[p.index()].metrics
    }

    /// Collect the per-process event rings into one totally ordered trace
    /// (empty when tracing is disabled), with any telemetry samples
    /// attached for JSONL export.
    pub fn trace(&self) -> Trace {
        Trace::collect(self.procs.iter().map(|p| &p.obs))
            .with_samples(self.sampler.export())
            .with_runtime("sequential")
    }

    /// The time-series telemetry recorded so far (empty series when
    /// `GcConfig::sampling` is disabled).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Render the merged metrics ledger plus the merged per-phase latency
    /// histograms in Prometheus text exposition format. Metric names are
    /// documented in DESIGN.md ("Runtime health"); scrape this from a
    /// debug endpoint or dump it at end of run.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.metrics.to_prometheus_into(&mut out);
        self.trace().merged_phases().to_prometheus_into(&mut out);
        // Point-in-time gauges, computed fresh at scrape time (the counter
        // `_total` namespace above is owned by `Metrics`).
        let (global, _) = self.current_sample();
        global.to_prometheus_into(&mut out);
        out
    }

    /// Apply one counter update to the merged ledger *and* the owning
    /// process's ledger, keeping the two views consistent by construction.
    fn bump(&mut self, p: ProcId, f: impl Fn(&mut Metrics)) {
        f(&mut self.metrics);
        f(&mut self.procs[p.index()].metrics);
    }

    /// Sever both directions between two processes (subsequent sends are
    /// lost until healed; in-flight traffic still arrives).
    pub fn partition_pair(&mut self, a: ProcId, b: ProcId) {
        self.net.partition_pair(a, b);
    }

    /// Restore every severed link.
    pub fn heal_all_partitions(&mut self) {
        self.net.heal_all();
    }

    /// Messages currently queued in the simulated network.
    pub fn messages_in_flight(&self) -> usize {
        self.net.in_flight()
    }

    /// Total live objects across all heaps.
    pub fn total_live_objects(&self) -> usize {
        self.procs.iter().map(|p| p.heap.stats().live_objects).sum()
    }

    /// Total scions across all processes.
    pub fn total_scions(&self) -> usize {
        self.procs.iter().map(|p| p.tables.scion_count()).sum()
    }

    /// Advance the clock without running anything (no events may be due).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    // --- mutator API -----------------------------------------------------------

    /// Allocate a new (unrooted) object of `payload_words` on process `p`.
    pub fn alloc(&mut self, p: ProcId, payload_words: u32) -> ObjId {
        self.procs[p.index()].heap.alloc(payload_words)
    }

    /// Make `obj` a GC root of its owning process.
    pub fn add_root(&mut self, obj: ObjId) -> Result<(), ModelError> {
        self.procs[obj.proc.index()].heap.add_root(obj)
    }

    /// Unroot `obj`; returns whether it was rooted.
    pub fn remove_root(&mut self, obj: ObjId) -> Result<bool, ModelError> {
        self.procs[obj.proc.index()].heap.remove_root(obj)
    }

    /// Add an intra-process reference `from → to` (same process only).
    pub fn add_local_ref(&mut self, from: ObjId, to: ObjId) -> Result<(), ModelError> {
        if from.proc != to.proc {
            return Err(ModelError::UnknownProcess(to.proc));
        }
        self.procs[from.proc.index()]
            .heap
            .add_ref(from, HeapRef::Local(to.slot))
    }

    /// Remove a previously added intra-process reference `from → to`.
    pub fn remove_local_ref(&mut self, from: ObjId, to: ObjId) -> Result<(), ModelError> {
        self.procs[from.proc.index()]
            .heap
            .remove_ref(from, HeapRef::Local(to.slot))
    }

    /// Create a remote reference `from -> to` directly (topology building).
    /// The stub/scion pair is created atomically; no message travels.
    /// Reference-listing granularity: if `from`'s process already
    /// references `to`, the existing pair is shared and its `RefId`
    /// returned.
    pub fn create_remote_ref(&mut self, from: ObjId, to: ObjId) -> Result<RefId, ModelError> {
        if from.proc == to.proc {
            return Err(ModelError::SameProcessRemoteRef(from.proc));
        }
        if !self.procs[from.proc.index()].heap.contains(from) {
            return Err(ModelError::DanglingObject(from));
        }
        if !self.procs[to.proc.index()].heap.contains(to) {
            return Err(ModelError::DanglingObject(to));
        }
        let ref_id = self.ensure_pair(from.proc, to);
        self.procs[from.proc.index()]
            .heap
            .add_ref(from, HeapRef::Remote(ref_id))?;
        Ok(ref_id)
    }

    /// Ensure the (holder process, target object) stub/scion pair exists,
    /// reusing or repairing whichever half survives:
    /// * both present — share it (pardoning a condemned stub);
    /// * stub only (the scion was deleted, e.g. by a cycle verdict, while
    ///   the target still lives) — recreate the scion under the same id;
    /// * scion only (the stub died at the holder, reference listing has
    ///   not caught up) — recreate the stub under the same id;
    /// * neither — mint a fresh pair.
    fn ensure_pair(&mut self, holder: ProcId, target: ObjId) -> RefId {
        let now = self.clock;
        let dbg = std::env::var_os("ACDGC_DEBUG_UNSAFE").is_some();
        let stub_side = self.procs[holder.index()]
            .tables
            .stub_for_target(target)
            .map(|s| s.ref_id);
        let scion_side = self.procs[target.proc.index()]
            .tables
            .scion_for_source(holder, target)
            .map(|s| s.ref_id);
        match (stub_side, scion_side) {
            (Some(r), Some(r2)) => {
                debug_assert_eq!(r, r2, "pair halves disagree");
                self.procs[holder.index()].tables.pardon_stub(r);
                // Reuse counts as re-establishment: protect the scion from
                // NewSetStubs built before this instant.
                self.procs[target.proc.index()].tables.refresh_scion(r, now);
                r
            }
            (Some(r), None) => {
                self.procs[holder.index()].tables.pardon_stub(r);
                let stub_ic = self.procs[holder.index()]
                    .tables
                    .stub(r)
                    .expect("probed above")
                    .ic;
                self.procs[target.proc.index()]
                    .tables
                    .add_scion(r, target, holder, now);
                // The re-created half adopts the survivor's invocation
                // counter: nothing is in flight at repair time, and a
                // counter split would permanently veto CDMs over the pair.
                self.procs[target.proc.index()]
                    .tables
                    .sync_scion_ic(r, stub_ic)
                    .expect("scion just added");
                r
            }
            (None, Some(r)) => {
                // The stub is being re-created after dying: a NewSetStubs
                // without it may still be in flight — refresh the scion's
                // horizon so that stale set cannot delete it.
                if dbg {
                    eprintln!(
                        "t={:?} re-establish stub {r:?} at {holder} target {target:?}",
                        self.clock
                    );
                }
                let scion_ic = self.procs[target.proc.index()]
                    .tables
                    .scion(r)
                    .expect("probed above")
                    .ic;
                self.procs[holder.index()].tables.add_stub(r, target, now);
                // Adopt the scion's counter (see the mirror case above).
                self.procs[holder.index()]
                    .tables
                    .sync_stub_ic(r, scion_ic)
                    .expect("stub just added");
                self.procs[target.proc.index()].tables.refresh_scion(r, now);
                r
            }
            (None, None) => {
                let r = self.ids.next_ref_id();
                self.procs[target.proc.index()]
                    .tables
                    .add_scion(r, target, holder, now);
                self.procs[holder.index()].tables.add_stub(r, target, now);
                r
            }
        }
    }

    /// Drop one occurrence of the remote reference `ref_id` from `from`'s
    /// fields. The stub dies at `from`'s next LGC if nothing else holds it.
    pub fn drop_remote_ref(&mut self, from: ObjId, ref_id: RefId) -> Result<(), ModelError> {
        self.procs[from.proc.index()]
            .heap
            .remove_ref(from, HeapRef::Remote(ref_id))
    }

    /// Perform a remote invocation from `caller` through reference `via`.
    ///
    /// Models the paper's instrumented remoting: the stub/scion invocation
    /// counters advance, and every reference in `spec.exports` is
    /// marshalled (scion created at the target's owner — pinned until the
    /// import completes — stub created at the callee on delivery).
    pub fn invoke(
        &mut self,
        caller: ProcId,
        via: RefId,
        spec: InvokeSpec,
    ) -> Result<(), ModelError> {
        let now = self.clock;
        let stub = self.procs[caller.index()]
            .tables
            .stub(via)
            .ok_or(ModelError::UnknownStub(caller, via))?
            .clone();
        let callee = stub.target.proc;
        // Validate every export up front so no partial effect leaks on
        // error.
        for &target in spec.exports.iter().chain(spec.reply_exports.iter()) {
            if !self.procs[target.proc.index()].heap.contains(target) {
                return Err(ModelError::DanglingObject(target));
            }
        }
        self.procs[caller.index()]
            .tables
            .record_send_through_stub(via)?;
        self.bump(caller, |m| m.invocations += 1);
        // An invocation in flight is a use of the reference: its scion may
        // not be reclaimed until the call lands (in a real runtime the
        // caller's stack pins the proxy for the duration of the RPC).
        // Ignore failure: if the scion is already gone the delivery-side
        // accounting will flag it.
        let _ = self.procs[callee.index()].tables.pin_scion(via);

        let exports = self.marshal_exports(&spec.exports, caller, callee)?;
        let wants_reply =
            spec.wants_reply || spec.receiver.is_some() || !spec.reply_exports.is_empty();
        let payload = InvokePayload {
            ref_id: via,
            exports,
            arg_bytes: spec.arg_bytes,
            wants_reply,
        };
        let msg = SysMessage::Invoke {
            payload,
            reply_exports: spec.reply_exports,
            receiver: spec.receiver,
        };
        let size = msg.size_bytes();
        self.net
            .send(now, caller, callee, MessageClass::Application, size, msg);
        Ok(())
    }

    /// Marshal a list of objects for export from `exporter` to `importer`:
    /// create a (pinned) scion at each object's owner. Objects already
    /// local to the importer are short-circuited at delivery and get no
    /// scion.
    ///
    /// Exporting an object the exporter reaches through a *remote*
    /// reference is a **reference copy along that reference** — a mutator
    /// event the detector must be able to see (§2.2 rule 3 explicitly
    /// includes "possibly reference copying"). The copied reference's
    /// invocation counters are bumped on both ends, exactly like an
    /// invocation; without this, exporting a cycle member to a third
    /// process between two snapshots could complete a stale CDM-Graph and
    /// collect a now-live cycle.
    fn marshal_exports(
        &mut self,
        objects: &[ObjId],
        exporter: ProcId,
        importer: ProcId,
    ) -> Result<Vec<ExportedRef>, ModelError> {
        let now = self.clock;
        let mut out = Vec::with_capacity(objects.len());
        for &target in objects {
            if !self.procs[target.proc.index()].heap.contains(target) {
                return Err(ModelError::DanglingObject(target));
            }
            if self.cfg.instrument_remoting && target.proc != exporter {
                // Copying a remote reference: bump the counters of the
                // exporter's reference to this object (both ends — the
                // scion side models the SSP-chain message that installs
                // the new scion at the owner).
                let copied: Option<RefId> = self.procs[exporter.index()]
                    .tables
                    .stubs()
                    .filter(|s| s.target == target)
                    .map(|s| s.ref_id)
                    .min();
                if let Some(copied) = copied {
                    let _ = self.procs[exporter.index()]
                        .tables
                        .record_send_through_stub(copied);
                    let _ = self.procs[target.proc.index()]
                        .tables
                        .record_receive_through_scion(copied, now);
                }
            }
            let ref_id = if self.cfg.instrument_remoting && target.proc != importer {
                // Reference-listing dedup: reuse (or repair) the pair if
                // either half already exists for (importer, target). The
                // scion is pinned until the import completes.
                let ref_id = match self.procs[target.proc.index()]
                    .tables
                    .scion_for_source(importer, target)
                    .map(|s| s.ref_id)
                {
                    Some(r) => {
                        // Re-export of an existing pair: the importer's
                        // stub may have died and a NewSetStubs without it
                        // may be in flight; refresh the horizon.
                        self.procs[target.proc.index()].tables.refresh_scion(r, now);
                        r
                    }
                    None => {
                        // The importer may hold a stale stub whose scion
                        // was deleted; reuse its id so the repaired pair
                        // stays consistent with the importer's table.
                        let stale = self.procs[importer.index()]
                            .tables
                            .stub_for_target(target)
                            .map(|s| s.ref_id);
                        let r = stale.unwrap_or_else(|| self.ids.next_ref_id());
                        self.procs[target.proc.index()]
                            .tables
                            .add_scion(r, target, importer, now);
                        r
                    }
                };
                self.procs[target.proc.index()].tables.pin_scion(ref_id)?;
                ref_id
            } else {
                // Uninstrumented, or a short-circuit home delivery: the id
                // is a placeholder for the wire format only.
                self.ids.next_ref_id()
            };
            self.bump(exporter, |m| m.refs_exported += 1);
            out.push(ExportedRef { ref_id, target });
        }
        Ok(out)
    }

    /// Import marshalled references at `importer`, attaching them as fields
    /// of `holder` (when given and alive). Unpins the export scions.
    fn import_exports(&mut self, importer: ProcId, holder: Option<ObjId>, exports: &[ExportedRef]) {
        let now = self.clock;
        for export in exports {
            if export.target.proc == importer {
                // Short-circuit: the reference came home; it becomes local.
                if let Some(h) = holder {
                    if self.procs[importer.index()].heap.contains(h)
                        && self.procs[importer.index()].heap.contains(export.target)
                    {
                        let _ = self.procs[importer.index()]
                            .heap
                            .add_ref(h, HeapRef::Local(export.target.slot));
                    }
                }
                continue;
            }
            if !self.cfg.instrument_remoting {
                continue;
            }
            let holder_alive =
                holder.is_some_and(|h| self.procs[importer.index()].heap.contains(h));
            if holder_alive {
                let holder = holder.unwrap();
                let importer_proc = &mut self.procs[importer.index()];
                // Shared pair: the stub may already exist (the exporter
                // reused the scion); a condemned stub is resurrected by
                // the re-import — the paper's weak-reference monitor
                // "pardons" proxies seen alive again.
                if importer_proc.tables.stub(export.ref_id).is_none() {
                    importer_proc
                        .tables
                        .add_stub(export.ref_id, export.target, now);
                } else {
                    importer_proc.tables.pardon_stub(export.ref_id);
                }
                let _ = importer_proc
                    .heap
                    .add_ref(holder, HeapRef::Remote(export.ref_id));
                let owner = &mut self.procs[export.target.proc.index()].tables;
                let _ = owner.unpin_scion(export.ref_id);
                // The import completed *now*: any NewSetStubs built while
                // the reference was in flight (it could not yet know the
                // stub) must not judge this scion.
                owner.refresh_scion(export.ref_id, now);
            } else {
                // Nobody to hold the reference: release the pin and let the
                // acyclic DGC reclaim the orphan scion.
                let _ = self.procs[export.target.proc.index()]
                    .tables
                    .unpin_scion(export.ref_id);
            }
        }
    }

    // --- GC phases --------------------------------------------------------------

    /// Run one local collection at `p` and broadcast `NewSetStubs`.
    pub fn run_lgc(&mut self, p: ProcId) {
        let now = self.clock;
        let oracle_live = self.check_safety.then(|| oracle::global_live(&*self));
        let num_procs = self.procs.len();
        let work = lgc_compute(
            &mut self.procs[p.index()],
            &self.cfg,
            num_procs,
            now,
            oracle_live.as_ref(),
        );
        self.lgc_apply(p, work, oracle_live.as_ref());
    }

    /// Run one local collection at *every* process. The compute stage
    /// (`lgc_compute`) touches only process-local state, so with
    /// `parallel_gc_phases` it fans out across threads; the apply stage
    /// (`Self::lgc_apply`) consumes shared state (metrics ledgers, the
    /// seeded network RNG) and runs sequentially in process-index order —
    /// the exact order the sequential path produces, so simulation results
    /// and metrics are bit-identical with parallelism on or off.
    ///
    /// One oracle serves the whole sweep: a sound LGC frees only
    /// globally-unreachable objects, and dead-stub handling only touches
    /// stubs held by dead objects, so the global live set is invariant
    /// across the per-process collections.
    pub fn lgc_all(&mut self) {
        let now = self.clock;
        let oracle_live = self.check_safety.then(|| oracle::global_live(&*self));
        let num_procs = self.procs.len();
        let works: Vec<LgcWork> = {
            let cfg = &self.cfg;
            let live = oracle_live.as_ref();
            if cfg.parallel_gc_phases && num_procs > 1 {
                self.procs
                    .par_iter_mut()
                    .map(|proc| lgc_compute(proc, cfg, num_procs, now, live))
            } else {
                self.procs
                    .iter_mut()
                    .map(|proc| lgc_compute(proc, cfg, num_procs, now, live))
                    .collect()
            }
        };
        for (i, work) in works.into_iter().enumerate() {
            self.lgc_apply(ProcId(i as u16), work, oracle_live.as_ref());
        }
    }

    /// Apply stage of a local collection: merged/per-process counters, the
    /// safety-audit dump, and the `NewSetStubs` sends. Every effect here
    /// reaches shared state, so callers invoke it sequentially in
    /// process-index order.
    fn lgc_apply(&mut self, p: ProcId, work: LgcWork, oracle_live: Option<&FxHashSet<ObjId>>) {
        let now = self.clock;
        let LgcWork {
            freed,
            unsafe_freed,
            targets,
            nss,
        } = work;
        self.bump(p, |m| {
            m.lgc_runs += 1;
            m.objects_reclaimed += freed;
        });
        for freed in &unsafe_freed {
            self.bump(p, |m| m.unsafe_frees += 1);
            if std::env::var_os("ACDGC_DEBUG_UNSAFE").is_some() {
                eprintln!("UNSAFE FREE at {p}: {freed:?}; scion targets were {targets:?}");
                let live = oracle_live.expect("unsafe frees imply an oracle was computed");
                for q in &self.procs {
                    for stub in q.tables.stubs() {
                        if stub.target == *freed {
                            eprintln!(
                                "  stub at {}: {:?} pair {:?} condemned={}",
                                q.proc(),
                                stub.ref_id,
                                stub.target,
                                stub.condemned
                            );
                        }
                    }
                    for (slot, rec) in q.heap.iter() {
                        for r in rec.remote_refs() {
                            if q.tables.stub(r).map(|s| s.target) == Some(*freed) {
                                eprintln!(
                                    "  held by {:?}#{} via {:?} (holder live={})",
                                    q.proc(),
                                    slot,
                                    r,
                                    live.contains(&q.heap.id_of_slot(slot).unwrap())
                                );
                            }
                        }
                    }
                }
            }
        }
        for (dest, m) in nss {
            self.bump(p, |mm| mm.nss_sent += 1);
            self.procs[p.index()].obs.record(
                now,
                Event::NssSent {
                    to: dest,
                    seq: m.seq,
                    live_refs: m.live_refs.len() as u32,
                    retry: false,
                },
            );
            let lc = self.procs[p.index()].obs.clock_value();
            let size = m.size_bytes();
            self.net
                .send_clocked(now, p, dest, MessageClass::Gc, size, lc, SysMessage::Nss(m));
        }
    }

    /// The OBIWAN monitor pass: reclaim condemned stubs at `p` and send the
    /// corrected stub sets.
    pub fn run_monitor(&mut self, p: ProcId) {
        if self.cfg.integration != IntegrationMode::WeakRefMonitor {
            return;
        }
        let now = self.clock;
        self.bump(p, |m| m.monitor_passes += 1);
        let removed = self.procs[p.index()].tables.monitor_pass();
        if removed.is_empty() {
            return;
        }
        let peers: Vec<ProcId> = (0..self.procs.len() as u16)
            .map(ProcId)
            .filter(|&q| q != p)
            .collect();
        let msgs = build_new_set_stubs(&mut self.procs[p.index()].tables, &peers, now);
        for (dest, m) in msgs {
            self.bump(p, |m| m.nss_sent += 1);
            self.procs[p.index()].obs.record(
                now,
                Event::NssSent {
                    to: dest,
                    seq: m.seq,
                    live_refs: m.live_refs.len() as u32,
                    retry: false,
                },
            );
            let lc = self.procs[p.index()].obs.clock_value();
            let size = m.size_bytes();
            self.net
                .send_clocked(now, p, dest, MessageClass::Gc, size, lc, SysMessage::Nss(m));
        }
    }

    /// Snapshot + summarize `p`, publishing a new summary atomically.
    pub fn take_snapshot(&mut self, p: ProcId) {
        let now = self.clock;
        let kind = self.cfg.summarizer;
        let proc = &mut self.procs[p.index()];
        proc.refresh_summary(kind, now);
        let (scions, stubs) = (
            proc.summary.scions.len() as u64,
            proc.summary.stubs.len() as u64,
        );
        self.bump(p, |m| {
            m.snapshots += 1;
            m.summary_scions += scions;
            m.summary_stubs += stubs;
        });
    }

    /// Snapshot + summarize every process. Summarization reads only
    /// process-local state, so with `parallel_snapshots` the per-process
    /// work fans out across threads; published summaries (and therefore
    /// simulation results) are identical either way. Metrics are
    /// accumulated sequentially afterwards to keep them deterministic.
    pub fn snapshot_all(&mut self) {
        let now = self.clock;
        let kind = self.cfg.summarizer;
        let refresh = |proc: &mut Process| {
            proc.refresh_summary(kind, now);
            (
                proc.summary.scions.len() as u64,
                proc.summary.stubs.len() as u64,
            )
        };
        // Summary sizes come back with each compute result instead of
        // being re-read through `self.procs` afterwards; one sequential
        // fold attributes them.
        let counts: Vec<(u64, u64)> = if self.cfg.parallel_snapshots && self.procs.len() > 1 {
            self.procs.par_iter_mut().map(refresh)
        } else {
            self.procs.iter_mut().map(refresh).collect()
        };
        for (i, (scions, stubs)) in counts.into_iter().enumerate() {
            self.bump(ProcId(i as u16), |m| {
                m.snapshots += 1;
                m.summary_scions += scions;
                m.summary_stubs += stubs;
            });
        }
    }

    /// Candidate scan at `p`: initiate detections for stale scions.
    pub fn run_scan(&mut self, p: ProcId) {
        let now = self.clock;
        let picked = self.procs[p.index()].scan(now, &self.cfg).picked;
        for scion in picked {
            self.initiate_detection(p, scion);
        }
    }

    /// Candidate scan at every process, then detection initiations. The
    /// scan reads only process-local state (the published summary plus the
    /// process's heuristic ledger), so under `parallel_gc_phases` it fans
    /// out across threads; initiation consumes shared state (the detection
    /// id allocator, the seeded network) and runs sequentially in
    /// process-index order — bit-identical with parallelism on or off.
    pub fn scan_all(&mut self) {
        let now = self.clock;
        let picked: Vec<Vec<RefId>> = {
            let cfg = &self.cfg;
            if cfg.parallel_gc_phases && self.procs.len() > 1 {
                self.procs
                    .par_iter_mut()
                    .map(|proc| proc.scan(now, cfg).picked)
            } else {
                self.procs
                    .iter_mut()
                    .map(|proc| proc.scan(now, cfg).picked)
                    .collect()
            }
        };
        for (i, scions) in picked.into_iter().enumerate() {
            for scion in scions {
                self.initiate_detection(ProcId(i as u16), scion);
            }
        }
    }

    /// Start one detection from `scion` at `p` (used by scans and directly
    /// by tests that pick their own candidates).
    pub fn initiate_detection(&mut self, p: ProcId, scion: RefId) {
        let now = self.clock;
        let proc = &self.procs[p.index()];
        let Some(summary_scion) = proc.summary.scion(scion) else {
            self.bump(p, |m| m.detections_dropped_no_scion += 1);
            return;
        };
        let cdm = Cdm::initiate(self.ids.next_detection_id(), p, scion, summary_scion.ic);
        let id = cdm.detection_id;
        let sw = proc.obs.stopwatch();
        let outcome = acdgc_dcda::initiate(&proc.summary, cdm, scion, &self.cfg);
        self.bump(p, |m| m.detections_started += 1);
        self.procs[p.index()]
            .obs
            .record(now, Event::DetectionStarted { id, scion });
        self.handle_outcome(p, id, 0, outcome);
        self.procs[p.index()].obs.lap(Phase::CdmHandling, sw);
    }

    /// Apply one processing step's [`Outcome`] at `p`: counters, trace
    /// events and the resulting traffic. `id` and `hop` identify the step
    /// (`hop` 0 for initiations, the arriving CDM's hop count otherwise).
    fn handle_outcome(
        &mut self,
        p: ProcId,
        id: acdgc_model::DetectionId,
        hop: u32,
        outcome: Outcome,
    ) {
        let now = self.clock;
        match outcome {
            Outcome::Forwarded {
                out: list,
                branches_pruned_local,
                branches_no_new_info,
                // Starvation feeds the credit scheme, which only the
                // threaded runtime runs (the sequential walk needs no
                // termination detection — it never races a mutator).
                branches_starved: _,
            } => {
                self.bump(p, |m| {
                    m.branches_pruned_local += u64::from(branches_pruned_local);
                    m.branches_no_new_info += u64::from(branches_no_new_info);
                });
                self.procs[p.index()].obs.record(
                    now,
                    Event::CdmForwarded {
                        id,
                        hop,
                        branches: list.len() as u32,
                        pruned_local: branches_pruned_local,
                        pruned_no_new_info: branches_no_new_info,
                    },
                );
                for ob in list {
                    let size = 8 + ob.cdm.size_bytes();
                    self.bump(p, |m| {
                        m.cdms_sent += 1;
                        m.max_cdm_bytes = m.max_cdm_bytes.max(size as u64);
                    });
                    self.procs[p.index()].obs.record(
                        now,
                        Event::CdmSent {
                            id,
                            to: ob.dest,
                            via: ob.via,
                            // Hop depth at which the receiver will process
                            // it (the detector increments on delivery).
                            hop: ob.cdm.hops + 1,
                            sources: ob.cdm.source.len() as u32,
                            targets: ob.cdm.target.len() as u32,
                            bytes: size as u32,
                        },
                    );
                    let lc = self.procs[p.index()].obs.clock_value();
                    self.net.send_clocked(
                        now,
                        p,
                        ob.dest,
                        MessageClass::Gc,
                        size,
                        lc,
                        SysMessage::Cdm {
                            via: ob.via,
                            cdm: ob.cdm,
                        },
                    );
                }
            }
            Outcome::CycleFound { delete } => {
                self.bump(p, |m| m.cycles_detected += 1);
                self.procs[p.index()].obs.record(
                    now,
                    Event::CycleDetected {
                        id,
                        hop,
                        scions: delete.len() as u32,
                    },
                );
                for (owner, scion, incarnation, ic) in delete {
                    if owner == p {
                        self.delete_proven_scion(p, scion, incarnation, ic);
                    } else {
                        let msg = SysMessage::DeleteScion {
                            scion,
                            incarnation,
                            ic,
                        };
                        let size = msg.size_bytes();
                        let lc = self.procs[p.index()].obs.clock_value();
                        self.net
                            .send_clocked(now, p, owner, MessageClass::Gc, size, lc, msg);
                    }
                }
            }
            Outcome::DroppedNoScion => {
                self.bump(p, |m| m.detections_dropped_no_scion += 1);
                self.procs[p.index()].obs.record(
                    now,
                    Event::DetectionDropped {
                        id,
                        hop,
                        reason: acdgc_obs::DropReason::NoScion,
                    },
                );
            }
            Outcome::AbortedIcMismatch {
                ref_id,
                source_ic,
                target_ic,
            } => {
                self.bump(p, |m| m.detections_aborted_ic += 1);
                self.procs[p.index()].obs.record(
                    now,
                    Event::DetectionAborted {
                        id,
                        hop,
                        ref_id,
                        source_ic,
                        target_ic,
                    },
                );
            }
            Outcome::DroppedHopCap => {
                self.bump(p, |m| m.detections_dropped_hops += 1);
                self.procs[p.index()].obs.record(
                    now,
                    Event::DetectionDropped {
                        id,
                        hop,
                        reason: acdgc_obs::DropReason::HopCap,
                    },
                );
            }
            Outcome::Terminated(reason) => {
                let (field, obs_reason): (fn(&mut Metrics) -> &mut u64, _) = match reason {
                    TerminateReason::NoStubs => (
                        |m| &mut m.detections_terminated_no_stubs,
                        acdgc_obs::TermReason::NoStubs,
                    ),
                    TerminateReason::AllStubsLocallyReachable => (
                        |m| &mut m.detections_terminated_local,
                        acdgc_obs::TermReason::AllStubsLocallyReachable,
                    ),
                    TerminateReason::NoNewInformation => (
                        |m| &mut m.detections_terminated_no_new_info,
                        acdgc_obs::TermReason::NoNewInformation,
                    ),
                    TerminateReason::BudgetExhausted => (
                        |m| &mut m.detections_terminated_budget,
                        acdgc_obs::TermReason::BudgetExhausted,
                    ),
                };
                self.bump(p, |m| *field(m) += 1);
                self.procs[p.index()].obs.record(
                    now,
                    Event::DetectionTerminated {
                        id,
                        hop,
                        reason: obs_reason,
                    },
                );
            }
        }
    }

    // --- message dispatch ----------------------------------------------------------

    fn dispatch(&mut self, env: Envelope<SysMessage>) {
        let dst = env.dst;
        // Lamport receive rule: fold the sender's piggybacked clock in
        // before any delivery-side event is recorded, so every event the
        // delivery produces is stamped above the send.
        self.procs[dst.index()].obs.witness(env.lamport);
        match env.payload {
            SysMessage::Invoke {
                payload,
                reply_exports,
                receiver,
            } => self.dispatch_invoke(env.src, dst, payload, reply_exports, receiver),
            SysMessage::Reply { payload, receiver } => self.dispatch_reply(dst, payload, receiver),
            SysMessage::Nss(nss) => {
                let now = self.clock;
                let proc = &mut self.procs[dst.index()];
                let applied =
                    apply_new_set_stubs_observed(&mut proc.tables, &nss, now, &mut proc.obs);
                if applied.stale {
                    self.bump(dst, |m| m.nss_stale += 1);
                } else {
                    let removed = applied.removed.len() as u64;
                    self.bump(dst, |m| {
                        m.nss_applied += 1;
                        m.scions_reclaimed_acyclic += removed;
                    });
                    if std::env::var_os("ACDGC_DEBUG_UNSAFE").is_some() {
                        for sc in &applied.removed {
                            eprintln!(
                                "t={:?} NSS from {} removed scion {:?} target {:?} (created {:?})",
                                self.clock, nss.from, sc.ref_id, sc.target, sc.created_at
                            );
                        }
                    }
                }
            }
            SysMessage::Cdm { via, cdm } => {
                let now = self.clock;
                let id = cdm.detection_id;
                // This processing step's hop depth (deliver increments the
                // wire value before expanding).
                let hop = cdm.hops + 1;
                let (sources, targets) = (cdm.source.len() as u32, cdm.target.len() as u32);
                let bytes = (8 + cdm.size_bytes()) as u32;
                self.bump(dst, |m| m.cdms_delivered += 1);
                self.procs[dst.index()].obs.record(
                    now,
                    Event::CdmDelivered {
                        id,
                        via,
                        hop,
                        sources,
                        targets,
                        bytes,
                    },
                );
                let sw = self.procs[dst.index()].obs.stopwatch();
                let outcome =
                    acdgc_dcda::deliver(&self.procs[dst.index()].summary, cdm, via, &self.cfg);
                self.handle_outcome(dst, id, hop, outcome);
                self.procs[dst.index()].obs.lap(Phase::CdmHandling, sw);
            }
            SysMessage::DeleteScion {
                scion,
                incarnation,
                ic,
            } => {
                self.delete_proven_scion(dst, scion, incarnation, ic);
            }
        }
    }

    /// Apply a cycle verdict to one scion this process owns: delete it
    /// unless an invocation/import is in flight (pinned — with the counter
    /// barrier on, a verdict over an active reference cannot happen; the
    /// pin guard keeps even the unsafe ablations structurally sound).
    fn delete_proven_scion(&mut self, p: ProcId, scion: RefId, incarnation: u32, ic: u64) {
        // ABA guard: the verdict proved a specific incarnation garbage; a
        // newer incarnation under the same id is a different, possibly
        // live reference. Lazy IC barrier: the verdict also witnessed a
        // specific invocation counter — a counter that has moved since
        // means the mutator used (re-exported or invoked through) the
        // reference after the walk, so the verdict is stale. The counter
        // re-check is part of the barrier, so the A1 ablation disables it
        // too (and stays demonstrably unsafe).
        let barrier = self.cfg.ic_barrier;
        if self.procs[p.index()]
            .tables
            .scion(scion)
            .is_none_or(|s| s.incarnation != incarnation || (barrier && s.ic != ic))
        {
            return;
        }
        if self.check_safety {
            // A scion deletion is unsafe iff the *reference* is still
            // live: some oracle-live object at the holding process still
            // holds it. (The target being live through other paths does
            // not make deleting a dead reference's scion unsafe.)
            let holder = self.procs[p.index()]
                .tables
                .scion(scion)
                .map(|s| s.from_proc);
            if let Some(holder) = holder {
                let live = oracle::global_live(&*self);
                if oracle::ref_is_live(&*self, holder, scion, &live) {
                    self.bump(p, |m| m.unsafe_scion_deletes += 1);
                }
            }
        }
        let now = self.clock;
        let proc = &mut self.procs[p.index()];
        let pinned = proc.tables.scion(scion).is_some_and(|s| s.pinned > 0);
        if !pinned {
            if proc.tables.remove_scion(scion).is_some() {
                proc.obs
                    .record(now, Event::ScionDeleted { scion, incarnation });
                self.bump(p, |m| m.scions_deleted_by_dcda += 1);
            }
            self.procs[p.index()].summary.scions.remove(&scion);
        }
    }

    fn dispatch_invoke(
        &mut self,
        src: ProcId,
        dst: ProcId,
        payload: InvokePayload,
        reply_exports: Vec<ObjId>,
        receiver: Option<ObjId>,
    ) {
        let now = self.clock;
        let target = match self.procs[dst.index()]
            .tables
            .record_receive_through_scion(payload.ref_id, now)
        {
            Ok(_) => self.procs[dst.index()]
                .tables
                .scion(payload.ref_id)
                .map(|s| s.target),
            Err(_) => None,
        };
        let Some(target) = target else {
            // The scion vanished under a live reference — with a sound
            // collector this only happens if something unsafe occurred
            // (the scion was pinned at send time).
            self.bump(dst, |m| m.invoke_on_missing_scion += 1);
            // Release pins so the export scions are not leaked.
            self.import_exports(dst, None, &payload.exports);
            return;
        };
        // The RPC has landed: release the in-flight pin taken at send.
        let _ = self.procs[dst.index()].tables.unpin_scion(payload.ref_id);
        self.import_exports(dst, Some(target), &payload.exports);
        if payload.wants_reply {
            let exports = self
                .marshal_exports(&reply_exports, dst, src)
                .unwrap_or_default();
            // The reply travels back through the same reference: the callee
            // side counter advances now, the caller side on delivery.
            let _ = self.procs[dst.index()]
                .tables
                .record_reply_sent_through_scion(payload.ref_id, now);
            self.bump(dst, |m| m.replies += 1);
            let msg = SysMessage::Reply {
                payload: ReplyPayload {
                    ref_id: payload.ref_id,
                    exports,
                },
                receiver,
            };
            let size = msg.size_bytes();
            self.net
                .send(now, dst, src, MessageClass::Application, size, msg);
        }
    }

    fn dispatch_reply(&mut self, dst: ProcId, payload: ReplyPayload, receiver: Option<ObjId>) {
        if self.procs[dst.index()]
            .tables
            .record_reply_received_through_stub(payload.ref_id)
            .is_err()
        {
            self.bump(dst, |m| m.reply_on_missing_stub += 1);
        }
        self.import_exports(dst, receiver, &payload.exports);
    }

    // --- event loop -------------------------------------------------------------------

    /// Time of the next event (message delivery or scheduled GC phase).
    pub fn next_event_at(&self) -> Option<SimTime> {
        let net = self.net.next_delivery_at();
        let task = self.procs.iter().map(|p| p.next_task_at()).min();
        match (net, task) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Execute the single earliest event. Returns `false` when idle.
    /// Deliveries win ties, then processes in index order.
    pub fn step(&mut self) -> bool {
        let Some(at) = self.next_event_at() else {
            return false;
        };
        self.clock = self.clock.max(at);
        if self.net.next_delivery_at() == Some(at) {
            let env = self.net.pop_next().expect("peeked delivery");
            self.dispatch(env);
            return true;
        }
        let idx = self
            .procs
            .iter()
            .position(|p| p.next_task_at() == at)
            .expect("task exists at this time");
        let p = ProcId(idx as u16);
        let proc = &mut self.procs[idx];
        // Run the due phase(s) for this process, rescheduling each.
        if proc.next_lgc == at {
            proc.next_lgc = at + self.cfg.lgc_period;
            self.run_lgc(p);
        } else if proc.next_snapshot == at {
            proc.next_snapshot = at + self.cfg.snapshot_period;
            self.take_snapshot(p);
        } else if proc.next_scan == at {
            proc.next_scan = at + self.cfg.scan_period;
            self.run_scan(p);
        } else if proc.next_monitor == at {
            proc.next_monitor = at + self.cfg.monitor_period;
            self.run_monitor(p);
        }
        true
    }

    /// Run every event due at or before `t`, then set the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(at) = self.next_event_at() {
            if at > t {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(t);
    }

    /// Run the event loop for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.clock + d;
        self.run_until(t);
    }

    /// Deliver and process every in-flight message (and the cascades they
    /// cause), advancing the clock as needed. GC phase schedules are not
    /// run — this is the workhorse of manually-driven tests.
    pub fn drain_network(&mut self) {
        while let Some(env) = self.net.pop_next() {
            self.clock = self.clock.max(env.deliver_at);
            self.dispatch(env);
        }
    }

    // --- composite helpers ----------------------------------------------------------

    /// One manual GC round: LGC everywhere, drain, snapshot everywhere,
    /// scan everywhere, drain. Advances the clock by 1 ms first so
    /// `NewSetStubs` horizons see previously created scions.
    ///
    /// With `GcConfig::sampling` enabled, every `sample_every`-th round
    /// ends by recording one telemetry [`Sample`] per process plus the
    /// global aggregate; disabled, the cost is one branch.
    pub fn gc_round(&mut self) {
        self.advance(SimDuration::from_millis(1));
        self.lgc_all();
        self.drain_network();
        for i in 0..self.procs.len() {
            self.run_monitor(ProcId(i as u16));
        }
        self.drain_network();
        self.snapshot_all();
        self.scan_all();
        self.drain_network();
        self.rounds += 1;
        if self.sampler.due(self.rounds) {
            let (global, per_proc) = self.current_sample();
            self.sampler.record(global, &per_proc);
        }
    }

    /// Build the telemetry snapshot for this instant: one sample per
    /// process plus the global aggregate (gauges summed, except
    /// `max_backoff_attempt`, which is a max; global counters come from
    /// the merged ledger). `inbox_depth` and `votes_held` are threaded
    /// concepts and stay 0 here; `in_flight_cdms` is the simulated
    /// network's in-flight count, attributable only globally.
    fn current_sample(&self) -> (Sample, Vec<Sample>) {
        let (at, round) = (self.clock, self.rounds);
        let mut global = Sample {
            at,
            round,
            proc: None,
            in_flight_cdms: self.net.in_flight() as u64,
            lgc_runs: self.metrics.lgc_runs,
            snapshots: self.metrics.snapshots,
            cdms_sent: self.metrics.cdms_sent,
            cycles_detected: self.metrics.cycles_detected,
            objects_reclaimed: self.metrics.objects_reclaimed,
            scions_reclaimed: self.metrics.scions_reclaimed_acyclic
                + self.metrics.scions_deleted_by_dcda,
            ..Sample::default()
        };
        let per_proc: Vec<Sample> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| Sample {
                at,
                round,
                proc: Some(ProcId(i as u16)),
                live_objects: p.heap.stats().live_objects as u64,
                candidates: p.candidates.tracked() as u64,
                max_backoff_attempt: u64::from(p.candidates.max_attempts()),
                lgc_runs: p.metrics.lgc_runs,
                snapshots: p.metrics.snapshots,
                cdms_sent: p.metrics.cdms_sent,
                cycles_detected: p.metrics.cycles_detected,
                objects_reclaimed: p.metrics.objects_reclaimed,
                scions_reclaimed: p.metrics.scions_reclaimed_acyclic
                    + p.metrics.scions_deleted_by_dcda,
                ..Sample::default()
            })
            .collect();
        for s in &per_proc {
            global.live_objects += s.live_objects;
            global.candidates += s.candidates;
            global.max_backoff_attempt = global.max_backoff_attempt.max(s.max_backoff_attempt);
        }
        (global, per_proc)
    }

    /// Run manual GC rounds until the system stops reclaiming (two
    /// consecutive quiet rounds) or `max_rounds` elapse. Returns rounds run.
    ///
    /// Rounds alternate the detector's expansion mode: the paper's
    /// per-reference walks explore reference subsets (they can carve a
    /// pure cycle out of a web that converges with live references), while
    /// eager-combine visits settle whole processes (they cover densely
    /// shared garbage that per-reference walks cannot). The two are
    /// complementary; both are oracle-audited and safe.
    pub fn collect_to_fixpoint(&mut self, max_rounds: usize) -> usize {
        let original_mode = self.cfg.eager_combine;
        let mut quiet = 0;
        for round in 1..=max_rounds {
            self.cfg.eager_combine = round % 2 == 0 || original_mode;
            let before = (
                self.total_live_objects(),
                self.total_scions(),
                self.metrics.cycles_detected,
            );
            self.gc_round();
            let after = (
                self.total_live_objects(),
                self.total_scions(),
                self.metrics.cycles_detected,
            );
            if before == after {
                quiet += 1;
                if quiet >= 3 {
                    self.cfg.eager_combine = original_mode;
                    return round;
                }
            } else {
                quiet = 0;
            }
        }
        self.cfg.eager_combine = original_mode;
        max_rounds
    }

    /// Structural invariants that must hold between events; tests call this
    /// after scenarios.
    pub fn check_invariants(&self) -> Result<(), String> {
        for proc in &self.procs {
            let p = proc.proc();
            // Every remote reference held in the heap has a stub.
            for (slot, rec) in proc.heap.iter() {
                for r in rec.remote_refs() {
                    if proc.tables.stub(r).is_none() {
                        return Err(format!("{p}: object #{slot} holds unknown stub {r}"));
                    }
                }
            }
            // Every scion's target object is alive (the LGC must preserve
            // scion targets).
            for scion in proc.tables.scions() {
                if !proc.heap.contains(scion.target) {
                    return Err(format!(
                        "{p}: scion {} target {} dead",
                        scion.ref_id, scion.target
                    ));
                }
            }
            // Every stub targets a remote process and its id is unique by
            // construction (map-keyed).
            for stub in proc.tables.stubs() {
                if stub.target.proc == p {
                    return Err(format!("{p}: stub {} targets own process", stub.ref_id));
                }
            }
        }
        Ok(())
    }

    /// The set of globally reachable objects (oracle).
    pub fn oracle_live(&self) -> FxHashSet<ObjId> {
        oracle::global_live(self)
    }

    /// Tear the system apart into its processes (for the threaded
    /// runtime). All in-flight traffic must have been drained.
    pub fn into_procs(self) -> Vec<Process> {
        assert_eq!(
            self.net.in_flight(),
            0,
            "drain the network before extracting processes"
        );
        self.procs
    }
}

/// Everything one local collection produces *before* any shared state is
/// touched: `lgc_compute` fills it (possibly on a worker thread),
/// [`System::lgc_apply`] drains it on the simulation thread.
struct LgcWork {
    /// Objects reclaimed by the sweep.
    freed: u64,
    /// Freed handles the oracle considered live — the safety audit; empty
    /// in safe configurations and when `check_safety` is off.
    unsafe_freed: Vec<ObjId>,
    /// Scion-target slots at collection time, kept for the unsafe dump.
    targets: Vec<Slot>,
    /// Reference-listing messages built from the surviving stub table,
    /// not yet sent.
    nss: Vec<(ProcId, NewSetStubs)>,
}

/// Compute stage of a local collection at one process: trace + sweep the
/// heap, audit against the oracle, handle stub death per integration mode,
/// and build (but do not send) the `NewSetStubs` broadcast. Touches only
/// `proc`, so many processes can run this concurrently.
fn lgc_compute(
    proc: &mut Process,
    cfg: &GcConfig,
    num_procs: usize,
    now: SimTime,
    oracle_live: Option<&FxHashSet<ObjId>>,
) -> LgcWork {
    let targets = proc.tables.scion_target_slots();
    let result = lgc::collect_observed(&mut proc.heap, &targets, now, &mut proc.obs);
    let freed = result.sweep.freed.len() as u64;
    let unsafe_freed = match oracle_live {
        Some(live) => result
            .sweep
            .freed
            .iter()
            .copied()
            .filter(|f| live.contains(f))
            .collect(),
        None => Vec::new(),
    };

    // Stub-death handling per integration mode.
    let dead = result
        .mark
        .dead_stubs_among(proc.tables.stubs().map(|s| s.ref_id));
    match cfg.integration {
        IntegrationMode::VmIntegrated => {
            proc.tables.remove_dead_stubs(&dead);
        }
        IntegrationMode::WeakRefMonitor => {
            proc.tables.condemn_stubs(&dead);
            for &live_ref in &result.mark.live_stubs {
                proc.tables.pardon_stub(live_ref);
            }
        }
    }

    // Reference listing: the surviving stub sets, one message per peer.
    let p = proc.proc();
    let peers: Vec<ProcId> = (0..num_procs as u16)
        .map(ProcId)
        .filter(|&q| q != p)
        .collect();
    let nss = build_new_set_stubs(&mut proc.tables, &peers, now);
    LgcWork {
        freed,
        unsafe_freed,
        targets,
        nss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn manual(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 42)
    }

    #[test]
    fn invocation_creates_pairs_and_bumps_counters() {
        let mut sys = manual(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(0), 1);
        sys.add_root(a).unwrap();
        sys.add_root(c).unwrap();
        let r = sys.create_remote_ref(a, b).unwrap();
        // Invoke b through r, exporting c (a P0 object) to P1.
        sys.invoke(ProcId(0), r, InvokeSpec::exporting(vec![c]))
            .unwrap();
        sys.drain_network();
        assert_eq!(sys.proc(ProcId(0)).tables.stub(r).unwrap().ic, 1);
        assert_eq!(sys.proc(ProcId(1)).tables.scion(r).unwrap().ic, 1);
        // The export created a new pair: scion at P0, stub at P1, and b now
        // holds the reference.
        assert_eq!(sys.proc(ProcId(0)).tables.scion_count(), 1);
        assert_eq!(sys.proc(ProcId(1)).tables.stub_count(), 1);
        let held: Vec<RefId> = sys
            .proc(ProcId(1))
            .heap
            .get(b)
            .unwrap()
            .remote_refs()
            .collect();
        assert_eq!(held.len(), 1);
        sys.check_invariants().unwrap();
        assert_eq!(sys.metrics.invocations, 1);
        assert_eq!(sys.metrics.refs_exported, 1);
    }

    #[test]
    fn reply_bumps_counters_again_and_returns_refs() {
        let mut sys = manual(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let d = sys.alloc(ProcId(1), 1);
        sys.add_root(a).unwrap();
        sys.add_root(b).unwrap();
        sys.add_local_ref(b, d).unwrap();
        let r = sys.create_remote_ref(a, b).unwrap();
        let spec = InvokeSpec {
            reply_exports: vec![d],
            receiver: Some(a),
            ..InvokeSpec::default()
        };
        sys.invoke(ProcId(0), r, spec).unwrap();
        sys.drain_network();
        // Invocation + reply: both counters at 2.
        assert_eq!(sys.proc(ProcId(0)).tables.stub(r).unwrap().ic, 2);
        assert_eq!(sys.proc(ProcId(1)).tables.scion(r).unwrap().ic, 2);
        // a now holds a remote reference to d.
        let held: Vec<RefId> = sys
            .proc(ProcId(0))
            .heap
            .get(a)
            .unwrap()
            .remote_refs()
            .collect();
        assert_eq!(held.len(), 2, "original r plus returned ref");
        assert_eq!(sys.metrics.replies, 1);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn uninstrumented_remoting_skips_dgc_structures() {
        let mut sys = manual(2);
        sys.config_mut().instrument_remoting = false;
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(0), 1);
        sys.add_root(a).unwrap();
        sys.add_root(c).unwrap();
        let r = sys.create_remote_ref(a, b).unwrap();
        sys.invoke(ProcId(0), r, InvokeSpec::exporting(vec![c]))
            .unwrap();
        sys.drain_network();
        // No pair created for the export (Table 1 baseline).
        assert_eq!(sys.proc(ProcId(0)).tables.scion_count(), 0);
        assert_eq!(sys.proc(ProcId(1)).tables.stub_count(), 0);
    }

    #[test]
    fn acyclic_distributed_garbage_collected_by_reference_listing() {
        let mut sys = manual(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.add_root(a).unwrap();
        let r = sys.create_remote_ref(a, b).unwrap();
        sys.gc_round();
        assert_eq!(sys.total_live_objects(), 2, "both live while referenced");
        // Drop the reference: b becomes acyclic distributed garbage.
        sys.drop_remote_ref(a, r).unwrap();
        sys.collect_to_fixpoint(8);
        assert_eq!(sys.total_live_objects(), 1, "b reclaimed");
        assert_eq!(sys.total_scions(), 0);
        assert_eq!(sys.metrics.scions_reclaimed_acyclic, 1);
        assert_eq!(sys.metrics.safety_violations(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn fig3_cycle_collected_end_to_end() {
        let mut sys = manual(4);
        let fig = scenarios::fig3(&mut sys);
        // While rooted: GC rounds must reclaim nothing.
        sys.collect_to_fixpoint(6);
        assert_eq!(sys.total_live_objects(), 14);
        assert_eq!(sys.metrics.cycles_detected, 0, "live cycle never detected");
        // Cut the root: the 4-process cycle becomes garbage that acyclic
        // DGC alone cannot reclaim.
        sys.remove_root(fig.a).unwrap();
        let rounds = sys.collect_to_fixpoint(20);
        assert_eq!(
            sys.total_live_objects(),
            0,
            "cycle fully reclaimed after {rounds} rounds; metrics: {:?}",
            sys.metrics
        );
        assert_eq!(sys.total_scions(), 0);
        assert!(sys.metrics.cycles_detected >= 1);
        assert_eq!(sys.metrics.safety_violations(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn fig4_mutual_cycles_collected_end_to_end() {
        let mut sys = manual(6);
        let _fig = scenarios::fig4(&mut sys);
        let rounds = sys.collect_to_fixpoint(30);
        assert_eq!(
            sys.total_live_objects(),
            0,
            "mutually-linked cycles reclaimed after {rounds} rounds; {:?}",
            sys.metrics
        );
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn periodic_event_loop_collects_cycles() {
        let mut sys = System::new(4, GcConfig::default(), NetConfig::default(), 7);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        // Let the periodic schedules run for two simulated seconds.
        sys.run_for(SimDuration::from_millis(2_000));
        assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn message_loss_delays_but_does_not_break_collection() {
        let mut sys = System::new(4, GcConfig::default(), NetConfig::lossy(0.4), 11);
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        sys.run_for(SimDuration::from_millis(8_000));
        assert_eq!(
            sys.total_live_objects(),
            0,
            "40% GC-message loss tolerated; {:?}",
            sys.metrics
        );
        assert_eq!(sys.metrics.safety_violations(), 0);
        assert!(sys.net_stats().dropped > 0, "loss actually happened");
    }

    #[test]
    fn weakref_monitor_mode_collects_too() {
        let mut sys = System::new(
            4,
            GcConfig {
                integration: IntegrationMode::WeakRefMonitor,
                ..GcConfig::manual()
            },
            NetConfig::instant(),
            3,
        );
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        sys.collect_to_fixpoint(30);
        assert_eq!(sys.total_live_objects(), 0, "{:?}", sys.metrics);
        assert!(sys.metrics.monitor_passes > 0);
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn live_remote_chain_never_reclaimed() {
        let mut sys = manual(3);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(2), 1);
        sys.add_root(a).unwrap();
        sys.create_remote_ref(a, b).unwrap();
        sys.create_remote_ref(b, c).unwrap();
        sys.collect_to_fixpoint(10);
        assert_eq!(sys.total_live_objects(), 3);
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn sampling_records_bounded_validated_series() {
        use acdgc_model::SamplingConfig;
        let mut sys = System::new(
            4,
            GcConfig {
                sampling: SamplingConfig {
                    enabled: true,
                    sample_every: 2,
                    capacity: 8,
                },
                ..GcConfig::manual()
            },
            NetConfig::instant(),
            42,
        );
        let fig = scenarios::fig3(&mut sys);
        sys.remove_root(fig.a).unwrap();
        for _ in 0..30 {
            sys.gc_round();
        }
        let sampler = sys.sampler();
        assert!(sampler.enabled());
        assert_eq!(sampler.global().offered(), 15, "every 2nd of 30 rounds");
        assert!(sampler.global().len() <= 8, "decimated to capacity");
        assert_eq!(sampler.per_proc().len(), 4);
        let first = sampler.global().samples().first().unwrap();
        let last = sampler.global().samples().last().unwrap();
        assert_eq!((first.round, last.round), (2, 30), "endpoints preserved");
        assert!(
            last.objects_reclaimed >= 14,
            "the fig3 cycle's reclamation shows up in the series: {last:?}"
        );
        assert_eq!(last.live_objects, sys.total_live_objects() as u64);
        // The exported series embed in the trace artifact and validate.
        let trace = sys.trace();
        assert_eq!(trace.samples.len(), sampler.export().len());
        let check = trace.check();
        assert!(check.ok(), "{:?}", check.sample_violations);
        // Gauges appear in the Prometheus exposition.
        let prom = sys.to_prometheus();
        assert!(prom.contains("# TYPE acdgc_live_objects gauge"), "{prom}");
    }

    #[test]
    fn sampling_disabled_records_nothing_and_samples_no_trace_lines() {
        let mut sys = manual(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.add_root(a).unwrap();
        sys.create_remote_ref(a, b).unwrap();
        for _ in 0..5 {
            sys.gc_round();
        }
        assert!(!sys.sampler().enabled());
        assert!(sys.sampler().export().is_empty());
        assert!(sys.trace().samples.is_empty());
    }

    #[test]
    fn step_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut sys = System::new(4, GcConfig::default(), NetConfig::default(), seed);
            let fig = scenarios::fig3(&mut sys);
            sys.remove_root(fig.a).unwrap();
            sys.run_for(SimDuration::from_millis(1_500));
            (
                sys.metrics.cdms_sent,
                sys.metrics.cycles_detected,
                sys.total_live_objects(),
                sys.net_stats().sent,
            )
        };
        assert_eq!(run(21), run(21));
    }
}
