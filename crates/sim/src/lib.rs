//! Whole-system simulator for the ACDGC reproduction.
//!
//! [`System`] assembles N processes — each a heap ([`acdgc_heap`]), a
//! stub/scion table ([`acdgc_remoting`]), a published summarized graph
//! ([`acdgc_snapshot`]) and a cycle-detector instance ([`acdgc_dcda`]) —
//! over a deterministic simulated network ([`acdgc_net`]). It exposes:
//!
//! * a **mutator API** (allocate, root/unroot, local and remote reference
//!   edits, remote invocation with reference export/import both ways),
//! * **GC phases** driven either periodically by the event loop or
//!   manually by tests (`run_lgc`, `take_snapshot`, `run_scan`,
//!   `run_monitor`),
//! * a global **reachability oracle** used to verify safety (nothing live
//!   is ever reclaimed) and completeness (everything dead, including every
//!   distributed cycle, is eventually reclaimed),
//! * [`scenarios`] — executable versions of the paper's Figures 1–5 plus
//!   parametric topologies (rings, mutually-linked cycles, random graphs),
//! * [`workload`] — a seeded random mutator for property tests,
//! * [`threaded`] — a genuinely concurrent runtime (one OS thread per
//!   process, crossbeam channels as the transport) for the collection
//!   phase, demonstrating that the algorithm needs no global clock.
//!
//! ## Substituted atomicity
//!
//! Two cross-process actions are applied atomically by the simulator where
//! a real deployment uses the SSP-chain handshake of reference listing:
//! scion creation at reference-export time, and scion unpinning when the
//! importing process has materialized its stub. Both substitutions are
//! conservative (they only ever *extend* scion lifetime relative to the
//! handshake) and do not interact with the cycle detector's safety
//! argument, which rests on invocation counters alone.

#![warn(missing_docs)]

pub mod messages;
pub mod metrics;
pub mod oracle;
pub mod process;
pub mod scenarios;
pub mod system;
pub mod threaded;
pub mod workload;

pub use messages::{InvokeSpec, SysMessage};
pub use metrics::Metrics;
pub use oracle::{global_live, global_live_procs, live_count_by_proc, MutOp, ShadowGraph};
pub use process::Process;
pub use system::System;
pub use threaded::{merged_metrics, ReportHook, SweepHook, ThreadedOptions, ThreadedRun};
