//! Global reachability oracle.
//!
//! The oracle computes, with perfect knowledge of every heap and table,
//! the set of objects transitively reachable from *any* local root in the
//! system, crossing remote references through their stubs. Nothing the
//! collectors do consults the oracle — it exists to let tests and ablation
//! experiments judge them:
//!
//! * **safety**: a reclaimed object must never be oracle-live at the
//!   moment of reclamation;
//! * **completeness**: after mutator quiescence and enough GC rounds,
//!   every oracle-dead object must be reclaimed — including every
//!   distributed cycle, which is exactly what acyclic DGC alone cannot do.
//!
//! References in flight inside application messages are protected by
//! scion pins, not by the oracle; an object kept only by an in-flight
//! message is oracle-dead but never reclaimed, which is the conservative
//! direction.

use crate::system::System;
use acdgc_model::{ObjId, ProcId};
use rustc_hash::FxHashSet;

/// All objects reachable from any local root, across processes.
pub fn global_live(system: &System) -> FxHashSet<ObjId> {
    let mut live: FxHashSet<ObjId> = FxHashSet::default();
    let mut queue: Vec<ObjId> = Vec::new();
    for proc in system.procs() {
        for slot in proc.heap.roots() {
            if let Some(id) = proc.heap.id_of_slot(slot) {
                if live.insert(id) {
                    queue.push(id);
                }
            }
        }
    }
    while let Some(id) = queue.pop() {
        let proc = system.proc(id.proc);
        let Ok(record) = proc.heap.get(id) else {
            continue;
        };
        for slot in record.local_refs() {
            if let Some(next) = proc.heap.id_of_slot(slot) {
                if live.insert(next) {
                    queue.push(next);
                }
            }
        }
        for ref_id in record.remote_refs() {
            if let Some(stub) = proc.tables.stub(ref_id) {
                let target = stub.target;
                if system.proc(target.proc).heap.contains(target) && live.insert(target) {
                    queue.push(target);
                }
            }
        }
    }
    live
}

/// Is the remote reference `r`, held from `holder_proc`, still live —
/// i.e. does any oracle-live object of that process still hold it? A
/// scion may be deleted exactly when this is false (the reference itself
/// is garbage), even if the *target* object remains live through other
/// paths (its own roots or other references).
pub fn ref_is_live(
    system: &System,
    holder_proc: ProcId,
    r: acdgc_model::RefId,
    live: &FxHashSet<ObjId>,
) -> bool {
    let proc = system.proc(holder_proc);
    proc.heap.iter().any(|(slot, rec)| {
        rec.remote_refs().any(|held| held == r)
            && proc
                .heap
                .id_of_slot(slot)
                .is_some_and(|id| live.contains(&id))
    })
}

/// Oracle-live object counts per process (completeness assertions).
pub fn live_count_by_proc(system: &System) -> Vec<(ProcId, usize)> {
    let live = global_live(system);
    let mut counts = vec![0usize; system.num_procs()];
    for id in &live {
        counts[id.proc.index()] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (ProcId(i as u16), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{GcConfig, NetConfig};

    fn system(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 7)
    }

    #[test]
    fn local_chain_reachability() {
        let mut sys = system(1);
        let p = ProcId(0);
        let a = sys.alloc(p, 1);
        let b = sys.alloc(p, 1);
        let orphan = sys.alloc(p, 1);
        sys.add_local_ref(a, b).unwrap();
        sys.add_root(a).unwrap();
        let live = global_live(&sys);
        assert!(live.contains(&a) && live.contains(&b));
        assert!(!live.contains(&orphan));
    }

    #[test]
    fn crosses_remote_references() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_local_ref(b, c).unwrap();
        sys.add_root(a).unwrap();
        let live = global_live(&sys);
        assert_eq!(live.len(), 3);
        assert!(live.contains(&c), "remote hop then local hop");
    }

    #[test]
    fn unrooted_distributed_cycle_is_dead() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.create_remote_ref(b, a).unwrap();
        let live = global_live(&sys);
        assert!(live.is_empty(), "cycle with no roots is garbage");
        sys.add_root(a).unwrap();
        assert_eq!(
            global_live(&sys).len(),
            2,
            "rooting either end revives both"
        );
    }

    #[test]
    fn per_proc_counts() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_root(a).unwrap();
        let counts = live_count_by_proc(&sys);
        assert_eq!(counts, vec![(ProcId(0), 1), (ProcId(1), 1)]);
    }
}
