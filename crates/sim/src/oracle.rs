//! Global reachability oracle.
//!
//! The oracle computes, with perfect knowledge of every heap and table,
//! the set of objects transitively reachable from *any* local root in the
//! system, crossing remote references through their stubs. Nothing the
//! collectors do consults the oracle — it exists to let tests and ablation
//! experiments judge them:
//!
//! * **safety**: a reclaimed object must never be oracle-live at the
//!   moment of reclamation;
//! * **completeness**: after mutator quiescence and enough GC rounds,
//!   every oracle-dead object must be reclaimed — including every
//!   distributed cycle, which is exactly what acyclic DGC alone cannot do.
//!
//! References in flight inside application messages are protected by
//! scion pins, not by the oracle; an object kept only by an in-flight
//! message is oracle-dead but never reclaimed, which is the conservative
//! direction.

use crate::process::Process;
use crate::system::System;
use acdgc_model::{ObjId, ProcId, RefId};
use rustc_hash::{FxHashMap, FxHashSet};

/// All objects reachable from any local root, across processes.
pub fn global_live(system: &System) -> FxHashSet<ObjId> {
    global_live_procs(system.procs())
}

/// [`global_live`] over a bare process slice, for runtimes that do not
/// wrap their processes in a [`System`] (the threaded runtime hands the
/// oracle its final unwrapped processes). `procs[i]` must be `ProcId(i)`.
pub fn global_live_procs(procs: &[Process]) -> FxHashSet<ObjId> {
    let mut live: FxHashSet<ObjId> = FxHashSet::default();
    let mut queue: Vec<ObjId> = Vec::new();
    for proc in procs {
        for slot in proc.heap.roots() {
            if let Some(id) = proc.heap.id_of_slot(slot) {
                if live.insert(id) {
                    queue.push(id);
                }
            }
        }
    }
    while let Some(id) = queue.pop() {
        let proc = &procs[id.proc.index()];
        let Ok(record) = proc.heap.get(id) else {
            continue;
        };
        for slot in record.local_refs() {
            if let Some(next) = proc.heap.id_of_slot(slot) {
                if live.insert(next) {
                    queue.push(next);
                }
            }
        }
        for ref_id in record.remote_refs() {
            if let Some(stub) = proc.tables.stub(ref_id) {
                let target = stub.target;
                if procs[target.proc.index()].heap.contains(target) && live.insert(target) {
                    queue.push(target);
                }
            }
        }
    }
    live
}

/// Is the remote reference `r`, held from `holder_proc`, still live —
/// i.e. does any oracle-live object of that process still hold it? A
/// scion may be deleted exactly when this is false (the reference itself
/// is garbage), even if the *target* object remains live through other
/// paths (its own roots or other references).
pub fn ref_is_live(
    system: &System,
    holder_proc: ProcId,
    r: acdgc_model::RefId,
    live: &FxHashSet<ObjId>,
) -> bool {
    let proc = system.proc(holder_proc);
    proc.heap.iter().any(|(slot, rec)| {
        rec.remote_refs().any(|held| held == r)
            && proc
                .heap
                .id_of_slot(slot)
                .is_some_and(|id| live.contains(&id))
    })
}

/// One graph edit performed by a concurrent mutator, recorded while the
/// owning process lock was held (so the log's order is consistent with
/// every per-object order the heaps observed).
///
/// The log exists for verification only: [`ShadowGraph::apply_log`]
/// replays it over a pre-run snapshot of the object graph to recompute
/// ground-truth liveness for a run whose mutator raced the collectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutOp {
    /// A fresh object appeared (optionally rooted at birth).
    Allocate {
        /// The new object.
        obj: ObjId,
        /// Whether it was rooted in the same critical section.
        rooted: bool,
    },
    /// `obj` became a local root.
    AddRoot(ObjId),
    /// `obj` stopped being a local root.
    RemoveRoot(ObjId),
    /// A local edge `from -> to` was added.
    AddLocalRef(ObjId, ObjId),
    /// A local edge `from -> to` was removed.
    RemoveLocalRef(ObjId, ObjId),
    /// `from` gained a remote edge through `ref_id`, which designates `to`.
    AddRemoteRef(ObjId, RefId, ObjId),
    /// `from` lost its remote edge through `ref_id`.
    RemoveRemoteRef(ObjId, RefId),
}

/// An edge in the shadow graph: local edges name their target directly,
/// remote edges go through the reference id (resolved via
/// [`ShadowGraph::ref_targets`], mirroring stub indirection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShadowRef {
    Direct(ObjId),
    Via(RefId),
}

/// A pure object-graph model — no stubs, scions, pins or collectors —
/// built from the pre-run heaps and advanced by replaying a [`MutOp`] log.
///
/// Its [`Self::live`] set is the ground truth a concurrent run is judged
/// against: the collectors may not delete any shadow-live object
/// (safety), and must eventually delete every shadow-dead one
/// (completeness), no matter how the mutator raced them.
#[derive(Clone, Debug, Default)]
pub struct ShadowGraph {
    roots: FxHashSet<ObjId>,
    edges: FxHashMap<ObjId, Vec<ShadowRef>>,
    ref_targets: FxHashMap<RefId, ObjId>,
}

impl ShadowGraph {
    /// Capture the object graph of `procs` (typically before a run
    /// starts). Remote references resolve through the current stub tables.
    pub fn shadow_of(procs: &[Process]) -> Self {
        let mut g = ShadowGraph::default();
        for proc in procs {
            for slot in proc.heap.roots() {
                if let Some(id) = proc.heap.id_of_slot(slot) {
                    g.roots.insert(id);
                }
            }
            for (slot, record) in proc.heap.iter() {
                let Some(id) = proc.heap.id_of_slot(slot) else {
                    continue;
                };
                let out = g.edges.entry(id).or_default();
                for target_slot in record.local_refs() {
                    if let Some(target) = proc.heap.id_of_slot(target_slot) {
                        out.push(ShadowRef::Direct(target));
                    }
                }
                for ref_id in record.remote_refs() {
                    out.push(ShadowRef::Via(ref_id));
                    if let Some(stub) = proc.tables.stub(ref_id) {
                        g.ref_targets.insert(ref_id, stub.target);
                    }
                }
            }
        }
        g
    }

    /// Replay a mutation log over the captured graph.
    pub fn apply_log(&mut self, log: &[MutOp]) {
        for op in log {
            match *op {
                MutOp::Allocate { obj, rooted } => {
                    self.edges.entry(obj).or_default();
                    if rooted {
                        self.roots.insert(obj);
                    }
                }
                MutOp::AddRoot(o) => {
                    self.roots.insert(o);
                }
                MutOp::RemoveRoot(o) => {
                    self.roots.remove(&o);
                }
                MutOp::AddLocalRef(from, to) => {
                    self.edges
                        .entry(from)
                        .or_default()
                        .push(ShadowRef::Direct(to));
                }
                MutOp::RemoveLocalRef(from, to) => {
                    if let Some(out) = self.edges.get_mut(&from) {
                        if let Some(i) = out.iter().position(|r| *r == ShadowRef::Direct(to)) {
                            out.swap_remove(i);
                        }
                    }
                }
                MutOp::AddRemoteRef(from, ref_id, to) => {
                    self.edges
                        .entry(from)
                        .or_default()
                        .push(ShadowRef::Via(ref_id));
                    self.ref_targets.insert(ref_id, to);
                }
                MutOp::RemoveRemoteRef(from, ref_id) => {
                    if let Some(out) = self.edges.get_mut(&from) {
                        if let Some(i) = out.iter().position(|r| *r == ShadowRef::Via(ref_id)) {
                            out.swap_remove(i);
                        }
                    }
                }
            }
        }
    }

    /// Ground-truth live set: everything reachable from the shadow roots.
    pub fn live(&self) -> FxHashSet<ObjId> {
        let mut live: FxHashSet<ObjId> = FxHashSet::default();
        let mut queue: Vec<ObjId> = self.roots.iter().copied().collect();
        live.extend(queue.iter().copied());
        while let Some(id) = queue.pop() {
            let Some(out) = self.edges.get(&id) else {
                continue;
            };
            for r in out {
                let target = match r {
                    ShadowRef::Direct(t) => Some(*t),
                    ShadowRef::Via(ref_id) => self.ref_targets.get(ref_id).copied(),
                };
                if let Some(t) = target {
                    if live.insert(t) {
                        queue.push(t);
                    }
                }
            }
        }
        live
    }
}

/// Oracle-live object counts per process (completeness assertions).
pub fn live_count_by_proc(system: &System) -> Vec<(ProcId, usize)> {
    let live = global_live(system);
    let mut counts = vec![0usize; system.num_procs()];
    for id in &live {
        counts[id.proc.index()] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (ProcId(i as u16), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{GcConfig, NetConfig};

    fn system(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 7)
    }

    #[test]
    fn local_chain_reachability() {
        let mut sys = system(1);
        let p = ProcId(0);
        let a = sys.alloc(p, 1);
        let b = sys.alloc(p, 1);
        let orphan = sys.alloc(p, 1);
        sys.add_local_ref(a, b).unwrap();
        sys.add_root(a).unwrap();
        let live = global_live(&sys);
        assert!(live.contains(&a) && live.contains(&b));
        assert!(!live.contains(&orphan));
    }

    #[test]
    fn crosses_remote_references() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_local_ref(b, c).unwrap();
        sys.add_root(a).unwrap();
        let live = global_live(&sys);
        assert_eq!(live.len(), 3);
        assert!(live.contains(&c), "remote hop then local hop");
    }

    #[test]
    fn unrooted_distributed_cycle_is_dead() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.create_remote_ref(b, a).unwrap();
        let live = global_live(&sys);
        assert!(live.is_empty(), "cycle with no roots is garbage");
        sys.add_root(a).unwrap();
        assert_eq!(
            global_live(&sys).len(),
            2,
            "rooting either end revives both"
        );
    }

    #[test]
    fn shadow_matches_oracle_on_static_graph() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        let c = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_local_ref(b, c).unwrap();
        sys.add_root(a).unwrap();
        let shadow = ShadowGraph::shadow_of(sys.procs());
        assert_eq!(shadow.live(), global_live(&sys));
    }

    #[test]
    fn shadow_replay_tracks_mutations() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_root(a).unwrap();
        let mut shadow = ShadowGraph::shadow_of(sys.procs());
        assert_eq!(shadow.live().len(), 2);
        // A new rooted object gains a local edge; the remote edge drops.
        let c = ObjId::new(ProcId(0), 99, 0);
        let r = sys
            .proc(ProcId(0))
            .heap
            .get(a)
            .unwrap()
            .remote_refs()
            .next()
            .unwrap();
        shadow.apply_log(&[
            MutOp::Allocate {
                obj: c,
                rooted: true,
            },
            MutOp::AddLocalRef(c, a),
            MutOp::RemoveRoot(a),
            MutOp::RemoveRemoteRef(a, r),
        ]);
        let live = shadow.live();
        assert!(live.contains(&c) && live.contains(&a), "c roots a");
        assert!(!live.contains(&b), "dropped remote edge kills b");
        // Re-adding the remote edge (re-export) revives b.
        shadow.apply_log(&[MutOp::AddRemoteRef(a, r, b)]);
        assert!(shadow.live().contains(&b));
    }

    #[test]
    fn per_proc_counts() {
        let mut sys = system(2);
        let a = sys.alloc(ProcId(0), 1);
        let b = sys.alloc(ProcId(1), 1);
        sys.create_remote_ref(a, b).unwrap();
        sys.add_root(a).unwrap();
        let counts = live_count_by_proc(&sys);
        assert_eq!(counts, vec![(ProcId(0), 1), (ProcId(1), 1)]);
    }
}
