//! One simulated process: heap + remoting tables + published summary +
//! detector heuristic state + GC scheduling.

use crate::metrics::Metrics;
use acdgc_dcda::{scan_candidates, scan_candidates_observed, CandidateScan, CandidateState};
use acdgc_heap::Heap;
use acdgc_model::{GcConfig, ProcId, SimTime, SummarizerKind};
use acdgc_obs::ProcTrace;
use acdgc_remoting::RemotingTables;
use acdgc_snapshot::{SccEngine, SummarizedGraph};

/// The state of one process. Mutation flows through [`crate::System`]
/// (which owns all processes and the network), or through a
/// [`crate::threaded`] runtime cell.
#[derive(Clone, Debug)]
pub struct Process {
    /// The process's object heap and roots.
    pub heap: Heap,
    /// Stub/scion tables, invocation counters, acyclic-DGC state.
    pub tables: RemotingTables,
    /// Latest *published* summary — the only view the DCDA may use. Starts
    /// empty: a process that never summarized never answers CDMs.
    pub summary: SummarizedGraph,
    /// Candidate tracking: ages, retry backoff, proven-live suppression.
    pub candidates: CandidateState,
    /// Reusable single-pass summarizer: per-process so parallel snapshot
    /// stages share nothing, and so its scratch amortizes across rounds.
    pub engine: SccEngine,
    /// Per-process event ring + phase histograms. Disabled unless
    /// `cfg.trace.enabled`; runtimes link all processes to one shared
    /// sequence counter so the collected view is totally ordered.
    pub obs: ProcTrace,
    /// This process's share of the system counters. The runtimes keep the
    /// merged [`Metrics`] too; per-process attribution is what skewed
    /// workloads need.
    pub metrics: Metrics,
    /// Next scheduled LGC time (periodic mode).
    pub next_lgc: SimTime,
    /// Next scheduled snapshot time (periodic mode).
    pub next_snapshot: SimTime,
    /// Next scheduled candidate-scan time (periodic mode).
    pub next_scan: SimTime,
    /// Next scheduled weak-ref monitor pass (periodic mode).
    pub next_monitor: SimTime,
    summary_version: u64,
}

impl Process {
    /// Create a process with phase schedules staggered by `proc` index so
    /// processes do not run in lockstep (the paper's processes are fully
    /// independent).
    pub fn new(proc: ProcId, cfg: &GcConfig) -> Self {
        let stagger = |base: u64| SimTime(base / 7 * (proc.index() as u64 % 7) + 1);
        Process {
            heap: Heap::new(proc),
            tables: RemotingTables::new(proc),
            summary: SummarizedGraph::empty(proc),
            candidates: CandidateState::new(),
            engine: SccEngine::new(),
            obs: ProcTrace::new(proc, &cfg.trace),
            metrics: Metrics::default(),
            next_lgc: stagger(cfg.lgc_period.as_ticks()),
            next_snapshot: stagger(cfg.snapshot_period.as_ticks()),
            next_scan: stagger(cfg.scan_period.as_ticks()),
            next_monitor: stagger(cfg.monitor_period.as_ticks()),
            summary_version: 0,
        }
    }

    /// The process's id.
    pub fn proc(&self) -> ProcId {
        self.heap.proc()
    }

    /// Bump and return the next summary version.
    pub fn next_summary_version(&mut self) -> u64 {
        self.summary_version += 1;
        self.summary_version
    }

    /// Re-summarize the heap and publish the result, using the configured
    /// summarizer implementation, then prune candidate state against the
    /// fresh summary. Touches only this process — safe to run for many
    /// processes in parallel (each process traces into its own ring).
    pub fn refresh_summary(&mut self, kind: SummarizerKind, now: SimTime) {
        let version = self.next_summary_version();
        self.summary = match kind {
            SummarizerKind::SccEngine => self.engine.summarize_observed(
                &self.heap,
                &self.tables,
                version,
                now,
                &mut self.obs,
            ),
            SummarizerKind::Reference => acdgc_snapshot::summarize_observed(
                &self.heap,
                &self.tables,
                version,
                now,
                &mut self.obs,
            ),
            SummarizerKind::Adaptive => self.engine.summarize_adaptive_observed(
                &self.heap,
                &self.tables,
                version,
                now,
                &mut self.obs,
            ),
        };
        self.candidates.retain_known(&self.summary);
    }

    /// Candidate scan over the published summary: which scions to start
    /// detections from now, plus how many eligible scions are throttled
    /// (retry backoff / scan cap). Shared by the sequential and threaded
    /// runtimes so both see one retry policy.
    pub fn scan(&mut self, now: SimTime, cfg: &GcConfig) -> CandidateScan {
        if self.obs.enabled() {
            scan_candidates_observed(&self.summary, &mut self.candidates, now, cfg, &mut self.obs)
        } else {
            scan_candidates(&self.summary, &mut self.candidates, now, cfg)
        }
    }

    /// Earliest scheduled phase time for the event loop.
    pub fn next_task_at(&self) -> SimTime {
        self.next_lgc
            .min(self.next_snapshot)
            .min(self.next_scan)
            .min(self.next_monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggering_differs_across_processes() {
        let cfg = GcConfig::default();
        let a = Process::new(ProcId(1), &cfg);
        let b = Process::new(ProcId(2), &cfg);
        assert_ne!(a.next_lgc, b.next_lgc);
    }

    #[test]
    fn version_monotone() {
        let cfg = GcConfig::default();
        let mut p = Process::new(ProcId(0), &cfg);
        assert_eq!(p.next_summary_version(), 1);
        assert_eq!(p.next_summary_version(), 2);
    }

    #[test]
    fn next_task_is_minimum() {
        let cfg = GcConfig::default();
        let mut p = Process::new(ProcId(0), &cfg);
        p.next_lgc = SimTime(50);
        p.next_snapshot = SimTime(10);
        p.next_scan = SimTime(70);
        p.next_monitor = SimTime(90);
        assert_eq!(p.next_task_at(), SimTime(10));
    }

    #[test]
    fn trace_disabled_by_default_enabled_by_config() {
        let mut cfg = GcConfig::default();
        let p = Process::new(ProcId(0), &cfg);
        assert!(!p.obs.enabled());
        cfg.trace = acdgc_model::TraceConfig::on();
        let p = Process::new(ProcId(0), &cfg);
        assert!(p.obs.enabled());
    }
}
