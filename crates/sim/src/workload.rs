//! Seeded random mutator workloads.
//!
//! The property tests drive a [`System`] with a random but reproducible
//! stream of mutator operations — allocations, rooting, reference edits,
//! remote invocations with reference export — interleaved with GC phases,
//! then quiesce the mutator and assert the two collector properties:
//! nothing live was ever reclaimed (the oracle counters stay zero) and
//! everything dead, including distributed cycles, is eventually reclaimed.

use crate::messages::InvokeSpec;
use crate::system::System;
use acdgc_model::{ObjId, ProcId, RefId};
use rand::Rng;

/// Operation mix for [`RandomMutator`]; weights are relative.
#[derive(Clone, Debug)]
pub struct MutatorConfig {
    /// Weight of *allocate a new object*.
    pub alloc_weight: u32,
    /// Weight of *root an existing object*.
    pub add_root_weight: u32,
    /// Weight of *unroot a rooted object*.
    pub remove_root_weight: u32,
    /// Weight of *add a local edge*.
    pub add_local_ref_weight: u32,
    /// Weight of *remove a local edge*.
    pub remove_local_ref_weight: u32,
    /// Weight of *create a remote reference*.
    pub add_remote_ref_weight: u32,
    /// Weight of *drop a remote reference*.
    pub drop_remote_ref_weight: u32,
    /// Weight of *invoke along a remote reference*.
    pub invoke_weight: u32,
    /// Probability an invocation exports a reference.
    pub export_probability: f64,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        MutatorConfig {
            alloc_weight: 4,
            add_root_weight: 2,
            remove_root_weight: 2,
            add_local_ref_weight: 5,
            remove_local_ref_weight: 3,
            add_remote_ref_weight: 4,
            drop_remote_ref_weight: 3,
            invoke_weight: 3,
            export_probability: 0.5,
        }
    }
}

/// A random mutator. Tracks the handles it created; operations on handles
/// that have since been reclaimed are skipped (a real mutator cannot hold a
/// reference to a reclaimed object — the tracked pool is *conservative*,
/// not a root set).
#[derive(Clone, Debug)]
pub struct RandomMutator {
    cfg: MutatorConfig,
    /// Objects the mutator has allocated (may be stale).
    pool: Vec<ObjId>,
    /// (holder, ref) pairs for local edges added (may be stale).
    local_edges: Vec<(ObjId, ObjId)>,
    /// (holder, ref id) pairs for remote edges added (may be stale).
    remote_edges: Vec<(ObjId, RefId)>,
    ops_applied: u64,
}

impl RandomMutator {
    /// A mutator with the given op mix and no tracked handles yet.
    pub fn new(cfg: MutatorConfig) -> Self {
        RandomMutator {
            cfg,
            pool: Vec::new(),
            local_edges: Vec::new(),
            remote_edges: Vec::new(),
            ops_applied: 0,
        }
    }

    /// How many operations actually applied (skips excluded).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    fn live_pair<R: Rng>(
        &self,
        sys: &System,
        rng: &mut R,
        same_proc: bool,
    ) -> Option<(ObjId, ObjId)> {
        let live: Vec<ObjId> = self
            .pool
            .iter()
            .copied()
            .filter(|o| sys.proc(o.proc).heap.contains(*o))
            .collect();
        if live.len() < 2 {
            return None;
        }
        for _ in 0..16 {
            let a = live[rng.gen_range(0..live.len())];
            let b = live[rng.gen_range(0..live.len())];
            if a != b && (a.proc == b.proc) == same_proc {
                return Some((a, b));
            }
        }
        None
    }

    /// Apply one random operation. Returns `true` if an operation ran.
    pub fn step<R: Rng>(&mut self, sys: &mut System, rng: &mut R) -> bool {
        let c = &self.cfg;
        let total = c.alloc_weight
            + c.add_root_weight
            + c.remove_root_weight
            + c.add_local_ref_weight
            + c.remove_local_ref_weight
            + c.add_remote_ref_weight
            + c.drop_remote_ref_weight
            + c.invoke_weight;
        let mut pick = rng.gen_range(0..total);
        let mut take = |w: u32| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        };

        let applied = if take(c.alloc_weight) {
            let p = ProcId(rng.gen_range(0..sys.num_procs()) as u16);
            let obj = sys.alloc(p, rng.gen_range(1..4));
            if rng.gen_bool(0.3) {
                let _ = sys.add_root(obj);
            }
            self.pool.push(obj);
            true
        } else if take(c.add_root_weight) {
            self.pick_live(sys, rng)
                .map(|o| sys.add_root(o).is_ok())
                .unwrap_or(false)
        } else if take(c.remove_root_weight) {
            self.pick_live(sys, rng)
                .map(|o| matches!(sys.remove_root(o), Ok(true)))
                .unwrap_or(false)
        } else if take(c.add_local_ref_weight) {
            if let Some((a, b)) = self.live_pair(sys, rng, true) {
                if sys.add_local_ref(a, b).is_ok() {
                    self.local_edges.push((a, b));
                    true
                } else {
                    false
                }
            } else {
                false
            }
        } else if take(c.remove_local_ref_weight) {
            if self.local_edges.is_empty() {
                false
            } else {
                let i = rng.gen_range(0..self.local_edges.len());
                let (a, b) = self.local_edges.swap_remove(i);
                sys.proc(a.proc).heap.contains(a) && sys.remove_local_ref(a, b).is_ok()
            }
        } else if take(c.add_remote_ref_weight) {
            if let Some((a, b)) = self.live_pair(sys, rng, false) {
                match sys.create_remote_ref(a, b) {
                    Ok(r) => {
                        self.remote_edges.push((a, r));
                        true
                    }
                    Err(_) => false,
                }
            } else {
                false
            }
        } else if take(c.drop_remote_ref_weight) {
            if self.remote_edges.is_empty() {
                false
            } else {
                let i = rng.gen_range(0..self.remote_edges.len());
                let (a, r) = self.remote_edges.swap_remove(i);
                sys.proc(a.proc).heap.contains(a) && sys.drop_remote_ref(a, r).is_ok()
            }
        } else {
            // Invoke through a random live remote edge, possibly exporting
            // a reference to a random live object.
            if self.remote_edges.is_empty() {
                false
            } else {
                let i = rng.gen_range(0..self.remote_edges.len());
                let (holder, r) = self.remote_edges[i];
                if !sys.proc(holder.proc).heap.contains(holder)
                    || sys.proc(holder.proc).tables.stub(r).is_none()
                {
                    false
                } else {
                    let mut spec = InvokeSpec::with_reply();
                    if rng.gen_bool(self.cfg.export_probability) {
                        if let Some(obj) = self.pick_live(sys, rng) {
                            spec.exports.push(obj);
                        }
                    }
                    sys.invoke(holder.proc, r, spec).is_ok()
                }
            }
        };
        if applied {
            self.ops_applied += 1;
        }
        applied
    }

    fn pick_live<R: Rng>(&self, sys: &System, rng: &mut R) -> Option<ObjId> {
        let live: Vec<ObjId> = self
            .pool
            .iter()
            .copied()
            .filter(|o| sys.proc(o.proc).heap.contains(*o))
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[rng.gen_range(0..live.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::rng::component_rng;
    use acdgc_model::{GcConfig, NetConfig};

    #[test]
    fn mutator_applies_operations_and_preserves_invariants() {
        let mut sys = System::new(3, GcConfig::manual(), NetConfig::instant(), 5);
        let mut rng = component_rng(5, "workload-test");
        let mut mutator = RandomMutator::new(MutatorConfig::default());
        for _ in 0..400 {
            mutator.step(&mut sys, &mut rng);
        }
        sys.drain_network();
        assert!(mutator.ops_applied() > 100, "most ops should apply");
        sys.check_invariants().unwrap();
        assert_eq!(sys.metrics.safety_violations(), 0);
    }

    #[test]
    fn mutator_is_reproducible() {
        let run = |seed: u64| {
            let mut sys = System::new(3, GcConfig::manual(), NetConfig::instant(), seed);
            let mut rng = component_rng(seed, "workload-test");
            let mut mutator = RandomMutator::new(MutatorConfig::default());
            for _ in 0..200 {
                mutator.step(&mut sys, &mut rng);
            }
            sys.drain_network();
            (
                sys.total_live_objects(),
                sys.total_scions(),
                sys.metrics.invocations,
            )
        };
        assert_eq!(run(9), run(9));
    }
}
