//! Executable versions of the paper's figures and parametric topologies.
//!
//! Each builder constructs the exact object graph of a figure inside a
//! [`System`] and returns the handles (objects and reference ids) that the
//! paper names, so integration tests can assert the worked algebra traces
//! step by step. The mapping from the paper's object-name terms to our
//! reference-id terms is one-to-one because every object in the figures
//! has exactly one incoming remote reference (see DESIGN.md).

use crate::system::System;
use acdgc_model::{ObjId, ProcId, RefId};
use rand::Rng;

/// Handles for Figure 3, "A simple distributed garbage cycle".
///
/// Cycle: `{F,H,J}_P2 → {Q,R,S}_P4 → {O,M,K}_P3 → {D,C,B}_P1 → F_P2`,
/// plus `A_P1` which holds the cycle reachable from P1's root until
/// dropped. Paper-term to reference mapping:
/// `F_P2 ≙ r_bf`, `Q_P4 ≙ r_jq`, `O_P3 ≙ r_so`, `D_P1 ≙ r_kd`.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Hosts `A`–`D`; the paper's P1.
    pub p1: ProcId,
    /// Hosts `F`, `H`, `J`; the paper's P2.
    pub p2: ProcId,
    /// Hosts `O`, `M`, `K`; the paper's P3.
    pub p3: ProcId,
    /// Hosts `Q`, `R`, `S`; the paper's P4.
    pub p4: ProcId,
    /// `A_P1`: the rooted holder keeping the cycle alive until dropped.
    pub a: ObjId,
    /// `F_P2`: the cycle's entry object on P2.
    pub f: ObjId,
    /// `B_P1 → F_P2`: the candidate scion lives at P2.
    pub r_bf: RefId,
    /// `J_P2 → Q_P4`.
    pub r_jq: RefId,
    /// `S_P4 → O_P3`.
    pub r_so: RefId,
    /// `K_P3 → D_P1`.
    pub r_kd: RefId,
}

/// Build Figure 3 in processes P0..P3 of `sys` (named P1..P4 in the paper).
/// `A_P1` is rooted; drop it with [`System::remove_root`] to create the
/// garbage cycle.
pub fn fig3(sys: &mut System) -> Fig3 {
    assert!(sys.num_procs() >= 4);
    let (p1, p2, p3, p4) = (ProcId(0), ProcId(1), ProcId(2), ProcId(3));

    // P1: A -> D -> C -> B -> (remote F).
    let a = sys.alloc(p1, 1);
    let d = sys.alloc(p1, 1);
    let c = sys.alloc(p1, 1);
    let b = sys.alloc(p1, 1);
    sys.add_local_ref(a, d).unwrap();
    sys.add_local_ref(d, c).unwrap();
    sys.add_local_ref(c, b).unwrap();
    sys.add_root(a).unwrap();

    // P2: F -> G, F -> H, G -> H, H -> J, J -> (remote Q).
    let f = sys.alloc(p2, 1);
    let g = sys.alloc(p2, 1);
    let h = sys.alloc(p2, 1);
    let j = sys.alloc(p2, 1);
    sys.add_local_ref(f, g).unwrap();
    sys.add_local_ref(f, h).unwrap();
    sys.add_local_ref(g, h).unwrap();
    sys.add_local_ref(h, j).unwrap();

    // P4: Q -> R -> S -> (remote O).
    let q = sys.alloc(p4, 1);
    let r = sys.alloc(p4, 1);
    let s = sys.alloc(p4, 1);
    sys.add_local_ref(q, r).unwrap();
    sys.add_local_ref(r, s).unwrap();

    // P3: O -> M -> K -> (remote D).
    let o = sys.alloc(p3, 1);
    let m = sys.alloc(p3, 1);
    let k = sys.alloc(p3, 1);
    sys.add_local_ref(o, m).unwrap();
    sys.add_local_ref(m, k).unwrap();

    let r_bf = sys.create_remote_ref(b, f).unwrap();
    let r_jq = sys.create_remote_ref(j, q).unwrap();
    let r_so = sys.create_remote_ref(s, o).unwrap();
    let r_kd = sys.create_remote_ref(k, d).unwrap();

    Fig3 {
        p1,
        p2,
        p3,
        p4,
        a,
        f,
        r_bf,
        r_jq,
        r_so,
        r_kd,
    }
}

/// Handles for Figure 4, "Mutually-linked distributed cycles" (§3.1).
///
/// Left cycle: `F_P2 → V_P5 → (W) → T_P4 → D_P1 → F_P2`.
/// Right cycle: `F_P2 → K_P3 → ZB_P6 → Y_P5 → (W) → T_P4 → D_P1 → F_P2`.
/// `W` is the P5-local join object through which both `V` and `Y` reach the
/// single stub to `T_P4` — this reproduces the paper's
/// `ScionsTo({T_P4}) ⇒ {Y_P5}` extra dependency exactly.
///
/// Term mapping: `F ≙ r_df`, `V ≙ r_fv`, `K ≙ r_fk`, `T ≙ r_wt`,
/// `D ≙ r_td`, `ZB ≙ r_kzb`, `Y ≙ r_zby`.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// The paper's P1.
    pub p1: ProcId,
    /// The paper's P2.
    pub p2: ProcId,
    /// The paper's P3.
    pub p3: ProcId,
    /// The paper's P4.
    pub p4: ProcId,
    /// The paper's P5.
    pub p5: ProcId,
    /// The paper's P6.
    pub p6: ProcId,
    /// `F`: the object shared by both cycles (their intersection point).
    pub f: ObjId,
    /// `D → F`, closing the first cycle.
    pub r_df: RefId,
    /// `F → V`, the first cycle's outbound edge.
    pub r_fv: RefId,
    /// `F → K`, the second cycle's outbound edge.
    pub r_fk: RefId,
    /// `W → T` inside the first cycle.
    pub r_wt: RefId,
    /// `T → D` inside the first cycle.
    pub r_td: RefId,
    /// `K → ZB` inside the second cycle.
    pub r_kzb: RefId,
    /// `ZB → Y` inside the second cycle.
    pub r_zby: RefId,
}

/// Build Figure 4 in processes P0..P5 of `sys` (paper's P1..P6). The whole
/// structure is garbage from the start (no roots).
pub fn fig4(sys: &mut System) -> Fig4 {
    assert!(sys.num_procs() >= 6);
    let (p1, p2, p3, p4, p5, p6) = (
        ProcId(0),
        ProcId(1),
        ProcId(2),
        ProcId(3),
        ProcId(4),
        ProcId(5),
    );

    let f = sys.alloc(p2, 1);
    let v = sys.alloc(p5, 1);
    let y = sys.alloc(p5, 1);
    let w = sys.alloc(p5, 1);
    let t = sys.alloc(p4, 1);
    let d = sys.alloc(p1, 1);
    let k = sys.alloc(p3, 1);
    let zb = sys.alloc(p6, 1);

    sys.add_local_ref(v, w).unwrap();
    sys.add_local_ref(y, w).unwrap();

    let r_fv = sys.create_remote_ref(f, v).unwrap();
    let r_fk = sys.create_remote_ref(f, k).unwrap();
    let r_wt = sys.create_remote_ref(w, t).unwrap();
    let r_td = sys.create_remote_ref(t, d).unwrap();
    let r_df = sys.create_remote_ref(d, f).unwrap();
    let r_kzb = sys.create_remote_ref(k, zb).unwrap();
    let r_zby = sys.create_remote_ref(zb, y).unwrap();

    Fig4 {
        p1,
        p2,
        p3,
        p4,
        p5,
        p6,
        f,
        r_df,
        r_fv,
        r_fk,
        r_wt,
        r_td,
        r_kzb,
        r_zby,
    }
}

/// Handles for Figure 1, "Identifying dependencies in cycles": a cycle
/// `x_P1 → y_P2 → z_P3 → x_P1` plus a *live* extra converging dependency
/// `w_P4 → x_P1` (w is rooted in its own process P4 — reference-listing
/// granularity shares pairs per process, so a distinct dependency needs a
/// distinct holder process).
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// `X`: the cycle member every dependency converges on.
    pub x: ObjId,
    /// `W`: the rooted outside holder pointing into the cycle.
    pub w: ObjId,
    /// `X → Y` inside the cycle.
    pub r_xy: RefId,
    /// `Y → Z` inside the cycle.
    pub r_yz: RefId,
    /// `Z → X`, closing the cycle.
    pub r_zx: RefId,
    /// The extra converging dependency the detector must account for.
    pub r_wx: RefId,
}

/// Build Figure 1 in `sys` (needs ≥ 4 processes); see [`Fig1`].
pub fn fig1(sys: &mut System) -> Fig1 {
    assert!(sys.num_procs() >= 4);
    let (p1, p2, p3, p4) = (ProcId(0), ProcId(1), ProcId(2), ProcId(3));
    let x = sys.alloc(p1, 1);
    let y = sys.alloc(p2, 1);
    let z = sys.alloc(p3, 1);
    let w = sys.alloc(p4, 1);
    sys.add_root(w).unwrap();
    let r_xy = sys.create_remote_ref(x, y).unwrap();
    let r_yz = sys.create_remote_ref(y, z).unwrap();
    let r_zx = sys.create_remote_ref(z, x).unwrap();
    let r_wx = sys.create_remote_ref(w, x).unwrap();
    Fig1 {
        x,
        w,
        r_xy,
        r_yz,
        r_zx,
        r_wx,
    }
}

/// Handles for Figure 2, "DCDA of independent snapshots": a three-process
/// cycle `x_P1 → y_P2 → z_P3 → x_P1`, held live by P1's root on `x`.
/// The mutator race of Fig. 2-b is scripted by the integration test.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// `x_P1`, root-held on P1.
    pub x: ObjId,
    /// `y_P2`.
    pub y: ObjId,
    /// `z_P3`.
    pub z: ObjId,
    /// `x → y`.
    pub r_xy: RefId,
    /// `y → z`.
    pub r_yz: RefId,
    /// `z → x`, closing the cycle.
    pub r_zx: RefId,
}

/// Build Figure 2 in `sys` (needs ≥ 3 processes); see [`Fig2`].
pub fn fig2(sys: &mut System) -> Fig2 {
    assert!(sys.num_procs() >= 3);
    let (p1, p2, p3) = (ProcId(0), ProcId(1), ProcId(2));
    let x = sys.alloc(p1, 1);
    let y = sys.alloc(p2, 1);
    let z = sys.alloc(p3, 1);
    sys.add_root(x).unwrap();
    let r_xy = sys.create_remote_ref(x, y).unwrap();
    let r_yz = sys.create_remote_ref(y, z).unwrap();
    let r_zx = sys.create_remote_ref(z, x).unwrap();
    Fig2 {
        x,
        y,
        z,
        r_xy,
        r_yz,
        r_zx,
    }
}

/// Handles for the §3.2.1 race (Figure 5): a four-process cycle
/// `B_P1 → F_P2 (→ J_P2) → V_P5 → T_P4 → D_P1(→B)` — paper processes P1,
/// P2, P5, P4 — held live by P1's root on `B`, plus process P3 holding a
/// rooted object `M3` that the mutator hands a reference to `J_P2` during
/// the race (the paper's "reference to J_P2 being exported to P3"). `B`
/// also holds a reference to `M3` so the invocation chain can run.
/// Process indices here: P0≙P1, P1≙P2, P2≙P5, P3≙P4, P4≙P3.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// `B_P1`: root-held entry into the chain, also holding `M3`.
    pub b: ObjId,
    /// `F_P2`: target of the raced reference.
    pub f: ObjId,
    /// `J_P2`: downstream of `F` in P2; the object whose reference the
    /// mutator exports to P3.
    pub j: ObjId,
    /// `M3_P3`: the rooted object that receives the exported reference.
    pub m3: ObjId,
    /// `F_P2`: the raced reference (stub at P1, scion at P2) whose
    /// invocation counters go `x → x+1`.
    pub r_bf: RefId,
    /// `J_P2 → V_P5` along the invocation chain.
    pub r_jv: RefId,
    /// `V_P5 → T_P4` along the invocation chain.
    pub r_vt: RefId,
    /// `T_P4 → D_P1`, returning to P1.
    pub r_td: RefId,
    /// `B_P1 → M3_P3`: the mutator's channel to P3.
    pub r_bm3: RefId,
}

/// Build Figure 5 in `sys` (needs ≥ 5 processes); see [`Fig5`].
pub fn fig5(sys: &mut System) -> Fig5 {
    assert!(sys.num_procs() >= 5);
    let (p1, p2, p5, p4, p3) = (ProcId(0), ProcId(1), ProcId(2), ProcId(3), ProcId(4));
    // P1: root -> B -> (remote F); D (cycle tail) -> B locally.
    let b = sys.alloc(p1, 1);
    let d = sys.alloc(p1, 1);
    sys.add_local_ref(d, b).unwrap();
    sys.add_root(b).unwrap();
    // P2: F -> J; P5: V; P4: T.
    let f = sys.alloc(p2, 1);
    let j = sys.alloc(p2, 1);
    sys.add_local_ref(f, j).unwrap();
    let v = sys.alloc(p5, 1);
    let t = sys.alloc(p4, 1);
    // P3: a rooted receiver object the mutator will hand the cycle to.
    let m3 = sys.alloc(p3, 1);
    sys.add_root(m3).unwrap();

    let r_bf = sys.create_remote_ref(b, f).unwrap();
    let r_jv = sys.create_remote_ref(j, v).unwrap();
    let r_vt = sys.create_remote_ref(v, t).unwrap();
    let r_td = sys.create_remote_ref(t, d).unwrap();
    let r_bm3 = sys.create_remote_ref(b, m3).unwrap();
    Fig5 {
        b,
        f,
        j,
        m3,
        r_bf,
        r_jv,
        r_vt,
        r_td,
        r_bm3,
    }
}

/// A distributed garbage ring spanning `procs`, with `objs_per_proc` chained
/// objects in each process. Returns the inter-process references in ring
/// order; `refs[0]` is the incoming reference of the first process's chain
/// head (a natural detection candidate).
#[derive(Clone, Debug)]
pub struct Ring {
    /// Chain-head object of each participating process, in ring order.
    pub heads: Vec<ObjId>,
    /// Inter-process references in ring order; `refs[0]` enters the first
    /// process's chain head.
    pub refs: Vec<RefId>,
    /// Rooted anchor holding the ring alive, if requested.
    pub anchor: Option<ObjId>,
}

/// Build a ring across the given processes. With `anchored`, a rooted
/// anchor object in `procs[0]` references the ring head; drop its root to
/// turn the whole ring into garbage.
pub fn ring(sys: &mut System, procs: &[ProcId], objs_per_proc: usize, anchored: bool) -> Ring {
    assert!(procs.len() >= 2 && objs_per_proc >= 1);
    let mut heads = Vec::with_capacity(procs.len());
    let mut tails = Vec::with_capacity(procs.len());
    for &p in procs {
        let chain: Vec<ObjId> = (0..objs_per_proc).map(|_| sys.alloc(p, 1)).collect();
        for pair in chain.windows(2) {
            sys.add_local_ref(pair[0], pair[1]).unwrap();
        }
        heads.push(chain[0]);
        tails.push(*chain.last().unwrap());
    }
    let n = procs.len();
    let mut refs = Vec::with_capacity(n);
    // refs[i] = tail of proc i-1 -> head of proc i (ring order).
    for i in 0..n {
        let from = tails[(i + n - 1) % n];
        let to = heads[i];
        refs.push(sys.create_remote_ref(from, to).unwrap());
    }
    let anchor = anchored.then(|| {
        let a = sys.alloc(procs[0], 1);
        sys.add_local_ref(a, heads[0]).unwrap();
        sys.add_root(a).unwrap();
        a
    });
    Ring {
        heads,
        refs,
        anchor,
    }
}

/// Parameters for [`random_graph`].
#[derive(Clone, Debug)]
pub struct RandomGraphParams {
    /// Objects allocated on each process.
    pub objects_per_proc: usize,
    /// Local edges per object (expected).
    pub local_degree: f64,
    /// Remote edges per object (expected).
    pub remote_degree: f64,
    /// Probability an object is rooted.
    pub root_probability: f64,
}

impl Default for RandomGraphParams {
    fn default() -> Self {
        RandomGraphParams {
            objects_per_proc: 20,
            local_degree: 1.5,
            remote_degree: 0.5,
            root_probability: 0.1,
        }
    }
}

/// Populate `sys` with a random distributed object graph. Returns all
/// allocated objects. Used by property tests and churn workloads; cycles
/// (local, distributed, overlapping) arise naturally from random edges.
pub fn random_graph(
    sys: &mut System,
    rng: &mut impl Rng,
    params: &RandomGraphParams,
) -> Vec<ObjId> {
    let n = sys.num_procs();
    let mut all: Vec<ObjId> = Vec::new();
    for p in 0..n {
        for _ in 0..params.objects_per_proc {
            let obj = sys.alloc(ProcId(p as u16), rng.gen_range(1..4));
            if rng.gen_bool(params.root_probability) {
                sys.add_root(obj).unwrap();
            }
            all.push(obj);
        }
    }
    let total = all.len();
    let local_edges = (params.local_degree * total as f64) as usize;
    let remote_edges = (params.remote_degree * total as f64) as usize;
    for _ in 0..local_edges {
        let from = all[rng.gen_range(0..total)];
        // Pick a target in the same process.
        let candidates: Vec<ObjId> = all
            .iter()
            .copied()
            .filter(|o| o.proc == from.proc)
            .collect();
        let to = candidates[rng.gen_range(0..candidates.len())];
        sys.add_local_ref(from, to).unwrap();
    }
    for _ in 0..remote_edges {
        let from = all[rng.gen_range(0..total)];
        let candidates: Vec<ObjId> = all
            .iter()
            .copied()
            .filter(|o| o.proc != from.proc)
            .collect();
        if candidates.is_empty() {
            break;
        }
        let to = candidates[rng.gen_range(0..candidates.len())];
        sys.create_remote_ref(from, to).unwrap();
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{GcConfig, NetConfig};

    fn system(n: usize) -> System {
        System::new(n, GcConfig::manual(), NetConfig::instant(), 3)
    }

    #[test]
    fn fig3_topology_shape() {
        let mut sys = system(4);
        let fig = fig3(&mut sys);
        sys.check_invariants().unwrap();
        // While A is rooted, all 14 objects are live.
        assert_eq!(sys.oracle_live().len(), 14);
        // Dropping A's root makes the whole structure garbage.
        sys.remove_root(fig.a).unwrap();
        assert!(sys.oracle_live().is_empty());
        assert_eq!(sys.total_scions(), 4);
    }

    #[test]
    fn fig4_topology_shape() {
        let mut sys = system(6);
        let fig = fig4(&mut sys);
        sys.check_invariants().unwrap();
        assert!(sys.oracle_live().is_empty(), "fig4 is garbage from birth");
        assert_eq!(sys.total_scions(), 7);
        assert_ne!(fig.r_df, fig.r_fv);
    }

    #[test]
    fn fig1_live_through_dependency() {
        let mut sys = system(4);
        let fig = fig1(&mut sys);
        sys.check_invariants().unwrap();
        // w roots the whole cycle through w -> x.
        assert_eq!(sys.oracle_live().len(), 4);
        assert_ne!(fig.r_zx, fig.r_wx, "distinct converging references");
        sys.remove_root(fig.w).unwrap();
        assert!(sys.oracle_live().is_empty());
    }

    #[test]
    fn fig2_rooted_cycle_is_live() {
        let mut sys = system(3);
        let fig = fig2(&mut sys);
        assert_eq!(sys.oracle_live().len(), 3);
        sys.remove_root(fig.x).unwrap();
        assert!(sys.oracle_live().is_empty());
    }

    #[test]
    fn fig5_live_through_p1_root() {
        let mut sys = system(5);
        let fig = fig5(&mut sys);
        sys.check_invariants().unwrap();
        let live = sys.oracle_live();
        assert!(live.contains(&fig.b) && live.contains(&fig.f));
        assert!(live.contains(&fig.m3) && live.contains(&fig.j));
        assert_eq!(live.len(), 7, "B, D, F, J, V, T and M3");
    }

    #[test]
    fn ring_anchoring() {
        let mut sys = system(3);
        let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
        let ring = ring(&mut sys, &procs, 4, true);
        assert_eq!(ring.refs.len(), 3);
        assert_eq!(sys.oracle_live().len(), 13, "3*4 chain objects + anchor");
        sys.remove_root(ring.anchor.unwrap()).unwrap();
        assert!(sys.oracle_live().is_empty());
        sys.check_invariants().unwrap();
    }

    #[test]
    fn random_graph_is_structurally_sound() {
        use acdgc_model::rng::component_rng;
        let mut sys = system(4);
        let mut rng = component_rng(11, "scenario-test");
        let objs = random_graph(&mut sys, &mut rng, &RandomGraphParams::default());
        assert_eq!(objs.len(), 80);
        sys.check_invariants().unwrap();
        let live = sys.oracle_live();
        assert!(live.len() <= objs.len());
    }
}
