//! System-level message set: everything that travels between processes.

use acdgc_dcda::Cdm;
use acdgc_model::{ObjId, RefId};
use acdgc_remoting::{InvokePayload, NewSetStubs, ReplyPayload};

/// All inter-process traffic in the simulation.
#[derive(Clone, Debug)]
pub enum SysMessage {
    /// Remote invocation (application class, reliable). Carries the callee
    /// reply obligations alongside the remoting payload.
    Invoke {
        /// The remoting-layer invocation body.
        payload: InvokePayload,
        /// Objects the callee will export back in its reply.
        reply_exports: Vec<ObjId>,
        /// Caller-side object that receives the returned references.
        receiver: Option<ObjId>,
    },
    /// Invocation reply (application class, reliable).
    Reply {
        /// The remoting-layer reply body.
        payload: ReplyPayload,
        /// Caller-side object that receives the returned references.
        receiver: Option<ObjId>,
    },
    /// Reference-listing update (GC class, droppable).
    Nss(NewSetStubs),
    /// A cycle detection message travelling along reference `via`
    /// (GC class, droppable).
    Cdm {
        /// The reference the CDM travels along.
        via: RefId,
        /// The detection message itself.
        cdm: Cdm,
    },
    /// Cycle verdict follow-up: the sender proved the cycle containing
    /// this scion garbage; the owner deletes it (idempotent, droppable —
    /// a lost deletion is finished off by reference listing once the
    /// other deletions let the LGCs unravel the objects). `ic` is the
    /// invocation counter the verdict witnessed: the owner re-checks it
    /// before deleting (lazy IC barrier against a concurrent mutator).
    DeleteScion {
        /// The scion proven part of a garbage cycle.
        scion: RefId,
        /// The incarnation the verdict witnessed (ABA guard).
        incarnation: u32,
        /// The invocation counter the verdict witnessed.
        ic: u64,
    },
}

impl SysMessage {
    /// Approximate wire size for byte accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            SysMessage::Invoke { payload, .. } => payload.size_bytes(),
            SysMessage::Reply { payload, .. } => payload.size_bytes(),
            SysMessage::Nss(nss) => nss.size_bytes(),
            SysMessage::Cdm { cdm, .. } => 8 + cdm.size_bytes(),
            SysMessage::DeleteScion { .. } => 24,
        }
    }

    /// Whether this is collector traffic (subject to fault injection).
    pub fn is_gc(&self) -> bool {
        matches!(
            self,
            SysMessage::Nss(_) | SysMessage::Cdm { .. } | SysMessage::DeleteScion { .. }
        )
    }
}

/// What a scripted remote invocation does, besides bumping invocation
/// counters along the reference.
#[derive(Clone, Debug, Default)]
pub struct InvokeSpec {
    /// References passed as arguments; the callee's invoked object gains a
    /// field for each (stub/scion pairs are created when
    /// `GcConfig::instrument_remoting` is on).
    pub exports: Vec<ObjId>,
    /// References the callee returns; the caller's `receiver` object gains
    /// a field for each.
    pub reply_exports: Vec<ObjId>,
    /// Caller-side object to attach returned references to.
    pub receiver: Option<ObjId>,
    /// Simulated non-reference argument payload.
    pub arg_bytes: u32,
    /// Send a reply even with no returned references (replies bump the
    /// invocation counters too).
    pub wants_reply: bool,
}

impl InvokeSpec {
    /// Plain call: no reference traffic, no reply.
    pub fn oneway() -> Self {
        InvokeSpec::default()
    }

    /// Call-with-reply, no reference traffic.
    pub fn with_reply() -> Self {
        InvokeSpec {
            wants_reply: true,
            ..InvokeSpec::default()
        }
    }

    /// The Table 1 workload: `n` references exported as arguments.
    pub fn exporting(exports: Vec<ObjId>) -> Self {
        InvokeSpec {
            exports,
            ..InvokeSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::{DetectionId, ProcId, SimTime};

    #[test]
    fn gc_classification() {
        let nss = SysMessage::Nss(NewSetStubs {
            from: ProcId(0),
            seq: 1,
            lgc_at: SimTime(0),
            live_refs: vec![],
        });
        assert!(nss.is_gc());
        let cdm = SysMessage::Cdm {
            via: RefId(1),
            cdm: Cdm::initiate(DetectionId(0), ProcId(0), RefId(1), 0),
        };
        assert!(cdm.is_gc());
        let invoke = SysMessage::Invoke {
            payload: InvokePayload {
                ref_id: RefId(1),
                exports: vec![],
                arg_bytes: 0,
                wants_reply: false,
            },
            reply_exports: vec![],
            receiver: None,
        };
        assert!(!invoke.is_gc());
        assert!(invoke.size_bytes() > 0);
        assert!(cdm.size_bytes() > 0);
    }
}
