//! Genuinely concurrent collection: one OS thread per process.
//!
//! The sequential [`crate::System`] proves the algorithm's logic under a
//! deterministic schedule; this runtime demonstrates the paper's
//! asynchrony claim under *real* concurrency: each process runs its own
//! LGC / snapshot / scan loop on its own thread, exchanging messages over
//! crossbeam channels, with no shared clock and no coordination beyond the
//! messages themselves. When [`acdgc_model::MutatorConfig`] is enabled,
//! seeded **mutator threads** run *while* the collectors sweep —
//! allocating, exporting references, invoking through them, and dropping
//! them — through the same per-process locks the workers use, so every
//! interleaving the locks admit is a real execution (see *Concurrent
//! mutation* below). With the mutator disabled the topology is fixed up
//! front, mirroring the paper's observation that detection is lazy,
//! off-line work.
//!
//! # Termination: distributed quiescence votes
//!
//! A run ends when the system provably has nothing left to do, detected
//! without global synchronization:
//!
//! * each worker tracks per-sweep *activity* — objects freed, stubs
//!   condemned, messages sent or received, detections initiated, plus
//!   *pending* work (unacknowledged `NewSetStubs`, candidates inside
//!   their retry backoff window);
//! * after [`GcConfig::quiet_sweeps`] consecutive quiet sweeps a worker
//!   casts one vote and stops sweeping (it keeps draining its inbox);
//! * a voted worker that receives any message rescinds its vote
//!   (`fetch_sub`) before processing it and resumes sweeping;
//! * the run stops when all votes are simultaneously held **and** the
//!   global enqueue/drain counters balance **and** no rescind raced the
//!   check — see `Quiescence::globally_quiet` for why that conjunction
//!   cannot observe a message still in flight.
//!
//! # Fault model
//!
//! The send path runs the same seeded GC-fault injector as the sequential
//! [`acdgc_net::Network`]: `NetConfig::gc_drop_probability` and
//! `gc_duplicate_probability` apply to every message here (all threaded
//! traffic is collector traffic; latency fields are unused — the channel
//! *is* the latency). On top of injected faults, a full bounded inbox
//! still drops rather than blocks. Recovery is layered: lost CDMs are
//! retried by the initiator's exponential candidate backoff; lost
//! `DeleteScion`s are subsumed by the acyclic layer (the peer whose stub
//! died republishes a live set without the ref); and lost `NewSetStubs`
//! are retried until acknowledged, because a final NSS that never lands
//! would leak acyclic garbage the cycle detector cannot see.
//!
//! # Concurrent mutation
//!
//! Mutator threads partition the processes round-robin and only ever hold
//! objects on (and export between) their own processes, so two mutator
//! threads never touch the same stub/scion table; every mutator-vs-
//! collector race is mediated by the per-process lock. Three disciplines
//! keep the races safe and observable:
//!
//! * **pin/unpin handshake** — exporting a fresh reference creates the
//!   scion *pinned* before the importer materializes its stub (the
//!   paper's in-flight-reference problem, made real: between those steps
//!   a `NewSetStubs` built without the new stub may arrive, and only the
//!   pin stops it deleting the scion). Unpinning refreshes the scion's
//!   creation horizon so a live set saved during the window can never be
//!   re-applied against it later. Invocations likewise pin the target
//!   scion across the callee-side window so a cycle verdict cannot
//!   delete a reference mid-call.
//! * **deferred NSS re-judgement** — a scion that survived a live set
//!   only because it was pinned would leak (a content-settled set is
//!   never resent); each sweep re-applies the saved per-sender sets via
//!   `RemotingTables::sweep_deferred_nss`.
//! * **mutation-aware quiescence** — every applied op bumps a shared
//!   `mutation_events` counter; a worker that observes a new count
//!   rescinds any held vote and resets its quiet streak, and
//!   `Quiescence::globally_quiet` additionally requires all mutators
//!   exited and every worker to have observed the final count. Quiescence
//!   therefore means "mutator drained AND collectors quiet".
//!
//! Every op is appended to a [`MutOp`] log while the owning process lock
//! is held; tests replay it over a [`crate::ShadowGraph`] of the pre-run
//! heaps to recompute ground-truth liveness (no live object deleted, all
//! garbage eventually collected) for runs whose oracle cannot be computed
//! up front. Mutator ops trace as [`Event::MutatorOp`] with Lamport
//! stamps into the owning worker's pending tail, so `--critical-path`
//! waterfalls show collector-vs-mutator interference.

use crate::metrics::Metrics;
use crate::oracle::MutOp;
use crate::process::Process;
use acdgc_dcda::{Cdm, Outcome, TerminateReason};
use acdgc_heap::{lgc, HeapRef};
use acdgc_model::rng::component_rng;
use acdgc_model::{
    DetectionId, GcConfig, IntegrationMode, MutatorConfig, NetConfig, ObjId, ProcId, RefId,
    SimTime, WatchdogConfig,
};
use acdgc_obs::health::{
    HealthReason, HealthReport, Heartbeat, Heartbeats, WorkerHealth, WorkerStage,
};
use acdgc_obs::{
    DropReason, Event, LamportClock, MutatorOpKind, Phase, Sample, Sampler, TermReason,
};
use acdgc_remoting::{apply_new_set_stubs_observed, build_new_set_stubs, NewSetStubs};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Messages exchanged by the threaded runtime.
#[derive(Clone)]
enum ThreadMsg {
    Nss(NewSetStubs),
    /// Confirms receipt of the sender's `NewSetStubs` with this sequence
    /// number (the ack itself may be lost; the NSS is then resent).
    NssAck {
        from: ProcId,
        seq: u64,
    },
    Cdm {
        via: RefId,
        cdm: Cdm,
    },
    /// Cycle-verdict deletion: (scion, witnessed incarnation, witnessed
    /// invocation counter) — both re-checked at the owner before removal.
    DeleteScion(RefId, u32, u64),
    /// Weight-throwing echo: a terminal CDM outcome at a remote process
    /// returns the credit the dying derivation carried to the detection's
    /// initiator. `clean` is true only for outcomes that *prove* the
    /// walked structure live (no remote stubs / all stubs locally
    /// reachable); once the initiator has recovered [`FULL_CREDIT`]
    /// (all-clean, and no mutation raced the walk) it records a lazy
    /// liveness verdict and stops re-picking that scion until the next
    /// mutation epoch — without this, a live-but-not-locally-rooted
    /// structure is re-initiated after every backoff forever and the run
    /// can never vote itself quiescent.
    DetectionCredit {
        id: DetectionId,
        credit: u64,
        clean: bool,
    },
}

/// What actually travels on a channel: the message plus the sender's
/// piggybacked Lamport clock — the threaded counterpart of
/// `acdgc_net::Envelope::lamport`. Zero when causal tracing is off;
/// purely observational either way (no protocol decision reads it).
#[derive(Clone)]
struct ThreadEnvelope {
    lamport: u64,
    /// Receiver-side dedup tag, unique per *logical* send (injected
    /// duplicate copies share the sender's tag; zero means "untagged,
    /// never deduped"). Only CDM and credit traffic is tagged: a
    /// duplicated CDM would double the credit a branch carries, and a
    /// duplicated echo would double what the initiator recovers — either
    /// forgery could combine with a drop elsewhere to fake a full-credit
    /// all-clean recovery and suppress a *garbage* scion (a leak). NSS,
    /// acks, and scion deletes are already idempotent by construction.
    tag: u64,
    msg: ThreadMsg,
}

/// Counters shared across the threads.
#[derive(Debug, Default)]
pub struct ThreadedStats {
    /// Local mark-sweep collections run across all workers.
    pub lgc_runs: AtomicU64,
    /// Graph summarizations published.
    pub snapshots: AtomicU64,
    /// CDM messages handed to peer inboxes (pre-fault-injection).
    pub cdms_sent: AtomicU64,
    /// Distributed cycles found (one per matched CDM, before deletion).
    pub cycles_detected: AtomicU64,
    /// Scions deleted on a cycle verdict.
    pub scions_deleted: AtomicU64,
    /// Objects reclaimed by LGC over the whole run.
    pub objects_reclaimed: AtomicU64,
    /// GC messages lost per kind: injected by the seeded fault model, or
    /// dropped because a peer's bounded inbox was full (or the peer was
    /// gone). Dropping instead of blocking keeps a worker that holds its
    /// own process lock from deadlocking on a slow peer; the algorithm
    /// tolerates arbitrary GC-message loss, so drops only delay
    /// reclamation.
    pub nss_dropped: AtomicU64,
    /// CDM and credit-echo messages lost (see [`ThreadedStats::nss_dropped`]).
    pub cdms_dropped: AtomicU64,
    /// `DeleteScion` messages lost (see [`ThreadedStats::nss_dropped`]).
    pub deletes_dropped: AtomicU64,
    /// NSS acks lost (see [`ThreadedStats::nss_dropped`]).
    pub acks_dropped: AtomicU64,
    /// Losses charged to the seeded injector specifically (also counted in
    /// the per-kind counters above).
    pub faults_injected: AtomicU64,
    /// Duplicate deliveries injected by the seeded fault model.
    pub duplicates_injected: AtomicU64,
    /// `NewSetStubs` retransmissions (unacknowledged past the retry
    /// window).
    pub nss_retries: AtomicU64,
    /// Quiescence votes cast / rescinded across the run.
    pub votes_cast: AtomicU64,
    /// Votes withdrawn on new receive or mutation activity.
    pub votes_rescinded: AtomicU64,
    /// 1 if the run ended because every worker held its quiescence vote
    /// with all channels provably empty; 0 if the deadline backstop fired.
    pub stopped_by_quiescence: AtomicU64,
    /// Concurrent-mutator operations applied (all kinds; skips excluded).
    pub mutator_ops: AtomicU64,
    /// Mutator ops abandoned because a precondition failed under the lock
    /// (e.g. a stale edge whose stub a collector already removed). Bounded
    /// interference, not an error.
    pub mutator_skips: AtomicU64,
    /// Invocations that found their target scion missing although the
    /// holder-side stub was just observed live. The mutator only invokes
    /// along live-holder edges, so any nonzero value means a collector
    /// deleted a reference that was still reachable — a safety violation.
    pub mutator_missing_scions: AtomicU64,
}

impl ThreadedStats {
    /// Whether the run terminated through the quiescence protocol rather
    /// than the wall-clock deadline backstop.
    pub fn quiescent(&self) -> bool {
        self.stopped_by_quiescence.load(Ordering::SeqCst) == 1
    }
}

/// Shared state of the termination protocol. All counters are monotone
/// except `votes`; everything uses `SeqCst` — the protocol's correctness
/// argument needs a total order over these few operations and the
/// traffic is a handful of words per sweep.
struct Quiescence {
    workers: u64,
    votes: AtomicU64,
    /// Total rescind events (monotone). Lets the checker detect a vote
    /// that was rescinded and re-cast while it was looking.
    rescinds: AtomicU64,
    /// Messages successfully placed into a channel (drops excluded).
    enqueued: AtomicU64,
    /// Messages taken out of a channel.
    drained: AtomicU64,
    stop: AtomicBool,
    /// Workers that have fully exited (final drain + flush done). The
    /// watchdog monitor watches this, not `stop`: a worker can stay stuck
    /// *after* the stop flag is raised, and that tail-end stall is exactly
    /// the one worth reporting.
    workers_done: AtomicU64,
    /// Mutator threads spawned for this run (0 when the mutator is off).
    mutators: u64,
    /// Mutator threads that have finished their op budget and exited.
    mutators_done: AtomicU64,
    /// Applied mutator ops (monotone); bumped *after* the op's process
    /// lock is released, so a worker that reads value `m` and then sweeps
    /// observes heap state including at least the first `m` ops.
    mutation_events: AtomicU64,
    /// Per-worker: the `mutation_events` value that worker last folded
    /// into its quiet-streak accounting. A vote is only trustworthy if it
    /// was cast after observing the final mutation count.
    mutation_seen: Vec<AtomicU64>,
}

impl Quiescence {
    fn new(workers: u64, mutators: u64) -> Self {
        Quiescence {
            workers,
            votes: AtomicU64::new(0),
            rescinds: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            workers_done: AtomicU64::new(0),
            mutators,
            mutators_done: AtomicU64::new(0),
            mutation_events: AtomicU64::new(0),
            mutation_seen: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The global termination predicate. Safe to conclude from any worker:
    /// if it returns true, every worker holds its vote, no channel holds a
    /// message, and no worker is mid-processing one.
    ///
    /// Why the read order makes the check sound (workers obey: sends only
    /// happen while unvoted; a voted worker rescinds — votes then
    /// rescinds counter — *before* counting the drain that woke it, and
    /// only receives can unvote a worker):
    ///
    /// 1. A message enqueued before the `enqueued` read and still
    ///    undrained fails `enqueued == drained`.
    /// 2. A message enqueued after it implies its sender was unvoted at
    ///    that point; the sender was voted at the first `votes` read
    ///    (all were), so a rescind happened in between — caught by the
    ///    `rescinds` re-read or the final `votes` re-read.
    /// 3. A send chain cannot bootstrap after the checks: sweeps are
    ///    suppressed while voted, unvoting requires a receive, and the
    ///    root of any receive chain is a message that already fails 1
    ///    or 2.
    ///
    /// With a live mutator, two more conjuncts make quiescence mean
    /// "mutator drained AND collectors quiet":
    ///
    /// 4. `mutators_done == mutators` is read *first*; every mutator bumps
    ///    `mutation_events` before incrementing `mutators_done`, so once
    ///    all mutators are done the count read in `m` is final (the
    ///    re-read at the end is cheap insurance).
    /// 5. `mutation_seen[i] == m` for every worker: a worker stores its
    ///    seen-count *before* rebuilding the quiet streak that leads to a
    ///    vote (and rescinds first if it was holding one), so all votes
    ///    standing at both `votes` reads were cast after sweeping the
    ///    post-final-mutation heap state.
    fn globally_quiet(&self) -> bool {
        if self.mutators_done.load(Ordering::SeqCst) != self.mutators {
            return false;
        }
        let r1 = self.rescinds.load(Ordering::SeqCst);
        if self.votes.load(Ordering::SeqCst) != self.workers {
            return false;
        }
        let m = self.mutation_events.load(Ordering::SeqCst);
        if self
            .mutation_seen
            .iter()
            .any(|s| s.load(Ordering::SeqCst) != m)
        {
            return false;
        }
        let e = self.enqueued.load(Ordering::SeqCst);
        let d = self.drained.load(Ordering::SeqCst);
        e == d
            && self.rescinds.load(Ordering::SeqCst) == r1
            && self.votes.load(Ordering::SeqCst) == self.workers
            && self.mutation_events.load(Ordering::SeqCst) == m
    }
}

/// Run the GC stack concurrently over pre-built processes until the system
/// reaches distributed quiescence (every worker votes "nothing left to
/// do"; see module docs) or `deadline` elapses as a backstop. No faults
/// are injected. Returns the processes and the shared stats.
///
/// `procs` should come from a [`crate::System`] whose topology was built
/// sequentially — see `tests/threaded_collection.rs` at the workspace
/// root.
pub fn run_concurrent_collection(
    procs: Vec<Process>,
    cfg: GcConfig,
    deadline: Duration,
) -> (Vec<Process>, Arc<ThreadedStats>) {
    let reliable = NetConfig {
        gc_drop_probability: 0.0,
        gc_duplicate_probability: 0.0,
        ..NetConfig::instant()
    };
    run_concurrent_collection_with_faults(procs, cfg, reliable, 0, deadline)
}

/// [`run_concurrent_collection`] with a seeded fault injector on the send
/// path. `net.gc_drop_probability` / `gc_duplicate_probability` apply to
/// every message (all threaded traffic is GC class); the latency fields
/// are ignored — channel scheduling is the latency. Same `seed`, same
/// injected fault decisions per worker send sequence.
pub fn run_concurrent_collection_with_faults(
    procs: Vec<Process>,
    cfg: GcConfig,
    net: NetConfig,
    seed: u64,
    deadline: Duration,
) -> (Vec<Process>, Arc<ThreadedStats>) {
    let run = run_concurrent_collection_observed(
        procs,
        cfg,
        ThreadedOptions {
            net,
            seed,
            deadline,
            ..ThreadedOptions::default()
        },
    );
    (run.procs, run.stats)
}

/// A hook the runtime calls at the end of every worker loop iteration:
/// `(worker, sweep, voted)`. It runs in the same iteration as a vote cast
/// — before the next stop-flag check — so tests and examples can inject
/// deterministic slowness/stalls into one worker without touching the
/// protocol code.
pub type SweepHook = Arc<dyn Fn(ProcId, u64, bool) + Send + Sync>;

/// Callback invoked with every [`HealthReport`] the watchdog emits (stall
/// reports live, the terminal report after the workers joined). Called
/// from the monitor/runner thread with no locks held.
pub type ReportHook = Arc<dyn Fn(&HealthReport) + Send + Sync>;

/// Everything [`run_concurrent_collection_observed`] takes beyond the
/// processes and the GC config.
#[derive(Clone)]
pub struct ThreadedOptions {
    /// Fault model for the send path (latency fields ignored).
    pub net: NetConfig,
    /// Fault-injector seed.
    pub seed: u64,
    /// Wall-clock backstop if quiescence is never reached.
    pub deadline: Duration,
    /// Called after every worker sweep (stress tests inject chaos here).
    pub sweep_hook: Option<SweepHook>,
    /// Receives every watchdog [`HealthReport`] as it is emitted.
    pub on_report: Option<ReportHook>,
}

impl Default for ThreadedOptions {
    fn default() -> Self {
        ThreadedOptions {
            net: NetConfig {
                gc_drop_probability: 0.0,
                gc_duplicate_probability: 0.0,
                ..NetConfig::instant()
            },
            seed: 0,
            deadline: Duration::from_secs(60),
            sweep_hook: None,
            on_report: None,
        }
    }
}

/// What a threaded run returns: the final processes, the legacy shared
/// stats, every [`HealthReport`] the watchdog produced (stall reports
/// in emission order, then exactly one terminal report — quiescent or
/// deadline — when `cfg.watchdog.enabled`), and the telemetry samples
/// the monitor thread recorded during healthy operation (empty unless
/// `cfg.sampling.enabled`), ready for `Trace::with_samples`.
pub struct ThreadedRun {
    /// The final processes, unwrapped from their mutex cells.
    pub procs: Vec<Process>,
    /// Legacy shared counters (see [`ThreadedStats`]).
    pub stats: Arc<ThreadedStats>,
    /// Watchdog reports in emission order (empty unless enabled).
    pub health: Vec<HealthReport>,
    /// Telemetry samples recorded by the monitor thread.
    pub samples: Vec<(Sample, usize)>,
    /// Every graph edit the concurrent mutator applied, in a linearization
    /// consistent with each process's lock order. Replay it over a
    /// [`crate::ShadowGraph`] of the pre-run heaps to recompute ground
    /// truth liveness. Empty when the mutator is disabled.
    pub mutation_log: Vec<MutOp>,
}

/// The full-fidelity entry point: [`run_concurrent_collection_with_faults`]
/// plus the runtime health subsystem — per-worker heartbeat slots, a
/// watchdog monitor thread detecting stalls against
/// [`GcConfig`]'s `watchdog` thresholds, and [`HealthReport`] snapshots
/// that expose each worker's *pending* (not yet flushed) event tail.
pub fn run_concurrent_collection_observed(
    procs: Vec<Process>,
    cfg: GcConfig,
    opts: ThreadedOptions,
) -> ThreadedRun {
    let ThreadedOptions {
        net,
        seed,
        deadline,
        sweep_hook,
        on_report,
    } = opts;
    let mut procs = procs;
    let n = procs.len();
    let stats = Arc::new(ThreadedStats::default());
    let mutator_threads = if cfg.mutator.enabled {
        cfg.mutator.threads.min(n)
    } else {
        0
    };
    let quiescence = Arc::new(Quiescence::new(n as u64, mutator_threads as u64));
    let detection_ids = Arc::new(AtomicU64::new(0));
    // Tag 0 means "untagged"; start at 1 so every assigned tag dedupes.
    let msg_tags = Arc::new(AtomicU64::new(1));

    // Fresh reference ids for mutator exports start far above anything the
    // pre-built topology used (including deleted ids with incarnation
    // tombstones), so a mutator-created pair can never collide with a
    // stale `DeleteScion` or saved live set naming an old id.
    let mut max_ref = 0u64;
    for p in &procs {
        for s in p.tables.stubs() {
            max_ref = max_ref.max(s.ref_id.0);
        }
        for s in p.tables.scions() {
            max_ref = max_ref.max(s.ref_id.0);
        }
    }
    let ref_ids = Arc::new(AtomicU64::new((1u64 << 48) | (max_ref + 1)));
    let mutation_log: Arc<Mutex<Vec<MutOp>>> = Arc::new(Mutex::new(Vec::new()));

    // (Re)arm tracing per this run's config and link every process to one
    // shared sequence counter (seeded past any events recorded while the
    // topology was built sequentially) so the merged trace stays totally
    // ordered across threads.
    if !procs.is_empty() {
        for p in procs.iter_mut() {
            p.obs.reconfigure(&cfg.trace);
        }
        let seq = procs[0].obs.seq_handle();
        for p in procs[1..].iter_mut() {
            p.obs.share_seq(seq.clone());
        }
    }

    // Per-process Lamport clock handles must be captured *before* the
    // processes move into their mutex cells: the clock is the same atomic
    // the process ring ticks on direct records, so worker-side tail stamps
    // and in-lock stamps interleave on one counter per process.
    let clocks: Vec<LamportClock> = procs.iter().map(|p| p.obs.clock_handle()).collect();
    let lamport_on = cfg.trace.enabled && cfg.trace.lamport;

    let mut senders: Vec<Sender<ThreadEnvelope>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<ThreadEnvelope>>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Bounded inboxes put a hard cap on runtime memory; capacity 0
        // would make every try_send fail, so clamp to at least 1.
        let (tx, rx) = bounded(cfg.channel_capacity.max(1));
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let cells: Vec<Arc<Mutex<Process>>> =
        procs.into_iter().map(|p| Arc::new(Mutex::new(p))).collect();

    let heartbeats = Heartbeats::new(n);
    let tails: Vec<SharedTail> = (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let reports: Arc<Mutex<Vec<HealthReport>>> = Arc::new(Mutex::new(Vec::new()));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let cell = Arc::clone(&cells[i]);
        let rx = receivers[i].take().unwrap();
        let ctx = WorkerCtx {
            me: ProcId(i as u16),
            txs: senders.clone(),
            trace_on: cfg.trace.enabled,
            lamport_on,
            clock: clocks[i].clone(),
            cfg: cfg.clone(),
            net: net.clone(),
            rng: component_rng(seed, &format!("threaded-faults-{i}")),
            stats: Arc::clone(&stats),
            quiescence: Arc::clone(&quiescence),
            detection_ids: Arc::clone(&detection_ids),
            nss_out: FxHashMap::default(),
            local: Metrics::default(),
            hb: Arc::clone(&heartbeats),
            tail: Arc::clone(&tails[i]),
            hook: sweep_hook.clone(),
            started: start,
            round: 0,
            voted: false,
            quiet_streak: 0,
            last_mutation_seen: 0,
            msg_tags: Arc::clone(&msg_tags),
            outstanding: FxHashMap::default(),
            seen_tags: FxHashSet::default(),
            seen_order: VecDeque::new(),
        };
        handles.push(thread::spawn(move || {
            worker(ctx, cell, rx, start, deadline)
        }));
    }

    // Mutator threads: partition the processes round-robin so no two
    // mutators ever touch the same process (see module docs), and race the
    // collector workers through the same per-process locks.
    let mut mutator_handles = Vec::with_capacity(mutator_threads);
    for k in 0..mutator_threads {
        let mctx = MutatorCtx {
            my_procs: (0..n).filter(|i| i % mutator_threads == k).collect(),
            cells: cells.clone(),
            tails: tails.clone(),
            clocks: clocks.clone(),
            trace_on: cfg.trace.enabled,
            lamport_on,
            mcfg: cfg.mutator,
            rng: component_rng(seed, &format!("mutator-{k}")),
            ref_ids: Arc::clone(&ref_ids),
            log: Arc::clone(&mutation_log),
            stats: Arc::clone(&stats),
            quiescence: Arc::clone(&quiescence),
            owned: Vec::new(),
            edges: Vec::new(),
        };
        mutator_handles.push(thread::spawn(move || mutator(mctx, start, deadline)));
    }

    // One monitor thread serves both observability duties: watchdog stall
    // detection and periodic healthy-run sampling share the same polling
    // loop (and the same heartbeat snapshot per poll), so enabling either
    // spawns it.
    let sampler = Arc::new(Mutex::new(Sampler::new(&cfg.sampling, n)));
    let monitor_handle = ((cfg.watchdog.enabled || cfg.sampling.enabled) && n > 0).then(|| {
        let mctx = MonitorCtx {
            hb: Arc::clone(&heartbeats),
            tails: tails.clone(),
            cells: cells.clone(),
            quiescence: Arc::clone(&quiescence),
            wcfg: cfg.watchdog,
            start,
            reports: Arc::clone(&reports),
            on_report: on_report.clone(),
            stats: Arc::clone(&stats),
            sampler: Arc::clone(&sampler),
        };
        thread::spawn(move || monitor(mctx))
    });

    for h in mutator_handles {
        h.join().expect("mutator thread panicked");
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    if let Some(h) = monitor_handle {
        h.join().expect("watchdog monitor thread panicked");
    }

    // Terminal report: every worker has exited (tails flushed, locks
    // free), so this snapshot is exact rather than best-effort.
    if cfg.watchdog.enabled && n > 0 {
        let reason = if stats.quiescent() {
            HealthReason::Quiescent
        } else {
            HealthReason::Deadline
        };
        let at_us = start.elapsed().as_micros() as u64;
        let beats = heartbeats.snapshot();
        let report = build_health_report(reason, at_us, &beats, &[], &tails, &cells);
        if let Some(cb) = &on_report {
            cb(&report);
        }
        reports.lock().push(report);
    }

    let procs = cells
        .into_iter()
        .map(|c| {
            Arc::try_unwrap(c)
                .map(|m| m.into_inner())
                .unwrap_or_else(|arc| arc.lock().clone())
        })
        .collect();
    let health = std::mem::take(&mut *reports.lock());
    let samples = sampler.lock().export();
    let mutation_log = std::mem::take(&mut *mutation_log.lock());
    ThreadedRun {
        procs,
        stats,
        health,
        samples,
        mutation_log,
    }
}

/// A worker's pending-event tail, shared with the watchdog monitor. The
/// worker is the only writer (push on record, drain on flush); the monitor
/// clones the contents under the lock when building a report. Both
/// critical sections are a few pointer moves, so the lock never backs up
/// the hot path the way locking the process ring would. The middle `u64`
/// is the Lamport stamp, pre-assigned at record time (0 when causal
/// tracing is off) so a tail flushed late still carries the clock value
/// the event actually happened at.
type SharedTail = Arc<Mutex<Vec<(SimTime, u64, Event)>>>;

/// Everything the watchdog monitor thread reads.
struct MonitorCtx {
    hb: Arc<Heartbeats>,
    tails: Vec<SharedTail>,
    cells: Vec<Arc<Mutex<Process>>>,
    quiescence: Arc<Quiescence>,
    wcfg: WatchdogConfig,
    start: Instant,
    reports: Arc<Mutex<Vec<HealthReport>>>,
    on_report: Option<ReportHook>,
    stats: Arc<ThreadedStats>,
    sampler: Arc<Mutex<Sampler>>,
}

/// The monitor loop, shared by two observers of the same heartbeat poll:
///
/// * **watchdog** (`wcfg.enabled`): emit a stall [`HealthReport`] when any
///   worker's beat goes older than `stall_after`;
/// * **sampler** (`cfg.sampling.enabled`): every `sample_every` polls
///   during *healthy* operation, record one telemetry [`Sample`] per
///   worker plus the global aggregate — deduped by beat (a poll where no
///   worker advanced its heartbeat records nothing), so an idle tail does
///   not pad the series with identical rows.
///
/// The loop takes exactly one heartbeat snapshot per poll and feeds both
/// consumers from it; worker state is read `try_lock`-only (carrying the
/// last known values on failure), so the monitor can never deadlock
/// behind a wedged worker. Runs until every worker has fully exited —
/// not merely until the stop flag — because a worker wedged during its
/// final drain is still a stall worth seeing.
fn monitor(ctx: MonitorCtx) {
    let stall_after_us = ctx.wcfg.stall_after.as_ticks().max(1);
    let poll = Duration::from_micros(ctx.wcfg.poll_every.as_ticks().max(1_000));
    let workers = ctx.hb.len() as u64;
    // Beat value already reported per worker: one stall episode produces
    // one report, a *new* beat followed by a new silence is a new episode.
    let mut reported_beat: Vec<u64> = vec![u64::MAX; ctx.hb.len()];
    let mut stall_reports = 0usize;
    let mut polls = 0u64;
    let mut sampling = SamplingState::new(ctx.hb.len());
    while ctx.quiescence.workers_done.load(Ordering::SeqCst) < workers {
        thread::sleep(poll);
        polls += 1;
        // The hoisted per-poll pass: one beats snapshot, one timestamp.
        let beats = ctx.hb.snapshot();
        let now_us = ctx.start.elapsed().as_micros() as u64;

        if ctx.sampler.lock().due(polls) {
            sampling.sample_tick(&ctx, now_us, polls, &beats);
        }

        if !ctx.wcfg.enabled || stall_reports >= ctx.wcfg.max_stall_reports {
            continue; // keep polling (sampling/exit), but report no stalls
        }
        let stalled: Vec<bool> = beats
            .iter()
            .enumerate()
            .map(|(i, b)| {
                b.stage != WorkerStage::Done
                    && now_us.saturating_sub(b.last_beat_us) > stall_after_us
                    && reported_beat[i] != b.last_beat_us
            })
            .collect();
        if !stalled.iter().any(|&s| s) {
            continue;
        }
        for (i, &s) in stalled.iter().enumerate() {
            if s {
                reported_beat[i] = beats[i].last_beat_us;
            }
        }
        let report = build_health_report(
            HealthReason::Stall,
            now_us,
            &beats,
            &stalled,
            &ctx.tails,
            &ctx.cells,
        );
        if let Some(cb) = &ctx.on_report {
            cb(&report);
        }
        ctx.reports.lock().push(report);
        stall_reports += 1;
    }
}

/// The monitor's sampling memory: the beat values at the last recorded
/// sample (for dedup) and each worker's last successfully read sample
/// (carried forward when the worker holds its process lock at poll time).
struct SamplingState {
    last_sampled_beats: Vec<u64>,
    carried: Vec<Sample>,
}

impl SamplingState {
    fn new(workers: usize) -> Self {
        SamplingState {
            last_sampled_beats: vec![u64::MAX; workers],
            carried: vec![Sample::default(); workers],
        }
    }

    /// Record one sampling tick from the poll's heartbeat snapshot.
    ///
    /// Per-worker gauges and counters come from the process behind a
    /// `try_lock` (a worker mid-sweep keeps its lock; we carry the last
    /// known values rather than block — counters stay monotone because
    /// the carried value is an earlier read of a monotone ledger).
    /// Global counters come from the lock-free [`ThreadedStats`] /
    /// [`Quiescence`] atomics. `scions_reclaimed` is `scions_deleted`
    /// globally (the shared stats do not split out the acyclic layer)
    /// but includes both layers per process, mirroring the sequential
    /// runtime.
    fn sample_tick(&mut self, ctx: &MonitorCtx, now_us: u64, polls: u64, beats: &[Heartbeat]) {
        // Dedup by beat: if no worker advanced since the last recorded
        // sample, the system is idle and a new row would duplicate the
        // previous one.
        if beats
            .iter()
            .zip(&self.last_sampled_beats)
            .all(|(b, &prev)| b.last_beat_us == prev)
        {
            return;
        }
        for (i, b) in beats.iter().enumerate() {
            self.last_sampled_beats[i] = b.last_beat_us;
        }
        let at = SimTime(now_us);
        let mut global = Sample {
            at,
            round: polls,
            proc: None,
            in_flight_cdms: ctx
                .quiescence
                .enqueued
                .load(Ordering::SeqCst)
                .saturating_sub(ctx.quiescence.drained.load(Ordering::SeqCst)),
            votes_held: ctx.quiescence.votes.load(Ordering::SeqCst),
            lgc_runs: ctx.stats.lgc_runs.load(Ordering::Relaxed),
            snapshots: ctx.stats.snapshots.load(Ordering::Relaxed),
            cdms_sent: ctx.stats.cdms_sent.load(Ordering::Relaxed),
            cycles_detected: ctx.stats.cycles_detected.load(Ordering::Relaxed),
            objects_reclaimed: ctx.stats.objects_reclaimed.load(Ordering::Relaxed),
            scions_reclaimed: ctx.stats.scions_deleted.load(Ordering::Relaxed),
            mutator_ops: ctx.stats.mutator_ops.load(Ordering::Relaxed),
            ..Sample::default()
        };
        let per_proc: Vec<Sample> = beats
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let prev = &self.carried[i];
                let mut s = match ctx.cells[i].try_lock() {
                    Some(p) => Sample {
                        live_objects: p.heap.stats().live_objects as u64,
                        candidates: p.candidates.tracked() as u64,
                        max_backoff_attempt: u64::from(p.candidates.max_attempts()),
                        lgc_runs: p.metrics.lgc_runs,
                        snapshots: p.metrics.snapshots,
                        cdms_sent: p.metrics.cdms_sent,
                        cycles_detected: p.metrics.cycles_detected,
                        objects_reclaimed: p.metrics.objects_reclaimed,
                        scions_reclaimed: p.metrics.scions_reclaimed_acyclic
                            + p.metrics.scions_deleted_by_dcda,
                        pinned_scions: p.tables.pinned_scion_count() as u64,
                        mutator_ops: p.metrics.mutator_ops(),
                        ..Sample::default()
                    },
                    None => *prev,
                };
                s.at = at;
                s.round = polls;
                s.proc = Some(ProcId(i as u16));
                s.inbox_depth = b.inbox_depth();
                s.in_flight_cdms = b.inbox_depth();
                s.votes_held = u64::from(b.voted);
                self.carried[i] = s;
                s
            })
            .collect();
        for s in &per_proc {
            global.live_objects += s.live_objects;
            global.candidates += s.candidates;
            global.max_backoff_attempt = global.max_backoff_attempt.max(s.max_backoff_attempt);
            global.inbox_depth += s.inbox_depth;
            global.pinned_scions += s.pinned_scions;
        }
        ctx.sampler.lock().record(global, &per_proc);
    }
}

/// Snapshot every worker's vitals, pending tail, and (when the process
/// lock is free) metrics ledger. `stalled` is per-worker flags; empty
/// means "none" (the terminal report).
fn build_health_report(
    reason: HealthReason,
    at_us: u64,
    beats: &[Heartbeat],
    stalled: &[bool],
    tails: &[SharedTail],
    cells: &[Arc<Mutex<Process>>],
) -> HealthReport {
    let workers = beats
        .iter()
        .enumerate()
        .map(|(i, b)| {
            // The health schema carries (time, event); the pre-assigned
            // Lamport stamp only matters once the tail lands in the ring.
            let pending_tail = tails[i]
                .lock()
                .iter()
                .map(|(at, _, e)| (*at, e.clone()))
                .collect();
            // try_lock: a worker stalled *inside* a sweep holds its
            // process lock; blocking on it would wedge the watchdog
            // behind the very stall it is reporting.
            let ledger = cells[i].try_lock().map(|p| p.metrics.to_json());
            WorkerHealth {
                proc: ProcId(i as u16),
                stage: b.stage,
                last_beat_us: b.last_beat_us,
                sweep: b.sweep,
                voted: b.voted,
                inbox_depth: b.inbox_depth(),
                stalled: stalled.get(i).copied().unwrap_or(false),
                pending_tail,
                ledger,
            }
        })
        .collect();
    HealthReport {
        at_us,
        reason,
        workers,
    }
}

/// Outbound `NewSetStubs` bookkeeping towards one peer.
struct NssOutbound {
    /// Content of the last transmission (sorted live refs).
    live_refs: Vec<RefId>,
    /// Sequence number of the last transmission; an ack for an older
    /// sequence does not confirm newer content.
    last_seq: u64,
    acked: bool,
    /// Sweep index of the last transmission, for retry pacing.
    sent_round: u64,
}

/// Per-worker context: everything a worker touches besides its process
/// cell and inbox.
struct WorkerCtx {
    me: ProcId,
    txs: Vec<Sender<ThreadEnvelope>>,
    /// `cfg.trace.enabled`, hoisted so hot paths branch on a bool.
    trace_on: bool,
    /// `cfg.trace.enabled && cfg.trace.lamport`, hoisted likewise.
    lamport_on: bool,
    /// Handle on this process's Lamport clock — the same atomic the
    /// process ring ticks on direct records, so tail stamps and in-lock
    /// stamps share one per-process counter. Ticked when buffering into
    /// the tail, read (not ticked) when piggybacking on a send, folded
    /// forward (`witness`) on every receive.
    clock: LamportClock,
    cfg: GcConfig,
    net: NetConfig,
    rng: SmallRng,
    stats: Arc<ThreadedStats>,
    quiescence: Arc<Quiescence>,
    detection_ids: Arc<AtomicU64>,
    nss_out: FxHashMap<ProcId, NssOutbound>,
    /// This worker's metrics accumulator: counted lock-free on the hot
    /// path, folded into the process ledger at sweep boundaries (and once
    /// after the final drain) by [`WorkerCtx::flush_into`]. Mirrors the
    /// [`ThreadedStats`] counters so sequential and threaded runs emit
    /// comparable `Metrics`.
    local: Metrics,
    /// Shared heartbeat slots: this worker publishes into slot
    /// `me.index()`, reads nothing. The watchdog monitor reads all slots.
    hb: Arc<Heartbeats>,
    /// Events recorded while the process lock is *not* held (vote
    /// transitions, send-path drops' NSS bookkeeping). Flushed into the
    /// per-process ring at sweep boundaries so the hot path never takes a
    /// shared lock just to trace. Shared with the watchdog monitor so a
    /// stall report can expose the not-yet-flushed tail.
    tail: SharedTail,
    /// Test/diagnostic hook invoked once per loop iteration, after the
    /// heartbeat for that iteration is published. Lets a test wedge a
    /// specific worker at a known point without reaching into internals.
    hook: Option<SweepHook>,
    started: Instant,
    round: u64,
    voted: bool,
    quiet_streak: u32,
    /// The `Quiescence::mutation_events` value this worker has already
    /// folded into its quiet-streak accounting (mirrored into
    /// `Quiescence::mutation_seen` for the global check).
    last_mutation_seen: u64,
    /// Shared allocator for [`ThreadEnvelope::tag`] dedup tags; one
    /// counter across all workers so tags are globally unique.
    msg_tags: Arc<AtomicU64>,
    /// Detections this worker initiated whose credit has not fully come
    /// home: id → (scion walked, mutation epoch at initiation, credit
    /// still outstanding, whether every echo so far was clean).
    outstanding: FxHashMap<DetectionId, Outstanding>,
    /// Receiver-side dedup window over [`ThreadEnvelope::tag`]: a tag in
    /// the set has been processed; `seen_order` evicts oldest-first so
    /// the window stays bounded (duplicates arrive close behind their
    /// originals — the channel is bounded — so a small window suffices).
    seen_tags: FxHashSet<u64>,
    seen_order: VecDeque<u64>,
}

/// Weight-throwing ledger entry for one initiated detection (see
/// [`ThreadMsg::DetectionCredit`]).
struct Outstanding {
    /// The candidate scion the detection walked from.
    scion: RefId,
    /// `Quiescence::mutation_events` as of initiation; a verdict is
    /// applied only if the count is unchanged when the last credit lands
    /// (and re-checked against the candidate table's own epoch), since a
    /// racing mutation can invalidate what the walk observed.
    epoch: u64,
    /// Credit not yet returned; starts at [`acdgc_dcda::FULL_CREDIT`].
    credit: u64,
    /// AND of every echo's `clean` flag: true only while *all* settled
    /// branches proved liveness (rather than dying to a fault, budget,
    /// hop cap, IC mismatch, or a no-new-information prune).
    clean: bool,
}

/// Cap on the dedup window (tags remembered per worker).
const SEEN_TAG_WINDOW: usize = 8192;
/// Cap on the outstanding-detection ledger; beyond this the oldest
/// (smallest-id) entries are forgotten, which only loses a potential
/// suppression — the candidate simply retries after its backoff.
const OUTSTANDING_CAP: usize = 1024;

/// How a drained message should be handled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DrainMode {
    /// Normal in-loop drain: process everything, acknowledge NSS.
    Live,
    /// Post-stop drain: apply idempotent state (NSS, scion deletes) so
    /// buffered messages from peers that stopped after us are not lost,
    /// but discard CDMs (no peers remain to continue a walk) and send
    /// nothing.
    Final,
}

/// Which per-kind drop counter a loss is charged to.
#[derive(Clone, Copy)]
enum MsgKind {
    Nss,
    Ack,
    Cdm,
    Delete,
    /// Credit echo ([`ThreadMsg::DetectionCredit`]). Losses are charged
    /// to the CDM drop counter: an echo is part of the detection walk,
    /// and a lost echo degrades exactly like a lost CDM (the initiator
    /// never recovers full credit and the candidate retries later).
    Credit,
}

impl WorkerCtx {
    /// This worker's clock: microseconds since the run started. The
    /// threaded runtime has no shared simulated clock; wall time is the
    /// only order that means anything across threads.
    fn now(&self) -> SimTime {
        SimTime(self.started.elapsed().as_micros() as u64 + 1)
    }

    /// Buffer an event without taking the process lock; delivered to the
    /// per-process ring at the next [`WorkerCtx::flush_into`]. The tail
    /// lock is uncontended except when the watchdog snapshots it.
    fn trace(&mut self, event: Event) {
        if self.trace_on {
            let at = self.now();
            // Stamp now, not at flush: the tail may sit across several
            // sweeps, and a late flush must not reorder the clock. Tick
            // *inside* the tail lock: the mutator pushes into this same
            // tail (ticking the same clock, also under the tail lock), so
            // tick-then-lock could interleave as tick(5) / mutator
            // tick(6)+push / push(5) — descending stamps in tail order,
            // which a flush would turn into a causal-order violation.
            let len = {
                let mut tail = self.tail.lock();
                let lc = if self.lamport_on {
                    self.clock.tick()
                } else {
                    0
                };
                tail.push((at, lc, event));
                tail.len()
            };
            self.hb.slot(self.me.index()).set_pending(len);
        }
    }

    /// Fold this worker's lock-free accumulations into the process: the
    /// `local` metrics into the process ledger, the pending `tail` events
    /// into the process ring. Called with the lock held at sweep
    /// boundaries and once after the final drain.
    fn flush_into(&mut self, p: &mut Process) {
        if self.local != Metrics::default() {
            p.metrics.absorb(&self.local);
            self.local = Metrics::default();
        }
        let drained: Vec<(SimTime, u64, Event)> = {
            let mut tail = self.tail.lock();
            tail.drain(..).collect()
        };
        if !drained.is_empty() {
            self.hb.slot(self.me.index()).set_pending(0);
        }
        for (at, lc, event) in drained {
            p.obs.record_stamped(at, lc, event);
        }
    }

    fn drop_counter(&self, kind: MsgKind) -> &AtomicU64 {
        match kind {
            MsgKind::Nss => &self.stats.nss_dropped,
            MsgKind::Ack => &self.stats.acks_dropped,
            MsgKind::Cdm | MsgKind::Credit => &self.stats.cdms_dropped,
            MsgKind::Delete => &self.stats.deletes_dropped,
        }
    }

    /// Count one loss in the per-kind shared counter *and* the worker's
    /// local `Metrics` mirror.
    fn count_drop(&mut self, kind: MsgKind) {
        self.drop_counter(kind).fetch_add(1, Ordering::Relaxed);
        match kind {
            MsgKind::Nss => self.local.nss_dropped += 1,
            MsgKind::Ack => self.local.acks_dropped += 1,
            MsgKind::Cdm | MsgKind::Credit => self.local.cdms_dropped += 1,
            MsgKind::Delete => self.local.deletes_dropped += 1,
        }
    }

    /// Record a dedup tag; returns false if it was already seen (the
    /// message is an injected duplicate and must be discarded). The
    /// window is bounded by [`SEEN_TAG_WINDOW`], evicting oldest-first.
    fn note_tag(&mut self, tag: u64) -> bool {
        if !self.seen_tags.insert(tag) {
            return false;
        }
        self.seen_order.push_back(tag);
        if self.seen_order.len() > SEEN_TAG_WINDOW {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen_tags.remove(&old);
            }
        }
        true
    }

    /// Send through the seeded fault injector; a full (or disconnected)
    /// inbox also drops. Every accepted copy is counted into the
    /// quiescence enqueue ledger.
    fn send(&mut self, dest: ProcId, msg: ThreadMsg, kind: MsgKind) {
        if self
            .rng
            .gen_bool(self.net.gc_drop_probability.clamp(0.0, 1.0))
        {
            self.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            self.local.faults_injected += 1;
            self.count_drop(kind);
            return;
        }
        let copies = if self
            .rng
            .gen_bool(self.net.gc_duplicate_probability.clamp(0.0, 1.0))
        {
            self.stats
                .duplicates_injected
                .fetch_add(1, Ordering::Relaxed);
            self.local.duplicates_injected += 1;
            2
        } else {
            1
        };
        // Piggyback the sender's current clock; every record that
        // causally precedes this send has already ticked it, so the
        // receiver's witness establishes receive > send.
        let lamport = if self.lamport_on {
            self.clock.current()
        } else {
            0
        };
        // One tag per *logical* send, allocated before the copies loop so
        // an injected duplicate shares it and the receiver keeps exactly
        // one — credit must not be forgeable by the fault injector.
        let tag = match kind {
            MsgKind::Cdm | MsgKind::Credit => self.msg_tags.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        for _ in 0..copies {
            let env = ThreadEnvelope {
                lamport,
                tag,
                msg: msg.clone(),
            };
            if self.txs[dest.index()].try_send(env).is_ok() {
                self.quiescence.enqueued.fetch_add(1, Ordering::SeqCst);
                self.hb.slot(dest.index()).note_enqueue();
            } else {
                self.count_drop(kind);
            }
        }
    }

    /// Drain the inbox, processing every message per `mode`. Returns how
    /// many messages were drained. The single implementation for the
    /// in-loop and final drains keeps their stats accounting identical by
    /// construction.
    fn drain(
        &mut self,
        cell: &Arc<Mutex<Process>>,
        rx: &Receiver<ThreadEnvelope>,
        mode: DrainMode,
    ) -> u64 {
        let mut drained = 0u64;
        while let Ok(env) = rx.try_recv() {
            // Lamport receive rule, before any delivery-side event: every
            // event this delivery triggers must stamp above the sender's
            // clock at send time.
            if self.lamport_on {
                self.clock.witness(env.lamport);
            }
            let msg = env.msg;
            if self.voted && mode == DrainMode::Live {
                // Rescind BEFORE the drain is counted: the quiescence
                // checker relies on "a voted worker's receive is preceded
                // by a rescind" to rule out hidden activity.
                self.quiescence.votes.fetch_sub(1, Ordering::SeqCst);
                self.quiescence.rescinds.fetch_add(1, Ordering::SeqCst);
                self.stats.votes_rescinded.fetch_add(1, Ordering::Relaxed);
                self.local.votes_rescinded += 1;
                let sweep = self.round;
                self.trace(Event::VoteRescinded { sweep });
                self.voted = false;
                self.quiet_streak = 0;
            }
            self.quiescence.drained.fetch_add(1, Ordering::SeqCst);
            self.hb.slot(self.me.index()).note_drain();
            drained += 1;
            // Dedup strictly AFTER the drained ledger update: quiescence
            // compares enqueued vs drained totals, and a skipped-but-
            // enqueued duplicate would otherwise hold the run open forever.
            if env.tag != 0 && !self.note_tag(env.tag) {
                self.local.cdms_deduped += 1;
                continue;
            }
            let now = self.now();
            match msg {
                ThreadMsg::Nss(nss) => {
                    let (from, seq) = (nss.from, nss.seq);
                    {
                        let mut guard = cell.lock();
                        let p = &mut *guard;
                        // Flush the pending tail first so direct records
                        // below land after (in seq) the earlier-stamped
                        // buffered events — keeps per-process stamps
                        // monotone in ring order.
                        self.flush_into(p);
                        let applied =
                            apply_new_set_stubs_observed(&mut p.tables, &nss, now, &mut p.obs);
                        if applied.stale {
                            self.local.nss_stale += 1;
                        } else {
                            self.local.nss_applied += 1;
                            self.local.scions_reclaimed_acyclic += applied.removed.len() as u64;
                        }
                    }
                    if mode == DrainMode::Live {
                        // Ack even stale sequences: the receiver already
                        // holds fresher information, so the sender may
                        // stop retrying this transmission.
                        let me = self.me;
                        self.trace(Event::NssAcked { to: from, seq });
                        self.send(from, ThreadMsg::NssAck { from: me, seq }, MsgKind::Ack);
                    }
                }
                ThreadMsg::NssAck { from, seq } => {
                    if let Some(out) = self.nss_out.get_mut(&from) {
                        if seq >= out.last_seq {
                            out.acked = true;
                        }
                    }
                }
                ThreadMsg::Cdm { via, cdm } => {
                    if mode == DrainMode::Final {
                        // No peers remain to continue the walk; the loss
                        // is counted like any other dropped CDM so the
                        // ledgers cannot silently diverge.
                        self.stats.cdms_dropped.fetch_add(1, Ordering::Relaxed);
                        self.local.cdms_dropped += 1;
                    } else {
                        let id = cdm.detection_id;
                        // This processing step's hop depth (deliver
                        // increments the wire value before expanding).
                        let hop = cdm.hops + 1;
                        let initiator = cdm.initiator;
                        let credit = cdm.credit;
                        let delivered = Event::CdmDelivered {
                            id,
                            via,
                            hop,
                            sources: cdm.source.len() as u32,
                            targets: cdm.target.len() as u32,
                            bytes: (8 + cdm.size_bytes()) as u32,
                        };
                        let mut guard = cell.lock();
                        let p = &mut *guard;
                        self.flush_into(p);
                        self.local.cdms_delivered += 1;
                        p.obs.record(now, delivered);
                        let sw = p.obs.stopwatch();
                        let outcome = acdgc_dcda::deliver(&p.summary, cdm, via, &self.cfg);
                        self.handle_outcome(p, id, hop, initiator, credit, outcome);
                        p.obs.lap(Phase::CdmHandling, sw);
                    }
                }
                ThreadMsg::DetectionCredit { id, credit, clean } => {
                    if mode == DrainMode::Final {
                        // Like a late CDM: no walk remains to settle.
                        self.stats.cdms_dropped.fetch_add(1, Ordering::Relaxed);
                        self.local.cdms_dropped += 1;
                    } else {
                        let mut guard = cell.lock();
                        let p = &mut *guard;
                        self.flush_into(p);
                        self.apply_credit(p, id, credit, clean);
                    }
                }
                ThreadMsg::DeleteScion(r, inc, ic) => {
                    let barrier = self.cfg.ic_barrier;
                    let mut guard = cell.lock();
                    self.flush_into(&mut guard);
                    delete_scion(
                        &mut guard,
                        r,
                        inc,
                        ic,
                        barrier,
                        now,
                        &self.stats,
                        &mut self.local,
                    );
                }
            }
        }
        drained
    }

    /// Act on a detection outcome while holding the process lock. Counts
    /// into both ledgers ([`ThreadedStats`] for back-compat, the local
    /// [`Metrics`] mirror for parity with the sequential runtime) and
    /// records the same lifecycle events the sequential
    /// `System::handle_outcome` does. `initiator` and `credit` are the
    /// values the just-expanded CDM carried on the wire; every terminal
    /// outcome echoes that credit home (see
    /// [`ThreadMsg::DetectionCredit`]), with `clean = true` only for the
    /// two outcomes that *prove* the walked structure live.
    fn handle_outcome(
        &mut self,
        p: &mut Process,
        id: DetectionId,
        hop: u32,
        initiator: ProcId,
        credit: u64,
        outcome: Outcome,
    ) {
        let now = self.now();
        match outcome {
            Outcome::Forwarded {
                out: list,
                branches_pruned_local,
                branches_no_new_info,
                branches_starved,
            } => {
                self.local.branches_pruned_local += u64::from(branches_pruned_local);
                self.local.branches_no_new_info += u64::from(branches_no_new_info);
                // The forwarded branches carry the credit onward; nothing
                // settles here. Slack-pruned branches are harmless (their
                // pairs were already in the algebra, so an ancestor walked
                // past them), but a budget-starved branch carried *new*
                // territory that was cut unexplored — mark the walk
                // incomplete with a zero-credit unclean echo (credit
                // itself is conserved in the survivors).
                if branches_starved > 0 {
                    self.settle_credit(p, id, initiator, 0, false);
                }
                p.obs.record(
                    now,
                    Event::CdmForwarded {
                        id,
                        hop,
                        branches: list.len() as u32,
                        pruned_local: branches_pruned_local,
                        pruned_no_new_info: branches_no_new_info,
                    },
                );
                for ob in list {
                    let size = 8 + ob.cdm.size_bytes();
                    self.stats.cdms_sent.fetch_add(1, Ordering::Relaxed);
                    self.local.cdms_sent += 1;
                    self.local.max_cdm_bytes = self.local.max_cdm_bytes.max(size as u64);
                    p.obs.record(
                        now,
                        Event::CdmSent {
                            id,
                            to: ob.dest,
                            via: ob.via,
                            // Hop depth at which the receiver will process
                            // it (the detector increments on delivery).
                            hop: ob.cdm.hops + 1,
                            sources: ob.cdm.source.len() as u32,
                            targets: ob.cdm.target.len() as u32,
                            bytes: size as u32,
                        },
                    );
                    self.send(
                        ob.dest,
                        ThreadMsg::Cdm {
                            via: ob.via,
                            cdm: ob.cdm,
                        },
                        MsgKind::Cdm,
                    );
                }
            }
            Outcome::CycleFound { delete } => {
                // The derivation dies here (credit must go home), but a
                // cycle verdict is the opposite of a liveness proof:
                // unclean, so a concurrent sibling branch can never
                // launder it into a "proven live" suppression.
                self.settle_credit(p, id, initiator, credit, false);
                self.stats.cycles_detected.fetch_add(1, Ordering::Relaxed);
                self.local.cycles_detected += 1;
                p.obs.record(
                    now,
                    Event::CycleDetected {
                        id,
                        hop,
                        scions: delete.len() as u32,
                    },
                );
                let me = self.me;
                let barrier = self.cfg.ic_barrier;
                for (owner, r, inc, ic) in delete {
                    if owner == me {
                        delete_scion(p, r, inc, ic, barrier, now, &self.stats, &mut self.local);
                    } else {
                        self.send(owner, ThreadMsg::DeleteScion(r, inc, ic), MsgKind::Delete);
                    }
                }
            }
            Outcome::DroppedNoScion => {
                self.settle_credit(p, id, initiator, credit, false);
                self.local.detections_dropped_no_scion += 1;
                p.obs.record(
                    now,
                    Event::DetectionDropped {
                        id,
                        hop,
                        reason: DropReason::NoScion,
                    },
                );
            }
            Outcome::AbortedIcMismatch {
                ref_id,
                source_ic,
                target_ic,
            } => {
                self.settle_credit(p, id, initiator, credit, false);
                self.local.detections_aborted_ic += 1;
                p.obs.record(
                    now,
                    Event::DetectionAborted {
                        id,
                        hop,
                        ref_id,
                        source_ic,
                        target_ic,
                    },
                );
            }
            Outcome::DroppedHopCap => {
                self.settle_credit(p, id, initiator, credit, false);
                self.local.detections_dropped_hops += 1;
                p.obs.record(
                    now,
                    Event::DetectionDropped {
                        id,
                        hop,
                        reason: DropReason::HopCap,
                    },
                );
            }
            Outcome::Terminated(reason) => {
                // Clean means "re-running this leaf on unchanged state
                // reproduces the same non-cycle conclusion": NoStubs and
                // AllStubsLocallyReachable are conclusive, and a
                // NoNewInformation terminal only re-crossed pairs an
                // ancestor branch already explored past. BudgetExhausted
                // is the exception — a retry may start from a different
                // candidate of the same structure and get further, so it
                // must not be laundered into a verdict.
                let clean = !matches!(reason, TerminateReason::BudgetExhausted);
                self.settle_credit(p, id, initiator, credit, clean);
                let (field, obs_reason): (fn(&mut Metrics) -> &mut u64, _) = match reason {
                    TerminateReason::NoStubs => (
                        |m| &mut m.detections_terminated_no_stubs,
                        TermReason::NoStubs,
                    ),
                    TerminateReason::AllStubsLocallyReachable => (
                        |m| &mut m.detections_terminated_local,
                        TermReason::AllStubsLocallyReachable,
                    ),
                    TerminateReason::NoNewInformation => (
                        |m| &mut m.detections_terminated_no_new_info,
                        TermReason::NoNewInformation,
                    ),
                    TerminateReason::BudgetExhausted => (
                        |m| &mut m.detections_terminated_budget,
                        TermReason::BudgetExhausted,
                    ),
                };
                *field(&mut self.local) += 1;
                p.obs.record(
                    now,
                    Event::DetectionTerminated {
                        id,
                        hop,
                        reason: obs_reason,
                    },
                );
            }
        }
    }

    /// Route a dying derivation's credit back to its initiator: applied
    /// directly when the initiator is this worker (the common case for
    /// outcomes produced at initiation time), echoed over the wire
    /// otherwise. The echo rides the same lossy channel as every other GC
    /// message — a lost echo just means the initiator never recovers full
    /// credit and the candidate retries after its backoff, exactly the
    /// status quo.
    fn settle_credit(
        &mut self,
        p: &mut Process,
        id: DetectionId,
        initiator: ProcId,
        credit: u64,
        clean: bool,
    ) {
        if initiator == self.me {
            self.apply_credit(p, id, credit, clean);
        } else {
            self.local.liveness_echoes += 1;
            self.send(
                initiator,
                ThreadMsg::DetectionCredit { id, credit, clean },
                MsgKind::Credit,
            );
        }
    }

    /// Initiator side of the weight-throwing scheme: fold an echo into
    /// the outstanding-detection ledger; when the last credit lands with
    /// every echo clean *and* no mutation raced the walk, record a lazy
    /// liveness verdict so the candidate scan stops re-picking the scion
    /// until the next mutation epoch.
    fn apply_credit(&mut self, p: &mut Process, id: DetectionId, credit: u64, clean: bool) {
        let Some(o) = self.outstanding.get_mut(&id) else {
            // Evicted (ledger cap) or a stale echo for a detection whose
            // verdict already settled; either way there is nothing to
            // account against.
            return;
        };
        o.credit = o.credit.saturating_sub(credit);
        o.clean &= clean;
        if o.credit == 0 {
            let done = self.outstanding.remove(&id).expect("present above");
            let epoch_now = self.quiescence.mutation_events.load(Ordering::SeqCst);
            if done.clean && epoch_now == done.epoch {
                p.candidates.record_live_verdict(done.scion, done.epoch);
                self.local.liveness_verdicts += 1;
            }
        }
    }

    /// One GC sweep: LGC, stub-death publication (with ack/retry), snapshot,
    /// candidate scan, detection initiation. Returns whether the sweep saw
    /// or produced any activity — including *pending* work (unacked NSS,
    /// backing-off candidates), which must hold off the quiescence vote.
    fn sweep(&mut self, cell: &Arc<Mutex<Process>>, start: Instant) -> bool {
        let mut active = false;
        let t = SimTime(start.elapsed().as_micros() as u64 + 1);
        let mut guard = cell.lock();
        let p = &mut *guard;
        // Sweep boundary: fold the lock-free accumulations from the drain
        // and send paths into the process while we hold the lock anyway.
        self.flush_into(p);

        let targets = p.tables.scion_target_slots();
        let result = lgc::collect_observed(&mut p.heap, &targets, t, &mut p.obs);
        self.stats
            .objects_reclaimed
            .fetch_add(result.sweep.freed.len() as u64, Ordering::Relaxed);
        self.stats.lgc_runs.fetch_add(1, Ordering::Relaxed);
        self.local.lgc_runs += 1;
        self.local.objects_reclaimed += result.sweep.freed.len() as u64;
        active |= !result.sweep.freed.is_empty();

        let dead: Vec<RefId> = p
            .tables
            .stubs()
            .filter(|s| !result.mark.live_stubs.contains(&s.ref_id))
            .map(|s| s.ref_id)
            .collect();
        active |= !dead.is_empty();
        match self.cfg.integration {
            IntegrationMode::VmIntegrated => {
                p.tables.remove_dead_stubs(&dead);
            }
            IntegrationMode::WeakRefMonitor => {
                p.tables.condemn_stubs(&dead);
                p.tables.monitor_pass();
                self.local.monitor_passes += 1;
            }
        }

        let peers: Vec<ProcId> = (0..self.txs.len() as u16)
            .map(ProcId)
            .filter(|&q| q != self.me)
            .collect();
        for (dest, m) in build_new_set_stubs(&mut p.tables, &peers, t) {
            active |= self.offer_nss(dest, m);
        }
        // The offers traced NssSent into the tail (pre-stamped); fold them
        // into the ring now, before the summary/scan records below tick
        // the clock past them — a sweep-end flush would give them a later
        // seq with an earlier stamp and break per-process monotonicity.
        self.flush_into(p);

        // Re-judge scions that an earlier NSS application skipped because
        // they were pinned (mutator export/invocation in flight). The
        // accepted live sets are saved in the tables; a scion that has
        // since been unpinned without a refresh is retroactively dead.
        let deferred = p.tables.sweep_deferred_nss();
        if !deferred.is_empty() {
            self.local.scions_reclaimed_acyclic += deferred.len() as u64;
            active = true;
        }

        p.refresh_summary(self.cfg.summarizer, t);
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        self.local.snapshots += 1;
        self.local.summary_scions += p.summary.scions.len() as u64;
        self.local.summary_stubs += p.summary.stubs.len() as u64;

        // Advance the candidate table's mutation epoch before scanning:
        // any mutator activity since the last sweep invalidates earlier
        // proven-live suppressions (the structure may have changed shape),
        // and stale verdicts still in flight die on the epoch check.
        p.candidates.set_epoch(self.last_mutation_seen);
        let scan = p.scan(t, &self.cfg);
        // Deferred candidates are scheduled retries: quiescence now would
        // abandon them, and with message loss a retry may be the only
        // thing standing between a garbage cycle and a leak.
        active |= scan.work_pending();
        for scion in scan.picked {
            let Some(s) = p.summary.scion(scion) else {
                continue;
            };
            let cdm = Cdm::initiate(
                DetectionId(self.detection_ids.fetch_add(1, Ordering::Relaxed)),
                self.me,
                scion,
                s.ic,
            );
            let id = cdm.detection_id;
            // Open the weight-throwing ledger entry for this detection.
            // Any older entry for the same scion is superseded — its
            // late echoes will miss the ledger and be ignored.
            self.outstanding.retain(|_, o| o.scion != scion);
            if self.outstanding.len() >= OUTSTANDING_CAP {
                // Forget the oldest half; those candidates just lose a
                // potential suppression and retry after backoff.
                let mut ids: Vec<DetectionId> = self.outstanding.keys().copied().collect();
                ids.sort_unstable_by_key(|d| d.0);
                for stale in ids.into_iter().take(OUTSTANDING_CAP / 2) {
                    self.outstanding.remove(&stale);
                }
            }
            self.outstanding.insert(
                id,
                Outstanding {
                    scion,
                    epoch: self.last_mutation_seen,
                    credit: acdgc_dcda::FULL_CREDIT,
                    clean: true,
                },
            );
            self.local.detections_started += 1;
            p.obs.record(t, Event::DetectionStarted { id, scion });
            let sw = p.obs.stopwatch();
            let outcome = acdgc_dcda::initiate(&p.summary, cdm, scion, &self.cfg);
            self.handle_outcome(p, id, 0, self.me, acdgc_dcda::FULL_CREDIT, outcome);
            p.obs.lap(Phase::CdmHandling, sw);
        }
        // Fold this sweep's tail (events recorded on the send path while
        // the lock was held) before releasing.
        self.flush_into(p);
        active
    }

    /// Decide whether `m` (this sweep's live set towards `dest`) needs the
    /// wire: transmit on content change, retransmit while unacknowledged,
    /// stay silent once the peer confirmed the current content. Returns
    /// whether NSS work is still in flight towards `dest`.
    fn offer_nss(&mut self, dest: ProcId, m: NewSetStubs) -> bool {
        enum Action {
            Transmit { retry: bool },
            AwaitAck,
            Settled,
        }
        let action = match self.nss_out.get_mut(&dest) {
            Some(out) if out.live_refs == m.live_refs => {
                if out.acked {
                    Action::Settled
                } else if self.round.saturating_sub(out.sent_round)
                    >= u64::from(self.cfg.nss_retry_sweeps.max(1))
                {
                    out.last_seq = m.seq;
                    out.sent_round = self.round;
                    Action::Transmit { retry: true }
                } else {
                    Action::AwaitAck
                }
            }
            _ => {
                self.nss_out.insert(
                    dest,
                    NssOutbound {
                        live_refs: m.live_refs.clone(),
                        last_seq: m.seq,
                        acked: false,
                        sent_round: self.round,
                    },
                );
                Action::Transmit { retry: false }
            }
        };
        match action {
            Action::Transmit { retry } => {
                if retry {
                    self.stats.nss_retries.fetch_add(1, Ordering::Relaxed);
                    self.local.nss_retries += 1;
                }
                self.local.nss_sent += 1;
                self.trace(Event::NssSent {
                    to: dest,
                    seq: m.seq,
                    live_refs: m.live_refs.len() as u32,
                    retry,
                });
                self.send(dest, ThreadMsg::Nss(m), MsgKind::Nss);
                true
            }
            Action::AwaitAck => true,
            Action::Settled => false,
        }
    }
}

/// Delete `r`'s scion if it still matches the witnessed incarnation and is
/// unpinned; counts into `scions_deleted` (and the worker's local
/// `Metrics`) and records the [`Event::ScionDeleted`] forensic event. One
/// implementation for the CycleFound, DeleteScion, and final-drain paths
/// so the ledgers cannot diverge between them.
#[allow(clippy::too_many_arguments)]
fn delete_scion(
    p: &mut Process,
    r: RefId,
    inc: u32,
    ic: u64,
    ic_barrier: bool,
    now: SimTime,
    stats: &ThreadedStats,
    local: &mut Metrics,
) -> bool {
    // Three deletion guards: the pin (an export/invocation is in flight
    // right now), the incarnation (ABA — a recreated scion under the same
    // id is a different reference), and the lazy IC barrier (the counter
    // moved since the verdict witnessed it, so a mutator used the
    // reference after the walk and the verdict is stale).
    if p.tables
        .scion(r)
        .is_some_and(|s| s.pinned == 0 && s.incarnation == inc && (!ic_barrier || s.ic == ic))
        && p.tables.remove_scion(r).is_some()
    {
        stats.scions_deleted.fetch_add(1, Ordering::Relaxed);
        local.scions_deleted_by_dcda += 1;
        p.obs.record(
            now,
            Event::ScionDeleted {
                scion: r,
                incarnation: inc,
            },
        );
        p.summary.scions.remove(&r);
        true
    } else {
        false
    }
}

/// Fold every process's per-process ledger into one system-wide view —
/// the threaded counterpart of the sequential `System::metrics()`.
pub fn merged_metrics(procs: &[Process]) -> Metrics {
    let mut merged = Metrics::default();
    for p in procs {
        merged.absorb(&p.metrics);
    }
    merged
}

fn worker(
    mut ctx: WorkerCtx,
    cell: Arc<Mutex<Process>>,
    rx: Receiver<ThreadEnvelope>,
    start: Instant,
    deadline: Duration,
) {
    let me = ctx.me.index();
    let hb = Arc::clone(&ctx.hb);
    let hook = ctx.hook.take();
    hb.slot(me)
        .beat(now_us(start), 0, WorkerStage::Starting, false);
    while !ctx.quiescence.stop.load(Ordering::SeqCst) {
        if start.elapsed() >= deadline {
            break;
        }
        ctx.round += 1;
        hb.slot(me).beat(
            now_us(start),
            ctx.round,
            if ctx.voted {
                WorkerStage::Voted
            } else {
                WorkerStage::Draining
            },
            ctx.voted,
        );

        let received = ctx.drain(&cell, &rx, DrainMode::Live);
        if received > 0 {
            ctx.quiet_streak = 0;
        }

        // Mutation check: a mutator op anywhere in the system can create
        // fresh garbage (or fresh work) on *this* process via an export or
        // an invocation, so any unseen mutation resets the quiet streak —
        // and rescinds an already-cast vote so the barrier can't close
        // around activity we have not yet swept.
        let mutations = ctx.quiescence.mutation_events.load(Ordering::SeqCst);
        if mutations != ctx.last_mutation_seen {
            if ctx.voted {
                ctx.voted = false;
                ctx.quiescence.votes.fetch_sub(1, Ordering::SeqCst);
                ctx.quiescence.rescinds.fetch_add(1, Ordering::SeqCst);
                ctx.stats.votes_rescinded.fetch_add(1, Ordering::Relaxed);
                ctx.local.votes_rescinded += 1;
                ctx.trace(Event::VoteRescinded { sweep: ctx.round });
            }
            ctx.quiet_streak = 0;
            ctx.last_mutation_seen = mutations;
        }
        // Publish what we've seen *after* folding it into our streak, so
        // the global check's "every worker has seen the final mutation"
        // reads a value that postdates the streak reset.
        ctx.quiescence.mutation_seen[me].store(mutations, Ordering::SeqCst);

        if !ctx.voted {
            hb.slot(me).set_stage(WorkerStage::Sweeping, now_us(start));
            let active = ctx.sweep(&cell, start);
            if active || received > 0 {
                ctx.quiet_streak = 0;
            } else {
                ctx.quiet_streak += 1;
            }
            if ctx.quiet_streak >= ctx.cfg.quiet_sweeps.max(1) {
                ctx.voted = true;
                ctx.quiescence.votes.fetch_add(1, Ordering::SeqCst);
                ctx.stats.votes_cast.fetch_add(1, Ordering::Relaxed);
                ctx.local.votes_cast += 1;
                let sweep = ctx.round;
                ctx.trace(Event::VoteCast { sweep });
                hb.slot(me)
                    .beat(now_us(start), ctx.round, WorkerStage::Voted, true);
            }
        } else if ctx.quiescence.globally_quiet() {
            ctx.stats.stopped_by_quiescence.store(1, Ordering::SeqCst);
            ctx.quiescence.stop.store(true, Ordering::SeqCst);
            break;
        }
        // End-of-iteration hook: runs in the same iteration as a vote cast
        // (no stop check in between), so a test can deterministically wedge
        // a worker with its `VoteCast` still in the pending tail.
        if let Some(h) = &hook {
            h(ctx.me, ctx.round, ctx.voted);
        }
        thread::yield_now();
    }
    // Final drain so late NSS / scion deletes buffered by peers that
    // stopped after us are applied rather than lost.
    hb.slot(me)
        .set_stage(WorkerStage::FinalDrain, now_us(start));
    ctx.drain(&cell, &rx, DrainMode::Final);
    // Last flush: whatever the final drain (and a voted worker's last
    // live drains) accumulated must land in the process ledger and ring.
    ctx.flush_into(&mut cell.lock());
    hb.slot(me)
        .beat(now_us(start), ctx.round, WorkerStage::Done, ctx.voted);
    // Signal the watchdog monitor that this worker has fully exited; the
    // monitor loops until every worker has, not until the stop flag.
    ctx.quiescence.workers_done.fetch_add(1, Ordering::SeqCst);
}

/// State owned by one concurrent-mutator thread: the processes it may
/// mutate, the objects it allocated (all rooted at birth), and the remote
/// edges it created. Confining every mutation to thread-owned processes
/// and thread-allocated objects means mutator threads never race *each
/// other* on a stub table or heap — every data race the stress tests
/// exercise is mutator-vs-collector, through the per-process locks.
struct MutatorCtx {
    /// Indices of the processes this thread owns (round-robin partition).
    my_procs: Vec<usize>,
    cells: Vec<Arc<Mutex<Process>>>,
    /// Worker event tails — mutator ops are pushed here (pre-stamped) and
    /// flushed into the per-process ring by the owning worker.
    tails: Vec<SharedTail>,
    /// Per-process Lamport clock handles (the same atomics the workers
    /// tick), so mutator events share the collectors' causal axis.
    clocks: Vec<LamportClock>,
    trace_on: bool,
    lamport_on: bool,
    mcfg: MutatorConfig,
    rng: SmallRng,
    /// Fresh reference-id allocator shared by all mutator threads.
    ref_ids: Arc<AtomicU64>,
    /// Append-only log of every structural mutation, for shadow replay.
    log: Arc<Mutex<Vec<MutOp>>>,
    stats: Arc<ThreadedStats>,
    quiescence: Arc<Quiescence>,
    /// Objects this thread allocated; every entry is currently rooted.
    owned: Vec<ObjId>,
    /// Remote edges this thread created: (holder, ref, target).
    edges: Vec<(ObjId, RefId, ObjId)>,
}

/// Lock two process cells in ascending index order. Pure hygiene between
/// mutator threads (their process sets are disjoint anyway); collector
/// workers only ever hold one process lock at a time, so a mutator
/// holding two cannot deadlock against them in any order.
fn lock_pair<'l>(
    cell_a: &'l Arc<Mutex<Process>>,
    cell_b: &'l Arc<Mutex<Process>>,
    a: usize,
    b: usize,
) -> (
    std::sync::MutexGuard<'l, Process>,
    std::sync::MutexGuard<'l, Process>,
) {
    if a < b {
        let ga = cell_a.lock();
        let gb = cell_b.lock();
        (ga, gb)
    } else {
        let gb = cell_b.lock();
        let ga = cell_a.lock();
        (ga, gb)
    }
}

impl MutatorCtx {
    /// Record a mutator op into `pi`'s event tail. Must be called while
    /// holding `pi`'s process lock: the owning worker flushes its tail at
    /// every lock acquisition before recording directly, so a push landing
    /// *between* a flush and a direct record would break per-process stamp
    /// monotonicity in ring order. Under the process lock it cannot.
    fn trace_op(&self, pi: usize, op: MutatorOpKind, ref_id: Option<RefId>, start: Instant) {
        if !self.trace_on {
            return;
        }
        let at = SimTime(now_us(start) + 1);
        let mut tail = self.tails[pi].lock();
        // Tick inside the tail lock — see `WorkerCtx::trace`.
        let lc = if self.lamport_on {
            self.clocks[pi].tick()
        } else {
            0
        };
        tail.push((at, lc, Event::MutatorOp { op, ref_id }));
    }

    fn now(&self, start: Instant) -> SimTime {
        SimTime(now_us(start) + 1)
    }

    /// Allocate a fresh object on a random owned process and root it in
    /// the same critical section. Always succeeds; doubles as the fallback
    /// when another op's preconditions fail, so every loop iteration
    /// performs *some* mutation.
    fn op_allocate(&mut self, start: Instant) -> bool {
        let pi = self.my_procs[self.rng.gen_range(0..self.my_procs.len())];
        let cell = Arc::clone(&self.cells[pi]);
        let obj = {
            let mut guard = cell.lock();
            let p = &mut *guard;
            let obj = p.heap.alloc(1);
            p.heap
                .add_root(obj)
                .expect("freshly allocated object can always be rooted");
            p.metrics.mutator_allocs += 1;
            self.log.lock().push(MutOp::Allocate { obj, rooted: true });
            self.trace_op(pi, MutatorOpKind::Allocate, None, start);
            obj
        };
        self.owned.push(obj);
        true
    }

    /// Export a remote reference from one owned object to another owned
    /// object on a different process. When no stub/scion pair exists for
    /// the (source, target) yet, this runs the three-step pin/unpin
    /// handshake a real RPC layer would: create the scion *pinned* on the
    /// target process, materialize the stub and heap edge on the holder,
    /// then refresh-and-unpin the scion. The refresh is load-bearing: any
    /// live set the collector accepted during the window predates the new
    /// `created_at`, so the deferred NSS re-judgement cannot reclaim the
    /// scion before the next live set names it.
    fn op_export(&mut self, start: Instant) -> bool {
        if self.owned.len() < 2 {
            return false;
        }
        let h = self.owned[self.rng.gen_range(0..self.owned.len())];
        let targets: Vec<ObjId> = self
            .owned
            .iter()
            .copied()
            .filter(|o| o.proc != h.proc)
            .collect();
        if targets.is_empty() {
            return false;
        }
        let t = targets[self.rng.gen_range(0..targets.len())];
        let (a, b) = (h.proc.index(), t.proc.index());
        let now = self.now(start);
        let (cell_a, cell_b) = (Arc::clone(&self.cells[a]), Arc::clone(&self.cells[b]));

        // Probe for an existing pair under both locks. Both `h` and `t`
        // are this thread's objects, so any stub/scion for the pair was
        // created by this thread — the collector can only *remove* them.
        let reused = {
            let (mut ga, mut gb) = lock_pair(&cell_a, &cell_b, a, b);
            let stub = ga.tables.stub_for_target(t).map(|s| s.ref_id);
            let scion = gb.tables.scion_for_source(h.proc, t).map(|s| s.ref_id);
            let r = match (stub, scion) {
                (Some(r), Some(r2)) => {
                    debug_assert_eq!(r, r2, "stub/scion pair diverged for one (source, target)");
                    ga.tables.pardon_stub(r);
                    ga.heap
                        .add_ref(h, HeapRef::Remote(r))
                        .expect("owned holder is rooted and alive");
                    // Refresh: the pre-existing stub may have been dead at
                    // the last LGC, so a saved live set may omit `r`.
                    gb.tables.refresh_scion(r, now);
                    Some(r)
                }
                (None, Some(r)) => {
                    // The holder dropped its last edge through `r` and the
                    // dead-stub sweep already ran, but the scion survives
                    // on the remote side. Re-materialize the stub — and
                    // adopt the scion's invocation counter: a zero-IC stub
                    // against a scion with history would veto every future
                    // CDM over the pair (see `sync_stub_ic`).
                    let scion_ic = gb.tables.scion(r).expect("probed under this lock").ic;
                    ga.tables.add_stub(r, t, now);
                    ga.tables
                        .sync_stub_ic(r, scion_ic)
                        .expect("stub added under this lock");
                    ga.heap
                        .add_ref(h, HeapRef::Remote(r))
                        .expect("owned holder is rooted and alive");
                    gb.tables.refresh_scion(r, now);
                    Some(r)
                }
                (Some(_), None) => {
                    // A live stub with no scion means the collector
                    // deleted a reference the mutator still holds — never
                    // legal. Count it (stress tests assert zero) and skip.
                    self.stats
                        .mutator_missing_scions
                        .fetch_add(1, Ordering::Relaxed);
                    ga.metrics.mutator_ops_skipped += 1;
                    return false;
                }
                (None, None) => None,
            };
            if let Some(r) = r {
                // Re-animating an existing pair may race an in-flight
                // cycle verdict computed while the pair looked garbage.
                // An export rides an invocation (the paper marshals
                // references as invocation arguments), so bump both
                // counters under both locks: any verdict that witnessed
                // the old counter dies at its delete-site IC re-check.
                ga.tables
                    .record_send_through_stub(r)
                    .expect("stub exists under this lock");
                gb.tables
                    .record_receive_through_scion(r, now)
                    .expect("scion exists under this lock");
                ga.metrics.mutator_exports += 1;
                self.log.lock().push(MutOp::AddRemoteRef(h, r, t));
                self.trace_op(a, MutatorOpKind::Export, Some(r), start);
            }
            r
        };
        if let Some(r) = reused {
            self.edges.push((h, r, t));
            return true;
        }

        // Fresh pair: three-step handshake with the scion pinned across
        // the window where no stub names it yet (an NSS built in that
        // window would otherwise delete it on sight).
        let r = RefId(self.ref_ids.fetch_add(1, Ordering::Relaxed));
        {
            let mut gb = cell_b.lock();
            gb.tables.add_scion(r, t, h.proc, now);
            gb.tables
                .pin_scion(r)
                .expect("scion added under the same lock");
        }
        thread::yield_now();
        {
            let now2 = self.now(start);
            let mut ga = cell_a.lock();
            ga.tables.add_stub(r, t, now2);
            ga.heap
                .add_ref(h, HeapRef::Remote(r))
                .expect("owned holder is rooted and alive");
            ga.metrics.mutator_exports += 1;
            self.log.lock().push(MutOp::AddRemoteRef(h, r, t));
            self.trace_op(a, MutatorOpKind::Export, Some(r), start);
        }
        thread::yield_now();
        {
            let now3 = self.now(start);
            let mut gb = cell_b.lock();
            // Refresh *before* unpinning: moves `created_at` past any live
            // set accepted during the window, closing the deferred-NSS
            // race (see `RemotingTables::sweep_deferred_nss`).
            gb.tables.refresh_scion(r, now3);
            gb.tables
                .unpin_scion(r)
                .expect("a pinned scion cannot be deleted");
        }
        self.edges.push((h, r, t));
        true
    }

    /// Invoke along a previously created remote edge: bump the stub-side
    /// invocation counter, pin the target scion, deliver (bump the scion
    /// IC), unpin. The pin holds the invocation target against concurrent
    /// deletion while the call is in flight; the stub-side IC bump alone
    /// already invalidates any CDM verdict computed before it (the IC
    /// barrier), which is why no refresh is needed on unpin.
    fn op_invoke(&mut self, start: Instant) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        let ei = self.rng.gen_range(0..self.edges.len());
        let (h, r, t) = self.edges[ei];
        let (a, b) = (h.proc.index(), t.proc.index());
        let (cell_a, cell_b) = (Arc::clone(&self.cells[a]), Arc::clone(&self.cells[b]));
        {
            let mut ga = cell_a.lock();
            match ga.tables.record_send_through_stub(r) {
                Ok(_) => {
                    ga.metrics.mutator_invokes += 1;
                    self.trace_op(a, MutatorOpKind::Invoke, Some(r), start);
                }
                Err(_) => {
                    // The holder is rooted, so its stub should be alive;
                    // treat a miss as a stale edge and retire it.
                    ga.metrics.mutator_ops_skipped += 1;
                    drop(ga);
                    self.stats.mutator_skips.fetch_add(1, Ordering::Relaxed);
                    self.edges.swap_remove(ei);
                    return false;
                }
            }
        }
        // Pin before the (simulated) wire delay so the target chain
        // cannot be deleted while the invocation is in flight.
        {
            let mut gb = cell_b.lock();
            if gb.tables.pin_scion(r).is_err() {
                // Stub alive, scion gone: the collector deleted a live
                // reference. Never legal — stress tests assert zero.
                self.stats
                    .mutator_missing_scions
                    .fetch_add(1, Ordering::Relaxed);
                gb.metrics.mutator_ops_skipped += 1;
                return false;
            }
        }
        thread::yield_now();
        {
            let now2 = self.now(start);
            let mut gb = cell_b.lock();
            gb.tables
                .record_receive_through_scion(r, now2)
                .expect("a pinned scion cannot vanish");
            gb.tables
                .unpin_scion(r)
                .expect("a pinned scion cannot vanish");
        }
        true
    }

    /// Drop structure this thread built: remove a remote edge (variant A)
    /// or unroot an owned object (variant B). Both turn mutator-built
    /// structure into garbage the racing collector must reclaim — without
    /// ever reclaiming anything still reachable.
    fn op_drop(&mut self, start: Instant) -> bool {
        let drop_edge = !self.edges.is_empty() && (self.owned.is_empty() || self.rng.gen_bool(0.5));
        if drop_edge {
            let ei = self.rng.gen_range(0..self.edges.len());
            let (h, r, _t) = self.edges[ei];
            let a = h.proc.index();
            let cell = Arc::clone(&self.cells[a]);
            {
                let mut ga = cell.lock();
                ga.heap
                    .remove_ref(h, HeapRef::Remote(r))
                    .expect("tracked edge is present in the holder");
                ga.metrics.mutator_ref_drops += 1;
                self.log.lock().push(MutOp::RemoveRemoteRef(h, r));
                self.trace_op(a, MutatorOpKind::DropRef, Some(r), start);
            }
            self.edges.swap_remove(ei);
            true
        } else if !self.owned.is_empty() {
            let oi = self.rng.gen_range(0..self.owned.len());
            let x = self.owned[oi];
            let pi = x.proc.index();
            let cell = Arc::clone(&self.cells[pi]);
            {
                let mut g = cell.lock();
                let removed = g.heap.remove_root(x).expect("owned object is alive");
                debug_assert!(removed, "owned object is always rooted");
                g.metrics.mutator_root_drops += 1;
                self.log.lock().push(MutOp::RemoveRoot(x));
                self.trace_op(pi, MutatorOpKind::DropRoot, None, start);
            }
            self.owned.swap_remove(oi);
            // `x` may die at the next LGC; never invoke or drop through
            // its outgoing edges again. Edges *targeting* `x` stay valid:
            // the scion keeps `x` alive until every holder lets go.
            self.edges.retain(|(holder, _, _)| *holder != x);
            true
        } else {
            false
        }
    }
}

/// Body of one concurrent-mutator thread (see [`MutatorCtx`]): a weighted
/// random op mix, rate-paced, racing the collector workers through the
/// same per-process locks until its op budget is drained.
fn mutator(mut ctx: MutatorCtx, start: Instant, deadline: Duration) {
    let total = ctx.mcfg.total_weight();
    let pace = Duration::from_micros(ctx.mcfg.pace.as_ticks());
    let mut ops_done = 0u64;
    while ops_done < ctx.mcfg.ops_per_thread {
        if ctx.quiescence.stop.load(Ordering::SeqCst)
            || start.elapsed() >= deadline
            || ctx.my_procs.is_empty()
        {
            break;
        }
        let roll = ctx.rng.gen_range(0..total);
        let w_alloc = ctx.mcfg.allocate_weight;
        let w_export = w_alloc + ctx.mcfg.export_weight;
        let w_invoke = w_export + ctx.mcfg.invoke_weight;
        let applied = if roll < w_alloc {
            ctx.op_allocate(start)
        } else if roll < w_export {
            ctx.op_export(start) || ctx.op_allocate(start)
        } else if roll < w_invoke {
            ctx.op_invoke(start) || ctx.op_allocate(start)
        } else {
            ctx.op_drop(start) || ctx.op_allocate(start)
        };
        if applied {
            ops_done += 1;
            // Bump *after* the process locks are released: a worker that
            // observes the new count and then sweeps is guaranteed the
            // mutation itself is visible under the lock it takes — see
            // `Quiescence::globally_quiet` for how the barrier uses this.
            ctx.quiescence
                .mutation_events
                .fetch_add(1, Ordering::SeqCst);
            ctx.stats.mutator_ops.fetch_add(1, Ordering::Relaxed);
        }
        if !pace.is_zero() {
            thread::sleep(pace);
        }
        thread::yield_now();
    }
    ctx.quiescence.mutators_done.fetch_add(1, Ordering::SeqCst);
}

/// Microseconds since the run started — the worker/watchdog shared clock.
fn now_us(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}
