//! Genuinely concurrent collection: one OS thread per process.
//!
//! The sequential [`crate::System`] proves the algorithm's logic under a
//! deterministic schedule; this runtime demonstrates the paper's
//! asynchrony claim under *real* concurrency: each process runs its own
//! LGC / snapshot / scan loop on its own thread, exchanging messages over
//! crossbeam channels, with no shared clock and no coordination beyond the
//! messages themselves. The mutator is quiescent during the run (the
//! topology is built up front), mirroring the paper's observation that
//! detection is lazy, off-line work.
//!
//! # Termination: distributed quiescence votes
//!
//! A run ends when the system provably has nothing left to do, detected
//! without global synchronization:
//!
//! * each worker tracks per-sweep *activity* — objects freed, stubs
//!   condemned, messages sent or received, detections initiated, plus
//!   *pending* work (unacknowledged `NewSetStubs`, candidates inside
//!   their retry backoff window);
//! * after [`GcConfig::quiet_sweeps`] consecutive quiet sweeps a worker
//!   casts one vote and stops sweeping (it keeps draining its inbox);
//! * a voted worker that receives any message rescinds its vote
//!   (`fetch_sub`) before processing it and resumes sweeping;
//! * the run stops when all votes are simultaneously held **and** the
//!   global enqueue/drain counters balance **and** no rescind raced the
//!   check — see [`Quiescence::globally_quiet`] for why that conjunction
//!   cannot observe a message still in flight.
//!
//! # Fault model
//!
//! The send path runs the same seeded GC-fault injector as the sequential
//! [`acdgc_net::Network`]: `NetConfig::gc_drop_probability` and
//! `gc_duplicate_probability` apply to every message here (all threaded
//! traffic is collector traffic; latency fields are unused — the channel
//! *is* the latency). On top of injected faults, a full bounded inbox
//! still drops rather than blocks. Recovery is layered: lost CDMs are
//! retried by the initiator's exponential candidate backoff; lost
//! `DeleteScion`s are subsumed by the acyclic layer (the peer whose stub
//! died republishes a live set without the ref); and lost `NewSetStubs`
//! are retried until acknowledged, because a final NSS that never lands
//! would leak acyclic garbage the cycle detector cannot see.
//!
//! Cross-process scion pin/unpin — the simulator's substituted SSP
//! handshake — is not needed here because no references are exported while
//! the threads run.

use crate::process::Process;
use acdgc_dcda::{Cdm, Outcome, TerminateReason};
use acdgc_heap::lgc;
use acdgc_model::rng::component_rng;
use acdgc_model::{DetectionId, GcConfig, IntegrationMode, NetConfig, ProcId, RefId, SimTime};
use acdgc_remoting::{apply_new_set_stubs, build_new_set_stubs, NewSetStubs};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Messages exchanged by the threaded runtime.
#[derive(Clone)]
enum ThreadMsg {
    Nss(NewSetStubs),
    /// Confirms receipt of the sender's `NewSetStubs` with this sequence
    /// number (the ack itself may be lost; the NSS is then resent).
    NssAck {
        from: ProcId,
        seq: u64,
    },
    Cdm {
        via: RefId,
        cdm: Cdm,
    },
    DeleteScion(RefId, u32),
}

/// Counters shared across the threads.
#[derive(Debug, Default)]
pub struct ThreadedStats {
    pub lgc_runs: AtomicU64,
    pub snapshots: AtomicU64,
    pub cdms_sent: AtomicU64,
    pub cycles_detected: AtomicU64,
    pub scions_deleted: AtomicU64,
    pub objects_reclaimed: AtomicU64,
    /// GC messages lost per kind: injected by the seeded fault model, or
    /// dropped because a peer's bounded inbox was full (or the peer was
    /// gone). Dropping instead of blocking keeps a worker that holds its
    /// own process lock from deadlocking on a slow peer; the algorithm
    /// tolerates arbitrary GC-message loss, so drops only delay
    /// reclamation.
    pub nss_dropped: AtomicU64,
    pub cdms_dropped: AtomicU64,
    pub deletes_dropped: AtomicU64,
    pub acks_dropped: AtomicU64,
    /// Losses charged to the seeded injector specifically (also counted in
    /// the per-kind counters above).
    pub faults_injected: AtomicU64,
    /// Duplicate deliveries injected by the seeded fault model.
    pub duplicates_injected: AtomicU64,
    /// `NewSetStubs` retransmissions (unacknowledged past the retry
    /// window).
    pub nss_retries: AtomicU64,
    /// Quiescence votes cast / rescinded across the run.
    pub votes_cast: AtomicU64,
    pub votes_rescinded: AtomicU64,
    /// 1 if the run ended because every worker held its quiescence vote
    /// with all channels provably empty; 0 if the deadline backstop fired.
    pub stopped_by_quiescence: AtomicU64,
}

impl ThreadedStats {
    /// Whether the run terminated through the quiescence protocol rather
    /// than the wall-clock deadline backstop.
    pub fn quiescent(&self) -> bool {
        self.stopped_by_quiescence.load(Ordering::SeqCst) == 1
    }
}

/// Shared state of the termination protocol. All counters are monotone
/// except `votes`; everything uses `SeqCst` — the protocol's correctness
/// argument needs a total order over these few operations and the
/// traffic is a handful of words per sweep.
struct Quiescence {
    workers: u64,
    votes: AtomicU64,
    /// Total rescind events (monotone). Lets the checker detect a vote
    /// that was rescinded and re-cast while it was looking.
    rescinds: AtomicU64,
    /// Messages successfully placed into a channel (drops excluded).
    enqueued: AtomicU64,
    /// Messages taken out of a channel.
    drained: AtomicU64,
    stop: AtomicBool,
}

impl Quiescence {
    fn new(workers: u64) -> Self {
        Quiescence {
            workers,
            votes: AtomicU64::new(0),
            rescinds: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The global termination predicate. Safe to conclude from any worker:
    /// if it returns true, every worker holds its vote, no channel holds a
    /// message, and no worker is mid-processing one.
    ///
    /// Why the read order makes the check sound (workers obey: sends only
    /// happen while unvoted; a voted worker rescinds — votes then
    /// rescinds counter — *before* counting the drain that woke it, and
    /// only receives can unvote a worker):
    ///
    /// 1. A message enqueued before the `enqueued` read and still
    ///    undrained fails `enqueued == drained`.
    /// 2. A message enqueued after it implies its sender was unvoted at
    ///    that point; the sender was voted at the first `votes` read
    ///    (all were), so a rescind happened in between — caught by the
    ///    `rescinds` re-read or the final `votes` re-read.
    /// 3. A send chain cannot bootstrap after the checks: sweeps are
    ///    suppressed while voted, unvoting requires a receive, and the
    ///    root of any receive chain is a message that already fails 1
    ///    or 2.
    fn globally_quiet(&self) -> bool {
        let r1 = self.rescinds.load(Ordering::SeqCst);
        if self.votes.load(Ordering::SeqCst) != self.workers {
            return false;
        }
        let e = self.enqueued.load(Ordering::SeqCst);
        let d = self.drained.load(Ordering::SeqCst);
        e == d
            && self.rescinds.load(Ordering::SeqCst) == r1
            && self.votes.load(Ordering::SeqCst) == self.workers
    }
}

/// Run the GC stack concurrently over pre-built processes until the system
/// reaches distributed quiescence (every worker votes "nothing left to
/// do"; see module docs) or `deadline` elapses as a backstop. No faults
/// are injected. Returns the processes and the shared stats.
///
/// `procs` should come from a [`crate::System`] whose topology was built
/// sequentially — see `tests/threaded_collection.rs` at the workspace
/// root.
pub fn run_concurrent_collection(
    procs: Vec<Process>,
    cfg: GcConfig,
    deadline: Duration,
) -> (Vec<Process>, Arc<ThreadedStats>) {
    let reliable = NetConfig {
        gc_drop_probability: 0.0,
        gc_duplicate_probability: 0.0,
        ..NetConfig::instant()
    };
    run_concurrent_collection_with_faults(procs, cfg, reliable, 0, deadline)
}

/// [`run_concurrent_collection`] with a seeded fault injector on the send
/// path. `net.gc_drop_probability` / `gc_duplicate_probability` apply to
/// every message (all threaded traffic is GC class); the latency fields
/// are ignored — channel scheduling is the latency. Same `seed`, same
/// injected fault decisions per worker send sequence.
pub fn run_concurrent_collection_with_faults(
    procs: Vec<Process>,
    cfg: GcConfig,
    net: NetConfig,
    seed: u64,
    deadline: Duration,
) -> (Vec<Process>, Arc<ThreadedStats>) {
    let n = procs.len();
    let stats = Arc::new(ThreadedStats::default());
    let quiescence = Arc::new(Quiescence::new(n as u64));
    let detection_ids = Arc::new(AtomicU64::new(0));

    let mut senders: Vec<Sender<ThreadMsg>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<ThreadMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Bounded inboxes put a hard cap on runtime memory; capacity 0
        // would make every try_send fail, so clamp to at least 1.
        let (tx, rx) = bounded(cfg.channel_capacity.max(1));
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let cells: Vec<Arc<Mutex<Process>>> =
        procs.into_iter().map(|p| Arc::new(Mutex::new(p))).collect();

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let cell = Arc::clone(&cells[i]);
        let rx = receivers[i].take().unwrap();
        let ctx = WorkerCtx {
            me: ProcId(i as u16),
            txs: senders.clone(),
            cfg: cfg.clone(),
            net: net.clone(),
            rng: component_rng(seed, &format!("threaded-faults-{i}")),
            stats: Arc::clone(&stats),
            quiescence: Arc::clone(&quiescence),
            detection_ids: Arc::clone(&detection_ids),
            nss_out: FxHashMap::default(),
            round: 0,
            voted: false,
            quiet_streak: 0,
        };
        handles.push(thread::spawn(move || {
            worker(ctx, cell, rx, start, deadline)
        }));
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let procs = cells
        .into_iter()
        .map(|c| {
            Arc::try_unwrap(c)
                .map(|m| m.into_inner())
                .unwrap_or_else(|arc| arc.lock().clone())
        })
        .collect();
    (procs, stats)
}

/// Outbound `NewSetStubs` bookkeeping towards one peer.
struct NssOutbound {
    /// Content of the last transmission (sorted live refs).
    live_refs: Vec<RefId>,
    /// Sequence number of the last transmission; an ack for an older
    /// sequence does not confirm newer content.
    last_seq: u64,
    acked: bool,
    /// Sweep index of the last transmission, for retry pacing.
    sent_round: u64,
}

/// Per-worker context: everything a worker touches besides its process
/// cell and inbox.
struct WorkerCtx {
    me: ProcId,
    txs: Vec<Sender<ThreadMsg>>,
    cfg: GcConfig,
    net: NetConfig,
    rng: SmallRng,
    stats: Arc<ThreadedStats>,
    quiescence: Arc<Quiescence>,
    detection_ids: Arc<AtomicU64>,
    nss_out: FxHashMap<ProcId, NssOutbound>,
    round: u64,
    voted: bool,
    quiet_streak: u32,
}

/// How a drained message should be handled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DrainMode {
    /// Normal in-loop drain: process everything, acknowledge NSS.
    Live,
    /// Post-stop drain: apply idempotent state (NSS, scion deletes) so
    /// buffered messages from peers that stopped after us are not lost,
    /// but discard CDMs (no peers remain to continue a walk) and send
    /// nothing.
    Final,
}

/// Which per-kind drop counter a loss is charged to.
#[derive(Clone, Copy)]
enum MsgKind {
    Nss,
    Ack,
    Cdm,
    Delete,
}

impl WorkerCtx {
    fn drop_counter(&self, kind: MsgKind) -> &AtomicU64 {
        match kind {
            MsgKind::Nss => &self.stats.nss_dropped,
            MsgKind::Ack => &self.stats.acks_dropped,
            MsgKind::Cdm => &self.stats.cdms_dropped,
            MsgKind::Delete => &self.stats.deletes_dropped,
        }
    }

    /// Send through the seeded fault injector; a full (or disconnected)
    /// inbox also drops. Every accepted copy is counted into the
    /// quiescence enqueue ledger.
    fn send(&mut self, dest: ProcId, msg: ThreadMsg, kind: MsgKind) {
        if self
            .rng
            .gen_bool(self.net.gc_drop_probability.clamp(0.0, 1.0))
        {
            self.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            self.drop_counter(kind).fetch_add(1, Ordering::Relaxed);
            return;
        }
        let copies = if self
            .rng
            .gen_bool(self.net.gc_duplicate_probability.clamp(0.0, 1.0))
        {
            self.stats
                .duplicates_injected
                .fetch_add(1, Ordering::Relaxed);
            2
        } else {
            1
        };
        for _ in 0..copies {
            if self.txs[dest.index()].try_send(msg.clone()).is_ok() {
                self.quiescence.enqueued.fetch_add(1, Ordering::SeqCst);
            } else {
                self.drop_counter(kind).fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drain the inbox, processing every message per `mode`. Returns how
    /// many messages were drained. The single implementation for the
    /// in-loop and final drains keeps their stats accounting identical by
    /// construction.
    fn drain(
        &mut self,
        cell: &Arc<Mutex<Process>>,
        rx: &Receiver<ThreadMsg>,
        mode: DrainMode,
    ) -> u64 {
        let mut drained = 0u64;
        while let Ok(msg) = rx.try_recv() {
            if self.voted && mode == DrainMode::Live {
                // Rescind BEFORE the drain is counted: the quiescence
                // checker relies on "a voted worker's receive is preceded
                // by a rescind" to rule out hidden activity.
                self.quiescence.votes.fetch_sub(1, Ordering::SeqCst);
                self.quiescence.rescinds.fetch_add(1, Ordering::SeqCst);
                self.stats.votes_rescinded.fetch_add(1, Ordering::Relaxed);
                self.voted = false;
                self.quiet_streak = 0;
            }
            self.quiescence.drained.fetch_add(1, Ordering::SeqCst);
            drained += 1;
            match msg {
                ThreadMsg::Nss(nss) => {
                    let (from, seq) = (nss.from, nss.seq);
                    {
                        let mut p = cell.lock();
                        apply_new_set_stubs(&mut p.tables, &nss);
                    }
                    if mode == DrainMode::Live {
                        // Ack even stale sequences: the receiver already
                        // holds fresher information, so the sender may
                        // stop retrying this transmission.
                        let me = self.me;
                        self.send(from, ThreadMsg::NssAck { from: me, seq }, MsgKind::Ack);
                    }
                }
                ThreadMsg::NssAck { from, seq } => {
                    if let Some(out) = self.nss_out.get_mut(&from) {
                        if seq >= out.last_seq {
                            out.acked = true;
                        }
                    }
                }
                ThreadMsg::Cdm { via, cdm } => {
                    if mode == DrainMode::Final {
                        // No peers remain to continue the walk; the loss
                        // is counted like any other dropped CDM so the
                        // ledgers cannot silently diverge.
                        self.stats.cdms_dropped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let mut p = cell.lock();
                        let outcome = acdgc_dcda::deliver(&p.summary, cdm, via, &self.cfg);
                        self.handle_outcome(&mut p, outcome);
                    }
                }
                ThreadMsg::DeleteScion(r, inc) => {
                    let mut p = cell.lock();
                    delete_scion(&mut p, r, inc, &self.stats);
                }
            }
        }
        drained
    }

    /// Act on a detection outcome while holding the process lock.
    fn handle_outcome(&mut self, p: &mut Process, outcome: Outcome) {
        match outcome {
            Outcome::Forwarded { out: list, .. } => {
                for ob in list {
                    self.stats.cdms_sent.fetch_add(1, Ordering::Relaxed);
                    self.send(
                        ob.dest,
                        ThreadMsg::Cdm {
                            via: ob.via,
                            cdm: ob.cdm,
                        },
                        MsgKind::Cdm,
                    );
                }
            }
            Outcome::CycleFound { delete } => {
                self.stats.cycles_detected.fetch_add(1, Ordering::Relaxed);
                let me = self.me;
                for (owner, r, inc) in delete {
                    if owner == me {
                        delete_scion(p, r, inc, &self.stats);
                    } else {
                        self.send(owner, ThreadMsg::DeleteScion(r, inc), MsgKind::Delete);
                    }
                }
            }
            Outcome::DroppedNoScion
            | Outcome::AbortedIcMismatch { .. }
            | Outcome::DroppedHopCap
            | Outcome::Terminated(
                TerminateReason::NoStubs
                | TerminateReason::AllStubsLocallyReachable
                | TerminateReason::NoNewInformation
                | TerminateReason::BudgetExhausted,
            ) => {}
        }
    }

    /// One GC sweep: LGC, stub-death publication (with ack/retry), snapshot,
    /// candidate scan, detection initiation. Returns whether the sweep saw
    /// or produced any activity — including *pending* work (unacked NSS,
    /// backing-off candidates), which must hold off the quiescence vote.
    fn sweep(&mut self, cell: &Arc<Mutex<Process>>, start: Instant) -> bool {
        let mut active = false;
        let t = SimTime(start.elapsed().as_micros() as u64 + 1);
        let mut p = cell.lock();

        let targets = p.tables.scion_target_slots();
        let result = lgc::collect(&mut p.heap, &targets);
        self.stats
            .objects_reclaimed
            .fetch_add(result.sweep.freed.len() as u64, Ordering::Relaxed);
        self.stats.lgc_runs.fetch_add(1, Ordering::Relaxed);
        active |= !result.sweep.freed.is_empty();

        let dead: Vec<RefId> = p
            .tables
            .stubs()
            .filter(|s| !result.mark.live_stubs.contains(&s.ref_id))
            .map(|s| s.ref_id)
            .collect();
        active |= !dead.is_empty();
        match self.cfg.integration {
            IntegrationMode::VmIntegrated => {
                p.tables.remove_dead_stubs(&dead);
            }
            IntegrationMode::WeakRefMonitor => {
                p.tables.condemn_stubs(&dead);
                p.tables.monitor_pass();
            }
        }

        let peers: Vec<ProcId> = (0..self.txs.len() as u16)
            .map(ProcId)
            .filter(|&q| q != self.me)
            .collect();
        for (dest, m) in build_new_set_stubs(&mut p.tables, &peers, t) {
            active |= self.offer_nss(dest, m);
        }

        p.refresh_summary(self.cfg.summarizer, t);
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);

        let scan = p.scan(t, &self.cfg);
        // Deferred candidates are scheduled retries: quiescence now would
        // abandon them, and with message loss a retry may be the only
        // thing standing between a garbage cycle and a leak.
        active |= scan.deferred > 0;
        active |= !scan.picked.is_empty();
        for scion in scan.picked {
            let Some(s) = p.summary.scion(scion) else {
                continue;
            };
            let cdm = Cdm::initiate(
                DetectionId(self.detection_ids.fetch_add(1, Ordering::Relaxed)),
                self.me,
                scion,
                s.ic,
            );
            let outcome = acdgc_dcda::initiate(&p.summary, cdm, scion, &self.cfg);
            self.handle_outcome(&mut p, outcome);
        }
        active
    }

    /// Decide whether `m` (this sweep's live set towards `dest`) needs the
    /// wire: transmit on content change, retransmit while unacknowledged,
    /// stay silent once the peer confirmed the current content. Returns
    /// whether NSS work is still in flight towards `dest`.
    fn offer_nss(&mut self, dest: ProcId, m: NewSetStubs) -> bool {
        enum Action {
            Transmit { retry: bool },
            AwaitAck,
            Settled,
        }
        let action = match self.nss_out.get_mut(&dest) {
            Some(out) if out.live_refs == m.live_refs => {
                if out.acked {
                    Action::Settled
                } else if self.round.saturating_sub(out.sent_round)
                    >= u64::from(self.cfg.nss_retry_sweeps.max(1))
                {
                    out.last_seq = m.seq;
                    out.sent_round = self.round;
                    Action::Transmit { retry: true }
                } else {
                    Action::AwaitAck
                }
            }
            _ => {
                self.nss_out.insert(
                    dest,
                    NssOutbound {
                        live_refs: m.live_refs.clone(),
                        last_seq: m.seq,
                        acked: false,
                        sent_round: self.round,
                    },
                );
                Action::Transmit { retry: false }
            }
        };
        match action {
            Action::Transmit { retry } => {
                if retry {
                    self.stats.nss_retries.fetch_add(1, Ordering::Relaxed);
                }
                self.send(dest, ThreadMsg::Nss(m), MsgKind::Nss);
                true
            }
            Action::AwaitAck => true,
            Action::Settled => false,
        }
    }
}

/// Delete `r`'s scion if it still matches the witnessed incarnation and is
/// unpinned; counts into `scions_deleted`. One implementation for the
/// CycleFound, DeleteScion, and final-drain paths so the counter cannot
/// diverge between them.
fn delete_scion(p: &mut Process, r: RefId, inc: u32, stats: &ThreadedStats) -> bool {
    if p.tables
        .scion(r)
        .is_some_and(|s| s.pinned == 0 && s.incarnation == inc)
        && p.tables.remove_scion(r).is_some()
    {
        stats.scions_deleted.fetch_add(1, Ordering::Relaxed);
        p.summary.scions.remove(&r);
        true
    } else {
        false
    }
}

fn worker(
    mut ctx: WorkerCtx,
    cell: Arc<Mutex<Process>>,
    rx: Receiver<ThreadMsg>,
    start: Instant,
    deadline: Duration,
) {
    while !ctx.quiescence.stop.load(Ordering::SeqCst) {
        if start.elapsed() >= deadline {
            break;
        }
        ctx.round += 1;

        let received = ctx.drain(&cell, &rx, DrainMode::Live);
        if received > 0 {
            ctx.quiet_streak = 0;
        }

        if !ctx.voted {
            let active = ctx.sweep(&cell, start);
            if active || received > 0 {
                ctx.quiet_streak = 0;
            } else {
                ctx.quiet_streak += 1;
            }
            if ctx.quiet_streak >= ctx.cfg.quiet_sweeps.max(1) {
                ctx.voted = true;
                ctx.quiescence.votes.fetch_add(1, Ordering::SeqCst);
                ctx.stats.votes_cast.fetch_add(1, Ordering::Relaxed);
            }
        } else if ctx.quiescence.globally_quiet() {
            ctx.stats.stopped_by_quiescence.store(1, Ordering::SeqCst);
            ctx.quiescence.stop.store(true, Ordering::SeqCst);
            break;
        }
        thread::yield_now();
    }
    // Final drain so late NSS / scion deletes buffered by peers that
    // stopped after us are applied rather than lost.
    ctx.drain(&cell, &rx, DrainMode::Final);
}
