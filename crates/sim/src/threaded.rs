//! Genuinely concurrent collection: one OS thread per process.
//!
//! The sequential [`crate::System`] proves the algorithm's logic under a
//! deterministic schedule; this runtime demonstrates the paper's
//! asynchrony claim under *real* concurrency: each process runs its own
//! LGC / snapshot / scan loop on its own thread, exchanging messages over
//! crossbeam channels, with no shared clock and no coordination beyond the
//! messages themselves. The mutator is quiescent during the run (the
//! topology is built up front), mirroring the paper's observation that
//! detection is lazy, off-line work.
//!
//! Cross-process scion pin/unpin — the simulator's substituted SSP
//! handshake — is not needed here because no references are exported while
//! the threads run.

use crate::process::Process;
use acdgc_dcda::{select_candidates, Cdm, Outcome, TerminateReason};
use acdgc_heap::lgc;
use acdgc_model::{GcConfig, IntegrationMode, ProcId, RefId, SimTime};
use acdgc_remoting::{apply_new_set_stubs, build_new_set_stubs};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Messages exchanged by the threaded runtime.
enum ThreadMsg {
    Nss(acdgc_remoting::NewSetStubs),
    Cdm { via: RefId, cdm: Cdm },
    DeleteScion(RefId, u32),
}

/// Counters shared across the threads.
#[derive(Debug, Default)]
pub struct ThreadedStats {
    pub lgc_runs: AtomicU64,
    pub snapshots: AtomicU64,
    pub cdms_sent: AtomicU64,
    pub cycles_detected: AtomicU64,
    pub scions_deleted: AtomicU64,
    pub objects_reclaimed: AtomicU64,
    /// GC messages dropped because a peer's bounded inbox was full (or the
    /// peer was gone). Dropping instead of blocking keeps a worker that
    /// holds its own process lock from deadlocking on a slow peer; the
    /// algorithm tolerates arbitrary GC-message loss, so drops only delay
    /// reclamation.
    pub nss_dropped: AtomicU64,
    pub cdms_dropped: AtomicU64,
    pub deletes_dropped: AtomicU64,
}

/// Send without ever blocking: a full (or disconnected) inbox drops the
/// message and bumps the matching counter.
fn send_or_drop(tx: &Sender<ThreadMsg>, msg: ThreadMsg, dropped: &AtomicU64) {
    if tx.try_send(msg).is_err() {
        dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run the GC stack concurrently over pre-built processes until the system
/// reaches a fixpoint (no live objects change for `quiet_checks` sweeps) or
/// `deadline` elapses. Returns the processes and the shared stats.
///
/// `procs` should come from a [`crate::System`] whose topology was built
/// sequentially — see `tests/threaded_collection.rs` at the workspace
/// root.
pub fn run_concurrent_collection(
    procs: Vec<Process>,
    cfg: GcConfig,
    deadline: Duration,
) -> (Vec<Process>, Arc<ThreadedStats>) {
    let n = procs.len();
    let stats = Arc::new(ThreadedStats::default());
    let stop = Arc::new(AtomicU64::new(0));
    let detection_ids = Arc::new(AtomicU64::new(0));

    let mut senders: Vec<Sender<ThreadMsg>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<ThreadMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Bounded inboxes put a hard cap on runtime memory; capacity 0
        // would make every try_send fail, so clamp to at least 1.
        let (tx, rx) = bounded(cfg.channel_capacity.max(1));
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let cells: Vec<Arc<Mutex<Process>>> =
        procs.into_iter().map(|p| Arc::new(Mutex::new(p))).collect();

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let cell = Arc::clone(&cells[i]);
        let rx = receivers[i].take().unwrap();
        let txs = senders.clone();
        let cfg = cfg.clone();
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let detection_ids = Arc::clone(&detection_ids);
        handles.push(thread::spawn(move || {
            worker(
                ProcId(i as u16),
                cell,
                rx,
                txs,
                cfg,
                stats,
                stop,
                detection_ids,
                start,
                deadline,
            )
        }));
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let procs = cells
        .into_iter()
        .map(|c| {
            Arc::try_unwrap(c)
                .map(|m| m.into_inner())
                .unwrap_or_else(|arc| arc.lock().clone())
        })
        .collect();
    (procs, stats)
}

#[allow(clippy::too_many_arguments)]
fn worker(
    me: ProcId,
    cell: Arc<Mutex<Process>>,
    rx: Receiver<ThreadMsg>,
    txs: Vec<Sender<ThreadMsg>>,
    cfg: GcConfig,
    stats: Arc<ThreadedStats>,
    stop: Arc<AtomicU64>,
    detection_ids: Arc<AtomicU64>,
    start: Instant,
    deadline: Duration,
) {
    let mut round: u64 = 0;
    let mut voted = false;
    // Logical local clock: microseconds since start. Only used for the
    // NewSetStubs horizon and candidate ages; never compared across
    // processes by the algorithm.
    let now = |start: Instant| SimTime(start.elapsed().as_micros() as u64 + 1);

    while stop.load(Ordering::Acquire) < txs.len() as u64 && start.elapsed() < deadline {
        round += 1;

        // Drain the inbox.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                ThreadMsg::Nss(nss) => {
                    let mut p = cell.lock();
                    apply_new_set_stubs(&mut p.tables, &nss);
                }
                ThreadMsg::Cdm { via, cdm } => {
                    let outcome = {
                        let p = cell.lock();
                        acdgc_dcda::deliver(&p.summary, cdm, via, &cfg)
                    };
                    handle_outcome(&cell, &txs, &stats, outcome);
                }
                ThreadMsg::DeleteScion(r, inc) => {
                    let mut p = cell.lock();
                    if p.tables
                        .scion(r)
                        .is_some_and(|s| s.pinned == 0 && s.incarnation == inc)
                        && p.tables.remove_scion(r).is_some()
                    {
                        stats.scions_deleted.fetch_add(1, Ordering::Relaxed);
                        p.summary.scions.remove(&r);
                    }
                }
            }
        }

        // One GC sweep: LGC + NSS, snapshot, scan.
        {
            let t = now(start);
            let mut p = cell.lock();
            let targets = p.tables.scion_target_slots();
            let result = lgc::collect(&mut p.heap, &targets);
            stats
                .objects_reclaimed
                .fetch_add(result.sweep.freed.len() as u64, Ordering::Relaxed);
            stats.lgc_runs.fetch_add(1, Ordering::Relaxed);
            let dead: Vec<RefId> = p
                .tables
                .stubs()
                .filter(|s| !result.mark.live_stubs.contains(&s.ref_id))
                .map(|s| s.ref_id)
                .collect();
            match cfg.integration {
                IntegrationMode::VmIntegrated => {
                    p.tables.remove_dead_stubs(&dead);
                }
                IntegrationMode::WeakRefMonitor => {
                    p.tables.condemn_stubs(&dead);
                    p.tables.monitor_pass();
                }
            }
            let peers: Vec<ProcId> = (0..txs.len() as u16)
                .map(ProcId)
                .filter(|&q| q != me)
                .collect();
            for (dest, m) in build_new_set_stubs(&mut p.tables, &peers, t) {
                send_or_drop(&txs[dest.index()], ThreadMsg::Nss(m), &stats.nss_dropped);
            }

            p.refresh_summary(cfg.summarizer, t);
            stats.snapshots.fetch_add(1, Ordering::Relaxed);

            let picked = {
                let t = now(start);
                let Process {
                    summary,
                    candidates,
                    ..
                } = &mut *p;
                select_candidates(summary, candidates, t, &cfg)
            };
            for scion in picked {
                let Some(s) = p.summary.scion(scion) else {
                    continue;
                };
                let cdm = Cdm::initiate(
                    acdgc_model::DetectionId(detection_ids.fetch_add(1, Ordering::Relaxed)),
                    me,
                    scion,
                    s.ic,
                );
                let outcome = acdgc_dcda::initiate(&p.summary, cdm, scion, &cfg);
                drop_outcome_into(&txs, &stats, &cell, outcome, &mut p);
            }
        }

        // Fixpoint probe: after a generous number of quiet sweeps, cast a
        // single vote to stop; the loop ends when every thread has voted.
        if !voted && round > 64 {
            voted = true;
            stop.fetch_add(1, Ordering::AcqRel);
        }
        thread::yield_now();
    }
    // Final inbox drain so late CDMs/NSS are not lost when peers stopped
    // after us (their sends are already buffered in the channel).
    while let Ok(msg) = rx.try_recv() {
        match msg {
            ThreadMsg::Nss(nss) => {
                let mut p = cell.lock();
                apply_new_set_stubs(&mut p.tables, &nss);
            }
            ThreadMsg::DeleteScion(r, inc) => {
                let mut p = cell.lock();
                if p.tables
                    .scion(r)
                    .is_some_and(|s| s.pinned == 0 && s.incarnation == inc)
                {
                    p.tables.remove_scion(r);
                    p.summary.scions.remove(&r);
                }
            }
            ThreadMsg::Cdm { .. } => {}
        }
    }
}

/// Handle a detection outcome while already holding the process lock.
fn drop_outcome_into(
    txs: &[Sender<ThreadMsg>],
    stats: &ThreadedStats,
    _cell: &Arc<Mutex<Process>>,
    outcome: Outcome,
    p: &mut Process,
) {
    match outcome {
        Outcome::Forwarded { out: list, .. } => {
            for ob in list {
                stats.cdms_sent.fetch_add(1, Ordering::Relaxed);
                send_or_drop(
                    &txs[ob.dest.index()],
                    ThreadMsg::Cdm {
                        via: ob.via,
                        cdm: ob.cdm,
                    },
                    &stats.cdms_dropped,
                );
            }
        }
        Outcome::CycleFound { delete } => {
            stats.cycles_detected.fetch_add(1, Ordering::Relaxed);
            let me = p.proc();
            for (owner, r, inc) in delete {
                if owner == me {
                    if p.tables
                        .scion(r)
                        .is_some_and(|s| s.pinned == 0 && s.incarnation == inc)
                        && p.tables.remove_scion(r).is_some()
                    {
                        stats.scions_deleted.fetch_add(1, Ordering::Relaxed);
                        p.summary.scions.remove(&r);
                    }
                } else {
                    send_or_drop(
                        &txs[owner.index()],
                        ThreadMsg::DeleteScion(r, inc),
                        &stats.deletes_dropped,
                    );
                }
            }
        }
        Outcome::DroppedNoScion
        | Outcome::AbortedIcMismatch { .. }
        | Outcome::DroppedHopCap
        | Outcome::Terminated(
            TerminateReason::NoStubs
            | TerminateReason::AllStubsLocallyReachable
            | TerminateReason::NoNewInformation
            | TerminateReason::BudgetExhausted,
        ) => {}
    }
}

/// Handle an outcome without holding the lock (delivery path).
fn handle_outcome(
    cell: &Arc<Mutex<Process>>,
    txs: &[Sender<ThreadMsg>],
    stats: &ThreadedStats,
    outcome: Outcome,
) {
    let mut p = cell.lock();
    drop_outcome_into(txs, stats, cell, outcome, &mut p);
}
