//! System-wide counters: the raw material of every experiment table.

use serde::Serialize;
use serde_json::Value;

/// Counters accumulated by a [`crate::System`] run. All monotone counters
/// except [`Metrics::max_cdm_bytes`], which is a high-water gauge; snapshot
/// and subtract with [`Metrics::since`] to measure a window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Metrics {
    // Mutator.
    /// Remote invocations delivered through a stub/scion pair.
    pub invocations: u64,
    /// Invocation replies returned to the caller.
    pub replies: u64,
    /// References exported across process boundaries.
    pub refs_exported: u64,

    // Concurrent mutator (threaded runtime), attributed to the process
    // holding the lock when the op applied.
    /// Concurrent-mutator *allocate* ops applied.
    pub mutator_allocs: u64,
    /// Concurrent-mutator *export* ops applied (pair created or re-shared).
    pub mutator_exports: u64,
    /// Concurrent-mutator *invoke* ops applied (IC bump + pinned delivery).
    pub mutator_invokes: u64,
    /// Concurrent-mutator *drop-reference* ops applied.
    pub mutator_ref_drops: u64,
    /// Concurrent-mutator root removals applied.
    pub mutator_root_drops: u64,
    /// Ops the mutator gave up on because a precondition failed under a
    /// race (handle died, stub vanished); bounded interference, not error.
    pub mutator_ops_skipped: u64,

    // Local GC.
    /// Local mark-sweep collections run.
    pub lgc_runs: u64,
    /// Objects freed by local collection.
    pub objects_reclaimed: u64,
    /// Weak-reference monitor passes (OBIWAN integration mode).
    pub monitor_passes: u64,

    // Snapshot/summarization.
    /// Graph snapshots summarized.
    pub snapshots: u64,
    /// Scion entries across all published summaries (cumulative).
    pub summary_scions: u64,
    /// Stub entries across all published summaries (cumulative).
    pub summary_stubs: u64,

    // Acyclic DGC.
    /// `NewSetStubs` messages sent.
    pub nss_sent: u64,
    /// `NewSetStubs` messages applied at the receiver.
    pub nss_applied: u64,
    /// `NewSetStubs` messages discarded as stale (older sequence).
    pub nss_stale: u64,
    /// Scions reclaimed by the reference-listing acyclic DGC.
    pub scions_reclaimed_acyclic: u64,

    // Cycle detection.
    /// Cycle detections initiated from a candidate scan.
    pub detections_started: u64,
    /// CDMs put on the wire (initiations and forwards).
    pub cdms_sent: u64,
    /// CDMs delivered and expanded at a receiver.
    pub cdms_delivered: u64,
    /// Detections that ended in an exact algebra match (garbage cycle).
    pub cycles_detected: u64,
    /// Scions deleted on a cycle verdict (incarnation + IC re-checked).
    pub scions_deleted_by_dcda: u64,
    /// CDMs dropped because the target scion no longer existed.
    pub detections_dropped_no_scion: u64,
    /// Detections aborted by the invocation-counter barrier.
    pub detections_aborted_ic: u64,
    /// Derivations dropped by the hop cap.
    pub detections_dropped_hops: u64,
    /// Derivations that died with no outgoing stubs to follow.
    pub detections_terminated_no_stubs: u64,
    /// Derivations that died because every outgoing path was locally reachable (a live path).
    pub detections_terminated_local: u64,
    /// Derivations stopped by the §3.1 step 15 no-new-information rule.
    pub detections_terminated_no_new_info: u64,
    /// Detections stopped by the per-detection message budget.
    pub detections_terminated_budget: u64,
    /// Sibling branches pruned because the outgoing path was locally
    /// reachable (a live path, §2.1).
    pub branches_pruned_local: u64,
    /// Sibling branches stopped by the §3.1 step 15 no-new-information
    /// rule while other branches kept going.
    pub branches_no_new_info: u64,
    /// Termination-credit echoes sent back to remote detection initiators
    /// (weight-throwing termination detection on the CDM walk).
    pub liveness_echoes: u64,
    /// Detections whose credit came home fully with every branch ending
    /// conclusively: the candidate was proven live and is suppressed from
    /// re-scanning until the next mutation epoch.
    pub liveness_verdicts: u64,
    /// High-water gauge, not a counter: the largest encoded CDM seen.
    pub max_cdm_bytes: u64,

    // Fault injection / unreliable transport (threaded runtime).
    /// `NewSetStubs` messages lost (injected fault or full inbox).
    pub nss_dropped: u64,
    /// CDM / credit-echo messages lost (injected fault or full inbox).
    pub cdms_dropped: u64,
    /// Injected duplicate CDM / credit-echo copies discarded by the
    /// receiver-side tag window (duplicates must not forge credit).
    pub cdms_deduped: u64,
    /// `DeleteScion` messages lost (injected fault or full inbox).
    pub deletes_dropped: u64,
    /// NSS acknowledgements lost (injected fault or full inbox).
    pub acks_dropped: u64,
    /// Message losses injected by the seeded fault model.
    pub faults_injected: u64,
    /// Message duplications injected by the seeded fault model.
    pub duplicates_injected: u64,
    /// `NewSetStubs` retransmissions (unacked past the retry horizon).
    pub nss_retries: u64,

    // Quiescence voting (threaded runtime).
    /// Quiescence votes cast by threaded workers.
    pub votes_cast: u64,
    /// Quiescence votes rescinded on renewed activity.
    pub votes_rescinded: u64,

    // Oracle verdicts (safety violations; must stay 0 unless an unsafe
    // ablation is deliberately enabled).
    /// Oracle verdicts: live objects freed (must stay 0).
    pub unsafe_frees: u64,
    /// Oracle verdicts: live scions deleted (must stay 0).
    pub unsafe_scion_deletes: u64,
    /// Oracle verdicts: invocation arrived at a deleted scion (must stay 0).
    pub invoke_on_missing_scion: u64,
    /// Oracle verdicts: reply arrived at a deleted stub (must stay 0).
    pub reply_on_missing_stub: u64,
}

/// Every counter field, i.e. every field except the `max_cdm_bytes` gauge.
/// Both `since` and `absorb` must treat the gauge specially, so the list
/// lives in one place.
macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(
            invocations,
            replies,
            refs_exported,
            mutator_allocs,
            mutator_exports,
            mutator_invokes,
            mutator_ref_drops,
            mutator_root_drops,
            mutator_ops_skipped,
            lgc_runs,
            objects_reclaimed,
            monitor_passes,
            snapshots,
            summary_scions,
            summary_stubs,
            nss_sent,
            nss_applied,
            nss_stale,
            scions_reclaimed_acyclic,
            detections_started,
            cdms_sent,
            cdms_delivered,
            cycles_detected,
            scions_deleted_by_dcda,
            detections_dropped_no_scion,
            detections_aborted_ic,
            detections_dropped_hops,
            detections_terminated_no_stubs,
            detections_terminated_local,
            detections_terminated_no_new_info,
            detections_terminated_budget,
            branches_pruned_local,
            branches_no_new_info,
            liveness_echoes,
            liveness_verdicts,
            nss_dropped,
            cdms_dropped,
            cdms_deduped,
            deletes_dropped,
            acks_dropped,
            faults_injected,
            duplicates_injected,
            nss_retries,
            votes_cast,
            votes_rescinded,
            unsafe_frees,
            unsafe_scion_deletes,
            invoke_on_missing_scion,
            reply_on_missing_stub,
        )
    };
}

impl Metrics {
    /// Difference `self - earlier` for window measurements; saturating so a
    /// reset never panics. Counters subtract; the `max_cdm_bytes` gauge
    /// carries the later value (a high-water mark has no meaningful
    /// per-window difference).
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        macro_rules! diff {
            ($($f:ident),* $(,)?) => {
                Metrics {
                    $($f: self.$f.saturating_sub(earlier.$f),)*
                    max_cdm_bytes: self.max_cdm_bytes,
                }
            };
        }
        for_each_counter!(diff)
    }

    /// Merge `other` into `self`: counters add, the gauge takes the max.
    /// Used to fold per-process metrics into a system-wide view.
    pub fn absorb(&mut self, other: &Metrics) {
        macro_rules! add {
            ($($f:ident),* $(,)?) => {
                $(self.$f += other.$f;)*
            };
        }
        for_each_counter!(add);
        self.max_cdm_bytes = self.max_cdm_bytes.max(other.max_cdm_bytes);
    }

    /// Every field as a flat JSON object, field names as keys. Built by
    /// hand (the vendored `serde_json` has no generic serializer); the
    /// `for_each_counter!` list keeps it complete by construction.
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        macro_rules! put {
            ($($f:ident),* $(,)?) => {
                $(m.insert(stringify!($f).to_string(), Value::from(self.$f));)*
            };
        }
        for_each_counter!(put);
        m.insert("max_cdm_bytes".to_string(), Value::from(self.max_cdm_bytes));
        Value::Object(m)
    }

    /// Render every counter in Prometheus text exposition format:
    /// `# HELP` + `# TYPE acdgc_<field>_total counter` + value per
    /// counter, plus the `acdgc_max_cdm_bytes` gauge. Metric names are the
    /// field names and are documented in DESIGN.md §Runtime health;
    /// callers append phase histograms via
    /// `PhaseHistograms::to_prometheus_into` for the full scrape payload.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.to_prometheus_into(&mut out);
        out
    }

    /// Append the Prometheus rendering to `out` (see
    /// [`Metrics::to_prometheus`]); lets threaded callers compose one
    /// scrape payload across several pieces without reallocating.
    pub fn to_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        macro_rules! expose {
            ($($f:ident),* $(,)?) => {
                $(
                    let name = stringify!($f);
                    let _ = writeln!(
                        out,
                        "# HELP acdgc_{name}_total Cumulative {} count since process start.",
                        name.replace('_', " ")
                    );
                    let _ = writeln!(out, "# TYPE acdgc_{name}_total counter");
                    let _ = writeln!(out, "acdgc_{name}_total {}", self.$f);
                )*
            };
        }
        for_each_counter!(expose);
        out.push_str(
            "# HELP acdgc_max_cdm_bytes Largest encoded CDM observed (high-water gauge).\n",
        );
        out.push_str("# TYPE acdgc_max_cdm_bytes gauge\n");
        let _ = writeln!(out, "acdgc_max_cdm_bytes {}", self.max_cdm_bytes);
    }

    /// All detection attempts that ended without finding a cycle.
    pub fn detections_failed(&self) -> u64 {
        self.detections_dropped_no_scion
            + self.detections_aborted_ic
            + self.detections_dropped_hops
            + self.detections_terminated_no_stubs
            + self.detections_terminated_local
            + self.detections_terminated_no_new_info
            + self.detections_terminated_budget
    }

    /// Safety violations observed by the oracle.
    pub fn safety_violations(&self) -> u64 {
        self.unsafe_frees + self.unsafe_scion_deletes
    }

    /// Concurrent-mutator operations completed (all kinds, skips
    /// excluded) — the `mutator_ops` time-series counter.
    pub fn mutator_ops(&self) -> u64 {
        self.mutator_allocs
            + self.mutator_exports
            + self.mutator_invokes
            + self.mutator_ref_drops
            + self.mutator_root_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = Metrics {
            invocations: 10,
            cycles_detected: 3,
            ..Metrics::default()
        };
        let b = Metrics {
            invocations: 4,
            cycles_detected: 1,
            ..Metrics::default()
        };
        let d = a.since(&b);
        assert_eq!(d.invocations, 6);
        assert_eq!(d.cycles_detected, 2);
        assert_eq!(d.replies, 0);
    }

    #[test]
    fn since_saturates() {
        let a = Metrics::default();
        let b = Metrics {
            invocations: 5,
            ..Metrics::default()
        };
        assert_eq!(a.since(&b).invocations, 0);
    }

    #[test]
    fn since_keeps_gauge_not_difference() {
        // `max_cdm_bytes` is a high-water mark. A window where the largest
        // CDM did not grow must still report the current high water, not
        // the bogus fieldwise difference (which would be 0).
        let earlier = Metrics {
            max_cdm_bytes: 512,
            cdms_sent: 10,
            ..Metrics::default()
        };
        let later = Metrics {
            max_cdm_bytes: 512,
            cdms_sent: 25,
            ..Metrics::default()
        };
        let window = later.since(&earlier);
        assert_eq!(window.cdms_sent, 15);
        assert_eq!(window.max_cdm_bytes, 512);
    }

    #[test]
    fn absorb_adds_counters_and_maxes_gauge() {
        let mut merged = Metrics {
            cdms_sent: 3,
            max_cdm_bytes: 100,
            ..Metrics::default()
        };
        let other = Metrics {
            cdms_sent: 4,
            cycles_detected: 1,
            max_cdm_bytes: 64,
            ..Metrics::default()
        };
        merged.absorb(&other);
        assert_eq!(merged.cdms_sent, 7);
        assert_eq!(merged.cycles_detected, 1);
        assert_eq!(merged.max_cdm_bytes, 100);
    }

    /// Line-format sanity round trip: every exposition line must be a
    /// `# HELP <name> <text>` comment, a `# TYPE <name> <kind>` comment,
    /// or `<name> <integer>`; every `# TYPE` must immediately follow its
    /// own non-empty `# HELP` and be followed by its sample; and the
    /// parsed-back values must equal the source fields.
    #[test]
    fn prometheus_exposition_round_trips_line_format() {
        let m = Metrics {
            cdms_sent: 42,
            cycles_detected: 7,
            max_cdm_bytes: 4096,
            votes_cast: 8,
            ..Metrics::default()
        };
        let text = m.to_prometheus();
        let mut parsed: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        let mut announced: Option<String> = None;
        let mut helped: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("# HELP carries name + text");
                assert!(!help.trim().is_empty(), "empty help text: {line}");
                helped = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().expect("# TYPE carries a metric name");
                let kind = parts.next().expect("# TYPE carries a kind");
                assert!(parts.next().is_none(), "junk after kind: {line}");
                assert!(
                    kind == "counter" || kind == "gauge",
                    "unknown kind in {line}"
                );
                assert_eq!(
                    kind == "counter",
                    name.ends_with("_total"),
                    "counters (and only counters) use the _total suffix: {line}"
                );
                assert_eq!(
                    helped.as_deref(),
                    Some(name),
                    "# TYPE must follow its own # HELP: {line}"
                );
                announced = Some(name.to_string());
            } else {
                let (name, value) = line.split_once(' ').expect("sample line: name value");
                assert_eq!(
                    announced.as_deref(),
                    Some(name),
                    "sample must follow its own # TYPE: {line}"
                );
                assert!(name.starts_with("acdgc_"), "namespaced: {line}");
                let v: u64 = value.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
                assert!(parsed.insert(name.to_string(), v).is_none(), "dup {name}");
            }
        }
        assert_eq!(parsed["acdgc_cdms_sent_total"], 42);
        assert_eq!(parsed["acdgc_cycles_detected_total"], 7);
        assert_eq!(parsed["acdgc_votes_cast_total"], 8);
        assert_eq!(parsed["acdgc_nss_sent_total"], 0, "zeroes still exposed");
        assert_eq!(parsed["acdgc_max_cdm_bytes"], 4096);
        // One sample per field: 49 counters + the gauge.
        assert_eq!(parsed.len(), 50, "{text}");
    }

    #[test]
    fn metrics_json_covers_every_field() {
        let m = Metrics {
            cdms_sent: 3,
            max_cdm_bytes: 128,
            ..Metrics::default()
        };
        match m.to_json() {
            Value::Object(obj) => {
                assert_eq!(obj.iter().count(), 50, "49 counters + gauge");
                assert_eq!(obj.get("cdms_sent"), Some(&Value::from(3u64)));
                assert_eq!(obj.get("max_cdm_bytes"), Some(&Value::from(128u64)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let mut m = Metrics {
            detections_aborted_ic: 2,
            detections_terminated_no_stubs: 3,
            ..Metrics::default()
        };
        assert_eq!(m.detections_failed(), 5);
        m.unsafe_frees = 1;
        assert_eq!(m.safety_violations(), 1);
    }
}
