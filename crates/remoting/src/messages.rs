//! Wire payloads for remote invocations and replies.
//!
//! The simulator owns delivery; these types only describe what travels and
//! how large it is. Reference export follows the paper's remoting
//! instrumentation: every reference marshalled into an invocation (or
//! reply) gets a stub/scion pair, so a call with 10 reference arguments
//! creates 10 scions at the exporters and 10 stubs at the importer — the
//! Table 1 workload.

use acdgc_model::{ObjId, RefId};

/// A reference marshalled inside an invocation or reply.
///
/// The scion protecting `target` was created (and pinned) at `target.proc`
/// when the message was sent; the receiver creates the stub on import.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExportedRef {
    pub ref_id: RefId,
    pub target: ObjId,
}

/// A remote method invocation through the reference `ref_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvokePayload {
    /// The reference being invoked (stub at the caller, scion at the callee).
    pub ref_id: RefId,
    /// References passed as arguments.
    pub exports: Vec<ExportedRef>,
    /// Simulated non-reference argument size in bytes.
    pub arg_bytes: u32,
    /// Whether the callee should send a reply (replies also bump ICs).
    pub wants_reply: bool,
}

impl InvokePayload {
    pub fn size_bytes(&self) -> usize {
        32 + self.arg_bytes as usize + 24 * self.exports.len()
    }
}

/// The reply to an invocation, travelling callee → caller through the same
/// reference (and therefore bumping the same invocation counters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyPayload {
    pub ref_id: RefId,
    /// References returned to the caller.
    pub exports: Vec<ExportedRef>,
}

impl ReplyPayload {
    pub fn size_bytes(&self) -> usize {
        16 + 24 * self.exports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::ProcId;

    #[test]
    fn sizes_scale_with_exports() {
        let e = ExportedRef {
            ref_id: RefId(1),
            target: ObjId::new(ProcId(1), 0, 0),
        };
        let small = InvokePayload {
            ref_id: RefId(0),
            exports: vec![],
            arg_bytes: 0,
            wants_reply: false,
        };
        let big = InvokePayload {
            ref_id: RefId(0),
            exports: vec![e; 10],
            arg_bytes: 0,
            wants_reply: false,
        };
        assert!(big.size_bytes() > small.size_bytes());
        assert_eq!(big.size_bytes() - small.size_bytes(), 240);
        let reply = ReplyPayload {
            ref_id: RefId(0),
            exports: vec![e],
        };
        assert_eq!(reply.size_bytes(), 40);
    }
}
