//! Stub and scion tables of one process.

use acdgc_model::{ModelError, ObjId, ProcId, RefId, SimTime, Slot};
use rustc_hash::{FxHashMap, FxHashSet};

/// Outgoing remote reference: lives in the process that *holds* the
/// reference, points at an object in `target.proc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stub {
    pub ref_id: RefId,
    /// The remote object this stub designates.
    pub target: ObjId,
    /// Invocation counter (§3.2): bumped on every invocation or reply sent
    /// through this reference.
    pub ic: u64,
    pub created_at: SimTime,
    /// `WeakRefMonitor` mode: the LGC observed the proxy dead, but the stub
    /// stays in the table until the monitor pass removes it.
    pub condemned: bool,
}

/// Incoming remote reference: lives in the process that *owns* the target
/// object, created when the reference was exported to `from_proc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scion {
    pub ref_id: RefId,
    /// The protected local object.
    pub target: ObjId,
    /// The process holding the matching stub.
    pub from_proc: ProcId,
    /// Invocation counter: bumped on every invocation or reply received
    /// through this reference. Matches the stub's `ic` whenever the network
    /// is quiet.
    pub ic: u64,
    pub created_at: SimTime,
    /// Last invocation received through this scion; drives the cycle
    /// candidate heuristic ("not invoked for a certain amount of time").
    pub last_invoked: SimTime,
    /// While the message exporting this reference is still in flight the
    /// scion may not be reclaimed (the receiving stub does not exist yet);
    /// the reference-listing layer skips pinned scions.
    pub pinned: u32,
    /// Incarnation of this scion under its reference id. A deleted scion
    /// may be recreated (same pair identity) when the reference is
    /// re-established; cycle-verdict deletions carry the incarnation they
    /// proved garbage, so a late `DeleteScion` can never kill a newer,
    /// live incarnation (ABA guard).
    pub incarnation: u32,
}

/// Aggregate remoting counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemotingStats {
    pub stubs_created: u64,
    pub stubs_removed: u64,
    pub scions_created: u64,
    pub scions_removed: u64,
    pub invocations_in: u64,
    pub invocations_out: u64,
}

/// Per-process stub/scion tables.
///
/// Reference-listing granularity: one stub/scion pair per (holder process,
/// target object). Duplicate references from the same process to the same
/// object share the pair — the indices below let callers find an existing
/// pair before creating a new one. This granularity matters for the cycle
/// detector's completeness: the CDM algebra cancels per *reference*, and
/// parallel per-copy pairs from one process would create dependency sets
/// no single CDM walk can resolve.
#[derive(Clone, Debug)]
pub struct RemotingTables {
    proc: ProcId,
    stubs: FxHashMap<RefId, Stub>,
    scions: FxHashMap<RefId, Scion>,
    /// Index: target object -> stub (one per target at this process).
    stub_by_target: FxHashMap<ObjId, RefId>,
    /// Index: (holder process, target object) -> scion.
    scion_by_source: FxHashMap<(ProcId, ObjId), RefId>,
    /// Monotone sequence for outgoing `NewSetStubs`.
    nss_seq_out: u64,
    /// Highest `NewSetStubs` sequence applied, per sender.
    nss_seq_seen: FxHashMap<ProcId, u64>,
    /// Next incarnation number per reference id (tombstones survive scion
    /// deletion so recreations are distinguishable).
    incarnations: FxHashMap<RefId, u32>,
    /// Last accepted `NewSetStubs` content per sender: `(lgc_at, live set)`.
    ///
    /// A scion that survived its judgement only because it was pinned would
    /// otherwise leak: the sender's content-change detection never resends a
    /// settled set. [`Self::sweep_deferred_nss`] re-applies these saved sets
    /// once the pin is released.
    saved_live: FxHashMap<ProcId, (SimTime, FxHashSet<RefId>)>,
    stats: RemotingStats,
}

impl RemotingTables {
    pub fn new(proc: ProcId) -> Self {
        RemotingTables {
            proc,
            stubs: FxHashMap::default(),
            scions: FxHashMap::default(),
            stub_by_target: FxHashMap::default(),
            scion_by_source: FxHashMap::default(),
            nss_seq_out: 0,
            nss_seq_seen: FxHashMap::default(),
            incarnations: FxHashMap::default(),
            saved_live: FxHashMap::default(),
            stats: RemotingStats::default(),
        }
    }

    pub fn proc(&self) -> ProcId {
        self.proc
    }

    pub fn stats(&self) -> RemotingStats {
        self.stats
    }

    // --- stubs -------------------------------------------------------------

    pub fn add_stub(&mut self, ref_id: RefId, target: ObjId, now: SimTime) {
        debug_assert_ne!(target.proc, self.proc, "stub must target a remote object");
        debug_assert!(
            !self.stub_by_target.contains_key(&target),
            "one stub per target: look up stub_for_target first"
        );
        self.stats.stubs_created += 1;
        self.stub_by_target.insert(target, ref_id);
        self.stubs.insert(
            ref_id,
            Stub {
                ref_id,
                target,
                ic: 0,
                created_at: now,
                condemned: false,
            },
        );
    }

    pub fn remove_stub(&mut self, ref_id: RefId) -> Option<Stub> {
        let removed = self.stubs.remove(&ref_id);
        if let Some(stub) = &removed {
            self.stub_by_target.remove(&stub.target);
            self.stats.stubs_removed += 1;
        }
        removed
    }

    /// The existing stub for `target`, if this process already references
    /// it (reference-listing dedup).
    pub fn stub_for_target(&self, target: ObjId) -> Option<&Stub> {
        self.stub_by_target
            .get(&target)
            .and_then(|r| self.stubs.get(r))
    }

    pub fn stub(&self, ref_id: RefId) -> Option<&Stub> {
        self.stubs.get(&ref_id)
    }

    pub fn stub_mut(&mut self, ref_id: RefId) -> Option<&mut Stub> {
        self.stubs.get_mut(&ref_id)
    }

    pub fn stubs(&self) -> impl Iterator<Item = &Stub> + '_ {
        self.stubs.values()
    }

    pub fn stub_count(&self) -> usize {
        self.stubs.len()
    }

    /// `VmIntegrated` mode: drop dead stubs immediately after an LGC.
    pub fn remove_dead_stubs(&mut self, dead: &[RefId]) -> Vec<Stub> {
        dead.iter().filter_map(|&r| self.remove_stub(r)).collect()
    }

    /// `WeakRefMonitor` mode: mark dead stubs; they leave the table at the
    /// next [`Self::monitor_pass`].
    pub fn condemn_stubs(&mut self, dead: &[RefId]) {
        for r in dead {
            if let Some(stub) = self.stubs.get_mut(r) {
                stub.condemned = true;
            }
        }
    }

    /// The OBIWAN monitor thread: remove every condemned stub.
    pub fn monitor_pass(&mut self) -> Vec<Stub> {
        let dead: Vec<RefId> = self
            .stubs
            .values()
            .filter(|s| s.condemned)
            .map(|s| s.ref_id)
            .collect();
        dead.into_iter()
            .filter_map(|r| self.remove_stub(r))
            .collect()
    }

    /// A stub condemned and then observed alive again (the proxy was
    /// resurrected by a new import of the same reference) is pardoned.
    pub fn pardon_stub(&mut self, ref_id: RefId) {
        if let Some(stub) = self.stubs.get_mut(&ref_id) {
            stub.condemned = false;
        }
    }

    // --- scions ------------------------------------------------------------

    pub fn add_scion(&mut self, ref_id: RefId, target: ObjId, from_proc: ProcId, now: SimTime) {
        debug_assert_eq!(target.proc, self.proc, "scion must protect a local object");
        debug_assert_ne!(from_proc, self.proc, "scion source must be remote");
        debug_assert!(
            !self.scion_by_source.contains_key(&(from_proc, target)),
            "one scion per (holder, target): look up scion_for_source first"
        );
        self.stats.scions_created += 1;
        self.scion_by_source.insert((from_proc, target), ref_id);
        let incarnation = {
            let n = self.incarnations.entry(ref_id).or_insert(0);
            let v = *n;
            *n += 1;
            v
        };
        self.scions.insert(
            ref_id,
            Scion {
                ref_id,
                target,
                from_proc,
                ic: 0,
                created_at: now,
                last_invoked: now,
                pinned: 0,
                incarnation,
            },
        );
    }

    pub fn remove_scion(&mut self, ref_id: RefId) -> Option<Scion> {
        let removed = self.scions.remove(&ref_id);
        if let Some(scion) = &removed {
            self.scion_by_source
                .remove(&(scion.from_proc, scion.target));
            self.stats.scions_removed += 1;
        }
        removed
    }

    /// The existing scion protecting `target` on behalf of `from_proc`,
    /// if any (reference-listing dedup).
    pub fn scion_for_source(&self, from_proc: ProcId, target: ObjId) -> Option<&Scion> {
        self.scion_by_source
            .get(&(from_proc, target))
            .and_then(|r| self.scions.get(r))
    }

    /// The reference was re-established (a new export or a repaired pair):
    /// move the scion's creation horizon to `now` so `NewSetStubs`
    /// messages built before this instant can no longer judge it — the
    /// stub they describe predates the re-establishment (ABA guard at the
    /// reference-listing layer).
    pub fn refresh_scion(&mut self, ref_id: RefId, now: SimTime) {
        if let Some(scion) = self.scions.get_mut(&ref_id) {
            scion.created_at = now;
        }
    }

    pub fn scion(&self, ref_id: RefId) -> Option<&Scion> {
        self.scions.get(&ref_id)
    }

    pub fn scion_mut(&mut self, ref_id: RefId) -> Option<&mut Scion> {
        self.scions.get_mut(&ref_id)
    }

    pub fn scions(&self) -> impl Iterator<Item = &Scion> + '_ {
        self.scions.values()
    }

    pub fn scion_count(&self) -> usize {
        self.scions.len()
    }

    /// Slots the LGC must treat as roots-of-liveness (scion targets).
    pub fn scion_target_slots(&self) -> Vec<Slot> {
        self.scions.values().map(|s| s.target.slot).collect()
    }

    /// Pin a scion while the exporting message is in flight.
    pub fn pin_scion(&mut self, ref_id: RefId) -> Result<(), ModelError> {
        self.scions
            .get_mut(&ref_id)
            .map(|s| s.pinned += 1)
            .ok_or(ModelError::UnknownScion(self.proc, ref_id))
    }

    pub fn unpin_scion(&mut self, ref_id: RefId) -> Result<(), ModelError> {
        let scion = self
            .scions
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownScion(self.proc, ref_id))?;
        debug_assert!(scion.pinned > 0, "unbalanced unpin");
        scion.pinned = scion.pinned.saturating_sub(1);
        Ok(())
    }

    // --- invocation counters ------------------------------------------------

    /// Caller side of an invocation or reply through `ref_id`.
    pub fn record_send_through_stub(&mut self, ref_id: RefId) -> Result<u64, ModelError> {
        self.stats.invocations_out += 1;
        let stub = self
            .stubs
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownStub(self.proc, ref_id))?;
        stub.ic += 1;
        Ok(stub.ic)
    }

    /// Adopt the surviving scion's counter into a freshly re-created stub.
    ///
    /// The pair's counters count invocations in flight (sent at the stub
    /// minus received at the scion); at the instant a stub is repaired for
    /// a scion that outlived it, nothing is in flight, so the halves must
    /// be equal. Leaving the new stub at zero against a scion with `ic =
    /// k` is not a safety problem — the CDM invocation-counter match can
    /// only *veto* deletions — but the veto becomes permanent: every
    /// detection crossing the pair aborts with an IC mismatch forever,
    /// the scion stays a candidate forever, and quiescence never closes.
    pub fn sync_stub_ic(&mut self, ref_id: RefId, ic: u64) -> Result<(), ModelError> {
        let stub = self
            .stubs
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownStub(self.proc, ref_id))?;
        stub.ic = ic;
        Ok(())
    }

    /// Adopt the surviving stub's counter into a freshly re-created
    /// scion. Mirror of [`RemotingTables::sync_stub_ic`] for the opposite
    /// repair direction (scion deleted by a verdict while the stub and
    /// its target both live on).
    pub fn sync_scion_ic(&mut self, ref_id: RefId, ic: u64) -> Result<(), ModelError> {
        let scion = self
            .scions
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownScion(self.proc, ref_id))?;
        scion.ic = ic;
        Ok(())
    }

    /// Callee side of an invocation or reply through `ref_id`.
    pub fn record_receive_through_scion(
        &mut self,
        ref_id: RefId,
        now: SimTime,
    ) -> Result<u64, ModelError> {
        self.stats.invocations_in += 1;
        let scion = self
            .scions
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownScion(self.proc, ref_id))?;
        scion.ic += 1;
        scion.last_invoked = now;
        Ok(scion.ic)
    }

    /// Callee side sending a reply back through `ref_id` (replies also
    /// count as mutator activity on the reference, §3.2: "each time a
    /// remote invocation (or reply) is performed").
    pub fn record_reply_sent_through_scion(
        &mut self,
        ref_id: RefId,
        now: SimTime,
    ) -> Result<u64, ModelError> {
        let scion = self
            .scions
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownScion(self.proc, ref_id))?;
        scion.ic += 1;
        scion.last_invoked = now;
        Ok(scion.ic)
    }

    /// Caller side receiving a reply through `ref_id`.
    pub fn record_reply_received_through_stub(&mut self, ref_id: RefId) -> Result<u64, ModelError> {
        let stub = self
            .stubs
            .get_mut(&ref_id)
            .ok_or(ModelError::UnknownStub(self.proc, ref_id))?;
        stub.ic += 1;
        Ok(stub.ic)
    }

    /// Number of scions currently pinned by in-flight exports or
    /// invocations (a telemetry gauge; also how long `sweep_deferred_nss`
    /// may still have deferred work for this process).
    pub fn pinned_scion_count(&self) -> usize {
        self.scions.values().filter(|s| s.pinned > 0).count()
    }

    /// Record the content of an accepted `NewSetStubs` so scions it could
    /// not judge (pinned at the time) can be re-judged later by
    /// [`Self::sweep_deferred_nss`].
    pub fn save_live_set(&mut self, from: ProcId, lgc_at: SimTime, live: FxHashSet<RefId>) {
        self.saved_live.insert(from, (lgc_at, live));
    }

    /// Re-apply every saved live set: delete scions whose judgement was
    /// deferred because they were pinned when the set arrived and are now
    /// unpinned. Returns the removed scions.
    ///
    /// Safe against late re-exports because [`Self::refresh_scion`] moves
    /// `created_at` past any set built before the re-establishment, so the
    /// horizon check below excludes them.
    pub fn sweep_deferred_nss(&mut self) -> Vec<Scion> {
        let doomed: Vec<RefId> = self
            .scions
            .values()
            .filter(|s| {
                s.pinned == 0
                    && self
                        .saved_live
                        .get(&s.from_proc)
                        .is_some_and(|(lgc_at, live)| {
                            s.created_at < *lgc_at && !live.contains(&s.ref_id)
                        })
            })
            .map(|s| s.ref_id)
            .collect();
        doomed
            .into_iter()
            .filter_map(|r| self.remove_scion(r))
            .collect()
    }

    // --- NewSetStubs sequencing ----------------------------------------------

    pub fn next_nss_seq(&mut self) -> u64 {
        self.nss_seq_out += 1;
        self.nss_seq_out
    }

    /// Returns `true` (and records it) if `seq` from `sender` is fresher
    /// than anything applied so far.
    pub fn accept_nss_seq(&mut self, sender: ProcId, seq: u64) -> bool {
        let seen = self.nss_seq_seen.entry(sender).or_insert(0);
        if seq > *seen {
            *seen = seq;
            true
        } else {
            false
        }
    }

    /// Peers this process currently references (stub targets).
    pub fn stub_peers(&self) -> FxHashSet<ProcId> {
        self.stubs.values().map(|s| s.target.proc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(proc: u16, slot: Slot) -> ObjId {
        ObjId::new(ProcId(proc), slot, 0)
    }

    fn tables() -> RemotingTables {
        RemotingTables::new(ProcId(0))
    }

    #[test]
    fn stub_lifecycle() {
        let mut t = tables();
        t.add_stub(RefId(1), obj(1, 0), SimTime(5));
        assert_eq!(t.stub_count(), 1);
        assert_eq!(t.stub(RefId(1)).unwrap().created_at, SimTime(5));
        assert!(t.remove_stub(RefId(1)).is_some());
        assert!(t.remove_stub(RefId(1)).is_none());
        assert_eq!(t.stats().stubs_removed, 1);
    }

    #[test]
    fn scion_lifecycle_and_targets() {
        let mut t = tables();
        t.add_scion(RefId(1), obj(0, 3), ProcId(2), SimTime(0));
        t.add_scion(RefId(2), obj(0, 9), ProcId(1), SimTime(0));
        let mut slots = t.scion_target_slots();
        slots.sort_unstable();
        assert_eq!(slots, vec![3, 9]);
        assert!(t.remove_scion(RefId(1)).is_some());
        assert_eq!(t.scion_count(), 1);
    }

    #[test]
    fn invocation_counters_advance_on_both_ends() {
        let mut caller = RemotingTables::new(ProcId(0));
        let mut callee = RemotingTables::new(ProcId(1));
        caller.add_stub(RefId(7), obj(1, 0), SimTime(0));
        callee.add_scion(RefId(7), obj(1, 0), ProcId(0), SimTime(0));
        let stub_ic = caller.record_send_through_stub(RefId(7)).unwrap();
        let scion_ic = callee
            .record_receive_through_scion(RefId(7), SimTime(10))
            .unwrap();
        assert_eq!(stub_ic, 1);
        assert_eq!(scion_ic, 1);
        assert_eq!(callee.scion(RefId(7)).unwrap().last_invoked, SimTime(10));
    }

    #[test]
    fn condemn_monitor_pardon() {
        let mut t = tables();
        t.add_stub(RefId(1), obj(1, 0), SimTime(0));
        t.add_stub(RefId(2), obj(1, 1), SimTime(0));
        t.condemn_stubs(&[RefId(1), RefId(2)]);
        t.pardon_stub(RefId(2));
        let removed = t.monitor_pass();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].ref_id, RefId(1));
        assert!(t.stub(RefId(2)).is_some());
    }

    #[test]
    fn pin_blocks_until_balanced() {
        let mut t = tables();
        t.add_scion(RefId(3), obj(0, 1), ProcId(1), SimTime(0));
        t.pin_scion(RefId(3)).unwrap();
        t.pin_scion(RefId(3)).unwrap();
        assert_eq!(t.scion(RefId(3)).unwrap().pinned, 2);
        t.unpin_scion(RefId(3)).unwrap();
        t.unpin_scion(RefId(3)).unwrap();
        assert_eq!(t.scion(RefId(3)).unwrap().pinned, 0);
    }

    #[test]
    fn nss_sequence_guard_rejects_stale() {
        let mut t = tables();
        assert!(t.accept_nss_seq(ProcId(1), 2));
        assert!(!t.accept_nss_seq(ProcId(1), 2), "replay rejected");
        assert!(!t.accept_nss_seq(ProcId(1), 1), "stale rejected");
        assert!(t.accept_nss_seq(ProcId(1), 3));
        assert!(t.accept_nss_seq(ProcId(2), 1), "independent per sender");
    }

    #[test]
    fn stub_peers_reflect_targets() {
        let mut t = tables();
        t.add_stub(RefId(1), obj(1, 0), SimTime(0));
        t.add_stub(RefId(2), obj(2, 0), SimTime(0));
        t.add_stub(RefId(3), obj(1, 4), SimTime(0));
        let peers = t.stub_peers();
        assert_eq!(peers.len(), 2);
        assert!(peers.contains(&ProcId(1)) && peers.contains(&ProcId(2)));
    }

    #[test]
    fn deferred_sweep_reclaims_unpinned_scion() {
        let mut t = tables();
        t.add_scion(RefId(4), obj(0, 0), ProcId(1), SimTime(0));
        t.pin_scion(RefId(4)).unwrap();
        assert_eq!(t.pinned_scion_count(), 1);
        // The set that should have killed it arrives while pinned.
        t.save_live_set(ProcId(1), SimTime(10), FxHashSet::default());
        assert!(t.sweep_deferred_nss().is_empty(), "pinned: deferred");
        t.unpin_scion(RefId(4)).unwrap();
        let removed = t.sweep_deferred_nss();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].ref_id, RefId(4));
        assert_eq!(t.pinned_scion_count(), 0);
    }

    #[test]
    fn deferred_sweep_respects_refresh_horizon() {
        let mut t = tables();
        t.add_scion(RefId(4), obj(0, 0), ProcId(1), SimTime(0));
        t.save_live_set(ProcId(1), SimTime(10), FxHashSet::default());
        // Re-export during the window: the horizon moves past the set.
        t.refresh_scion(RefId(4), SimTime(10));
        assert!(t.sweep_deferred_nss().is_empty(), "refreshed scion safe");
        // A scion named live by the saved set also survives.
        t.add_scion(RefId(5), obj(0, 1), ProcId(1), SimTime(0));
        let mut live = FxHashSet::default();
        live.insert(RefId(5));
        t.save_live_set(ProcId(1), SimTime(20), live);
        let removed = t.sweep_deferred_nss();
        assert_eq!(removed.len(), 1, "only the stale unprotected scion dies");
        assert_eq!(removed[0].ref_id, RefId(4));
        assert!(t.scion(RefId(5)).is_some());
    }

    #[test]
    fn counter_on_missing_ref_errors() {
        let mut t = tables();
        assert!(t.record_send_through_stub(RefId(9)).is_err());
        assert!(t
            .record_receive_through_scion(RefId(9), SimTime(0))
            .is_err());
    }
}
