//! The `NewSetStubs` protocol: reference-listing acyclic DGC.
//!
//! After each LGC, a process sends every peer the set of live stubs it
//! holds toward that peer (`NewSetStubs`). The peer deletes scions from
//! that sender which are absent from the set — the objects they protected
//! become reclaimable at its next LGC.
//!
//! Robustness properties exercised by the tests:
//!
//! * **reordering** — per-sender sequence numbers; a stale message is
//!   ignored entirely (applying an old set could resurrect-delete a scion
//!   for a stub created since),
//! * **loss** — nothing is retransmitted; the next LGC round sends a fresh
//!   set, so loss only delays reclamation,
//! * **in-flight exports** — scions created for references still traveling
//!   inside an application message are *pinned* and never deleted, and
//!   scions newer than the sender's collection are protected by the
//!   `lgc_at` horizon.

use crate::tables::{RemotingTables, Scion};
use acdgc_model::{ProcId, RefId, SimTime};
use rustc_hash::FxHashSet;

/// The per-peer message generated after an LGC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewSetStubs {
    pub from: ProcId,
    /// Per-sender monotone sequence; receivers ignore non-increasing ones.
    pub seq: u64,
    /// When the sender's collection observed its heap: scions created at or
    /// after this instant are not judged by this message.
    pub lgc_at: SimTime,
    /// Live stubs at `from` whose targets live in the receiving process.
    pub live_refs: Vec<RefId>,
}

impl NewSetStubs {
    /// Approximate wire size for byte accounting.
    pub fn size_bytes(&self) -> usize {
        24 + 8 * self.live_refs.len()
    }
}

/// Build one `NewSetStubs` per peer in `peers`.
///
/// The set is read from the *current stub table*, so the integration mode
/// decides its content: `VmIntegrated` removed dead stubs before this call;
/// `WeakRefMonitor` leaves condemned stubs in place until the monitor pass,
/// so they are still (conservatively) announced as live.
pub fn build_new_set_stubs(
    tables: &mut RemotingTables,
    peers: &[ProcId],
    lgc_at: SimTime,
) -> Vec<(ProcId, NewSetStubs)> {
    let mut out = Vec::with_capacity(peers.len());
    for &peer in peers {
        if peer == tables.proc() {
            continue;
        }
        let mut live_refs: Vec<RefId> = tables
            .stubs()
            .filter(|s| s.target.proc == peer)
            .map(|s| s.ref_id)
            .collect();
        live_refs.sort_unstable();
        out.push((
            peer,
            NewSetStubs {
                from: tables.proc(),
                seq: tables.next_nss_seq(),
                lgc_at,
                live_refs,
            },
        ));
    }
    out
}

/// Effect of applying a `NewSetStubs` message.
#[derive(Clone, Debug, Default)]
pub struct AppliedNss {
    /// Scions deleted: their targets lose remote protection.
    pub removed: Vec<Scion>,
    /// The message was stale (sequence not fresher) and ignored.
    pub stale: bool,
}

/// Apply a `NewSetStubs` from `msg.from`: delete this sender's scions that
/// are not in the live set, except pinned ones and ones created at or after
/// the sender's collection horizon.
pub fn apply_new_set_stubs(tables: &mut RemotingTables, msg: &NewSetStubs) -> AppliedNss {
    if !tables.accept_nss_seq(msg.from, msg.seq) {
        return AppliedNss {
            removed: Vec::new(),
            stale: true,
        };
    }
    let live: FxHashSet<RefId> = msg.live_refs.iter().copied().collect();
    let doomed: Vec<RefId> = tables
        .scions()
        .filter(|s| {
            s.from_proc == msg.from
                && s.pinned == 0
                && s.created_at < msg.lgc_at
                && !live.contains(&s.ref_id)
        })
        .map(|s| s.ref_id)
        .collect();
    let removed = doomed
        .into_iter()
        .filter_map(|r| tables.remove_scion(r))
        .collect();
    // Scions skipped above *only* because they were pinned would leak: a
    // content-settled set is never resent. Save the accepted set so
    // `RemotingTables::sweep_deferred_nss` can re-judge them once unpinned.
    tables.save_live_set(msg.from, msg.lgc_at, live);
    AppliedNss {
        removed,
        stale: false,
    }
}

/// [`apply_new_set_stubs`] recording an [`acdgc_obs::Event::NssApplied`]
/// event (covering the stale-rejection path too, which is exactly the case
/// post-mortems need to see).
pub fn apply_new_set_stubs_observed(
    tables: &mut RemotingTables,
    msg: &NewSetStubs,
    now: SimTime,
    obs: &mut acdgc_obs::ProcTrace,
) -> AppliedNss {
    let applied = apply_new_set_stubs(tables, msg);
    obs.record(
        now,
        acdgc_obs::Event::NssApplied {
            from: msg.from,
            seq: msg.seq,
            removed: applied.removed.len() as u32,
            stale: applied.stale,
        },
    );
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdgc_model::ObjId;

    fn obj(proc: u16, slot: u32) -> ObjId {
        ObjId::new(ProcId(proc), slot, 0)
    }

    /// Build a holder/owner pair: P0 holds stubs, P1 owns scions.
    fn pair() -> (RemotingTables, RemotingTables) {
        (
            RemotingTables::new(ProcId(0)),
            RemotingTables::new(ProcId(1)),
        )
    }

    #[test]
    fn absent_stub_deletes_scion() {
        let (mut holder, mut owner) = pair();
        holder.add_stub(RefId(1), obj(1, 0), SimTime(0));
        owner.add_scion(RefId(1), obj(1, 0), ProcId(0), SimTime(0));
        owner.add_scion(RefId(2), obj(1, 1), ProcId(0), SimTime(0));
        // RefId(2)'s stub has died at the holder: only RefId(1) is live.
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(100));
        assert_eq!(msgs.len(), 1);
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert_eq!(applied.removed.len(), 1);
        assert_eq!(applied.removed[0].ref_id, RefId(2));
        assert!(owner.scion(RefId(1)).is_some());
    }

    #[test]
    fn empty_set_still_sent_and_clears_all() {
        let (mut holder, mut owner) = pair();
        owner.add_scion(RefId(9), obj(1, 0), ProcId(0), SimTime(0));
        // Holder has no stubs toward P1 at all; the empty set must still be
        // generated so the orphan scion dies.
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(50));
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].1.live_refs.is_empty());
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert_eq!(applied.removed.len(), 1);
    }

    #[test]
    fn stale_message_is_ignored() {
        let (mut holder, mut owner) = pair();
        holder.add_stub(RefId(1), obj(1, 0), SimTime(0));
        owner.add_scion(RefId(1), obj(1, 0), ProcId(0), SimTime(0));
        let newer = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(10));
        // The stub dies; a second, fresher set is generated.
        holder.remove_stub(RefId(1));
        let fresher = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(20));
        // Fresher arrives first (reordering); stale must then be a no-op.
        let applied = apply_new_set_stubs(&mut owner, &fresher[0].1);
        assert_eq!(applied.removed.len(), 1);
        let stale = apply_new_set_stubs(&mut owner, &newer[0].1);
        assert!(stale.stale);
        assert!(stale.removed.is_empty());
    }

    #[test]
    fn reordered_resurrection_is_prevented() {
        // Scenario: the stub for RefId(1) dies, then a *new* reference
        // RefId(2) (to another object) is exported. If the old (pre-death)
        // set were applied after the new one, RefId(2)'s scion must
        // survive both by sequence guard and by creation horizon.
        let (mut holder, mut owner) = pair();
        holder.add_stub(RefId(1), obj(1, 0), SimTime(0));
        owner.add_scion(RefId(1), obj(1, 0), ProcId(0), SimTime(0));
        let old = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(10));
        holder.remove_stub(RefId(1));
        holder.add_stub(RefId(2), obj(1, 1), SimTime(15));
        owner.add_scion(RefId(2), obj(1, 1), ProcId(0), SimTime(15));
        let new = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(20));
        let applied_new = apply_new_set_stubs(&mut owner, &new[0].1);
        assert_eq!(applied_new.removed.len(), 1, "RefId(1) scion dies");
        let applied_old = apply_new_set_stubs(&mut owner, &old[0].1);
        assert!(applied_old.stale);
        assert!(owner.scion(RefId(2)).is_some(), "new scion survives");
    }

    #[test]
    fn pinned_scion_survives_absent_stub() {
        let (mut holder, mut owner) = pair();
        owner.add_scion(RefId(5), obj(1, 0), ProcId(0), SimTime(0));
        owner.pin_scion(RefId(5)).unwrap();
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(100));
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert!(applied.removed.is_empty(), "pinned scion must survive");
        owner.unpin_scion(RefId(5)).unwrap();
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(200));
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert_eq!(applied.removed.len(), 1, "unpinned scion reclaimed");
    }

    #[test]
    fn pinned_scion_reclaimed_by_deferred_sweep_without_resend() {
        // The ack/retry layer never resends a content-settled set, so a
        // scion that dodged judgement only by being pinned must be caught
        // by the saved-set sweep once the pin drops.
        let (mut holder, mut owner) = pair();
        owner.add_scion(RefId(5), obj(1, 0), ProcId(0), SimTime(0));
        owner.pin_scion(RefId(5)).unwrap();
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(100));
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert!(applied.removed.is_empty(), "pinned scion survives apply");
        assert!(owner.sweep_deferred_nss().is_empty(), "still pinned");
        owner.unpin_scion(RefId(5)).unwrap();
        let removed = owner.sweep_deferred_nss();
        assert_eq!(removed.len(), 1, "deferred judgement lands");
        assert_eq!(removed[0].ref_id, RefId(5));
    }

    #[test]
    fn creation_horizon_protects_new_scions() {
        let (mut holder, mut owner) = pair();
        // Holder's LGC ran at t=10; a scion created at t=10 or later cannot
        // be judged by that collection.
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(10));
        owner.add_scion(RefId(8), obj(1, 0), ProcId(0), SimTime(10));
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert!(applied.removed.is_empty());
    }

    #[test]
    fn scions_from_other_senders_untouched() {
        let (mut holder, mut owner) = pair();
        owner.add_scion(RefId(1), obj(1, 0), ProcId(0), SimTime(0));
        owner.add_scion(RefId(2), obj(1, 1), ProcId(2), SimTime(0));
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(100));
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert_eq!(applied.removed.len(), 1);
        assert!(
            owner.scion(RefId(2)).is_some(),
            "P2's scion not judged by P0"
        );
    }

    #[test]
    fn condemned_stub_still_announced_live() {
        // WeakRefMonitor mode: until the monitor pass removes it, a
        // condemned stub keeps its scion alive (conservative).
        let (mut holder, mut owner) = pair();
        holder.add_stub(RefId(1), obj(1, 0), SimTime(0));
        owner.add_scion(RefId(1), obj(1, 0), ProcId(0), SimTime(0));
        holder.condemn_stubs(&[RefId(1)]);
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(10));
        assert_eq!(msgs[0].1.live_refs, vec![RefId(1)]);
        holder.monitor_pass();
        let msgs = build_new_set_stubs(&mut holder, &[ProcId(1)], SimTime(20));
        assert!(msgs[0].1.live_refs.is_empty());
        let applied = apply_new_set_stubs(&mut owner, &msgs[0].1);
        assert_eq!(applied.removed.len(), 1);
    }

    #[test]
    fn size_model_counts_refs() {
        let msg = NewSetStubs {
            from: ProcId(0),
            seq: 1,
            lgc_at: SimTime(0),
            live_refs: vec![RefId(1), RefId(2), RefId(3)],
        };
        assert_eq!(msg.size_bytes(), 24 + 24);
    }
}
