//! Remote references and the reference-listing acyclic DGC.
//!
//! This crate reproduces the instrumentation the paper adds to the .Net
//! Remoting stack (§4):
//!
//! * [`tables`] — per-process [`Stub`] (outgoing reference) and [`Scion`]
//!   (incoming reference) tables. A remote reference is one stub/scion pair
//!   sharing a [`acdgc_model::RefId`]. Both ends carry the **invocation
//!   counter** (`IC`) of §3.2, incremented on every invocation *and* reply
//!   through the reference; the counters are the barrier that lets the
//!   cycle detector notice mutator activity behind its back.
//! * [`acyclic`] — the `NewSetStubs` protocol of the reference-listing
//!   algorithm [Shapiro et al. 92]: after each LGC a process sends every
//!   peer the set of its live stubs targeting that peer; the peer deletes
//!   scions absent from the set. Per-sender sequence numbers make stale or
//!   reordered messages harmless, and loss merely delays reclamation —
//!   the properties the paper relies on.
//! * [`messages`] — the wire payloads for invocations, replies and
//!   `NewSetStubs`, with size models for byte accounting.
//!
//! Stub death is observed in one of two modes ([`acdgc_model::IntegrationMode`]):
//! `VmIntegrated` removes dead stubs at LGC time (the Rotor build);
//! `WeakRefMonitor` *condemns* them and removes them on a later monitor
//! pass (the OBIWAN user-level build, which watches transparent proxies
//! through weak references).

pub mod acyclic;
pub mod messages;
pub mod tables;

pub use acyclic::{
    apply_new_set_stubs, apply_new_set_stubs_observed, build_new_set_stubs, AppliedNss, NewSetStubs,
};
pub use messages::{ExportedRef, InvokePayload, ReplyPayload};
pub use tables::{RemotingStats, RemotingTables, Scion, Stub};
