//! Deterministic discrete-event simulated network.
//!
//! The paper's processes communicate over an unreliable transport; the
//! algorithm is explicitly designed to tolerate message loss (a lost CDM
//! just kills one detection attempt, a lost `NewSetStubs` delays scion
//! reclamation). This crate provides the transport as a seeded,
//! reproducible event queue:
//!
//! * uniform latency in a configurable band — the spread is what produces
//!   reordering, no extra mechanism needed,
//! * configurable drop and duplication probabilities applied only to
//!   [`MessageClass::Gc`] traffic (application invocations are modelled as
//!   reliable RPC: the tolerance claim under test is about collector
//!   traffic),
//! * a global min-heap of in-flight envelopes, popped in
//!   `(deliver_at, sequence)` order so identical seeds replay identical
//!   schedules.

pub mod network;

pub use network::{Envelope, MessageClass, NetStats, Network, SendOutcome};
